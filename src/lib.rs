//! Umbrella crate for the IceClave reproduction.
//!
//! Re-exports the workspace's public API so examples and integration
//! tests can depend on a single crate. See the individual crates for
//! full documentation:
//!
//! * [`iceclave_core`] — the IceClave TEE runtime (the paper's
//!   contribution).
//! * [`iceclave_experiments`] — reproductions of every table/figure.
//! * [`iceclave_workloads`] — the eleven evaluation workloads.
//! * Substrates: [`iceclave_flash`], [`iceclave_ftl`], [`iceclave_dram`],
//!   [`iceclave_mee`], [`iceclave_cipher`], [`iceclave_trustzone`],
//!   [`iceclave_cpu`], [`iceclave_isc`], [`iceclave_sim`],
//!   [`iceclave_types`].
//!
//! # Architecture: the request pipeline
//!
//! The protected data path is *batched and channel-parallel*. An
//! in-storage program submits its whole page set as one request
//! (`IceClave::submit_batch`); `read_flash_page` survives as the
//! one-element wrapper. A batch flows through four stages, each
//! overlapping with the others on the simulator's resource timelines:
//!
//! ```text
//!  submit_batch(tee, lpns, now)
//!      │ 1. translate + ID-bit check every page up front
//!      │    (a denied page aborts the batch before any flash
//!      │     traffic and throws the TEE out, §4.5)
//!      ▼
//!  Ftl::read_batch ── ChannelScheduler: per-channel FIFO queues,
//!      │               issued round-robin across channels
//!      ▼
//!  FlashArray::read_pages ── per-die cell reads and per-channel bus
//!      │                     transfers overlap/queue on Resource
//!      │                     timelines (Figures 12–13 scaling)
//!      ▼
//!  decrypt lanes (iceclave_sim::Pipeline, one per channel) ── each
//!      │        channel's cipher engine drains its pages in
//!      │        flash-completion order, hiding decryption under the
//!      │        other channels' transfers
//!      ▼
//!  MeeEngine::fill_pages ── counter-init + MAC generation of early
//!               pages overlap with later transfers; per-page
//!               completion times return in request order
//! ```
//!
//! The vocabulary types ([`iceclave_types::BatchRequest`],
//! [`iceclave_types::BatchCompletion`]) carry per-page ready times and
//! — for pages with functional content — the deciphered plaintext, so
//! tests can assert byte-identical batch/sequential equivalence
//! (`tests/batch_equivalence.rs`).
//!
//! The **write path** mirrors the read pipeline for programs. A
//! program submits its dirty page set as one request
//! (`IceClave::submit_write_batch` / `submit_write_batch_as`, the
//! latter carrying plaintext payloads); `write_flash_page` is the
//! one-element wrapper:
//!
//! ```text
//!  submit_write_batch(tee, lpns, now)
//!      │ 1. ownership-check every page up front (all-or-nothing: a
//!      │    foreign page aborts the batch before any allocation or
//!      │    flash traffic and throws the TEE out, §4.5)
//!      ▼
//!  Ftl::write_batch ── ONE secure-world entry per batch (vs. two
//!      │               switches per page on Ftl::write); GC-aware
//!      │               allocation steers each page to the least-loaded
//!      │               channel, and a GC pass triggered mid-batch
//!      │               stalls only its own channel's later programs
//!      ▼
//!  ChannelScheduler ── per-channel *program* queues beside the read
//!      │               queues; reads and writes interleave round-robin
//!      │               per channel, FIFO within a queue
//!      ▼
//!  FlashArray::program_pages ── per-channel bus transfers and per-die
//!      │                        program pulses overlap/queue on the
//!      │                        Resource timelines; CMT updates are
//!      │                        coalesced so each dirty translation
//!      │                        page persists once per batch
//!      ▼
//!  MeeEngine::seal_pages + cipher lanes ── counter-epoch increments,
//!               outbound MAC generation and per-channel stream
//!               encryption overlap with the channel programs; a page
//!               is durable at max(program, seal, encrypt)
//! ```
//!
//! The write vocabulary ([`iceclave_types::WriteBatchRequest`],
//! [`iceclave_types::WriteBatchCompletion`],
//! [`iceclave_types::PageWrite`]) carries per-page durable times, and
//! `tests/write_batch_equivalence.rs` asserts batch/sequential
//! post-state equivalence, the ThrowOutTEE denial, and the
//! channel-scaling acceptance criteria. `Ftl::flush_cmt` drains dirty
//! translation pages through the same steered program path, so
//! shutdown latency also scales with channels.

pub use iceclave_cipher;
pub use iceclave_core;
pub use iceclave_cpu;
pub use iceclave_dram;
pub use iceclave_experiments;
pub use iceclave_flash;
pub use iceclave_ftl;
pub use iceclave_isc;
pub use iceclave_mee;
pub use iceclave_sim;
pub use iceclave_trustzone;
pub use iceclave_types;
pub use iceclave_workloads;
