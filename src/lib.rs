//! Umbrella crate for the IceClave reproduction.
//!
//! Re-exports the workspace's public API so examples and integration
//! tests can depend on a single crate. See the individual crates for
//! full documentation:
//!
//! * [`iceclave_core`] — the IceClave TEE runtime (the paper's
//!   contribution).
//! * [`iceclave_experiments`] — reproductions of every table/figure.
//! * [`iceclave_workloads`] — the eleven evaluation workloads.
//! * Substrates: [`iceclave_flash`], [`iceclave_ftl`], [`iceclave_dram`],
//!   [`iceclave_mee`], [`iceclave_cipher`], [`iceclave_trustzone`],
//!   [`iceclave_cpu`], [`iceclave_isc`], [`iceclave_sim`],
//!   [`iceclave_types`].

pub use iceclave_cipher;
pub use iceclave_core;
pub use iceclave_cpu;
pub use iceclave_dram;
pub use iceclave_experiments;
pub use iceclave_flash;
pub use iceclave_ftl;
pub use iceclave_isc;
pub use iceclave_mee;
pub use iceclave_sim;
pub use iceclave_trustzone;
pub use iceclave_types;
pub use iceclave_workloads;
