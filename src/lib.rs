//! Umbrella crate for the IceClave reproduction.
//!
//! Re-exports the workspace's public API so examples and integration
//! tests can depend on a single crate. See the individual crates for
//! full documentation:
//!
//! # Documentation
//!
//! * `docs/ARCHITECTURE.md` (in-tree) — the crate map, the read and
//!   write event pipelines, the MEE's two-level metadata hierarchy
//!   (SRAM L1 → MAC-sealed DRAM L2 → tree walk), the
//!   weighted-fair-queueing scheduler's invariants, and the ticket
//!   lifecycle, in one place.
//! * The drain-order contract of the completion queue lives in the
//!   [`iceclave_exec::completion`] module documentation — the single
//!   source of truth, quoted by
//!   [`iceclave_exec::DRAIN_ORDER_CONTRACT`] and the regression tests.
//! * `ROADMAP.md` tracks the north star and open items; `CHANGES.md`
//!   the PR-by-PR history.
//!
//! * [`iceclave_core`] — the IceClave TEE runtime (the paper's
//!   contribution).
//! * [`iceclave_experiments`] — reproductions of every table/figure.
//! * [`iceclave_workloads`] — the eleven evaluation workloads.
//! * Substrates: [`iceclave_flash`], [`iceclave_ftl`], [`iceclave_dram`],
//!   [`iceclave_mee`], [`iceclave_cipher`], [`iceclave_trustzone`],
//!   [`iceclave_cpu`], [`iceclave_isc`], [`iceclave_sim`],
//!   [`iceclave_exec`], [`iceclave_types`].
//!
//! # Architecture: the request pipeline
//!
//! The protected data path is *batched and channel-parallel*. An
//! in-storage program submits its whole page set as one request
//! (`IceClave::submit_batch`); `read_flash_page` survives as the
//! one-element wrapper. A batch flows through four stages, each
//! overlapping with the others on the simulator's resource timelines:
//!
//! ```text
//!  submit_batch(tee, lpns, now)
//!      │ 1. translate + ID-bit check every page up front
//!      │    (a denied page aborts the batch before any flash
//!      │     traffic and throws the TEE out, §4.5)
//!      ▼
//!  Ftl::read_batch ── ChannelScheduler: per-channel FIFO queues,
//!      │               issued round-robin across channels
//!      ▼
//!  FlashArray::read_pages ── per-die cell reads and per-channel bus
//!      │                     transfers overlap/queue on Resource
//!      │                     timelines (Figures 12–13 scaling)
//!      ▼
//!  decrypt lanes (iceclave_sim::Pipeline, one per channel) ── each
//!      │        channel's cipher engine drains its pages in
//!      │        flash-completion order, hiding decryption under the
//!      │        other channels' transfers
//!      ▼
//!  MeeEngine::fill_pages ── counter-init + MAC generation of early
//!               pages overlap with later transfers; per-page
//!               completion times return in request order
//! ```
//!
//! The vocabulary types ([`iceclave_types::BatchRequest`],
//! [`iceclave_types::BatchCompletion`]) carry per-page ready times and
//! — for pages with functional content — the deciphered plaintext, so
//! tests can assert byte-identical batch/sequential equivalence
//! (`tests/batch_equivalence.rs`).
//!
//! The **write path** mirrors the read pipeline for programs. A
//! program submits its dirty page set as one request
//! (`IceClave::submit_write_batch` / `submit_write_batch_as`, the
//! latter carrying plaintext payloads); `write_flash_page` is the
//! one-element wrapper:
//!
//! ```text
//!  submit_write_batch(tee, lpns, now)
//!      │ 1. ownership-check every page up front (all-or-nothing: a
//!      │    foreign page aborts the batch before any allocation or
//!      │    flash traffic and throws the TEE out, §4.5)
//!      ▼
//!  Ftl::write_batch ── ONE secure-world entry per batch (vs. two
//!      │               switches per page on Ftl::write); GC-aware
//!      │               allocation steers each page to the least-loaded
//!      │               channel, and a GC pass triggered mid-batch
//!      │               stalls only its own channel's later programs
//!      ▼
//!  ChannelScheduler ── per-channel *program* queues beside the read
//!      │               queues; reads and writes interleave round-robin
//!      │               per channel, FIFO within a queue
//!      ▼
//!  FlashArray::program_pages ── per-channel bus transfers and per-die
//!      │                        program pulses overlap/queue on the
//!      │                        Resource timelines; CMT updates are
//!      │                        coalesced so each dirty translation
//!      │                        page persists once per batch
//!      ▼
//!  MeeEngine::seal_pages + cipher lanes ── counter-epoch increments,
//!               outbound MAC generation and per-channel stream
//!               encryption overlap with the channel programs; a page
//!               is durable at max(program, seal, encrypt)
//! ```
//!
//! The write vocabulary ([`iceclave_types::WriteBatchRequest`],
//! [`iceclave_types::WriteBatchCompletion`],
//! [`iceclave_types::PageWrite`]) carries per-page durable times, and
//! `tests/write_batch_equivalence.rs` asserts batch/sequential
//! post-state equivalence, the ThrowOutTEE denial, and the
//! channel-scaling acceptance criteria. `Ftl::flush_cmt` drains dirty
//! translation pages through the same steered program path, so
//! shutdown latency also scales with channels.
//!
//! # Architecture: the event-driven batch executor
//!
//! Both pipelines above are driven by a deterministic discrete-event
//! executor ([`iceclave_exec`]) so that batches from **multiple TEEs
//! interleave at stage granularity** instead of call granularity:
//! every contended unit (per-channel flash bus and dies, per-lane
//! cipher engines, the MEE/DRAM datapath, the secure monitor) is a
//! resource timeline, and each *stage event* acquires exactly one
//! stage for one page at the simulated time it becomes ready. While
//! TEE A's pages occupy channels 0–3, TEE B's batch streams through
//! channels 4–15 and the decrypt lanes concurrently.
//!
//! ```text
//!  submit_batch_async(tee, lpns, now) ──────────────► Ticket
//!      │ translate + ID-bit check at submission (atomic, §4.5;
//!      │ denial throws the TEE out before any flash traffic),
//!      │ input-ring slots + plaintext snapshot taken here
//!      ▼ pages enter per-channel, per-tenant WFQ lanes
//!  [WfqArbiter: one grant per channel at a time, virtual-time
//!      │         order across TEEs, page-boundary preemption]
//!      ▼
//!  [event heap: (time, vtime, ticket, page) order] ◄── other
//!      │                                   tickets' events interleave
//!      ▼
//!  FlashRead ──► Decrypt (lane) ──► Fill (MEE) ──► CompletionQueue
//!        └── at the flash span's end the arbiter grants the
//!            channel's next page (another tenant's, if its virtual
//!            clock is behind)
//!
//!  submit_write_batch_async(tee, writes, now) ──────► Ticket
//!      │ ownership check at submission (atomic), MEE seal drain
//!      ▼ one Encrypt event per page at its seal read-out
//!  Encrypt (lane) ──► Program (ONE event per batch: the single
//!      │              secure-world entry of Ftl::write_batch, fired
//!      │              when the last ciphertext exists; the arbiter
//!      │              is charged per programmed page)
//!      ▼
//!  per-page durable completions ──► CompletionQueue
//!
//!  poll_completions(now)   drains ready events in the documented
//!                          drain order (see the
//!                          iceclave_exec::completion module docs)
//!  wait_batch(ticket)      blocking wrappers = submit + drain one
//!                          ticket (submit_batch/submit_write_batch
//!                          are exactly this)
//! ```
//!
//! **Ticket lifecycle.** `submit_*_async` runs the atomic access
//! check and returns a [`iceclave_types::Ticket`]; the batch then
//! advances only as the executor processes events —
//! `poll_completions(now)` advances the event clock to `now` and
//! drains every [`iceclave_types::CompletionEvent`] (per-page status
//! plus [`iceclave_types::LatencyBreakdown`]) that became ready;
//! `wait_batch`/`wait_write_batch` run the heap until one ticket
//! closes. Completions drain in the documented stable order (single
//! source of truth: the [`iceclave_exec::completion`] module docs) —
//! regression-tested, so identical runs produce identical completion
//! sequences. Tickets in flight together have **no ordering
//! guarantees between each other** (translation, access control and
//! content snapshot at submission, like commands in a device queue);
//! drain a ticket before submitting work that depends on it.
//! `tests/exec_interleaving.rs` holds the executor acceptance
//! criteria (two concurrent 32-page batches on 16 channels beat
//! back-to-back blocking while staying byte-identical) and
//! `tests/exec_equivalence.rs` the interleaving/sequential
//! equivalence proptest.
//!
//! # Architecture: weighted fair queueing across TEEs
//!
//! The flash channels are arbitrated across tenants by
//! [`iceclave_ftl::WfqArbiter`] (§6.8, Figures 17/18): per-channel
//! start-time fair queueing over page-sized quanta. Each channel
//! keeps one lane per TEE; granting a page advances the lane's
//! virtual finish tag by `quantum / weight`, and the next grant —
//! decided only when the granted page's flash service completes, the
//! page-boundary preemption point — goes to the lane with the
//! smallest start tag. A greedy tenant keeping eight 32-page tickets
//! in flight therefore shares every contended channel page-by-page
//! with a solo 4-page tenant instead of starving it
//! (`tests/wfq_fairness.rs`: the victim's p99 improves ≥ 2x over the
//! legacy FIFO scheduler, and an equal-weight duel never leaves 10%
//! of an even split over any 10k-page window). With a single tenant
//! the WFQ schedule is byte-identical to the FIFO executor.
//! Configuration: [`iceclave_core::FairnessConfig`] (policy, weights,
//! optional per-tenant channel budgets);
//! `IceClave::set_tee_weight` adjusts weights at runtime; the
//! `fairness` bench emits the `BENCH_fairness.json` baseline (victim
//! p99 + Jain's index over the antagonist sweep). See
//! `docs/ARCHITECTURE.md` for the full treatment.

pub use iceclave_cipher;
pub use iceclave_core;
pub use iceclave_cpu;
pub use iceclave_dram;
pub use iceclave_exec;
pub use iceclave_experiments;
pub use iceclave_flash;
pub use iceclave_ftl;
pub use iceclave_isc;
pub use iceclave_mee;
pub use iceclave_obs;
pub use iceclave_sim;
pub use iceclave_trustzone;
pub use iceclave_types;
pub use iceclave_workloads;
