//! Acceptance and regression tests of the weighted-fair-queueing
//! channel arbiter (`iceclave_ftl::WfqArbiter` + the WFQ read path in
//! `iceclave_core`).
//!
//! * **Starvation freedom** (property test): an equal-weight duel
//!   keeps the victim's share of grants within 10% of an even split
//!   over any 10k-page window, no matter how the antagonist bursts.
//! * **Determinism**: same weights + same submissions ⇒ identical
//!   completion sequences.
//! * **Single-tenant transparency**: with one tenant, the WFQ
//!   scheduler's output is byte-identical to the legacy FIFO executor.
//! * **Antagonist duel** (the Figures 17/18 scenario): against a
//!   tenant keeping 8×32-page tickets in flight, a solo 4-page-ticket
//!   tenant's p99 latency improves at least 2x over FIFO, and
//!   channel-time splits near-evenly once both tenants are backlogged.

use iceclave_repro::iceclave_core::{IceClave, IceClaveError, SchedPolicy};
use iceclave_repro::iceclave_experiments::fairness::{jain, p99, run_duel};
use iceclave_repro::iceclave_experiments::{Mode, Overrides};
use iceclave_repro::iceclave_ftl::WfqArbiter;
use iceclave_repro::iceclave_types::{Lpn, PageWrite, SimTime, TeeId, Ticket};
use proptest::prelude::*;

const CHANNELS: u32 = 8;

fn device(policy: SchedPolicy, pages: u64) -> (IceClave, SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let mut config = Mode::IceClave.ssd_config(&overrides);
    config.fairness.policy = policy;
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO).unwrap();
    (ice, t)
}

fn payload(i: u64) -> Vec<u8> {
    (0..4096u32).map(|b| (b as u8) ^ (i as u8) ^ 0xA5).collect()
}

// ---- starvation freedom (property test over the arbiter) -----------

proptest! {
    /// Equal weights, both lanes kept backlogged, antagonist enqueueing
    /// in arbitrary bursts: every 10k-grant window stays within 10% of
    /// a 50/50 split (share in [0.45, 0.55]).
    #[test]
    fn equal_weight_victim_share_stays_within_ten_percent_of_half(
        antagonist_bursts in prop::collection::vec(1usize..=256, 16),
        victim_bursts in prop::collection::vec(1usize..=8, 16),
    ) {
        const TOTAL: usize = 30_000;
        const WINDOW: usize = 10_000;
        let mut arb = WfqArbiter::new(1);
        let (a, v) = (TeeId::new(1).unwrap(), TeeId::new(2).unwrap());
        let mut next_a = (0u64, 0u32); // (burst cursor, page counter)
        let mut next_v = (0u64, 0u32);
        let mut queued_a = 0usize;
        let mut queued_v = 0usize;
        let mut grants: Vec<bool> = Vec::with_capacity(TOTAL); // true = victim
        while grants.len() < TOTAL {
            // Keep both tenants backlogged: replenish whichever lane
            // dropped below one burst of headroom.
            while queued_a < 64 {
                let burst = antagonist_bursts[(next_a.0 as usize) % antagonist_bursts.len()];
                next_a.0 += 1;
                for _ in 0..burst {
                    arb.enqueue(0, a, Ticket::new(1 + 2 * next_a.0), next_a.1, SimTime::ZERO);
                    next_a.1 += 1;
                }
                queued_a += burst;
            }
            while queued_v < 8 {
                let burst = victim_bursts[(next_v.0 as usize) % victim_bursts.len()];
                next_v.0 += 1;
                for _ in 0..burst {
                    arb.enqueue(0, v, Ticket::new(2 + 2 * next_v.0), next_v.1, SimTime::ZERO);
                    next_v.1 += 1;
                }
                queued_v += burst;
            }
            let grant = arb.try_issue(0).expect("both lanes backlogged");
            let is_victim = grant.ticket.raw().is_multiple_of(2);
            if is_victim {
                queued_v -= 1;
            } else {
                queued_a -= 1;
            }
            grants.push(is_victim);
            arb.release(grant.ticket, grant.page);
        }
        // Every 10k-grant window splits evenly (the windows slide one
        // grant at a time; shares move by at most 1/10_000 per step,
        // so checking every step is cheap with a running count).
        let mut victim_in_window = grants[..WINDOW].iter().filter(|&&g| g).count();
        let mut worst = victim_in_window as f64 / WINDOW as f64;
        let mut best = worst;
        for end in WINDOW..TOTAL {
            victim_in_window += grants[end] as usize;
            victim_in_window -= grants[end - WINDOW] as usize;
            let share = victim_in_window as f64 / WINDOW as f64;
            worst = worst.min(share);
            best = best.max(share);
        }
        prop_assert!(
            worst >= 0.45 && best <= 0.55,
            "victim share left [0.45, 0.55]: min {worst:.3}, max {best:.3}"
        );
    }
}

// ---- determinism ---------------------------------------------------

/// Same weights + same submissions ⇒ identical completion sequences,
/// with two tenants at different weights and mixed read/write tickets
/// in flight.
#[test]
fn identical_weighted_runs_drain_identical_sequences() {
    let run = || {
        let (mut ice, t0) = device(SchedPolicy::Wfq, 96);
        let a_lpns: Vec<Lpn> = (0..64).map(Lpn::new).collect();
        let b_lpns: Vec<Lpn> = (64..96).map(Lpn::new).collect();
        let (tee_a, _) = ice.offload_code(1024, &a_lpns, t0).unwrap();
        let (tee_b, _) = ice.offload_code(1024, &b_lpns, t0).unwrap();
        ice.set_tee_weight(tee_a, 1).unwrap();
        ice.set_tee_weight(tee_b, 3).unwrap();
        for chunk in a_lpns.chunks(32) {
            ice.submit_batch_async(tee_a, chunk, t0).unwrap();
        }
        ice.submit_batch_async(tee_b, &b_lpns[..16], t0).unwrap();
        let writes: Vec<PageWrite> = b_lpns[16..]
            .iter()
            .map(|&lpn| PageWrite::with_data(lpn, payload(lpn.raw())))
            .collect();
        ice.submit_write_batch_async_as(tee_b, writes, t0).unwrap();
        let trace: Vec<(u64, u32, u64, u64)> = ice
            .drain_completions()
            .iter()
            .map(|e| (e.ticket.raw(), e.index, e.ready_at().as_ps(), e.lpn.raw()))
            .collect();
        trace
    };
    let first = run();
    assert_eq!(first.len(), 64 + 16 + 16);
    assert_eq!(
        first,
        run(),
        "identical weighted runs must drain identically"
    );
}

// ---- single-tenant transparency ------------------------------------

/// One drained read completion: (ticket, index, ready ps, lpn, data).
type ReadTraceEntry = (u64, u32, u64, u64, Option<Vec<u8>>);

/// With a single tenant, the WFQ scheduler's output is byte-identical
/// to the pre-WFQ (FIFO) executor: concurrent read tickets, then
/// concurrent write tickets, compared event for event — ready times,
/// page order, and delivered bytes.
#[test]
fn single_tenant_wfq_is_byte_identical_to_fifo() {
    let run = |policy: SchedPolicy| {
        let (mut ice, t) = device(policy, 64);
        for i in 0..16 {
            ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
        }
        let lpns: Vec<Lpn> = (0..64).map(Lpn::new).collect();
        let (tee, t0) = ice.offload_code(1024, &lpns, t).unwrap();
        // Four concurrent read tickets from the one tenant.
        for chunk in lpns.chunks(16) {
            ice.submit_batch_async(tee, chunk, t0).unwrap();
        }
        let reads: Vec<ReadTraceEntry> = ice
            .drain_completions()
            .into_iter()
            .map(|e| {
                (
                    e.ticket.raw(),
                    e.index,
                    e.ready_at().as_ps(),
                    e.lpn.raw(),
                    e.data,
                )
            })
            .collect();
        // Then two concurrent write tickets.
        let t1 = ice.exec_clock();
        for chunk in lpns.chunks(32) {
            let writes: Vec<PageWrite> = chunk
                .iter()
                .map(|&lpn| PageWrite::with_data(lpn, payload(lpn.raw() ^ 7)))
                .collect();
            ice.submit_write_batch_async_as(tee, writes, t1).unwrap();
        }
        let writes: Vec<(u64, u32, u64, u64)> = ice
            .drain_completions()
            .into_iter()
            .map(|e| (e.ticket.raw(), e.index, e.ready_at().as_ps(), e.lpn.raw()))
            .collect();
        (reads, writes)
    };
    let fifo = run(SchedPolicy::Fifo);
    let wfq = run(SchedPolicy::Wfq);
    assert_eq!(fifo.0.len(), 64);
    assert_eq!(fifo.1.len(), 64);
    assert_eq!(
        fifo, wfq,
        "a lone tenant's schedule must not change under WFQ"
    );
}

// ---- per-tenant channel budgets ------------------------------------

/// The optional channel budget rejects submissions that would deepen a
/// tenant's per-channel queue past the cap, without touching the TEE
/// or the in-flight work.
#[test]
fn channel_budget_bounds_queue_depth() {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let mut config = Mode::IceClave.ssd_config(&overrides);
    config.fairness.channel_budget = Some(8);
    let mut ice = IceClave::new(config);
    let t0 = ice.populate(Lpn::new(0), 256, SimTime::ZERO).unwrap();
    let lpns: Vec<Lpn> = (0..256).map(Lpn::new).collect();
    let (tee, t0) = ice.offload_code(1024, &lpns, t0).unwrap();

    // 64 pages over 8 channels = 8 per channel: exactly at budget.
    let first = ice.submit_batch_async(tee, &lpns[..64], t0).unwrap();
    // The next 64 would double every channel's queue: rejected.
    let err = ice.submit_batch_async(tee, &lpns[64..128], t0).unwrap_err();
    assert!(
        matches!(err, IceClaveError::ChannelBudgetExceeded { tee: t, .. } if t == tee),
        "expected budget rejection, got {err:?}"
    );
    // The TEE is still running and the in-flight ticket unaffected.
    let done = ice.wait_batch(first).unwrap();
    assert_eq!(done.completions.len(), 64);
    // With the queues drained, the tenant may submit again.
    let retry = ice
        .submit_batch_async(tee, &lpns[64..128], done.finished)
        .unwrap();
    assert_eq!(ice.wait_batch(retry).unwrap().completions.len(), 64);
}

// ---- the antagonist duel (Figures 17/18 scenario) ------------------
//
// The closed-loop duel driver is shared with the `fairness` bench
// (`iceclave_experiments::fairness`), so the acceptance tests below
// exercise exactly the protocol the published `BENCH_fairness.json`
// baseline measures.

/// The headline acceptance criterion: against an antagonist keeping
/// 8×32-page tickets in flight, the solo 4-page tenant's p99 latency
/// under WFQ improves at least 2x over the FIFO scheduler.
#[test]
fn solo_tenant_p99_improves_2x_against_antagonist() {
    let fifo = run_duel(SchedPolicy::Fifo, CHANNELS, 8, 1, 40);
    let wfq = run_duel(SchedPolicy::Wfq, CHANNELS, 8, 1, 40);
    let (fifo_p99, wfq_p99) = (p99(&fifo.victim_latencies), p99(&wfq.victim_latencies));
    assert!(
        wfq_p99.as_ps() * 2 <= fifo_p99.as_ps(),
        "victim p99 under WFQ ({wfq_p99}) not 2x better than FIFO ({fifo_p99})"
    );
}

/// Once both tenants are backlogged (victim keeps four 4-page tickets
/// in flight, enough to cover every channel), equal weights split the
/// drained pages — and with uniform 4 KiB pages, the channel time —
/// near evenly (Jain's index at or above the 0.95 acceptance floor).
#[test]
fn backlogged_equal_weights_split_channel_time_evenly() {
    let duel = run_duel(SchedPolicy::Wfq, CHANNELS, 8, 4, 150);
    let (victim_pages, ant_pages) = (duel.victim_pages, duel.antagonist_pages);
    let share = victim_pages as f64 / (victim_pages + ant_pages) as f64;
    assert!(
        (0.40..=0.60).contains(&share),
        "backlogged victim drained {share:.3} of pages (victim {victim_pages}, antagonist {ant_pages})"
    );
    assert!(
        jain(victim_pages, ant_pages) >= 0.95,
        "Jain index {:.3} below the acceptance floor",
        jain(victim_pages, ant_pages)
    );
}

/// A weight-2 victim receives measurably more service than at weight
/// 1 under the same antagonist load.
#[test]
fn weights_shift_the_split() {
    // Weight the victim by pre-seeding the config (TEE ids are LIFO
    // from 1: the antagonist offloads first and gets id 1, the victim
    // id 2).
    let run_weighted = |victim_weight: u32| {
        let overrides = Overrides {
            channels: Some(CHANNELS),
            ..Overrides::none()
        };
        let mut config = Mode::IceClave.ssd_config(&overrides);
        config.fairness.weights = vec![(2, victim_weight)];
        let mut ice = IceClave::new(config);
        let t0 = ice.populate(Lpn::new(0), 320, SimTime::ZERO).unwrap();
        let ant_lpns: Vec<Lpn> = (0..256).map(Lpn::new).collect();
        let victim_lpns: Vec<Lpn> = (256..320).map(Lpn::new).collect();
        let (ant, _) = ice.offload_code(1024, &ant_lpns, t0).unwrap();
        let (victim, t0) = ice.offload_code(1024, &victim_lpns, t0).unwrap();
        assert_eq!(ice.tee_weight(victim), victim_weight);
        // One deep antagonist ticket and one deep victim ticket, both
        // spanning every channel; compare who finishes first.
        let ta = ice.submit_batch_async(ant, &ant_lpns[..64], t0).unwrap();
        let tv = ice.submit_batch_async(victim, &victim_lpns, t0).unwrap();
        let events = ice.drain_completions();
        let finish = |ticket| {
            events
                .iter()
                .filter(|e| e.ticket == ticket)
                .map(|e| e.ready_at())
                .max()
                .unwrap()
        };
        (finish(tv), finish(ta))
    };
    let (v_at_1, _) = run_weighted(1);
    let (v_at_4, _) = run_weighted(4);
    assert!(
        v_at_4 < v_at_1,
        "weight-4 victim ({v_at_4}) should finish its batch earlier than at weight 1 ({v_at_1})"
    );
}
