//! Acceptance and regression tests of the **hierarchical** WFQ
//! arbiter: attribution-weighted per-ticket fair queueing inside each
//! tenant's lane ([`TicketPolicy::Wfq`]), layered under the existing
//! per-tenant start-time clocks.
//!
//! * **Ticket-level starvation freedom** (property test): inside one
//!   tenant, a cycling 4-page victim ticket keeps its grant share
//!   within 10% of its weighted share over any 10k-grant window, no
//!   matter how a deep sibling antagonist bursts.
//! * **Byte-identity**: with one ticket per tenant — and separately
//!   under the legacy [`TicketPolicy::Fifo`] — the hierarchical
//!   arbiter drains event-for-event identical to the flat arbiter:
//!   same order, same timestamps, same bytes.
//! * **Lifecycle edges**: TEE teardown purges per-ticket clocks
//!   without leaking a channel; a recycled TEE id starts with fresh
//!   ticket lanes; the read-retry ladder keeps its grant without
//!   double-charging the ticket clock (pinned through grant order).

use iceclave_repro::iceclave_core::{AbortReason, IceClave, SchedPolicy, TicketPolicy};
use iceclave_repro::iceclave_experiments::{Mode, Overrides};
use iceclave_repro::iceclave_flash::FaultPlan;
use iceclave_repro::iceclave_ftl::WfqArbiter;
use iceclave_repro::iceclave_types::{Lpn, SimTime, TeeId, Ticket};
use proptest::prelude::*;

const CHANNELS: u32 = 8;

fn device(ticket_policy: TicketPolicy, channels: u32, pages: u64) -> (IceClave, SimTime) {
    let overrides = Overrides {
        channels: Some(channels),
        ..Overrides::none()
    };
    let mut config = Mode::IceClave.ssd_config(&overrides);
    config.fairness.policy = SchedPolicy::Wfq;
    config.fairness.ticket_policy = ticket_policy;
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO).unwrap();
    (ice, t)
}

fn payload(i: u64) -> Vec<u8> {
    (0..4096u32).map(|b| (b as u8) ^ (i as u8) ^ 0xA5).collect()
}

// ---- ticket-level starvation freedom (property test) ---------------

proptest! {
    /// One tenant, one channel: a deep antagonist ticket (kept >= 64
    /// pages backlogged, replenished in arbitrary bursts) against a
    /// victim cycling fresh 4-page tickets at `victim_weight`. Every
    /// 10k-grant window keeps the victim within 10% (relative) of its
    /// weighted share `w / (w + 1)` — the per-ticket mirror of the
    /// tenant-level property in `tests/wfq_fairness.rs`.
    #[test]
    fn victim_ticket_share_stays_within_ten_percent_of_weighted_share(
        antagonist_bursts in prop::collection::vec(1usize..=256, 16),
        replenish_low in 16usize..=64,
        victim_weight in 1u32..=4,
    ) {
        const TOTAL: usize = 30_000;
        const WINDOW: usize = 10_000;
        let mut arb = WfqArbiter::new(1);
        arb.set_ticket_policy(TicketPolicy::Wfq);
        let tee = TeeId::new(1).unwrap();
        // Odd ticket ids = antagonist, even = victim. Exactly one
        // antagonist sub-lane is ever live (its backlog never drains),
        // and exactly one victim sub-lane (a fresh 4-page ticket the
        // moment the previous one drained) — so the weighted share of
        // the victim is victim_weight / (victim_weight + 1).
        let antagonist = Ticket::new(1);
        let mut ant_page = 0u32;
        let mut ant_burst = 0usize;
        let mut queued_a = 0usize;
        let mut victim_gen = 0u64;
        let mut victim_page = 0u32;
        let mut queued_v = 0usize;
        let mut grants: Vec<bool> = Vec::with_capacity(TOTAL); // true = victim
        while grants.len() < TOTAL {
            while queued_a < replenish_low {
                let burst = antagonist_bursts[ant_burst % antagonist_bursts.len()];
                ant_burst += 1;
                for _ in 0..burst {
                    arb.enqueue(0, tee, antagonist, ant_page, SimTime::ZERO);
                    ant_page += 1;
                }
                queued_a += burst;
            }
            if queued_v == 0 {
                victim_gen += 1;
                for _ in 0..4 {
                    arb.enqueue_weighted(
                        0,
                        tee,
                        Ticket::new(2 * victim_gen),
                        victim_page,
                        SimTime::ZERO,
                        victim_weight,
                    );
                    victim_page += 1;
                }
                queued_v = 4;
            }
            let grant = arb.try_issue(0).expect("lane is backlogged");
            let is_victim = grant.ticket.raw().is_multiple_of(2);
            if is_victim {
                queued_v -= 1;
            } else {
                queued_a -= 1;
            }
            grants.push(is_victim);
            arb.release(grant.ticket, grant.page);
        }
        let expected = f64::from(victim_weight) / f64::from(victim_weight + 1);
        let mut victim_in_window = grants[..WINDOW].iter().filter(|&&g| g).count();
        let mut worst = victim_in_window as f64 / WINDOW as f64;
        let mut best = worst;
        for end in WINDOW..TOTAL {
            victim_in_window += grants[end] as usize;
            victim_in_window -= grants[end - WINDOW] as usize;
            let share = victim_in_window as f64 / WINDOW as f64;
            worst = worst.min(share);
            best = best.max(share);
        }
        prop_assert!(
            worst >= expected * 0.9 && best <= expected * 1.1,
            "victim share left [{:.3}, {:.3}]: min {worst:.3}, max {best:.3}",
            expected * 0.9,
            expected * 1.1
        );
    }
}

// ---- byte-identity against the flat arbiter ------------------------

/// One drained read completion: (ticket, index, ready ps, lpn, data).
type ReadTraceEntry = (u64, u32, u64, u64, Option<Vec<u8>>);

fn drain_reads(ice: &mut IceClave) -> Vec<ReadTraceEntry> {
    ice.drain_completions()
        .into_iter()
        .map(|e| {
            (
                e.ticket.raw(),
                e.index,
                e.ready_at().as_ps(),
                e.lpn.raw(),
                e.data,
            )
        })
        .collect()
}

/// Two waves of three tenants, each holding exactly **one** read
/// ticket at a time: with a single sub-lane per tenant lane the
/// hierarchical arbiter must collapse to the flat one, event for
/// event — order, ready times and delivered bytes.
#[test]
fn one_ticket_per_tenant_is_byte_identical_to_the_flat_arbiter() {
    let run = |ticket_policy: TicketPolicy| {
        let (mut ice, t) = device(ticket_policy, CHANNELS, 96);
        for i in 0..96 {
            ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
        }
        let mut tees = Vec::new();
        let mut t0 = t;
        for tenant in 0..3u64 {
            let lpns: Vec<Lpn> = (32 * tenant..32 * (tenant + 1)).map(Lpn::new).collect();
            let (tee, t1) = ice.offload_code(1024, &lpns, t0).unwrap();
            t0 = t1;
            tees.push((tee, lpns));
        }
        let mut trace = Vec::new();
        for wave in 0..2usize {
            let range = 16 * wave..16 * (wave + 1);
            for (tee, lpns) in &tees {
                ice.submit_batch_async(*tee, &lpns[range.clone()], t0)
                    .unwrap();
            }
            trace.extend(drain_reads(&mut ice));
            t0 = ice.exec_clock();
        }
        trace
    };
    let flat = run(TicketPolicy::Fifo);
    let hier = run(TicketPolicy::Wfq);
    assert_eq!(flat.len(), 96);
    assert_eq!(
        flat, hier,
        "one ticket per tenant must make the hierarchy invisible"
    );
}

/// `ticket_policy: Fifo` — the config default — **is** the flat
/// arbiter: a multi-ticket-per-tenant schedule drains identically to
/// an untouched default config, pinning the legacy behavior of every
/// existing baseline.
#[test]
fn explicit_fifo_ticket_policy_matches_the_default_config() {
    let run = |explicit: bool| {
        let overrides = Overrides {
            channels: Some(CHANNELS),
            ..Overrides::none()
        };
        let mut config = Mode::IceClave.ssd_config(&overrides);
        config.fairness.policy = SchedPolicy::Wfq;
        if explicit {
            config.fairness.ticket_policy = TicketPolicy::Fifo;
        }
        let mut ice = IceClave::new(config);
        let t = ice.populate(Lpn::new(0), 64, SimTime::ZERO).unwrap();
        for i in 0..64 {
            ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
        }
        let lpns: Vec<Lpn> = (0..64).map(Lpn::new).collect();
        let (tee, t0) = ice.offload_code(1024, &lpns, t).unwrap();
        // Four concurrent tickets from the one tenant.
        for chunk in lpns.chunks(16) {
            ice.submit_batch_async(tee, chunk, t0).unwrap();
        }
        drain_reads(&mut ice)
    };
    let implicit = run(false);
    let explicit = run(true);
    assert_eq!(implicit.len(), 64);
    assert_eq!(implicit, explicit, "Fifo is the default ticket policy");
}

// ---- lifecycle edges ------------------------------------------------

/// TEE teardown mid-flight purges every queued page *and* every
/// per-ticket clock of the torn-down tenant from the arbiter, and
/// releases its in-flight grants: the surviving tenant drains its own
/// batch fully and a follow-up batch proves no channel leaked.
#[test]
fn teardown_purges_ticket_clocks_without_leaking_channels() {
    let (mut ice, t) = device(TicketPolicy::Wfq, CHANNELS, 128);
    let doomed_lpns: Vec<Lpn> = (0..64).map(Lpn::new).collect();
    let survivor_lpns: Vec<Lpn> = (64..128).map(Lpn::new).collect();
    let (doomed, t0) = ice.offload_code(1024, &doomed_lpns, t).unwrap();
    let (survivor, t0) = ice.offload_code(1024, &survivor_lpns, t0).unwrap();
    let da = ice
        .submit_batch_async(doomed, &doomed_lpns[..32], t0)
        .unwrap();
    let db = ice
        .submit_batch_async(doomed, &doomed_lpns[32..], t0)
        .unwrap();
    let sv = ice
        .submit_batch_async(survivor, &survivor_lpns, t0)
        .unwrap();
    // The doomed tenant's tickets are backlogged in per-ticket
    // sub-lanes before the teardown...
    let backlog: usize = (0..CHANNELS as usize)
        .map(|ch| {
            ice.arbiter().ticket_backlog(ch, doomed, da)
                + ice.arbiter().ticket_backlog(ch, doomed, db)
        })
        .sum();
    assert!(backlog > 0, "teardown must race a real backlog");
    ice.throw_out(doomed, AbortReason::ProgramException, t0)
        .unwrap();
    // ...and gone — backlog and clocks both — the moment it is thrown
    // out, on every channel.
    for ch in 0..CHANNELS as usize {
        for ticket in [da, db] {
            assert_eq!(ice.arbiter().ticket_backlog(ch, doomed, ticket), 0);
            assert_eq!(ice.arbiter().ticket_clock(ch, doomed, ticket), None);
        }
        assert_eq!(ice.arbiter().queued(ch, doomed), 0);
    }
    // The survivor still drains every page, and a follow-up batch
    // proves no channel grant leaked with the teardown.
    let events = ice.drain_completions();
    let survivor_done = events
        .iter()
        .filter(|e| e.ticket == sv && e.status.is_done())
        .count();
    assert_eq!(survivor_done, 64);
    let again = ice
        .submit_batch_async(survivor, &survivor_lpns, ice.exec_clock())
        .unwrap();
    let done = ice.wait_batch(again).unwrap();
    assert_eq!(done.len(), 64);
    assert_eq!(ice.in_flight_tickets(), 0);
    assert_eq!(ice.arbiter().queued_total(), 0);
}

/// A recycled TEE id starts with **fresh** ticket lanes: after
/// `forget_tee`, the first grant of a new ticket under the recycled id
/// carries the same ticket-clock tags as on an arbiter that never saw
/// the previous tenant.
#[test]
fn recycled_tee_id_reseeds_ticket_lanes() {
    let tee = TeeId::new(3).unwrap();
    let mut arb = WfqArbiter::new(1);
    arb.set_ticket_policy(TicketPolicy::Wfq);
    // First life: run the ticket clock well past zero.
    for page in 0..8 {
        arb.enqueue(0, tee, Ticket::new(7), page, SimTime::ZERO);
    }
    for _ in 0..8 {
        let g = arb.try_issue(0).unwrap();
        arb.release(g.ticket, g.page);
    }
    assert!(arb.ticket_clock(0, tee, Ticket::new(7)).is_none());
    arb.forget_tee(tee);
    // Second life under the recycled id, against a control arbiter
    // that never saw the first tenant: identical ticket-clock tags.
    let mut control = WfqArbiter::new(1);
    control.set_ticket_policy(TicketPolicy::Wfq);
    for page in 0..2 {
        arb.enqueue(0, tee, Ticket::new(9), page, SimTime::ZERO);
        control.enqueue(0, tee, Ticket::new(9), page, SimTime::ZERO);
    }
    let recycled = arb.try_issue(0).unwrap();
    let fresh = control.try_issue(0).unwrap();
    assert_eq!(
        recycled.tstart, fresh.tstart,
        "fresh start tag after recycle"
    );
    assert_eq!(
        arb.ticket_clock(0, tee, Ticket::new(9)),
        control.ticket_clock(0, tee, Ticket::new(9)),
        "recycled id must not inherit the previous tenant's ticket clock"
    );
}

/// End-to-end id recycling: terminate a TEE, offload a successor that
/// reuses the id, and stream a full batch under the hierarchical
/// policy — the recycled id's lanes start empty and the batch drains
/// completely.
#[test]
fn recycled_tee_id_streams_cleanly_under_wfq_tickets() {
    let (mut ice, t) = device(TicketPolicy::Wfq, CHANNELS, 64);
    let lpns: Vec<Lpn> = (0..64).map(Lpn::new).collect();
    let (first, t0) = ice.offload_code(1024, &lpns, t).unwrap();
    let ticket = ice.submit_batch_async(first, &lpns, t0).unwrap();
    let done = ice.wait_batch(ticket).unwrap();
    assert_eq!(done.len(), 64);
    let t1 = ice.terminate_tee(first, done.finished).unwrap();
    let (second, t2) = ice.offload_code(1024, &lpns, t1).unwrap();
    assert_eq!(second, first, "the id pool recycles the freed id");
    for ch in 0..CHANNELS as usize {
        assert_eq!(ice.arbiter().queued(ch, second), 0);
    }
    let ticket = ice.submit_batch_async(second, &lpns, t2).unwrap();
    let done = ice.wait_batch(ticket).unwrap();
    assert_eq!(done.len(), 64);
    assert!(done.completions.iter().all(|c| c.status.is_done()));
    assert_eq!(ice.arbiter().queued_total(), 0);
}

/// The read-retry ladder keeps its WFQ grant and does **not**
/// re-charge the ticket clock: on one channel, two equal-weight
/// sibling tickets alternate grants strictly, and a scripted transient
/// fault mid-stream must not perturb that alternation — only delay it.
/// (A retry that re-entered the arbiter, or double-charged the
/// faulted ticket's clock, would hand its sibling extra turns and
/// reorder the drain.)
#[test]
fn transient_read_fault_keeps_grant_order_without_double_charging() {
    let run = |fault: bool| {
        let (mut ice, t) = device(TicketPolicy::Wfq, 1, 16);
        for i in 0..16 {
            ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
        }
        let lpns: Vec<Lpn> = (0..16).map(Lpn::new).collect();
        let (tee, t0) = ice.offload_code(1024, &lpns, t).unwrap();
        if fault {
            // Grants on the single channel alternate between the two
            // equal-weight sibling tickets; ordinal 4 lands mid-stream,
            // with both sub-lanes still backlogged on either side.
            ice.install_fault_plan(FaultPlan {
                read_fail_ops: vec![4],
                ..FaultPlan::none()
            });
        }
        ice.submit_batch_async(tee, &lpns[..8], t0).unwrap();
        ice.submit_batch_async(tee, &lpns[8..], t0).unwrap();
        let events = ice.drain_completions();
        assert!(events.iter().all(|e| e.status.is_done()));
        let order: Vec<(u64, u64)> = events
            .iter()
            .map(|e| (e.ticket.raw(), e.lpn.raw()))
            .collect();
        let finished = events.iter().map(|e| e.ready_at()).max().unwrap();
        let retries = ice.stats().read_retries;
        assert_eq!(ice.arbiter().queued_total(), 0);
        assert_eq!(ice.in_flight_tickets(), 0);
        (order, finished, retries)
    };
    let (clean_order, clean_finish, clean_retries) = run(false);
    let (fault_order, fault_finish, fault_retries) = run(true);
    assert_eq!(clean_retries, 0);
    assert_eq!(
        fault_retries, 1,
        "the scripted fault must bite exactly once"
    );
    // Steady-state alternation in the clean run: equal weights, one
    // channel. (The head grant issues before the second ticket is even
    // queued and the tail drains whichever sibling holds the last
    // pages, so the strict window is the middle of the trace.)
    for i in 1..14 {
        assert_ne!(
            clean_order[i].0,
            clean_order[i + 1].0,
            "siblings alternate grants: {clean_order:?}"
        );
    }
    assert_eq!(
        clean_order, fault_order,
        "a retained grant must not change the grant order, only its timing"
    );
    assert!(
        fault_finish > clean_finish,
        "the retry rung costs real time ({fault_finish} vs {clean_finish})"
    );
}
