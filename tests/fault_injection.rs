//! End-to-end fault injection and recovery.
//!
//! The fault plans (`iceclave_flash::faults`, `iceclave_mee::faults`)
//! are deterministic schedules; these tests drive them through the
//! whole stack — executor read-retry ladder, FTL grown-bad remap, MEE
//! MAC fallback — and pin the recovery contract:
//!
//! * An **empty plan is invisible**: installing it changes no event of
//!   a fault-free run, bit for bit.
//! * Recovery is **graceful per page**: a batch with one bad page
//!   still completes, the bad page reporting a structured
//!   [`PageError`] instead of poisoning the ticket.
//! * There is **no silent corruption**: every page a run delivers as
//!   `Done` carries exactly the bytes that were stored; everything
//!   else is reported `Failed`.
//! * Fault handling is **deterministic**: same plan + same submission
//!   order ⇒ identical remap decisions, completion sequences and
//!   clocks.

use proptest::prelude::*;

use iceclave_repro::iceclave_core::{IceClave, READ_RETRY_LIMIT};
use iceclave_repro::iceclave_experiments::{Mode, Overrides};
use iceclave_repro::iceclave_flash::FaultPlan;
use iceclave_repro::iceclave_types::{Lpn, PageErrorCause, PageStatus, SimTime, TeeId};

const BATCH: u64 = 64;

fn payload(i: u64) -> Vec<u8> {
    (0..4096u32).map(|b| (b as u8) ^ (i as u8) ^ 0xA5).collect()
}

/// A device with one TEE granted `pages` LPNs of staged functional
/// content. Fault plans are installed by the caller *after* setup, so
/// scripted ordinals count from the first post-setup operation.
fn setup(pages: u64) -> (IceClave, TeeId, Vec<Lpn>, SimTime) {
    let overrides = Overrides {
        channels: Some(8),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO).unwrap();
    for i in 0..pages {
        ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
    }
    let lpns: Vec<Lpn> = (0..pages).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();
    (ice, tee, lpns, t)
}

#[test]
fn empty_fault_plan_is_invisible() {
    let (mut plain, tee_a, lpns_a, t0) = setup(BATCH);
    let (mut armed, tee_b, lpns_b, t1) = setup(BATCH);
    assert_eq!(t0, t1, "identical setups share a clock");
    // The armed twin carries a full (but empty) injector stack.
    armed.install_fault_plan(FaultPlan::none());
    armed.install_mac_fault_plan(iceclave_repro::iceclave_mee::MacFaultPlan::none());

    let ta = plain.submit_batch_async(tee_a, &lpns_a, t0).unwrap();
    let tb = armed.submit_batch_async(tee_b, &lpns_b, t1).unwrap();
    assert_eq!(ta, tb);
    let events_plain = plain.drain_completions();
    let events_armed = armed.drain_completions();
    // Event-for-event identical: order, status, data, every timestamp.
    assert_eq!(events_plain, events_armed);
    assert!(plain.stats().read_retries == 0 && armed.stats().read_retries == 0);
}

#[test]
fn read_retry_ladder_recovers_a_transient_burst() {
    let (mut ice, tee, lpns, t) = setup(4);
    // Ordinal 0: the batch's first flash read fails once; the retry
    // (a fresh ordinal) succeeds.
    ice.install_fault_plan(FaultPlan {
        read_fail_ops: vec![0],
        ..FaultPlan::none()
    });
    let ticket = ice.submit_batch_async(tee, &lpns, t).unwrap();
    let done = ice.wait_batch(ticket).unwrap();
    assert_eq!(done.len(), 4);
    assert!(done.completions.iter().all(|c| c.status.is_done()));
    for (i, c) in done.completions.iter().enumerate() {
        assert_eq!(c.data.as_deref(), Some(&payload(i as u64)[..]));
    }
    assert_eq!(ice.stats().read_retries, 1, "one rung climbed");
    assert_eq!(ice.stats().uncorrectable_pages, 0);
}

#[test]
fn persistent_uncorrectable_degrades_one_page_gracefully() {
    let (mut ice, tee, mut lpns, t) = setup(4);
    // Enough consecutive scripted failures to exhaust the ladder on
    // one page: submit the victim page alone first, so ordinals 0..
    // are its first attempt plus every rung of its retry ladder.
    ice.install_fault_plan(FaultPlan {
        read_fail_ops: (0..u64::from(READ_RETRY_LIMIT)).collect(),
        ..FaultPlan::none()
    });
    let victim = vec![lpns.remove(0)];
    let ticket = ice.submit_batch_async(tee, &victim, t).unwrap();
    // The soft per-page failure must NOT fail the ticket.
    let bad = ice.wait_batch(ticket).unwrap();
    assert_eq!(bad.len(), 1);
    // The survivors stream untouched afterwards.
    let ticket = ice.submit_batch_async(tee, &lpns, bad.finished).unwrap();
    let done = ice.wait_batch(ticket).unwrap();
    assert_eq!(done.len(), 3);
    let done = iceclave_repro::iceclave_types::BatchCompletion {
        issued: bad.issued,
        finished: done.finished,
        completions: bad
            .completions
            .into_iter()
            .chain(done.completions)
            .collect(),
    };
    assert_eq!(done.len(), 4);
    let failed: Vec<_> = done
        .completions
        .iter()
        .filter_map(|c| c.status.error())
        .collect();
    assert_eq!(failed.len(), 1, "exactly one page degraded");
    assert_eq!(failed[0].cause, PageErrorCause::Uncorrectable);
    assert_eq!(failed[0].attempts, READ_RETRY_LIMIT);
    // Healthy pages still deliver verified bytes.
    let delivered = done
        .completions
        .iter()
        .filter(|c| c.status.is_done())
        .count();
    assert_eq!(delivered, 3);
    let s = ice.stats();
    assert_eq!(s.uncorrectable_pages, 1);
    assert_eq!(s.pages_failed, 1);
    assert_eq!(s.read_retries, u64::from(READ_RETRY_LIMIT) - 1);
}

#[test]
fn batch_with_one_program_failure_completes_with_a_remap() {
    let (mut ice, tee, lpns, t) = setup(BATCH);
    // One program failure in the middle of the 64-page write wave.
    ice.install_fault_plan(FaultPlan {
        program_fail_ops: vec![10],
        ..FaultPlan::none()
    });
    let ticket = ice.submit_write_batch_async(tee, &lpns, t).unwrap();
    let done = ice.wait_write_batch(ticket).unwrap();
    assert_eq!(done.len(), BATCH as usize);
    // The FTL re-steered the failed page; all 64 are durable.
    assert!(done.completions.iter().all(|c| c.status.is_done()));
    let ftl = ice.platform().ftl.stats();
    assert_eq!(ftl.program_remaps, 1);
    assert_eq!(ftl.blocks_retired, 1);
    assert_eq!(
        ice.platform().ftl.grown_bad_blocks().len(),
        1,
        "the failing block went into the grown-bad table"
    );
    // WFQ channel accounting stayed balanced through the re-steer: no
    // ticket or grant is left in flight, and a clean follow-up batch
    // streams every (remapped) page back.
    assert_eq!(ice.in_flight_tickets(), 0);
    let ticket = ice.submit_batch_async(tee, &lpns, done.finished).unwrap();
    let reread = ice.wait_batch(ticket).unwrap();
    assert!(reread.completions.iter().all(|c| c.status.is_done()));
    assert_eq!(ice.in_flight_tickets(), 0);
}

#[test]
fn fault_recovery_is_deterministic() {
    let run = || {
        let (mut ice, tee, lpns, t) = setup(BATCH);
        ice.install_fault_plan(FaultPlan {
            seed: 7,
            read_burst_rate: 0.05,
            max_burst: 16,
            ecc_t: 8,
            program_fail_rate: 0.02,
            ..FaultPlan::none()
        });
        let wt = ice.submit_write_batch_async(tee, &lpns, t).unwrap();
        let writes = ice.wait_write_batch(wt).unwrap();
        let rt = ice.submit_batch_async(tee, &lpns, writes.finished).unwrap();
        let reads = ice.wait_batch(rt).unwrap();
        let stats = ice.stats();
        (
            writes,
            reads,
            ice.platform().ftl.grown_bad_blocks(),
            stats.read_retries,
            stats.pages_failed,
        )
    };
    let a = run();
    let b = run();
    // Same plan + same submission order: identical remap decisions,
    // completion sequences, grown-bad tables and retry counts.
    assert_eq!(a, b);
}

#[test]
fn channels_are_not_leaked_after_faulty_batches() {
    let (mut ice, tee, lpns, t) = setup(BATCH);
    // Heavy read faulting: many retries, some terminal failures.
    ice.install_fault_plan(FaultPlan {
        seed: 11,
        read_burst_rate: 0.3,
        max_burst: 16,
        ecc_t: 8,
        ..FaultPlan::none()
    });
    let faulty = ice.submit_batch_async(tee, &lpns, t).unwrap();
    let faulty_done = ice.wait_batch(faulty).unwrap();
    assert_eq!(faulty_done.len(), BATCH as usize);
    assert!(ice.stats().read_retries > 0, "the plan must actually bite");

    // If the retry ladder leaked a WFQ grant, a follow-up batch would
    // starve on its channel. Disarm the injector and prove the device
    // still streams a full clean batch.
    ice.install_fault_plan(FaultPlan::none());
    let clean = ice
        .submit_batch_async(tee, &lpns, faulty_done.finished)
        .unwrap();
    let clean_done = ice.wait_batch(clean).unwrap();
    assert!(clean_done.completions.iter().all(|c| c.status.is_done()));
    assert_eq!(ice.in_flight_tickets(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No silent corruption, at any fault rate: every page delivered
    /// `Done` carries exactly the stored bytes; every other page is
    /// reported `Failed` with a structured reason. Nothing is dropped.
    #[test]
    fn no_silent_corruption(
        seed in 0u64..1000,
        burst_permille in 0u32..200,
        program_permille in 0u32..50,
        erase_permille in 0u32..50,
    ) {
        let (mut ice, tee, lpns, t) = setup(32);
        ice.install_fault_plan(FaultPlan {
            seed,
            read_burst_rate: f64::from(burst_permille) / 1000.0,
            max_burst: 16,
            ecc_t: 8,
            program_fail_rate: f64::from(program_permille) / 1000.0,
            erase_fail_rate: f64::from(erase_permille) / 1000.0,
            ..FaultPlan::none()
        });
        let ticket = ice.submit_batch_async(tee, &lpns, t).unwrap();
        let done = ice.wait_batch(ticket).unwrap();
        prop_assert_eq!(done.len(), 32, "every page accounted for");
        for (i, c) in done.completions.iter().enumerate() {
            prop_assert_eq!(c.lpn, Lpn::new(i as u64));
            match c.status {
                PageStatus::Done => {
                    // Delivered means verified: exact stored bytes.
                    prop_assert_eq!(
                        c.data.as_deref(),
                        Some(&payload(i as u64)[..]),
                        "silent corruption on page {}", i
                    );
                }
                PageStatus::Failed { reason } => {
                    prop_assert!(c.data.is_none(), "failed page delivered data");
                    prop_assert_eq!(reason.cause, PageErrorCause::Uncorrectable);
                    prop_assert!(reason.attempts >= 1);
                }
            }
        }
        let failed = done.completions.iter().filter(|c| !c.status.is_done()).count() as u64;
        prop_assert_eq!(ice.stats().pages_failed, failed);
        prop_assert_eq!(ice.stats().uncorrectable_pages, failed);
    }
}
