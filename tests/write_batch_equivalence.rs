//! Batch/sequential equivalence and scaling of the protected write
//! path.
//!
//! `IceClave::submit_write_batch` must be a *scheduling* change: the
//! post-state (mapping consistency, valid-page count, read-back
//! plaintext) and the access-control outcomes are identical to issuing
//! the same programs one page at a time — only the simulated time
//! differs (and only downward).

use iceclave_repro::iceclave_core::{
    AbortReason, IceClave, IceClaveConfig, IceClaveError, TeeStatus,
};
use iceclave_repro::iceclave_flash::FlashConfig;
use iceclave_repro::iceclave_ftl::{Ftl, FtlConfig, FtlError, Requestor};
use iceclave_repro::iceclave_trustzone::WorldMonitor;
use iceclave_repro::iceclave_types::{
    Lpn, PageWrite, SimDuration, SimTime, TeeId, WriteBatchRequest,
};

const PAGES: u64 = 8;

/// A fresh runtime with `PAGES` populated pages and a TEE granted all
/// of them.
fn setup(config: IceClaveConfig) -> (IceClave, TeeId, SimTime) {
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), PAGES, SimTime::ZERO).unwrap();
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();
    (ice, tee, t)
}

fn payload(i: u64) -> Vec<u8> {
    (0..4096u32).map(|b| (b as u8) ^ (i as u8) ^ 0xA5).collect()
}

#[test]
fn write_batch_matches_sequential_post_state_and_bytes() {
    let writes: Vec<PageWrite> = (0..PAGES)
        .map(|i| PageWrite::with_data(Lpn::new(i), payload(i)))
        .collect();

    // One batch of N page writes...
    let (mut batched, tee_b, t_b) = setup(IceClaveConfig::tiny());
    let batch = batched
        .submit_write_batch_as(tee_b, writes.clone(), t_b)
        .unwrap();
    assert_eq!(batch.len(), PAGES as usize);

    // ...versus N sequential one-page write batches.
    let (mut sequential, tee_s, t_s) = setup(IceClaveConfig::tiny());
    let mut t = t_s;
    for write in &writes {
        let one = sequential
            .submit_write_batch_as(tee_s, vec![write.clone()], t)
            .unwrap();
        t = one.finished;
    }

    // Identical post-state: same valid-page count, identical runtime
    // counters, and byte-identical read-back through the protected
    // read path on both sides.
    assert_eq!(
        batched.platform().ftl.valid_pages(),
        sequential.platform().ftl.valid_pages()
    );
    assert_eq!(batched.stats(), sequential.stats());
    assert_eq!(batched.stats().pages_stored, PAGES);
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let read_b = batched.submit_batch(tee_b, &lpns, batch.finished).unwrap();
    let read_s = sequential.submit_batch(tee_s, &lpns, t).unwrap();
    for (i, (b, s)) in read_b
        .completions
        .iter()
        .zip(&read_s.completions)
        .enumerate()
    {
        assert_eq!(b.lpn, s.lpn);
        assert_eq!(b.data, s.data, "plaintext must be byte-identical");
        assert_eq!(b.data.as_deref(), Some(&payload(i as u64)[..]));
    }

    // Scheduling may only help: the batch cannot be slower than the
    // chained sequential writes.
    let batch_latency = batch.finished.saturating_since(t_b);
    let seq_latency = t.saturating_since(t_s);
    assert!(
        batch_latency <= seq_latency,
        "batch {batch_latency} slower than sequential {seq_latency}"
    );
}

#[test]
fn write_batch_with_foreign_page_throws_the_tee_out() {
    // The TEE owns pages 0..PAGES; page `PAGES` exists but belongs to
    // nobody — a write batch touching it must abort the whole TEE
    // before any allocation or flash program.
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let t = ice.populate(Lpn::new(0), PAGES + 1, SimTime::ZERO).unwrap();
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();

    let programs_before = ice.platform().ftl.flash().stats().programs;
    let mut probe = lpns.clone();
    probe.push(Lpn::new(PAGES)); // out of the granted region
    let err = ice.submit_write_batch(tee, &probe, t).unwrap_err();
    assert!(matches!(
        err,
        IceClaveError::Ftl(FtlError::AccessDenied { lpn, .. }) if lpn == Lpn::new(PAGES)
    ));
    assert_eq!(
        ice.status(tee),
        Some(TeeStatus::Aborted(AbortReason::AccessViolation))
    );
    assert_eq!(ice.stats().aborted, 1);
    // The atomic denial programmed nothing and stored nothing.
    assert_eq!(ice.platform().ftl.flash().stats().programs, programs_before);
    assert_eq!(ice.stats().pages_stored, 0);
    // A dead TEE cannot submit again.
    assert!(matches!(
        ice.submit_write_batch(tee, &lpns, t),
        Err(IceClaveError::NotRunning(_))
    ));
}

#[test]
fn write_batch_on_16_channels_halves_sequential_time() {
    // Acceptance criterion: a 64-page write batch on 16 channels
    // completes in under half the simulated time of 64 sequential
    // `Ftl::write` calls.
    let pages = 64u64;
    let lpns: Vec<Lpn> = (0..pages).map(Lpn::new).collect();
    let mut flash_config = FlashConfig::table3();
    flash_config.geometry = flash_config.geometry.with_channels(16);

    let mut batched = Ftl::new(flash_config, FtlConfig::default());
    let mut mb = WorldMonitor::with_table5_cost();
    let out = batched
        .write_batch(
            Requestor::Host,
            &WriteBatchRequest::from_lpns(&lpns),
            &mut mb,
            SimTime::ZERO,
        )
        .unwrap();
    let batch_latency = out.finished.saturating_since(SimTime::ZERO);

    let mut sequential = Ftl::new(flash_config, FtlConfig::default());
    let mut ms = WorldMonitor::with_table5_cost();
    let mut chained = SimTime::ZERO;
    for &lpn in &lpns {
        chained = sequential
            .write(Requestor::Host, lpn, &mut ms, chained)
            .unwrap();
    }
    let seq_latency = chained.saturating_since(SimTime::ZERO);

    assert!(
        batch_latency < seq_latency / 2,
        "batch {batch_latency} must be under half of sequential {seq_latency}"
    );
    // Same post-state despite the different schedule.
    assert_eq!(batched.valid_pages(), sequential.valid_pages());
    assert_eq!(batched.stats().writes, sequential.stats().writes);
}

#[test]
fn write_channel_sweep_strictly_reduces_batch_latency() {
    // Acceptance criterion: a 64-page write batch gets strictly faster
    // as the device grows 2 -> 4 -> 8 -> 16 channels, through the full
    // runtime pipeline (seal + encrypt + program).
    let pages = 64u64;
    let lpns: Vec<Lpn> = (0..pages).map(Lpn::new).collect();
    let mut latencies: Vec<(u32, SimDuration)> = Vec::new();
    for channels in [2u32, 4, 8, 16] {
        let mut config = IceClaveConfig::table3();
        config.platform.flash.geometry = config.platform.flash.geometry.with_channels(channels);
        let mut ice = IceClave::new(config);
        let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO).unwrap();
        let (tee, t) = ice.offload_code(64 << 10, &lpns, t).unwrap();
        let done = ice.submit_write_batch(tee, &lpns, t).unwrap();
        latencies.push((channels, done.latency()));
    }
    for pair in latencies.windows(2) {
        let ((c_few, slow), (c_many, fast)) = (pair[0], pair[1]);
        assert!(
            fast < slow,
            "{c_many} channels ({fast}) must beat {c_few} channels ({slow})"
        );
    }
}

#[test]
fn cmt_shutdown_flush_scales_with_channels() {
    // Dirty translation pages flush as one channel-steered batch:
    // shutdown latency must decrease from 2 to 16 channels.
    let mut latencies: Vec<(u32, SimDuration)> = Vec::new();
    for channels in [2u32, 4, 8, 16] {
        let mut flash_config = FlashConfig::table3();
        flash_config.geometry = flash_config.geometry.with_channels(channels);
        let mut ftl = Ftl::new(flash_config, FtlConfig::default());
        let mut m = WorldMonitor::with_table5_cost();
        let mut t = SimTime::ZERO;
        // Dirty 48 distinct translation pages (512 entries apart).
        for i in 0..48u64 {
            t = ftl
                .write(Requestor::Host, Lpn::new(i * 512), &mut m, t)
                .unwrap();
        }
        let done = ftl.flush_cmt(t).unwrap();
        latencies.push((channels, done.saturating_since(t)));
    }
    for pair in latencies.windows(2) {
        let ((c_few, slow), (c_many, fast)) = (pair[0], pair[1]);
        assert!(
            fast < slow,
            "shutdown at {c_many} channels ({fast}) must beat {c_few} channels ({slow})"
        );
    }
}

#[test]
fn tee_cannot_trim_foreign_pages() {
    // Regression for the TRIM ownership hole: a TEE trimming another
    // TEE's page is denied at the FTL, just like a write.
    let mut ftl = Ftl::new(FlashConfig::tiny(), FtlConfig::default());
    let mut m = WorldMonitor::with_table5_cost();
    let mut t = SimTime::ZERO;
    for i in 0..2u64 {
        t = ftl.write(Requestor::Host, Lpn::new(i), &mut m, t).unwrap();
    }
    let alice = TeeId::new(1).unwrap();
    let mallory = TeeId::new(2).unwrap();
    ftl.set_id_bits(&[Lpn::new(0)], alice).unwrap();
    let err = ftl.trim(Requestor::Tee(mallory), Lpn::new(0)).unwrap_err();
    assert!(matches!(err, FtlError::AccessDenied { lpn, .. } if lpn == Lpn::new(0)));
    // Alice's page survived and is still hers.
    assert!(ftl
        .read(Requestor::Tee(alice), Lpn::new(0), &mut m, t)
        .is_ok());
    // The owner (and the host) may still trim.
    assert!(ftl.trim(Requestor::Tee(alice), Lpn::new(0)).unwrap());
    assert!(ftl.trim(Requestor::Host, Lpn::new(1)).unwrap());
    assert_eq!(ftl.valid_pages(), 0);
}
