//! Power-loss crash consistency, end to end.
//!
//! These tests drive the whole stack — metadata journal, power-loss
//! injector, replay-safe reboot — and pin the crash-consistency
//! contract:
//!
//! * An **empty power-loss plan is invisible**: arming the injector
//!   with no cut changes no event of a run, bit for bit.
//! * **Acked ⇒ durable**: any write batch whose blocking submit
//!   returned `Ok` is readable byte-exact after a crash at *any*
//!   later event and a reboot through `IceClave::recover`.
//! * **Unacked writes are atomic**: a batch interrupted by the cut is
//!   either fully visible or fully absent after recovery — never a
//!   mix of old and new pages.
//! * **Counters never roll back**: recovery restores the MEE counter
//!   epoch to the highest sealed value, and a forged stale seal is
//!   rejected with an integrity error.
//! * **Torn journal tails are discarded exactly**: damage to the last
//!   journal page (bit flips or truncation at arbitrary byte offsets)
//!   costs only the torn suffix; every earlier record still replays.
//! * **Grown-bad retirements are durable**: a block retired before
//!   the crash is still retired after recovery and never hosts
//!   another program.

use std::collections::HashMap;

use proptest::prelude::*;

use iceclave_repro::iceclave_core::{
    IceClave, IceClaveConfig, IceClaveError, JournalRecord, PowerLossPlan,
};
use iceclave_repro::iceclave_flash::FaultPlan;
use iceclave_repro::iceclave_types::{Lpn, PageWrite, SimTime, TeeId};

/// Logical pages staged in the two-tenant harness (each tenant owns
/// [`SPAN`] of them).
const PAGES: u64 = 12;
const SPAN: u64 = 6;

/// Versioned page content: distinct per page and per rewrite, so a
/// byte-exact read identifies exactly which write survived.
fn payload(lpn: u64, version: u64) -> Vec<u8> {
    (0..4096u32)
        .map(|b| (b as u8) ^ (lpn as u8) ^ (version as u8).wrapping_mul(31) ^ 0xA5)
        .collect()
}

fn journaled_config() -> IceClaveConfig {
    let mut cfg = IceClaveConfig::tiny();
    cfg.platform.ftl.journal_blocks = 6;
    cfg
}

/// A journaled device with two tenants: TEE A owns LPNs `0..SPAN`,
/// TEE B owns `SPAN..PAGES`, every page staged with version-0 bytes.
fn setup_two_tenants() -> (IceClave, [TeeId; 2], SimTime) {
    let mut ice = IceClave::new(journaled_config());
    let t = ice.populate(Lpn::new(0), PAGES, SimTime::ZERO).unwrap();
    for i in 0..PAGES {
        ice.host_store_data(Lpn::new(i), &payload(i, 0), t).unwrap();
    }
    let lpns_a: Vec<Lpn> = (0..SPAN).map(Lpn::new).collect();
    let lpns_b: Vec<Lpn> = (SPAN..PAGES).map(Lpn::new).collect();
    let (tee_a, t) = ice.offload_code(1024, &lpns_a, t).unwrap();
    let (tee_b, t) = ice.offload_code(1024, &lpns_b, t).unwrap();
    (ice, [tee_a, tee_b], t)
}

/// A journaled device with one tenant over 8 staged pages.
fn setup_one_tenant() -> (IceClave, TeeId, SimTime) {
    let mut ice = IceClave::new(journaled_config());
    let t = ice.populate(Lpn::new(0), 8, SimTime::ZERO).unwrap();
    for i in 0..8 {
        ice.host_store_data(Lpn::new(i), &payload(i, 0), t).unwrap();
    }
    let lpns: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();
    (ice, tee, t)
}

/// One step of an interleaved two-tenant schedule.
#[derive(Clone, Debug)]
struct Op {
    tenant: usize,
    write: bool,
    start: u64,
    len: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..2, any::<bool>(), 0u64..SPAN, 1u64..3).prop_map(|(tenant, write, start, len)| Op {
        tenant,
        write,
        start,
        len,
    })
}

/// What a schedule run left behind.
struct RunOutcome {
    /// Last acknowledged bytes per LPN (acked ⇒ must survive).
    committed: HashMap<u64, Vec<u8>>,
    /// The write batch the cut interrupted, if any: its pages may
    /// surface old or new after recovery, but atomically.
    pending: Option<HashMap<u64, Vec<u8>>>,
    /// Write batches acknowledged before the cut.
    acked: u64,
    t: SimTime,
    crashed: bool,
}

/// Runs `ops` through the blocking wrappers until completion or the
/// first [`IceClaveError::PowerLost`]. Reads double as an oracle
/// check: pre-crash reads must observe exactly the committed bytes.
fn run_schedule(ice: &mut IceClave, tees: [TeeId; 2], ops: &[Op], mut t: SimTime) -> RunOutcome {
    let mut committed: HashMap<u64, Vec<u8>> = (0..PAGES).map(|l| (l, payload(l, 0))).collect();
    let mut acked = 0u64;
    let mut version = 1u64;
    for op in ops {
        let base = op.tenant as u64 * SPAN;
        let end = (op.start + op.len).min(SPAN);
        let lpns: Vec<u64> = (op.start..end).map(|l| base + l).collect();
        if op.write {
            let ver = version;
            version += 1;
            let writes: Vec<PageWrite> = lpns
                .iter()
                .map(|&l| PageWrite::with_data(Lpn::new(l), payload(l, ver)))
                .collect();
            match ice.submit_write_batch_as(tees[op.tenant], writes, t) {
                Ok(done) => {
                    assert!(done.completions.iter().all(|c| c.status.is_done()));
                    t = done.finished;
                    acked += 1;
                    for &l in &lpns {
                        committed.insert(l, payload(l, ver));
                    }
                }
                Err(IceClaveError::PowerLost) => {
                    let pending = lpns.iter().map(|&l| (l, payload(l, ver))).collect();
                    return RunOutcome {
                        committed,
                        pending: Some(pending),
                        acked,
                        t,
                        crashed: true,
                    };
                }
                Err(e) => panic!("unexpected write error: {e}"),
            }
        } else {
            let batch: Vec<Lpn> = lpns.iter().map(|&l| Lpn::new(l)).collect();
            match ice.submit_batch(tees[op.tenant], &batch, t) {
                Ok(done) => {
                    for c in &done.completions {
                        assert_eq!(
                            c.data.as_deref(),
                            Some(&committed[&c.lpn.raw()][..]),
                            "read-your-writes violated before the crash"
                        );
                    }
                    t = done.finished;
                }
                Err(IceClaveError::PowerLost) => {
                    return RunOutcome {
                        committed,
                        pending: None,
                        acked,
                        t,
                        crashed: true,
                    };
                }
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
    }
    RunOutcome {
        committed,
        pending: None,
        acked,
        t,
        crashed: false,
    }
}

#[test]
fn empty_power_loss_plan_is_invisible() {
    let (mut plain, tee_a, t0) = setup_one_tenant();
    let (mut armed, tee_b, t1) = setup_one_tenant();
    assert_eq!(t0, t1, "identical setups share a clock");
    assert_eq!(plain.events_processed(), None, "no injector installed");
    armed.install_power_loss_plan(PowerLossPlan::none());

    let lpns: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    let ra = plain.submit_batch_async(tee_a, &lpns, t0).unwrap();
    let rb = armed.submit_batch_async(tee_b, &lpns, t1).unwrap();
    assert_eq!(ra, rb);
    let wa = plain.submit_write_batch_async(tee_a, &lpns, t0).unwrap();
    let wb = armed.submit_write_batch_async(tee_b, &lpns, t1).unwrap();
    assert_eq!(wa, wb);

    // Event-for-event identical: order, status, data, every timestamp.
    let events_plain = plain.drain_completions();
    let events_armed = armed.drain_completions();
    assert_eq!(events_plain, events_armed);
    assert!(!armed.power_lost());
    assert!(armed.events_processed().unwrap() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The any-point crash harness: an arbitrary interleaved
    /// two-tenant schedule, a cut at an arbitrary executor event,
    /// reboot, and a full audit of what survived.
    #[test]
    fn any_point_crash_preserves_every_acked_write(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        frac in 0u64..256,
    ) {
        // A dry run with an armed-but-empty plan measures this
        // schedule's event horizon without perturbing it.
        let (mut dry, tees, t0) = setup_two_tenants();
        dry.install_power_loss_plan(PowerLossPlan::none());
        let full = run_schedule(&mut dry, tees, &ops, t0);
        prop_assert!(!full.crashed);
        let events = dry.events_processed().unwrap();
        prop_assert!(events > 0);
        let cut = frac * events / 256;

        // The same schedule with the power cut before event `cut`.
        let (mut ice, tees, t0) = setup_two_tenants();
        ice.install_power_loss_plan(PowerLossPlan::at_event(cut));
        let run = run_schedule(&mut ice, tees, &ops, t0);
        prop_assert!(run.crashed, "cut {} of {} events must land", cut, events);
        prop_assert!(ice.power_lost());

        let stats = ice.recover(run.t).unwrap();
        prop_assert!(!stats.clean_boot);
        prop_assert!(stats.records_replayed > 0);
        // Journal syncs are single executor events, so a between-event
        // cut never tears a record.
        prop_assert_eq!(stats.torn_records, 0);
        // The restored counter epoch covers every sealed batch.
        prop_assert!(ice.counter_epoch() >= run.acked);

        // Reboot: a fresh enclave audits every page.
        let t = run.t + stats.recovery_time;
        let all: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
        let (tee, t) = ice.offload_code(1024, &all, t).unwrap();
        let done = ice.submit_batch(tee, &all, t).unwrap();
        prop_assert_eq!(done.len(), PAGES as usize);
        let mut new_seen = 0usize;
        let mut old_seen = 0usize;
        for c in &done.completions {
            prop_assert!(c.status.is_done());
            let l = c.lpn.raw();
            let bytes = c.data.as_deref().unwrap();
            let old = &run.committed[&l];
            match &run.pending {
                Some(p) if p.contains_key(&l) => {
                    if bytes == &p[&l][..] {
                        new_seen += 1;
                    } else {
                        prop_assert_eq!(bytes, &old[..], "interrupted page at lpn {} is neither old nor new", l);
                        old_seen += 1;
                    }
                }
                _ => prop_assert_eq!(bytes, &old[..], "acked write lost at lpn {}", l),
            }
        }
        if let Some(p) = &run.pending {
            // The interrupted batch is atomic: fully there or fully
            // absent, never a mix.
            prop_assert!(new_seen == 0 || old_seen == 0, "interrupted batch applied partially");
            prop_assert_eq!(new_seen + old_seen, p.len());
        }
    }

    /// Bit flips and truncations anywhere in the last journal page
    /// cost only the torn suffix; every earlier record still replays
    /// and its pages read back byte-exact.
    #[test]
    fn torn_journal_tail_discards_only_the_suffix(
        off in 0usize..4096,
        truncate in any::<bool>(),
    ) {
        let (mut ice, tee, t) = setup_one_tenant();
        let (r1, p1) = {
            let j = ice.platform().ftl.journal().unwrap();
            (j.records_synced(), j.pages_written())
        };
        // One acked rewrite of half the pages: its records are the
        // journal's last page.
        let writes: Vec<PageWrite> = (0..4)
            .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, 1)))
            .collect();
        let done = ice.submit_write_batch_as(tee, writes, t).unwrap();
        let t = done.finished;
        let (r2, p2) = {
            let j = ice.platform().ftl.journal().unwrap();
            (j.records_synced(), j.pages_written())
        };
        prop_assert!(r2 > r1);
        prop_assert_eq!(p2, p1 + 1, "the batch's records fit one journal page");

        // Locate the last written journal page and damage it.
        let g = ice.platform().ftl.flash().config().geometry;
        let blocks = ice.platform().ftl.journal().unwrap().blocks().to_vec();
        let mut last = None;
        for &b in &blocks {
            let f = ice.platform().ftl.flash().frontier(b);
            if f > 0 {
                last = Some((b, f - 1));
            }
        }
        let (block, page) = last.unwrap();
        let ppn = g.pack(block.page(page));
        let mut img = ice.platform().ftl.flash().read_data(ppn).unwrap().to_vec();
        if truncate {
            for byte in &mut img[off..] {
                *byte = 0;
            }
        } else {
            img[off] ^= 0xFF;
        }
        ice.platform_mut().ftl.flash_mut().write_data(ppn, &img);

        let stats = ice.recover(t).unwrap();
        prop_assert!(stats.records_replayed >= r1, "earlier journal pages must replay untouched");
        prop_assert!(stats.records_replayed <= r2);
        if stats.records_replayed < r2 && !truncate {
            prop_assert!(stats.torn_records >= 1);
        }

        // Pages the damaged records never covered read back exactly.
        let t = t + stats.recovery_time;
        let survivors: Vec<Lpn> = (4..8).map(Lpn::new).collect();
        let (tee, t) = ice.offload_code(1024, &survivors, t).unwrap();
        let done = ice.submit_batch(tee, &survivors, t).unwrap();
        for c in &done.completions {
            prop_assert!(c.status.is_done());
            prop_assert_eq!(c.data.as_deref(), Some(&payload(c.lpn.raw(), 0)[..]));
        }
        // The endpoints pin exact semantics: a fully-surviving page
        // replays the new bytes, a fully-torn tail the old.
        if stats.records_replayed == r2 || stats.records_replayed == r1 {
            let ver = u64::from(stats.records_replayed == r2);
            let rewritten: Vec<Lpn> = (0..4).map(Lpn::new).collect();
            let (tee, t) = ice.offload_code(1024, &rewritten, t).unwrap();
            let done = ice.submit_batch(tee, &rewritten, t).unwrap();
            for c in &done.completions {
                prop_assert_eq!(c.data.as_deref(), Some(&payload(c.lpn.raw(), ver)[..]));
            }
        }
    }
}

#[test]
fn crash_mid_write_bricks_the_device_until_recover() {
    let (mut ice, tee, t) = setup_one_tenant();
    // Cut before the very first executor event: the write batch is
    // submitted but nothing of it ever runs.
    ice.install_power_loss_plan(PowerLossPlan::at_event(0));
    let writes: Vec<PageWrite> = (0..4)
        .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, 1)))
        .collect();
    let err = ice.submit_write_batch_as(tee, writes, t).unwrap_err();
    assert!(matches!(err, IceClaveError::PowerLost));
    assert!(ice.power_lost());

    // Every device entry point refuses until the reboot; the volatile
    // completion queue is gone.
    assert!(matches!(
        ice.host_store_data(Lpn::new(0), &payload(0, 9), t),
        Err(IceClaveError::PowerLost)
    ));
    assert!(matches!(
        ice.submit_batch(tee, &[Lpn::new(0)], t),
        Err(IceClaveError::PowerLost)
    ));
    assert!(matches!(ice.shutdown(t), Err(IceClaveError::PowerLost)));
    assert!(ice.poll_completions(t).is_empty());
    assert!(ice.drain_completions().is_empty());

    let stats = ice.recover(t).unwrap();
    assert!(!stats.clean_boot);
    assert_eq!(
        stats.pages_lost, 4,
        "the in-flight batch is the loss report"
    );
    assert!(stats.records_replayed > 0);
    assert!(stats.recovery_time > iceclave_repro::iceclave_types::SimDuration::ZERO);

    // The reboot restores service: all version-0 bytes intact.
    let t = t + stats.recovery_time;
    let all: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &all, t).unwrap();
    let done = ice.submit_batch(tee, &all, t).unwrap();
    for c in &done.completions {
        assert_eq!(c.data.as_deref(), Some(&payload(c.lpn.raw(), 0)[..]));
    }
}

#[test]
fn clean_shutdown_boots_on_the_fast_path() {
    let (mut ice, tee, t) = setup_one_tenant();
    let writes: Vec<PageWrite> = (0..4)
        .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, 1)))
        .collect();
    let done = ice.submit_write_batch_as(tee, writes, t).unwrap();
    let epoch = ice.counter_epoch();
    assert!(epoch >= 1);

    let t = ice.shutdown(done.finished).unwrap();
    let stats = ice.recover(t).unwrap();
    assert!(stats.clean_boot, "the shutdown seal marks the boot clean");
    assert_eq!(stats.pages_lost, 0);
    assert_eq!(stats.torn_records, 0);
    assert_eq!(
        ice.counter_epoch(),
        epoch,
        "the sealed epoch is restored exactly"
    );

    let t = t + stats.recovery_time;
    let all: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &all, t).unwrap();
    let done = ice.submit_batch(tee, &all, t).unwrap();
    for c in &done.completions {
        let ver = u64::from(c.lpn.raw() < 4);
        assert_eq!(c.data.as_deref(), Some(&payload(c.lpn.raw(), ver)[..]));
    }
}

#[test]
fn recover_without_a_journal_region_is_refused() {
    // The default tiny device reserves no journal blocks: nothing was
    // ever durable, so a reboot cannot pretend to recover.
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    assert!(!ice.platform().ftl.journal_enabled());
    assert!(matches!(
        ice.recover(SimTime::ZERO),
        Err(IceClaveError::NoJournal)
    ));
}

#[test]
fn counter_rollback_is_rejected_at_recovery() {
    let (mut ice, tee, t) = setup_one_tenant();
    let writes: Vec<PageWrite> = (0..4)
        .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, 1)))
        .collect();
    let done = ice.submit_write_batch_as(tee, writes, t).unwrap();
    assert!(ice.counter_epoch() >= 1);

    // A rollback attack: a stale epoch seal forged onto the journal
    // tail, pretending the counters never advanced.
    ice.platform_mut()
        .ftl
        .journal_append(JournalRecord::EpochSeal { epoch: 0 });
    ice.platform_mut().ftl.journal_sync(done.finished).unwrap();
    let err = ice.recover(done.finished).unwrap_err();
    assert!(matches!(err, IceClaveError::Integrity { .. }));
}

#[test]
fn retired_blocks_survive_recovery_and_never_reallocate() {
    let (mut ice, tee, t) = setup_one_tenant();
    // The batch's first data program fails: the FTL re-steers the
    // page and retires the block, journaling the retirement.
    ice.install_fault_plan(FaultPlan {
        program_fail_ops: vec![0],
        ..FaultPlan::none()
    });
    let writes: Vec<PageWrite> = (0..8)
        .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, 1)))
        .collect();
    let done = ice.submit_write_batch_as(tee, writes, t).unwrap();
    assert!(done.completions.iter().all(|c| c.status.is_done()));
    let t = done.finished;
    let retired = ice.platform().ftl.grown_bad_blocks();
    assert_eq!(retired.len(), 1);
    let flat = retired[0];
    let g = ice.platform().ftl.flash().config().geometry;
    let addr = g.block_from_index(flat);

    let stats = ice.recover(t).unwrap();
    assert!(!stats.clean_boot);
    assert_eq!(
        ice.platform().ftl.grown_bad_blocks(),
        vec![flat],
        "the retirement survived the reboot"
    );
    let frontier0 = ice.platform().ftl.flash().frontier(addr);

    // Hammer the rebuilt allocator: wave after wave of rewrites (with
    // the GC churn they trigger) must keep skipping the bad block.
    let t = t + stats.recovery_time;
    let all: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    let (tee, mut t) = ice.offload_code(1024, &all, t).unwrap();
    for round in 2..8u64 {
        let writes: Vec<PageWrite> = (0..8)
            .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, round)))
            .collect();
        let done = ice.submit_write_batch_as(tee, writes, t).unwrap();
        assert!(done.completions.iter().all(|c| c.status.is_done()));
        t = done.finished;
    }
    assert_eq!(
        ice.platform().ftl.flash().frontier(addr),
        frontier0,
        "no program ever landed in the retired block"
    );
    assert_eq!(ice.platform().ftl.grown_bad_blocks(), vec![flat]);
    // The churned data still reads back byte-exact.
    let done = ice.submit_batch(tee, &all, t).unwrap();
    for c in &done.completions {
        assert_eq!(c.data.as_deref(), Some(&payload(c.lpn.raw(), 7)[..]));
    }
}

#[test]
fn seeded_power_plans_are_deterministic() {
    let run = |seed: u64| {
        let (mut ice, tee, mut t) = setup_one_tenant();
        ice.install_power_loss_plan(PowerLossPlan::seeded(seed, 64));
        let mut crashed = false;
        for round in 1..6u64 {
            let writes: Vec<PageWrite> = (0..8)
                .map(|l| PageWrite::with_data(Lpn::new(l), payload(l, round)))
                .collect();
            match ice.submit_write_batch_as(tee, writes, t) {
                Ok(done) => t = done.finished,
                Err(IceClaveError::PowerLost) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let events = ice.events_processed();
        let stats = if crashed {
            Some(ice.recover(t).unwrap())
        } else {
            None
        };
        (crashed, events, stats)
    };
    assert_eq!(run(7), run(7), "same seed, same cut, same recovery");
    assert_eq!(run(1234), run(1234));
}
