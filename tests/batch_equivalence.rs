//! Batch/sequential equivalence of the protected data path.
//!
//! `IceClave::submit_batch` must be a *pure scheduling* change: the
//! bytes delivered, the access-control outcomes and the runtime
//! counters are identical to issuing the same pages one at a time —
//! only the simulated time differs (and only downward).

use iceclave_repro::iceclave_core::{
    AbortReason, IceClave, IceClaveConfig, IceClaveError, TeeStatus,
};
use iceclave_repro::iceclave_ftl::FtlError;
use iceclave_repro::iceclave_types::{Lpn, SimDuration, SimTime, TeeId};

const PAGES: u64 = 8;

/// A fresh runtime with `PAGES` populated pages of distinct plaintext
/// and a TEE granted all of them.
fn setup(config: IceClaveConfig) -> (IceClave, TeeId, SimTime) {
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), PAGES, SimTime::ZERO).unwrap();
    for i in 0..PAGES {
        let plaintext: Vec<u8> = (0..4096u32).map(|b| (b as u8) ^ (i as u8)).collect();
        ice.host_store_data(Lpn::new(i), &plaintext, t).unwrap();
    }
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();
    (ice, tee, t)
}

#[test]
fn batch_matches_sequential_bytes_and_stats() {
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();

    // One batch of N pages...
    let (mut batched, tee_b, t_b) = setup(IceClaveConfig::tiny());
    let batch = batched.submit_batch(tee_b, &lpns, t_b).unwrap();
    assert_eq!(batch.len(), PAGES as usize);

    // ...versus N sequential one-page reads (read_flash_page is the
    // one-element wrapper over the same path; the single-element
    // batches expose the bytes for comparison).
    let (mut sequential, tee_s, t_s) = setup(IceClaveConfig::tiny());
    let mut seq_completions = Vec::new();
    let mut t = t_s;
    for &lpn in &lpns {
        let one = sequential.submit_batch(tee_s, &[lpn], t).unwrap();
        t = one.finished;
        seq_completions.extend(one.completions);
    }

    for (b, s) in batch.completions.iter().zip(&seq_completions) {
        assert_eq!(b.lpn, s.lpn);
        assert!(b.data.is_some(), "functional content must flow");
        assert_eq!(b.data, s.data, "plaintext must be byte-identical");
        // And it must actually be the staged plaintext, not ciphertext.
        let i = b.lpn.raw();
        let expected: Vec<u8> = (0..4096u32).map(|v| (v as u8) ^ (i as u8)).collect();
        assert_eq!(b.data.as_deref(), Some(&expected[..]));
    }

    // Identical runtime counters: same pages loaded, same
    // access-control outcomes, nothing aborted on either path.
    assert_eq!(batched.stats(), sequential.stats());
    assert_eq!(batched.stats().pages_loaded, PAGES);
    assert_eq!(batched.stats().aborted, 0);

    // Scheduling may only help: the batch cannot be slower than the
    // chained sequential reads.
    let batch_latency = batch.finished.saturating_since(t_b);
    let seq_latency = t.saturating_since(t_s);
    assert!(
        batch_latency <= seq_latency,
        "batch {batch_latency} slower than sequential {seq_latency}"
    );
}

#[test]
fn read_flash_page_is_a_one_element_batch() {
    let (mut a, tee_a, t_a) = setup(IceClaveConfig::tiny());
    let (mut b, tee_b, t_b) = setup(IceClaveConfig::tiny());
    assert_eq!(t_a, t_b);
    let wrapper_done = a.read_flash_page(tee_a, Lpn::new(3), t_a).unwrap();
    let batch_done = b.submit_batch(tee_b, &[Lpn::new(3)], t_b).unwrap().finished;
    assert_eq!(wrapper_done, batch_done);
}

#[test]
fn batch_with_foreign_page_throws_the_tee_out() {
    // The TEE owns pages 0..PAGES; page `PAGES` exists but belongs to
    // nobody — a batch touching it must abort the whole TEE before any
    // flash traffic.
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let t = ice.populate(Lpn::new(0), PAGES + 1, SimTime::ZERO).unwrap();
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(1024, &lpns, t).unwrap();

    let mut probe = lpns.clone();
    probe.push(Lpn::new(PAGES)); // out of the granted region
    let err = ice.submit_batch(tee, &probe, t).unwrap_err();
    assert!(matches!(
        err,
        IceClaveError::Ftl(FtlError::AccessDenied { lpn, .. }) if lpn == Lpn::new(PAGES)
    ));
    assert_eq!(
        ice.status(tee),
        Some(TeeStatus::Aborted(AbortReason::AccessViolation))
    );
    assert_eq!(ice.stats().aborted, 1);
    // The atomic denial loaded nothing.
    assert_eq!(ice.stats().pages_loaded, 0);
    // A dead TEE cannot submit again.
    assert!(matches!(
        ice.submit_batch(tee, &lpns, t),
        Err(IceClaveError::NotRunning(_))
    ));
}

#[test]
fn channel_sweep_strictly_reduces_batch_latency() {
    // Acceptance criterion: a 64-page batch gets strictly faster as
    // the device grows 2 -> 4 -> 8 -> 16 channels.
    let pages = 64u64;
    let lpns: Vec<Lpn> = (0..pages).map(Lpn::new).collect();
    let mut latencies: Vec<(u32, SimDuration)> = Vec::new();
    for channels in [2u32, 4, 8, 16] {
        let mut config = IceClaveConfig::table3();
        config.platform.flash.geometry = config.platform.flash.geometry.with_channels(channels);
        let mut ice = IceClave::new(config);
        let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO).unwrap();
        let (tee, t) = ice.offload_code(64 << 10, &lpns, t).unwrap();
        let done = ice.submit_batch(tee, &lpns, t).unwrap();
        latencies.push((channels, done.latency()));
    }
    for pair in latencies.windows(2) {
        let ((c_few, slow), (c_many, fast)) = (pair[0], pair[1]);
        assert!(
            fast < slow,
            "{c_many} channels ({fast}) must beat {c_few} channels ({slow})"
        );
    }
}
