//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;

use iceclave_repro::iceclave_cipher::trivium::{Trivium, TriviumRef};
use iceclave_repro::iceclave_core::{IceClave, IceClaveConfig};
use iceclave_repro::iceclave_flash::{FlashArray, FlashConfig, FlashGeometry};
use iceclave_repro::iceclave_ftl::{Ftl, FtlConfig, MappingEntry, Requestor};
use iceclave_repro::iceclave_mee::{MetaCache, SecureMemory};
use iceclave_repro::iceclave_sim::Resource;
use iceclave_repro::iceclave_trustzone::WorldMonitor;
use iceclave_repro::iceclave_types::{
    ByteSize, CacheLine, Lpn, PageWrite, Ppn, SimDuration, SimTime, TeeId,
};

use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The word-sliced Trivium equals the bit-at-a-time reference for
    /// arbitrary keys and IVs.
    #[test]
    fn trivium_implementations_agree(key in prop::array::uniform10(0u8..), iv in prop::array::uniform10(0u8..)) {
        let fast = Trivium::new(&key, &iv).keystream_bytes(96);
        let slow = TriviumRef::new(&key, &iv).keystream_bytes(96);
        prop_assert_eq!(fast, slow);
    }

    /// Encrypt-then-decrypt is the identity for any payload.
    #[test]
    fn trivium_round_trip(key in prop::array::uniform10(0u8..), iv in prop::array::uniform10(0u8..), data in prop::collection::vec(0u8.., 0..512)) {
        let mut buf = data.clone();
        Trivium::new(&key, &iv).apply_keystream(&mut buf);
        Trivium::new(&key, &iv).apply_keystream(&mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Flash geometry pack/unpack is a bijection over valid addresses.
    #[test]
    fn geometry_pack_unpack(raw in 0u64..1024) {
        let g = FlashGeometry::tiny();
        let ppn = Ppn::new(raw % g.total_pages());
        let addr = g.unpack(ppn);
        prop_assert!(g.contains(addr));
        prop_assert_eq!(g.pack(addr), ppn);
    }

    /// Mapping entries survive the 8-byte packing for any PPN and id.
    #[test]
    fn mapping_entry_round_trip(ppn in 0u64..(1u64 << 48), id in 0u16..16) {
        let entry = MappingEntry::new(Ppn::new(ppn), TeeId::new(id).unwrap());
        prop_assert_eq!(MappingEntry::unpack(entry.pack()), Some(entry));
    }

    /// Resource timelines never move backward and busy time never
    /// exceeds the horizon.
    #[test]
    fn resource_timeline_is_monotone(services in prop::collection::vec(1u64..10_000, 1..64)) {
        let mut r = Resource::new("r");
        let mut last_end = SimTime::ZERO;
        for s in &services {
            let span = r.acquire(SimTime::ZERO, SimDuration::from_nanos(*s));
            prop_assert!(span.start >= last_end);
            prop_assert_eq!(span.end, span.start + SimDuration::from_nanos(*s));
            last_end = span.end;
        }
        let total: u64 = services.iter().sum();
        prop_assert_eq!(r.busy_time(), SimDuration::from_nanos(total));
    }

    /// The metadata cache never reports more blocks resident than its
    /// capacity, and a just-inserted block is always resident.
    #[test]
    fn meta_cache_capacity_invariant(blocks in prop::collection::vec(0u64..4096, 1..512)) {
        let mut cache = MetaCache::new(ByteSize::from_bytes(64 * 64), 4);
        for &b in &blocks {
            cache.access(b);
            prop_assert!(cache.contains(b));
        }
        let resident = (0u64..4096).filter(|&b| cache.contains(b)).count();
        prop_assert!(resident <= cache.capacity_blocks());
    }

    /// SecureMemory read-back equals the last write for arbitrary
    /// write sequences (counter-mode correctness under reuse).
    #[test]
    fn secure_memory_linearizes(ops in prop::collection::vec((0u64..128, 0u8..), 1..60)) {
        let mut mem = SecureMemory::new(2, [3; 16], [4; 16]);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (line, value) in &ops {
            mem.write_line(CacheLine::new(*line), &[*value; 64]);
            model.insert(*line, *value);
        }
        // Every line written must read back its final value.
        for (&l, &v) in &model {
            let got = mem.read_line(CacheLine::new(l)).unwrap();
            prop_assert_eq!(got, [v; 64]);
        }
    }

    /// Any single-bit tamper of stored ciphertext is detected.
    #[test]
    fn secure_memory_detects_any_bitflip(line in 0u64..64, byte in 0usize..64, bit in 0u8..8) {
        let mut mem = SecureMemory::new(1, [5; 16], [6; 16]);
        mem.write_line(CacheLine::new(line), &[0x77; 64]);
        mem.tamper_line(CacheLine::new(line), |c| c[byte] ^= 1 << bit);
        prop_assert!(mem.read_line(CacheLine::new(line)).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// FTL read-after-write: for any interleaving of host writes over a
    /// small logical space, every written page remains translatable and
    /// the number of valid pages equals the number of distinct LPNs —
    /// across GC and wear leveling.
    #[test]
    fn ftl_read_after_write_under_churn(writes in prop::collection::vec(0u64..24, 1..300)) {
        let mut ftl = Ftl::new(FlashConfig::tiny(), FtlConfig::default());
        let mut monitor = WorldMonitor::with_table5_cost();
        let mut t = SimTime::ZERO;
        let mut written = std::collections::HashSet::new();
        for lpn in &writes {
            t = ftl.write(Requestor::Host, Lpn::new(*lpn), &mut monitor, t).unwrap();
            written.insert(*lpn);
        }
        for lpn in &written {
            let tr = ftl.translate(Requestor::Host, Lpn::new(*lpn), &mut monitor, t).unwrap();
            prop_assert!(ftl.flash().is_written(tr.ppn), "LPN {} -> stale {:?}", lpn, tr.ppn);
        }
        prop_assert_eq!(ftl.valid_pages() as usize, written.len());
    }

    /// Interleaved protected write/read batches keep mapping
    /// consistency across garbage collection: after any interleaving
    /// of `submit_write_batch` and `submit_batch` over a working set
    /// that overwrites the tiny device far beyond its capacity (so GC
    /// fires mid-run, usually mid-batch), every page still translates,
    /// `valid_pages` equals the working-set size, and read-back is
    /// byte-identical to the last write.
    #[test]
    fn write_read_batches_stay_consistent_under_gc(
        ops in prop::collection::vec((0u8..2, prop::collection::vec(0u64..24, 1..24)), 4..28)
    ) {
        const WORKING_SET: u64 = 24;
        let mut ice = IceClave::new(IceClaveConfig::tiny());
        let mut t = ice.populate(Lpn::new(0), WORKING_SET, SimTime::ZERO).unwrap();
        let lpns: Vec<Lpn> = (0..WORKING_SET).map(Lpn::new).collect();
        let (tee, t2) = ice.offload_code(1024, &lpns, t).unwrap();
        t = t2;

        // Deterministic churn first: overwrite the working set until GC
        // has fired, so the sampled interleaving runs on a device that
        // keeps collecting mid-batch.
        let mut version = 0u8;
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut churn = 0;
        while ice.platform().ftl.stats().gc_runs == 0 {
            version = version.wrapping_add(1);
            let writes: Vec<PageWrite> = (0..WORKING_SET)
                .map(|l| {
                    let payload = vec![(l as u8) ^ version; 64];
                    model.insert(l, payload.clone());
                    PageWrite::with_data(Lpn::new(l), payload)
                })
                .collect();
            t = ice.submit_write_batch_as(tee, writes, t).unwrap().finished;
            churn += 1;
            prop_assert!(churn < 200, "GC never fired on the tiny device");
        }

        for (kind, batch_lpns) in &ops {
            if *kind == 0 {
                version = version.wrapping_add(1);
                let writes: Vec<PageWrite> = batch_lpns
                    .iter()
                    .map(|&l| {
                        let payload = vec![(l as u8) ^ version; 64];
                        model.insert(l, payload.clone());
                        PageWrite::with_data(Lpn::new(l), payload)
                    })
                    .collect();
                t = ice.submit_write_batch_as(tee, writes, t).unwrap().finished;
            } else {
                let reads: Vec<Lpn> = batch_lpns.iter().map(|&l| Lpn::new(l)).collect();
                let done = ice.submit_batch(tee, &reads, t).unwrap();
                t = done.finished;
                for c in &done.completions {
                    let expected = model.get(&c.lpn.raw()).expect("populated page");
                    prop_assert_eq!(
                        c.data.as_ref(),
                        Some(expected),
                        "stale read of lpn {}",
                        c.lpn
                    );
                }
            }
        }

        // Post-state: exactly one valid physical page per logical page
        // and a byte-identical full read-back.
        prop_assert!(ice.platform().ftl.stats().gc_runs > 0);
        prop_assert_eq!(ice.platform().ftl.valid_pages(), WORKING_SET);
        let done = ice.submit_batch(tee, &lpns, t).unwrap();
        for c in &done.completions {
            let expected = model.get(&c.lpn.raw()).expect("populated page");
            prop_assert_eq!(c.data.as_ref(), Some(expected));
        }
    }

    /// NAND contract fuzz: programs must be sequential; the array
    /// never accepts an out-of-order program.
    #[test]
    fn flash_program_order_is_enforced(pages in prop::collection::vec(0u64..16, 1..32)) {
        let mut array = FlashArray::new(FlashConfig::tiny());
        let mut next = 0u64;
        for p in pages {
            let result = array.program_page(Ppn::new(p), SimTime::ZERO);
            if p == next {
                prop_assert!(result.is_ok());
                next += 1;
            } else if p < next {
                prop_assert!(result.is_err(), "reprogram of {p} accepted");
            } else {
                prop_assert!(result.is_err(), "skip to {p} accepted");
            }
        }
    }
}
