//! Op-log tracing integration tests: determinism of the captured
//! byte stream, AFAP replay equivalence against a fresh device, and
//! the per-ticket MetaTraffic/fault attribution surfaced by the
//! capture hook.

use iceclave_repro::iceclave_core::IceClave;
use iceclave_repro::iceclave_experiments::{Mode, Overrides};
use iceclave_repro::iceclave_obs::trace::hash_payload;
use iceclave_repro::iceclave_obs::{replay, ReplayMode, TraceLog};
use iceclave_repro::iceclave_types::{Lpn, PageWrite, SimTime, TeeId, TicketKind};

const TEES: u64 = 2;
const PAGES_PER_TEE: u64 = 32;
const READ_BATCH: usize = 12;
const WRITE_BATCH: usize = 6;
const ROUNDS: usize = 3;

/// An 8-channel device with two TEEs, each granted a disjoint range.
fn device() -> (IceClave, Vec<(TeeId, Vec<Lpn>)>, SimTime) {
    let overrides = Overrides {
        channels: Some(8),
        ..Overrides::none()
    };
    let mut ice = IceClave::new(Mode::IceClave.ssd_config(&overrides));
    let t = ice
        .populate(Lpn::new(0), TEES * PAGES_PER_TEE, SimTime::ZERO)
        .unwrap();
    // Distinct plaintext per page so data hashes are meaningful.
    for i in 0..TEES * PAGES_PER_TEE {
        let plaintext: Vec<u8> = (0..4096u32)
            .map(|b| (b as u8).wrapping_add(i as u8))
            .collect();
        ice.host_store_data(Lpn::new(i), &plaintext, t).unwrap();
    }
    let mut tees = Vec::new();
    for tee_idx in 0..TEES {
        let base = tee_idx * PAGES_PER_TEE;
        let lpns: Vec<Lpn> = (base..base + PAGES_PER_TEE).map(Lpn::new).collect();
        let (tee, _) = ice.offload_code(64 << 10, &lpns, t).unwrap();
        tees.push((tee, lpns));
    }
    (ice, tees, t)
}

/// The captured 2-tenant workload: interleaved read and write batches
/// from both tenants, drained each round.
fn workload(ice: &mut IceClave, tees: &[(TeeId, Vec<Lpn>)], start: SimTime) -> SimTime {
    let mut t = start;
    for _ in 0..ROUNDS {
        for (tee, lpns) in tees {
            ice.submit_batch_async(*tee, &lpns[..READ_BATCH], t)
                .unwrap();
            let writes: Vec<PageWrite> = lpns[READ_BATCH..READ_BATCH + WRITE_BATCH]
                .iter()
                .map(|&lpn| PageWrite::new(lpn))
                .collect();
            ice.submit_write_batch_async_as(*tee, writes, t).unwrap();
        }
        for ev in ice.drain_completions() {
            t = t.max(ev.ready_at());
        }
    }
    t
}

fn capture() -> TraceLog {
    let (mut ice, tees, t0) = device();
    ice.enable_tracing();
    assert!(ice.tracing_enabled());
    workload(&mut ice, &tees, t0);
    let log = ice.take_trace().expect("tracing was enabled");
    assert!(!ice.tracing_enabled());
    log
}

#[test]
fn two_identical_runs_capture_byte_identical_logs() {
    let a = capture();
    let b = capture();
    assert!(!a.is_empty());
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "the executor determinism contract must extend to the op-log"
    );
    // And the encoded stream round-trips through the codec.
    let decoded = TraceLog::from_bytes(a.as_bytes()).unwrap();
    assert_eq!(decoded.records(), a.records());
}

#[test]
fn capture_records_every_ticket_with_pages_and_timestamps() {
    let log = capture();
    let tickets = (TEES as usize) * 2 * ROUNDS;
    assert_eq!(log.len(), tickets, "one record per submitted batch");
    let mut reads = 0;
    let mut writes = 0;
    for rec in log.records() {
        match rec.kind {
            TicketKind::Read => {
                reads += 1;
                assert_eq!(rec.pages.len(), READ_BATCH);
            }
            TicketKind::Write => {
                writes += 1;
                assert_eq!(rec.pages.len(), WRITE_BATCH);
            }
        }
        assert!(rec.finished >= rec.first_ready);
        assert!(rec.first_ready >= rec.submitted);
        for (i, page) in rec.pages.iter().enumerate() {
            assert_eq!(page.index as usize, i, "pages sorted by batch index");
            assert!(page.status.is_done());
            assert!(page.breakdown.ready >= rec.submitted);
        }
    }
    assert_eq!(reads, TEES as usize * ROUNDS);
    assert_eq!(writes, TEES as usize * ROUNDS);
}

#[test]
fn tickets_carry_mee_traffic_attribution() {
    let log = capture();
    // The bulk fill/seal datapath bypasses the on-chip metadata caches
    // by design, so ticket attribution shows up in the bulk-engine line
    // counters: every read ticket stages cache lines through the fill
    // engine (one fresh counter epoch per page), every write ticket
    // drains lines through the seal engine.
    for rec in log.records() {
        assert!(
            !rec.meta.is_zero(),
            "ticket {} closed with zero MEE attribution",
            rec.ticket
        );
        match rec.kind {
            TicketKind::Read => {
                assert!(rec.meta.fill_lines > 0, "reads move fill lines");
                assert!(rec.meta.meta_writes > 0, "fills mint counter epochs");
                assert!(rec.meta.enc_pads > 0, "fills burn cipher pads");
            }
            TicketKind::Write => {
                assert!(rec.meta.seal_lines > 0, "writes drain seal lines");
                assert!(rec.meta.meta_writes > 0, "seals mint counter epochs");
            }
        }
    }

    let (mut ice, tees, t0) = device();
    ice.enable_tracing();
    workload(&mut ice, &tees, t0);
    let stats_total = ice.stats().ticket_meta;
    let log2 = ice.take_trace().unwrap();
    let mut summed = iceclave_repro::iceclave_types::TicketAttribution::default();
    for rec in log2.records() {
        summed.add(&rec.meta);
    }
    assert_eq!(
        stats_total, summed,
        "RuntimeStats::ticket_meta must equal the sum of per-ticket deltas"
    );
    // No faults were injected, so fault attribution stays zero.
    assert!(log2
        .records()
        .iter()
        .all(|r| r.faults == Default::default()));
}

/// One burst: every tenant's read and write batch submitted at the
/// same instant, then drained. This is the workload shape whose AFAP
/// replay the determinism contract pins down exactly — all captured
/// submission times coincide, so re-submitting everything at that time
/// is a faithful re-run, not a compression of the original schedule.
fn burst_capture() -> (TraceLog, SimTime) {
    let (mut ice, tees, t0) = device();
    ice.enable_tracing();
    for (tee, lpns) in &tees {
        ice.submit_batch_async(*tee, &lpns[..READ_BATCH], t0)
            .unwrap();
        let writes: Vec<PageWrite> = lpns[READ_BATCH..READ_BATCH + WRITE_BATCH]
            .iter()
            .map(|&lpn| PageWrite::new(lpn))
            .collect();
        ice.submit_write_batch_async_as(*tee, writes, t0).unwrap();
    }
    ice.drain_completions();
    (ice.take_trace().unwrap(), t0)
}

#[test]
fn afap_replay_reproduces_completion_order_and_bytes() {
    let (log, t0) = burst_capture();
    assert!(!log.is_empty());

    let (mut fresh, _, start) = device();
    assert_eq!(start, t0, "identically built devices share the epoch");
    fresh.enable_tracing();
    let outcome = replay(&mut fresh, &log, ReplayMode::Afap, start).unwrap();
    let replay_log = fresh.take_trace().unwrap();

    // The determinism contract, end to end: identical submissions into
    // an identically configured device produce the identical encoded
    // op-log — ticket close order, stage timestamps, page statuses,
    // attribution and payload hashes, byte for byte.
    assert_eq!(
        replay_log.as_bytes(),
        log.as_bytes(),
        "AFAP replay must reproduce the captured completion sequence byte-identically"
    );
    assert_eq!(outcome.submitted.len(), log.len());

    // Cross-check the hash chain itself against the drained events.
    let hashed: Vec<u64> = outcome
        .completions
        .iter()
        .filter(|e| e.kind == TicketKind::Read)
        .map(|e| hash_payload(e.data.as_deref()))
        .collect();
    assert_eq!(hashed.len(), READ_BATCH * TEES as usize);
    assert!(hashed.iter().all(|&h| h != 0), "read pages carry payloads");
}

#[test]
fn replay_roundtrips_through_disk() {
    let log = capture();
    let dir = std::env::temp_dir().join("iceclave_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("capture.trace");
    log.write_to(&path).unwrap();
    let loaded = TraceLog::read_from(&path).unwrap();
    assert_eq!(loaded.as_bytes(), log.as_bytes());
    std::fs::remove_file(&path).ok();

    let (mut fresh, _, t0) = device();
    let outcome = replay(&mut fresh, &loaded, ReplayMode::Paced, t0).unwrap();
    let pages = (READ_BATCH + WRITE_BATCH) * TEES as usize * ROUNDS;
    assert_eq!(outcome.completions.len(), pages);
}
