//! Property test: the event-driven executor is a *scheduling* change.
//!
//! Any interleaving of concurrent read/write batches from two TEEs
//! through the executor must yield byte-identical page contents and an
//! identical `valid_pages` count to running the same batches
//! sequentially through the blocking API. Concurrent tickets target
//! disjoint pages (the executor's documented in-flight contract: no
//! ordering guarantees between tickets in flight, so well-formed
//! clients never race dependent pages) — but reads do observe content
//! written by *earlier, drained* rounds, so data genuinely flows
//! through the interleaved pipeline.

use proptest::prelude::*;

use iceclave_repro::iceclave_core::{IceClave, IceClaveConfig};
use iceclave_repro::iceclave_types::{Lpn, PageStatus, PageWrite, SimTime, TeeId, TicketKind};

use std::collections::HashMap;

/// Pages per TEE (two TEEs: LPNs 0..8 and 8..16).
const TEE_PAGES: u64 = 8;
/// Each round reads from one half of a TEE's range and writes the
/// other, alternating per round, so rounds read what earlier rounds
/// wrote without racing in-flight pages.
const HALF: u64 = TEE_PAGES / 2;

fn initial(lpn: u64) -> Vec<u8> {
    (0..4096u32)
        .map(|b| (b as u8) ^ (lpn as u8) ^ 0x77)
        .collect()
}

fn written(round: usize, lpn: u64) -> Vec<u8> {
    (0..4096u32)
        .map(|b| (b as u8) ^ (round as u8).wrapping_mul(31) ^ (lpn as u8))
        .collect()
}

fn setup() -> (IceClave, [TeeId; 2], SimTime) {
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let t = ice
        .populate(Lpn::new(0), 2 * TEE_PAGES, SimTime::ZERO)
        .unwrap();
    for lpn in 0..2 * TEE_PAGES {
        ice.host_store_data(Lpn::new(lpn), &initial(lpn), t)
            .unwrap();
    }
    let a_lpns: Vec<Lpn> = (0..TEE_PAGES).map(Lpn::new).collect();
    let b_lpns: Vec<Lpn> = (TEE_PAGES..2 * TEE_PAGES).map(Lpn::new).collect();
    let (tee_a, t) = ice.offload_code(1024, &a_lpns, t).unwrap();
    let (tee_b, t) = ice.offload_code(1024, &b_lpns, t).unwrap();
    (ice, [tee_a, tee_b], t)
}

/// One round's batches for one TEE, derived from the generated knobs:
/// reads from the round's read half, writes into the other half.
fn round_lpns(
    tee: usize,
    round: usize,
    read_start: u64,
    read_len: u64,
    write_start: u64,
    write_len: u64,
) -> (Vec<Lpn>, Vec<Lpn>) {
    let base = tee as u64 * TEE_PAGES;
    let (read_half, write_half) = if round.is_multiple_of(2) {
        (0, HALF)
    } else {
        (HALF, 0)
    };
    let rs = read_start.min(HALF - 1);
    let reads: Vec<Lpn> = (rs..(rs + read_len).min(HALF))
        .map(|o| Lpn::new(base + read_half + o))
        .collect();
    let ws = write_start.min(HALF - 1);
    let writes: Vec<Lpn> = (ws..(ws + write_len).min(HALF))
        .map(|o| Lpn::new(base + write_half + o))
        .collect();
    (reads, writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Executor interleavings vs. sequential blocking: byte-identical
    /// contents, identical `valid_pages`.
    #[test]
    fn interleaved_tickets_match_sequential_blocking(
        rounds in prop::collection::vec((0u64..HALF, 1u64..=HALF, 0u64..HALF, 0u64..=HALF), 1..7)
    ) {
        let (mut exec_ice, exec_tees, t0) = setup();
        let (mut block_ice, block_tees, t0b) = setup();
        prop_assert_eq!(t0, t0b);

        // The model: expected plaintext per LPN.
        let mut model: HashMap<u64, Vec<u8>> =
            (0..2 * TEE_PAGES).map(|l| (l, initial(l))).collect();

        let mut t_exec = t0;
        let mut t_block = t0;
        for (round, &(rs, rl, ws, wl)) in rounds.iter().enumerate() {
            // ---- executor instance: everything concurrently in flight.
            let mut plan: Vec<(usize, Vec<Lpn>, Vec<Lpn>)> = Vec::new();
            for tee in 0..2 {
                let (reads, writes) = round_lpns(tee, round, rs, rl, ws, wl);
                plan.push((tee, reads, writes));
            }
            let mut read_tickets = Vec::new();
            for (tee, reads, _) in &plan {
                if !reads.is_empty() {
                    let ticket = exec_ice
                        .submit_batch_async(exec_tees[*tee], reads, t_exec)
                        .unwrap();
                    read_tickets.push(ticket);
                }
            }
            for (tee, _, writes) in &plan {
                if !writes.is_empty() {
                    let pw: Vec<PageWrite> = writes
                        .iter()
                        .map(|&l| PageWrite::with_data(l, written(round, l.raw())))
                        .collect();
                    exec_ice
                        .submit_write_batch_async_as(exec_tees[*tee], pw, t_exec)
                        .unwrap();
                }
            }
            let events = exec_ice.drain_completions();
            for ev in &events {
                prop_assert_eq!(ev.status, PageStatus::Done);
                if ev.kind == TicketKind::Read {
                    prop_assert!(read_tickets.contains(&ev.ticket));
                    prop_assert_eq!(
                        ev.data.as_ref(),
                        model.get(&ev.lpn.raw()),
                        "executor read of lpn {} in round {}",
                        ev.lpn.raw(),
                        round
                    );
                }
                t_exec = t_exec.max(ev.ready_at());
            }

            // ---- blocking instance: the same batches, sequentially.
            for (tee, reads, _) in &plan {
                if !reads.is_empty() {
                    let done = block_ice
                        .submit_batch(block_tees[*tee], reads, t_block)
                        .unwrap();
                    for page in &done.completions {
                        prop_assert_eq!(
                            page.data.as_ref(),
                            model.get(&page.lpn.raw()),
                            "blocking read of lpn {} in round {}",
                            page.lpn.raw(),
                            round
                        );
                    }
                    t_block = t_block.max(done.finished);
                }
            }
            for (tee, _, writes) in &plan {
                if !writes.is_empty() {
                    let pw: Vec<PageWrite> = writes
                        .iter()
                        .map(|&l| PageWrite::with_data(l, written(round, l.raw())))
                        .collect();
                    let done = block_ice
                        .submit_write_batch_as(block_tees[*tee], pw, t_block)
                        .unwrap();
                    t_block = t_block.max(done.finished);
                }
            }

            // Commit the round's writes to the model.
            for (_, _, writes) in &plan {
                for &lpn in writes {
                    model.insert(lpn.raw(), written(round, lpn.raw()));
                }
            }
        }

        // Identical device post-state.
        prop_assert_eq!(
            exec_ice.platform().ftl.valid_pages(),
            block_ice.platform().ftl.valid_pages()
        );
        prop_assert_eq!(exec_ice.stats().pages_stored, block_ice.stats().pages_stored);
        prop_assert_eq!(exec_ice.stats().pages_loaded, block_ice.stats().pages_loaded);

        // Byte-identical read-back of every page on both instances.
        for tee in 0..2usize {
            let base = tee as u64 * TEE_PAGES;
            let lpns: Vec<Lpn> = (base..base + TEE_PAGES).map(Lpn::new).collect();
            let from_exec = exec_ice
                .submit_batch(exec_tees[tee], &lpns, t_exec)
                .unwrap();
            let from_block = block_ice
                .submit_batch(block_tees[tee], &lpns, t_block)
                .unwrap();
            for (e, b) in from_exec.completions.iter().zip(&from_block.completions) {
                prop_assert_eq!(e.lpn, b.lpn);
                prop_assert_eq!(&e.data, &b.data, "lpn {} diverged", e.lpn.raw());
                prop_assert_eq!(e.data.as_ref(), model.get(&e.lpn.raw()));
            }
        }
    }
}
