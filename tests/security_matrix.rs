//! The threat-model matrix (§2.3, §3), executable end to end: each
//! attack demonstrated to *succeed* against the baseline ISC stack and
//! to *fail* against IceClave's defenses.

use iceclave_repro::iceclave_cipher::{CipherEngine, Trivium};
use iceclave_repro::iceclave_core::{
    AbortReason, IceClave, IceClaveConfig, IceClaveError, TeeStatus,
};
use iceclave_repro::iceclave_ftl::FtlError;
use iceclave_repro::iceclave_isc::{IscConfig, IscRuntime};
use iceclave_repro::iceclave_mee::{SecureMemory, VerifyError};
use iceclave_repro::iceclave_trustzone::{AccessType, Region, World};
use iceclave_repro::iceclave_types::{CacheLine, Hertz, Lpn, SimTime};

/// §2.3 attack 1: privilege escalation to reach other users' flash
/// data.
#[test]
fn privilege_escalation_blocked_by_id_bits() {
    // Baseline: succeeds.
    let mut isc = IscRuntime::new(IscConfig::tiny());
    let t = isc
        .platform
        .populate(Lpn::new(0), 8, SimTime::ZERO)
        .unwrap();
    let grant = 0..2;
    let task = isc.offload(vec![grant]);
    isc.corrupt_privilege_table(task, 0..8);
    assert!(
        isc.read_page(task, Lpn::new(7), t).is_ok(),
        "baseline falls"
    );

    // IceClave: the equivalent probe fails the hardware ID-bit check on
    // every path that could reach the data.
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let t = ice.populate(Lpn::new(0), 8, SimTime::ZERO).unwrap();
    let victim: Vec<Lpn> = (0..4).map(Lpn::new).collect();
    let mallory: Vec<Lpn> = (4..8).map(Lpn::new).collect();
    let (_v, t) = ice.offload_code(1024, &victim, t).unwrap();
    let (m, t) = ice.offload_code(1024, &mallory, t).unwrap();
    // Translation probes fail the ID-bit check (and are survivable —
    // the mapping table is readable by design, §4.2).
    for lpn in 0..4 {
        assert!(matches!(
            ice.read_mapping_entry(m, Lpn::new(lpn), t),
            Err(IceClaveError::Ftl(FtlError::AccessDenied { .. }))
        ));
    }
    // A data-path probe is fatal: the denial throws the TEE out
    // (§4.5), so Mallory gets exactly one attempt...
    assert!(matches!(
        ice.read_flash_page(m, Lpn::new(0), t),
        Err(IceClaveError::Ftl(FtlError::AccessDenied { .. }))
    ));
    assert_eq!(
        ice.status(m),
        Some(TeeStatus::Aborted(AbortReason::AccessViolation))
    );
    // ...and every further request from the dead TEE is refused.
    assert!(matches!(
        ice.read_flash_page(m, Lpn::new(1), t),
        Err(IceClaveError::NotRunning(_))
    ));
}

/// §2.3 attack 2: mangling the FTL / flash management.
#[test]
fn ftl_state_is_write_protected_from_normal_world() {
    let ice = IceClave::new(IceClaveConfig::tiny());
    // The mapping table (protected region) is readable — the §4.2
    // optimization — but not writable.
    assert!(ice.attempt_mapping_table_read().is_ok());
    let fault = ice.attempt_mapping_table_write().unwrap_err();
    match fault {
        IceClaveError::Protection(f) => {
            assert_eq!(f.region, Region::Protected);
            assert_eq!(f.world, World::Normal);
            assert_eq!(f.access, AccessType::Write);
        }
        other => panic!("expected a protection fault, got {other}"),
    }
    // Secure-region (FTL code/data) is not even readable.
    let map = ice.memory_map();
    assert!(map
        .check(
            World::Normal,
            iceclave_repro::iceclave_types::PhysAddr::new(0),
            AccessType::Read
        )
        .is_err());
}

/// §2.3 attack 3: bus snooping on flash transfers.
#[test]
fn bus_snooping_sees_only_ciphertext() {
    let mut engine = CipherEngine::new([0x42; 10], Hertz::from_mhz(800), 7);
    let secret = b"4111-1111-1111-1111 credit card".to_vec();
    let (wire_bytes, iv) = engine.encrypt_page(99, &secret);
    // What crosses the bus shares no bytes with the plaintext beyond
    // chance.
    assert_ne!(wire_bytes, secret);
    let matching = wire_bytes
        .iter()
        .zip(secret.iter())
        .filter(|(a, b)| a == b)
        .count();
    assert!(matching < secret.len() / 2, "wire text too similar");
    // The legitimate endpoint recovers the page with the keyed engine.
    assert_eq!(engine.decrypt_page(&iv, &wire_bytes), secret);
    // A snooper who captured the IV (it is public) but lacks the key
    // cannot: decrypting with a guessed key yields garbage.
    let mut wrong = Trivium::new(&[0x41; 10], &iv.bytes());
    let mut attempt = wire_bytes.clone();
    wrong.apply_keystream(&mut attempt);
    assert_ne!(attempt, secret);
}

/// Physical DRAM attacks: tamper, splice, replay, counter rollback.
#[test]
fn dram_physical_attacks_are_detected() {
    let mut mem = SecureMemory::new(32, [9; 16], [7; 16]);
    let a = CacheLine::new(3);
    let b = CacheLine::new(200);
    mem.write_line(a, &[0xAA; 64]);
    mem.write_line(b, &[0xBB; 64]);

    // Splicing: move line b's ciphertext into line a's slot.
    let b_snapshot = mem.snapshot_line(b).unwrap();
    mem.replay_line(a, &b_snapshot);
    assert!(matches!(mem.read_line(a), Err(VerifyError::MacMismatch(_))));

    // Rollback of data+MAC together.
    let mut mem = SecureMemory::new(32, [9; 16], [7; 16]);
    mem.write_line(a, &[1; 64]);
    let old = mem.snapshot_line(a).unwrap();
    mem.write_line(a, &[2; 64]);
    mem.replay_line(a, &old);
    assert!(mem.read_line(a).is_err());

    // Counter rollback is caught by the Merkle tree even though the
    // data+MAC pair is internally consistent with the old counter.
    let mut mem = SecureMemory::new(32, [9; 16], [7; 16]);
    mem.write_line(a, &[1; 64]);
    mem.write_line(a, &[2; 64]);
    mem.tamper_counter(0, |block| {
        // Roll the minor counter back by recreating a fresh block and
        // replaying one increment.
        *block = iceclave_repro::iceclave_mee::SplitCounterBlock::new();
        block.increment(3);
    });
    assert!(matches!(
        mem.read_line(a),
        Err(VerifyError::CounterIntegrity { .. })
    ));
}

/// §4.5: a TEE touching memory outside its region is thrown out, and
/// stays dead.
#[test]
fn out_of_region_access_aborts_the_tee() {
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let t = ice.populate(Lpn::new(0), 2, SimTime::ZERO).unwrap();
    let (tee, t) = ice
        .offload_code(1024, &[Lpn::new(0), Lpn::new(1)], t)
        .unwrap();
    let region_lines = ice.config().tee_region.as_bytes() / 64;
    assert!(matches!(
        ice.mem_write(tee, region_lines, t),
        Err(IceClaveError::RegionViolation { .. })
    ));
    assert_eq!(
        ice.status(tee),
        Some(TeeStatus::Aborted(AbortReason::AccessViolation))
    );
    // Every further request from the dead TEE is refused.
    assert!(matches!(
        ice.read_flash_page(tee, Lpn::new(0), t),
        Err(IceClaveError::NotRunning(_))
    ));
    assert!(matches!(
        ice.get_result(tee, 64, t),
        Err(IceClaveError::NotRunning(_))
    ));
}

/// Baseline contrast: the ISC runtime has no memory isolation at all —
/// IceClave's encrypted DRAM is what closes the gap.
#[test]
fn baseline_has_no_dram_protection() {
    // In the baseline model, DRAM contents equal plaintext by
    // construction (there is no MEE); SecureMemory demonstrates the
    // difference byte-for-byte.
    let mut protected = SecureMemory::new(8, [1; 16], [2; 16]);
    let line = CacheLine::new(0);
    let plain = [0x5A; 64];
    protected.write_line(line, &plain);
    assert_ne!(protected.snoop_line(line).unwrap(), plain);
}
