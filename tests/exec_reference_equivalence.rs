//! Equivalence of the flattened executor and the retained reference
//! implementation (`iceclave_exec::RefExecutor`).
//!
//! The hot-path rewrite (calendar event queue, windowed ticket slab,
//! in-place completion drain) must be *invisible*: for any interleaved
//! read/write schedule, the flattened [`Executor`] and the frozen
//! pre-flattening [`RefExecutor`] must produce identical completion
//! sequences — same order, same bytes, same [`LatencyBreakdown`]s.
//! One toy stage machine implements both driver traits so the two
//! executors run literally the same stage logic.

use std::collections::HashMap;

use proptest::prelude::*;

use iceclave_repro::iceclave_exec::{
    Executor, RefExecutor, RefStageMachine, StageEvent, StageMachine,
};
use iceclave_repro::iceclave_types::{
    CompletionEvent, LatencyBreakdown, Lpn, PageStatus, SimDuration, SimTime, TeeId, Ticket,
    TicketKind,
};

const CHANNELS: usize = 4;

/// The toy pipeline: a contended "channel" stage, then a fixed-latency
/// "flash" stage that retires the page.
#[derive(Copy, Clone, Debug)]
enum ToyStage {
    Prepare,
    Flash,
}

/// Everything the toy machine needs from an executor. Implemented for
/// both [`Executor`] and [`RefExecutor`] so the stage logic below is
/// shared verbatim.
trait Driver {
    #[allow(clippy::too_many_arguments)]
    fn schedule_hierarchical(
        &mut self,
        at: SimTime,
        vtime: u64,
        tvtime: u64,
        ticket: Ticket,
        page: u32,
        s: ToyStage,
    );
    fn push_completion(&mut self, event: CompletionEvent) -> bool;
}

impl Driver for Executor<ToyStage> {
    fn schedule_hierarchical(
        &mut self,
        at: SimTime,
        vtime: u64,
        tvtime: u64,
        ticket: Ticket,
        page: u32,
        s: ToyStage,
    ) {
        Executor::schedule_hierarchical(self, at, vtime, tvtime, ticket, page, s);
    }
    fn push_completion(&mut self, event: CompletionEvent) -> bool {
        Executor::push_completion(self, event)
    }
}

impl Driver for RefExecutor<ToyStage> {
    fn schedule_hierarchical(
        &mut self,
        at: SimTime,
        vtime: u64,
        tvtime: u64,
        ticket: Ticket,
        page: u32,
        s: ToyStage,
    ) {
        RefExecutor::schedule_hierarchical(self, at, vtime, tvtime, ticket, page, s);
    }
    fn push_completion(&mut self, event: CompletionEvent) -> bool {
        RefExecutor::push_completion(self, event)
    }
}

#[derive(Copy, Clone, Debug)]
struct PageMeta {
    kind: TicketKind,
    tee: TeeId,
    lpn: Lpn,
    submitted: SimTime,
    /// Ticket-level virtual tag (the hierarchical WFQ sub-key); part
    /// of the generated schedule so same-tick events exercise the full
    /// (vtime, tvtime, ticket, page) event ordering in both executors.
    tvtime: u64,
}

/// Deterministic toy timing model: per-channel busy timelines plus
/// per-page metadata stashed at submission. One instance per executor;
/// both instances see the same schedule.
#[derive(Default)]
struct ToyModel {
    chan_free: [SimTime; CHANNELS],
    meta: HashMap<(u64, u32), PageMeta>,
}

impl ToyModel {
    #[allow(clippy::too_many_arguments)]
    fn submit<D: Driver>(
        &mut self,
        d: &mut D,
        ticket: Ticket,
        kind: TicketKind,
        tee: TeeId,
        base_lpn: u64,
        pages: u32,
        tvtime: u64,
        now: SimTime,
    ) {
        for page in 0..pages {
            let lpn = Lpn::new(base_lpn + u64::from(page));
            self.meta.insert(
                (ticket.raw(), page),
                PageMeta {
                    kind,
                    tee,
                    lpn,
                    submitted: now,
                    tvtime,
                },
            );
            let vtime = u64::from(tee.raw()) % 3;
            d.schedule_hierarchical(now, vtime, tvtime, ticket, page, ToyStage::Prepare);
        }
    }

    fn step<D: Driver>(&mut self, ev: StageEvent<ToyStage>, d: &mut D) {
        let meta = self.meta[&(ev.ticket.raw(), ev.page)];
        match ev.stage {
            ToyStage::Prepare => {
                let ch = (meta.lpn.raw() as usize) % CHANNELS;
                let extra = if meta.kind == TicketKind::Write {
                    60
                } else {
                    0
                };
                let service = SimDuration::from_nanos(180 + (meta.lpn.raw() % 7) * 35 + extra);
                let start = ev.at.max(self.chan_free[ch]);
                let end = start + service;
                self.chan_free[ch] = end;
                let vtime = u64::from(meta.tee.raw()) % 3;
                d.schedule_hierarchical(
                    end,
                    vtime,
                    meta.tvtime,
                    ev.ticket,
                    ev.page,
                    ToyStage::Flash,
                );
            }
            ToyStage::Flash => {
                let cipher_done = ev.at + SimDuration::from_nanos(150);
                let ready = cipher_done + SimDuration::from_nanos(40);
                let data = match meta.kind {
                    TicketKind::Read => Some(vec![meta.lpn.raw() as u8; 8]),
                    TicketKind::Write => None,
                };
                d.push_completion(CompletionEvent {
                    ticket: ev.ticket,
                    kind: meta.kind,
                    tee: meta.tee,
                    index: ev.page,
                    lpn: meta.lpn,
                    status: PageStatus::Done,
                    breakdown: LatencyBreakdown {
                        submitted: meta.submitted,
                        prepared: ev.at,
                        flash_done: ev.at,
                        cipher_done,
                        ready,
                    },
                    data,
                });
            }
        }
    }
}

impl StageMachine for ToyModel {
    type Stage = ToyStage;
    fn advance(&mut self, ev: StageEvent<ToyStage>, exec: &mut Executor<ToyStage>) {
        self.step(ev, exec);
    }
}

impl RefStageMachine for ToyModel {
    type Stage = ToyStage;
    fn advance(&mut self, ev: StageEvent<ToyStage>, exec: &mut RefExecutor<ToyStage>) {
        self.step(ev, exec);
    }
}

/// One submitted batch of the generated schedule.
#[derive(Copy, Clone, Debug)]
struct Batch {
    write: bool,
    tee: u16,
    base_lpn: u64,
    pages: u32,
    gap_ns: u64,
    /// Ticket-level virtual tag: collides across batches (0..3) so
    /// same-vtime same-tick events tie-break through the tvtime and
    /// ticket-id components of the event key.
    tvtime: u64,
}

fn batch_strategy() -> impl Strategy<Value = Batch> {
    (
        any::<bool>(),
        0u16..4,
        0u64..32,
        0u32..5,
        0u64..500,
        0u64..3,
    )
        .prop_map(|(write, tee, base_lpn, pages, gap_ns, tvtime)| Batch {
            write,
            tee,
            base_lpn,
            pages,
            gap_ns,
            tvtime,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleaved read/write schedules produce identical
    /// completion sequences, bytes, and latency breakdowns through the
    /// flattened executor and the reference implementation.
    #[test]
    fn flattened_executor_matches_reference(batches in prop::collection::vec(batch_strategy(), 1..12)) {
        let mut exec: Executor<ToyStage> = Executor::new();
        let mut reference: RefExecutor<ToyStage> = RefExecutor::new();
        let mut model_a = ToyModel::default();
        let mut model_b = ToyModel::default();

        let mut now = SimTime::ZERO;
        let mut tickets: Vec<(Ticket, Ticket)> = Vec::new();
        for batch in &batches {
            now += SimDuration::from_nanos(batch.gap_ns);
            let kind = if batch.write { TicketKind::Write } else { TicketKind::Read };
            let tee = TeeId::new(batch.tee).unwrap();

            let ta = exec.open_ticket(kind, batch.pages, now);
            let tb = reference.open_ticket(kind, batch.pages, now);
            prop_assert_eq!(ta, tb, "ticket allocators diverged");
            tickets.push((ta, tb));

            model_a.submit(&mut exec, ta, kind, tee, batch.base_lpn, batch.pages, batch.tvtime, now);
            model_b.submit(&mut reference, tb, kind, tee, batch.base_lpn, batch.pages, batch.tvtime, now);

            // Interleave partial progress with further submissions:
            // both executors step to `now` and drain what is due.
            exec.run_until(&mut model_a, now);
            reference.run_until(&mut model_b, now);
            prop_assert_eq!(exec.poll(now), reference.poll(now));
        }

        exec.run_to_idle(&mut model_a);
        reference.run_to_idle(&mut model_b);

        for &(ta, tb) in &tickets {
            prop_assert_eq!(exec.is_closed(ta), reference.is_closed(tb));
            prop_assert_eq!(exec.finished_at(ta), reference.finished_at(tb));
        }

        // The final drain must agree event-for-event: order, payload
        // bytes, and every stage timestamp of the breakdown.
        prop_assert_eq!(exec.drain_all(), reference.drain_all());
        prop_assert_eq!(exec.pending_events(), 0);
        prop_assert_eq!(reference.pending_events(), 0);
    }
}
