//! Cross-crate integration tests: the full offload pipeline from host
//! staging through TEE execution to result retrieval, across execution
//! modes.

use iceclave_repro::iceclave_core::{IceClave, IceClaveConfig, IceClaveError, TeeStatus};
use iceclave_repro::iceclave_experiments::{run, Mode, Overrides};
use iceclave_repro::iceclave_ftl::FtlError;
use iceclave_repro::iceclave_types::{ByteSize, Lpn, SimDuration, SimTime};
use iceclave_repro::iceclave_workloads::{WorkloadConfig, WorkloadKind};

fn small() -> WorkloadConfig {
    WorkloadConfig::test()
}

#[test]
fn all_workloads_agree_across_all_modes() {
    // The same seeded dataset must produce the identical answer whether
    // computed on the host, in SGX, in plain ISC or inside IceClave.
    let cfg = small();
    for kind in WorkloadKind::ALL {
        let reference = run(Mode::Host, kind, &cfg, &Overrides::none());
        for mode in [Mode::HostSgx, Mode::Isc, Mode::IceClave] {
            let result = run(mode, kind, &cfg, &Overrides::none());
            assert_eq!(
                result.output, reference.output,
                "{kind} differs between Host and {mode}"
            );
        }
    }
}

#[test]
fn security_never_changes_answers_only_time() {
    let cfg = small();
    for kind in [WorkloadKind::TpchQ3, WorkloadKind::TpcB] {
        let isc = run(Mode::Isc, kind, &cfg, &Overrides::none());
        let ice = run(Mode::IceClave, kind, &cfg, &Overrides::none());
        assert_eq!(isc.output, ice.output);
        assert!(ice.total >= isc.total, "{kind}: security cannot be free");
    }
}

#[test]
fn full_tee_lifecycle_with_many_tees() {
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let mut t = ice.populate(Lpn::new(0), 30, SimTime::ZERO).unwrap();
    // Two generations of TEEs exercising id recycling under load.
    for generation in 0..2 {
        let mut live = Vec::new();
        for i in 0..10u64 {
            let lpns = vec![Lpn::new(i * 3), Lpn::new(i * 3 + 1), Lpn::new(i * 3 + 2)];
            let (tee, t2) = ice.offload_code(32 << 10, &lpns, t).unwrap();
            t = t2;
            live.push((tee, lpns));
        }
        for (tee, lpns) in &live {
            t = ice.read_flash_page(*tee, lpns[0], t).unwrap();
            t = ice.mem_write(*tee, 1000, t).unwrap();
            t = ice.mem_read(*tee, 1000, t).unwrap();
        }
        for (tee, _) in live {
            t = ice.terminate_tee(tee, t).unwrap();
            assert_eq!(ice.status(tee), Some(TeeStatus::Terminated));
        }
        let _ = generation;
    }
    let stats = ice.stats();
    assert_eq!(stats.created, 20);
    assert_eq!(stats.terminated, 20);
    assert!(stats.id_reuses >= 5, "ids must recycle across generations");
}

#[test]
fn terminated_tee_pages_are_not_accessible_by_next_owner_of_id() {
    // ID recycling must not leak access: after TEE A (id X) dies, a new
    // TEE B reusing id X must not reach A's pages.
    let mut ice = IceClave::new(IceClaveConfig::tiny());
    let mut t = ice.populate(Lpn::new(0), 8, SimTime::ZERO).unwrap();
    let a_pages: Vec<Lpn> = (0..4).map(Lpn::new).collect();
    let b_pages: Vec<Lpn> = (4..8).map(Lpn::new).collect();

    let (a, t2) = ice.offload_code(1024, &a_pages, t).unwrap();
    t = ice.terminate_tee(a, t2).unwrap();

    // B gets the recycled id (LIFO pool) but different pages.
    let (b, t3) = ice.offload_code(1024, &b_pages, t).unwrap();
    t = t3;
    assert_eq!(a.raw(), b.raw(), "id should be recycled (LIFO)");
    let err = ice.read_flash_page(b, Lpn::new(0), t).unwrap_err();
    assert!(
        matches!(err, IceClaveError::Ftl(FtlError::AccessDenied { .. })),
        "recycled id must not inherit old grants: {err}"
    );
}

#[test]
fn sweeps_preserve_answer_and_ordering() {
    let cfg = small();
    let kind = WorkloadKind::Filter;
    let base = run(Mode::IceClave, kind, &cfg, &Overrides::none());
    // Fewer channels: slower, same answer.
    let narrow = run(
        Mode::IceClave,
        kind,
        &cfg,
        &Overrides {
            channels: Some(4),
            ..Overrides::none()
        },
    );
    assert_eq!(narrow.output, base.output);
    assert!(narrow.total >= base.total);
    // Slower flash: slower, same answer.
    let slow_flash = run(
        Mode::IceClave,
        kind,
        &cfg,
        &Overrides {
            flash_read_latency: Some(SimDuration::from_micros(110)),
            ..Overrides::none()
        },
    );
    assert_eq!(slow_flash.output, base.output);
    assert!(slow_flash.total >= base.total);
}

#[test]
fn smaller_dram_never_helps() {
    let cfg = small();
    for kind in [WorkloadKind::TpcB, WorkloadKind::TpchQ14] {
        let big = run(Mode::Isc, kind, &cfg, &Overrides::none());
        let small_dram = run(
            Mode::Isc,
            kind,
            &cfg,
            &Overrides {
                dram_capacity: Some(ByteSize::from_gib(2)),
                ..Overrides::none()
            },
        );
        assert!(
            small_dram.total >= big.total,
            "{kind}: 2GiB {} vs 4GiB {}",
            small_dram.total,
            big.total
        );
    }
}

#[test]
fn cmt_miss_rate_is_paper_scale() {
    // §6.3: only 0.17% of translations miss the cached mapping table.
    let cfg = WorkloadConfig {
        functional_bytes: ByteSize::from_mib(2),
        ..WorkloadConfig::test()
    };
    let r = run(
        Mode::IceClave,
        WorkloadKind::TpchQ1,
        &cfg,
        &Overrides::none(),
    );
    assert!(
        r.cmt_miss_rate < 0.02,
        "streaming translation miss rate {} too high",
        r.cmt_miss_rate
    );
}

#[test]
fn world_switch_accounting_is_consistent() {
    let cfg = small();
    let ice = run(
        Mode::IceClave,
        WorkloadKind::Aggregate,
        &cfg,
        &Overrides::none(),
    );
    let ablation = run(
        Mode::IceClaveMapSecure,
        WorkloadKind::Aggregate,
        &cfg,
        &Overrides::none(),
    );
    assert!(ablation.world_switches > ice.world_switches);
    assert!(ablation.total > ice.total);
}
