//! Acceptance tests of the event-driven batch executor
//! (`iceclave_exec` + `IceClave::submit_batch_async` /
//! `poll_completions`).
//!
//! * Two concurrently submitted 32-page batches on a 16-channel device
//!   must complete in measurably less total simulated time than the
//!   same two batches run back-to-back through the blocking API, while
//!   the delivered bytes stay identical.
//! * Completion sequences are deterministic, and same-tick completions
//!   drain in the documented *(ticket id, page index)* order.

use iceclave_repro::iceclave_core::{AbortReason, IceClave, IceClaveError, TeeStatus};
use iceclave_repro::iceclave_experiments::{Mode, Overrides};
use iceclave_repro::iceclave_ftl::FtlError;
use iceclave_repro::iceclave_types::{
    CompletionEvent, Lpn, PageStatus, PageWrite, SimTime, TeeId, TicketKind,
};

const BATCH: u64 = 32;

fn payload(i: u64) -> Vec<u8> {
    (0..4096u32).map(|b| (b as u8) ^ (i as u8) ^ 0x3C).collect()
}

/// A 16-channel device with 2 TEEs, each granted `BATCH` pages of
/// staged functional content.
fn setup(channels: u32) -> (IceClave, TeeId, TeeId, Vec<Lpn>, Vec<Lpn>, SimTime) {
    let overrides = Overrides {
        channels: Some(channels),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice.populate(Lpn::new(0), 2 * BATCH, SimTime::ZERO).unwrap();
    for i in 0..2 * BATCH {
        ice.host_store_data(Lpn::new(i), &payload(i), t).unwrap();
    }
    let a_lpns: Vec<Lpn> = (0..BATCH).map(Lpn::new).collect();
    let b_lpns: Vec<Lpn> = (BATCH..2 * BATCH).map(Lpn::new).collect();
    let (tee_a, t) = ice.offload_code(1024, &a_lpns, t).unwrap();
    let (tee_b, t) = ice.offload_code(1024, &b_lpns, t).unwrap();
    (ice, tee_a, tee_b, a_lpns, b_lpns, t)
}

#[test]
fn concurrent_batches_beat_back_to_back_blocking() {
    // Back-to-back through the blocking API: B only enters the device
    // once A's last page sits in its input ring.
    let (mut blocking, tee_a, tee_b, a_lpns, b_lpns, t0) = setup(16);
    let a = blocking.submit_batch(tee_a, &a_lpns, t0).unwrap();
    let b = blocking.submit_batch(tee_b, &b_lpns, a.finished).unwrap();
    let blocking_total = b.finished.saturating_since(t0);

    // Concurrently through the executor: both tickets in flight at t0,
    // pages interleaving at stage granularity.
    let (mut exec, tee_a2, tee_b2, a_lpns2, b_lpns2, t1) = setup(16);
    assert_eq!(t0, t1, "identical setups share a clock");
    let ta = exec.submit_batch_async(tee_a2, &a_lpns2, t1).unwrap();
    let tb = exec.submit_batch_async(tee_b2, &b_lpns2, t1).unwrap();
    assert_eq!(exec.in_flight_tickets(), 2);
    let events = exec.drain_completions();
    assert_eq!(events.len(), 2 * BATCH as usize);
    assert_eq!(exec.in_flight_tickets(), 0);
    let concurrent_total = events
        .iter()
        .map(CompletionEvent::ready_at)
        .max()
        .unwrap()
        .saturating_since(t1);

    // The acceptance criterion: measurably less total simulated time.
    assert!(
        concurrent_total < blocking_total,
        "concurrent {concurrent_total} not faster than back-to-back {blocking_total}"
    );
    assert!(
        concurrent_total.as_nanos_f64() < 0.8 * blocking_total.as_nanos_f64(),
        "win not measurable: concurrent {concurrent_total} vs back-to-back {blocking_total}"
    );

    // ...while poll_completions delivers byte-identical plaintext.
    for ev in &events {
        assert_eq!(ev.status, PageStatus::Done);
        assert_eq!(ev.kind, TicketKind::Read);
        let (expected_lpn, blocking_page) = if ev.ticket == ta {
            (
                a_lpns2[ev.index as usize],
                &a.completions[ev.index as usize],
            )
        } else {
            assert_eq!(ev.ticket, tb);
            (
                b_lpns2[ev.index as usize],
                &b.completions[ev.index as usize],
            )
        };
        assert_eq!(ev.lpn, expected_lpn);
        assert_eq!(
            ev.data, blocking_page.data,
            "bytes must match the blocking path"
        );
        assert_eq!(ev.data.as_deref(), Some(&payload(ev.lpn.raw())[..]));
    }
}

/// The latency breakdown of every page is stage-monotone.
#[test]
fn completion_breakdown_is_stage_monotone() {
    let (mut ice, tee_a, _tee_b, a_lpns, _b, t0) = setup(16);
    let ticket = ice.submit_batch_async(tee_a, &a_lpns, t0).unwrap();
    let events = ice.drain_completions();
    assert_eq!(events.len(), BATCH as usize);
    for ev in &events {
        assert_eq!(ev.ticket, ticket);
        let b = ev.breakdown;
        assert_eq!(b.submitted, t0);
        assert!(b.prepared >= b.submitted, "translate after submit");
        assert!(b.flash_done > b.prepared, "flash after translate");
        assert!(b.cipher_done >= b.flash_done, "decrypt after flash");
        assert!(b.ready > b.cipher_done, "fill retires the page");
        assert!(b.total().as_nanos() > 0);
    }
}

/// Interleaved read and write tickets from two TEEs produce the exact
/// same completion sequence on every run (the determinism regression
/// of the completion-queue contract).
#[test]
fn completion_stream_is_deterministic() {
    let run = || {
        let (mut ice, tee_a, tee_b, a_lpns, b_lpns, t0) = setup(8);
        let mut trace: Vec<(u64, u32, u64, u64, bool)> = Vec::new();
        // Two TEEs, reads and writes concurrently in flight.
        let _ta = ice.submit_batch_async(tee_a, &a_lpns, t0).unwrap();
        let writes: Vec<PageWrite> = b_lpns[..16]
            .iter()
            .map(|&lpn| PageWrite::with_data(lpn, payload(lpn.raw() ^ 1)))
            .collect();
        let _tb = ice.submit_write_batch_async_as(tee_b, writes, t0).unwrap();
        let _tc = ice.submit_batch_async(tee_b, &b_lpns[16..], t0).unwrap();
        for ev in ice.drain_completions() {
            trace.push((
                ev.ticket.raw(),
                ev.index,
                ev.ready_at().as_ps(),
                ev.lpn.raw(),
                ev.status == PageStatus::Done,
            ));
        }
        (trace, ice.platform().ftl.valid_pages())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "identical runs must drain identically");
}

/// Same-tick completions drain in (ticket id, page index) order, and
/// the stream is globally sorted by ready time.
#[test]
fn drain_order_is_ready_then_ticket_then_page() {
    let (mut ice, tee_a, tee_b, a_lpns, b_lpns, t0) = setup(8);
    ice.submit_batch_async(tee_a, &a_lpns, t0).unwrap();
    ice.submit_batch_async(tee_b, &b_lpns, t0).unwrap();
    let events = ice.drain_completions();
    let keys: Vec<(u64, u64, u32)> = events
        .iter()
        .map(|e| (e.ready_at().as_ps(), e.ticket.raw(), e.index))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys,
        sorted,
        "violated the documented contract: {}",
        iceclave_repro::iceclave_exec::DRAIN_ORDER_CONTRACT
    );
}

/// `poll_completions(now)` only surfaces completions that are ready,
/// and leaves the rest of the pipeline in flight.
#[test]
fn poll_respects_the_simulated_clock() {
    let (mut ice, tee_a, _tee_b, a_lpns, _b, t0) = setup(8);
    ice.submit_batch_async(tee_a, &a_lpns, t0).unwrap();
    // Nothing can have completed at submission time.
    assert!(ice.poll_completions(t0).is_empty());
    assert_eq!(ice.in_flight_tickets(), 1);
    // Drain fully, then poll at the final clock: everything is out.
    let all = ice.drain_completions();
    assert_eq!(all.len(), BATCH as usize);
    assert!(ice.poll_completions(ice.exec_clock()).is_empty());
}

/// The asynchronous submission keeps the §4.5 contract: a foreign page
/// denies the whole batch at submission and throws the TEE out before
/// any flash traffic.
#[test]
fn async_submission_enforces_access_control_atomically() {
    let (mut ice, tee_a, _tee_b, _a, b_lpns, t0) = setup(8);
    let reads_before = ice.platform().ftl.flash().stats().reads;
    let err = ice.submit_batch_async(tee_a, &b_lpns[..1], t0).unwrap_err();
    assert!(matches!(
        err,
        IceClaveError::Ftl(FtlError::AccessDenied { .. })
    ));
    assert_eq!(
        ice.status(tee_a),
        Some(TeeStatus::Aborted(AbortReason::AccessViolation))
    );
    assert_eq!(
        ice.platform().ftl.flash().stats().reads,
        reads_before,
        "denial must precede any flash traffic"
    );
    assert_eq!(ice.in_flight_tickets(), 0);
}

/// Tearing a TEE down cancels its in-flight tickets: the remaining
/// pages fail immediately, no stale stage event can write into the
/// recycled region, and a new TEE taking over the region and id is
/// unaffected.
#[test]
fn teardown_cancels_in_flight_tickets() {
    let (mut ice, tee_a, tee_b, a_lpns, b_lpns, t0) = setup(8);
    let ta = ice.submit_batch_async(tee_a, &a_lpns, t0).unwrap();
    let tb = ice.submit_batch_async(tee_b, &b_lpns, t0).unwrap();
    // A dies with its ticket in flight; its region and id go back to
    // the pools.
    let t1 = ice.terminate_tee(tee_a, t0).unwrap();
    // A new TEE immediately reuses the freed resources.
    let (tee_c, t2) = ice.offload_code(1024, &a_lpns, t1).unwrap();
    assert_eq!(tee_c, tee_a, "LIFO id pool hands A's id to C");
    let tc = ice.submit_batch_async(tee_c, &a_lpns, t2).unwrap();

    // Waiting on the dead TEE's ticket reports the cancellation...
    assert!(matches!(
        ice.wait_batch(ta),
        Err(IceClaveError::NotRunning(t)) if t == tee_a
    ));
    // ...while B's and C's tickets complete untouched, byte-perfect.
    let b_done = ice.wait_batch(tb).unwrap();
    let c_done = ice.wait_batch(tc).unwrap();
    assert_eq!(b_done.len(), BATCH as usize);
    assert_eq!(c_done.len(), BATCH as usize);
    for page in b_done.completions.iter().chain(&c_done.completions) {
        assert_eq!(page.data.as_deref(), Some(&payload(page.lpn.raw())[..]));
    }
    assert_eq!(ice.in_flight_tickets(), 0);
    // A second wait on the drained dead ticket is an explicit error,
    // not a fabricated empty completion.
    assert!(matches!(
        ice.wait_batch(ta),
        Err(IceClaveError::UnknownTicket(t)) if t == ta
    ));
}

/// Mixing the two drain styles on one ticket fails loudly instead of
/// silently truncating the waited completion.
#[test]
fn wait_after_partial_poll_is_an_explicit_error() {
    // Twin run to learn when the batch's first page retires.
    let (mut twin, tee_t, _tb, lpns_t, _bl, t0) = setup(8);
    twin.submit_batch_async(tee_t, &lpns_t, t0).unwrap();
    let readies: Vec<SimTime> = twin
        .drain_completions()
        .iter()
        .map(CompletionEvent::ready_at)
        .collect();
    let first = *readies.iter().min().unwrap();
    let last = *readies.iter().max().unwrap();
    assert!(first < last, "a 32-page batch does not retire in one tick");

    let (mut ice, tee_a, _b, a_lpns, _bl2, t1) = setup(8);
    let ticket = ice.submit_batch_async(tee_a, &a_lpns, t1).unwrap();
    let polled = ice.poll_completions(first);
    assert!(!polled.is_empty(), "first page is ready");
    assert!(polled.len() < BATCH as usize, "later pages are not");
    assert!(matches!(
        ice.wait_batch(ticket),
        Err(IceClaveError::UnknownTicket(t)) if t == ticket
    ));
}

/// The blocking calls are thin wrappers: submit-async + wait equals
/// the blocking call on an identical device, bit for bit.
#[test]
fn blocking_wrapper_equals_manual_submit_and_wait() {
    let (mut via_wrapper, tee_a, _t, a_lpns, _b, t0) = setup(8);
    let (mut via_async, tee_a2, _t2, a_lpns2, _b2, _) = setup(8);
    let blocking = via_wrapper.submit_batch(tee_a, &a_lpns, t0).unwrap();
    let ticket = via_async.submit_batch_async(tee_a2, &a_lpns2, t0).unwrap();
    let waited = via_async.wait_batch(ticket).unwrap();
    assert_eq!(blocking, waited);

    let writes: Vec<PageWrite> = a_lpns.iter().map(|&l| PageWrite::new(l)).collect();
    let blocking_w = via_wrapper
        .submit_write_batch_as(tee_a, writes.clone(), blocking.finished)
        .unwrap();
    let ticket_w = via_async
        .submit_write_batch_async_as(tee_a2, writes, waited.finished)
        .unwrap();
    let waited_w = via_async.wait_write_batch(ticket_w).unwrap();
    assert_eq!(blocking_w, waited_w);
}
