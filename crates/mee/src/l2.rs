//! The DRAM-backed second-level counter store.
//!
//! The on-chip [`MetaCache`](crate::MetaCache) is SRAM — 128 KiB in
//! Table 3 — and Figure 8's ablation shows its hit rate collapsing once
//! a workload's metadata working set outgrows that coverage: every miss
//! then pays a multi-fetch Merkle walk. [`L2MetaStore`] is the next
//! level of the hierarchy: a write-back, set-associative store for
//! evicted metadata blocks, living in a **reserved region of the SSD's
//! internal DRAM** (carved out of the top of the protected address
//! space, so its traffic contends with program data on the same banks
//! and buses).
//!
//! # Trust argument
//!
//! DRAM is outside the MEE's trust boundary, so an L2 block cannot be
//! trusted the way an SRAM-resident block is. Instead every demoted
//! block is *sealed*: stored together with a MAC under a per-boot
//! session key that binds the block's id, payload and demotion epoch.
//! The session key never leaves the MEE and is regenerated at boot, so
//! a sealed block cannot be forged (no key), spliced (the id is bound),
//! or replayed across boots (fresh key). Within a boot, replaying a
//! *stale* sealed block is prevented by the store's exclusivity: a
//! block lives in exactly one place (L1 *or* its L2 slot *or* its home
//! location with the tree covering it), and promotion removes the L2
//! copy, so there is never an old sealed copy left to replay. An L2 hit
//! therefore costs **one DRAM fetch plus one MAC check** instead of the
//! Merkle walk a cold miss pays — the same reason SGX-style designs
//! cache verified tree levels.
//!
//! This module is purely the *structure* (slots, tags, LRU, dirty
//! bits); the engine owns the timing (DRAM fetches, MAC latency) and
//! the billing. The store is **exclusive** with L1: blocks demote in on
//! L1 eviction and promote out on an L2 hit, so combined reach is the
//! sum of the two capacities.

use iceclave_types::{ByteSize, CacheLine};

use crate::engine::KIND_BITS;

/// One occupied slot: the sealed block's id, its deferred write-back
/// obligation, and the LRU stamp.
#[derive(Copy, Clone, Debug)]
struct Slot {
    block: u64,
    dirty: bool,
    stamp: u64,
}

/// A promoted block: where its sealed copy lives in DRAM and whether it
/// still owes a home write-back.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct L2Promotion {
    /// The DRAM line of the slot holding the sealed block (the fetch
    /// the hit pays).
    pub line: CacheLine,
    /// Whether the block was demoted dirty; the promotion must carry
    /// the write-back obligation up into L1.
    pub dirty: bool,
}

/// A demotion outcome: where to write the sealed block and any dirty
/// victim displaced to its home location.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct L2Demotion {
    /// The DRAM line of the slot the sealed block is written to.
    pub slot: CacheLine,
    /// A dirty victim evicted from the store, which must be written
    /// back to its home metadata location (clean victims are dropped —
    /// their home copy is current).
    pub home_writeback: Option<u64>,
}

/// The second-level metadata store: set-associative, write-back,
/// exclusive with the on-chip cache, with every slot pinned to a fixed
/// cache line inside the reserved DRAM region.
///
/// # Examples
///
/// ```
/// use iceclave_mee::L2MetaStore;
/// use iceclave_types::ByteSize;
///
/// let mut l2 = L2MetaStore::new(ByteSize::from_kib(64), 16, 1 << 20);
/// let d = l2.demote(7, false); // an L1 victim moves in
/// assert!(l2.contains(7));
/// let p = l2.take(7).expect("hit"); // and promotes back out
/// assert_eq!(p.line, d.slot);
/// assert!(!l2.contains(7));
/// ```
#[derive(Clone, Debug)]
pub struct L2MetaStore {
    /// Flat `set_count * ways` slot array; slot `i` is pinned to DRAM
    /// line `base_line + i`.
    slots: Vec<Option<Slot>>,
    ways: usize,
    base_line: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    demotions: u64,
    writebacks: u64,
}

impl L2MetaStore {
    /// Creates a store of `capacity` bytes of 64 B sealed blocks with
    /// `ways` associativity, whose slots occupy the DRAM lines
    /// `[base_line, base_line + blocks)`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer blocks than one set.
    pub fn new(capacity: ByteSize, ways: usize, base_line: u64) -> Self {
        let blocks = (capacity.as_bytes() / 64) as usize;
        assert!(
            ways > 0 && blocks >= ways,
            "L2 store must hold at least one set"
        );
        let set_count = (blocks / ways).max(1);
        L2MetaStore {
            slots: vec![None; set_count * ways],
            ways,
            base_line,
            tick: 0,
            hits: 0,
            misses: 0,
            demotions: 0,
            writebacks: 0,
        }
    }

    fn set_count(&self) -> usize {
        self.slots.len() / self.ways
    }

    /// Stride-aware set selection, chosen for **DRAM row locality**
    /// rather than maximal scatter: block ids carry their kind tag in
    /// the low [`KIND_BITS`] bits, so shifting it out makes sequential
    /// payloads (a page sweep's counters, a scan's MAC blocks) occupy
    /// *sequential* sets — and, through the way-major slot layout,
    /// sequential DRAM lines, which stream through the row buffers
    /// instead of conflicting on every access. The XOR-fold of the high
    /// bits breaks the one pathological case (payloads strided by
    /// exactly `set_count`) without disturbing local sequentiality.
    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let sets = self.set_count() as u64;
        let payload = block >> KIND_BITS;
        let set = ((payload ^ (payload / sets)) % sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Way-major slot placement: way `w` of set `s` lives at line
    /// `base + w * set_count + s`, so the common way-0 slots of
    /// sequential sets are bank-interleaved, row-sharing neighbours.
    fn slot_line(&self, index: usize) -> CacheLine {
        let set = index / self.ways;
        let way = index % self.ways;
        CacheLine::new(self.base_line + (way * self.set_count() + set) as u64)
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Probes the store after an L1 miss. On a hit the block is
    /// *promoted out* (the hierarchy is exclusive): the slot is freed
    /// and the caller fetches the sealed block from the returned line.
    pub fn take(&mut self, block: u64) -> Option<L2Promotion> {
        let range = self.set_range(block);
        for i in range {
            if let Some(slot) = self.slots[i] {
                if slot.block == block {
                    self.slots[i] = None;
                    self.hits += 1;
                    return Some(L2Promotion {
                        line: self.slot_line(i),
                        dirty: slot.dirty,
                    });
                }
            }
        }
        self.misses += 1;
        None
    }

    /// Demotes an L1 victim into the store (dirty or clean — the store
    /// is a victim cache, so read-mostly metadata populates it too).
    /// Returns the slot to write the sealed block to and any dirty
    /// victim displaced to its home location.
    pub fn demote(&mut self, block: u64, dirty: bool) -> L2Demotion {
        self.demotions += 1;
        let stamp = self.next_stamp();
        let range = self.set_range(block);
        // Already resident (possible after an invalidation raced a
        // demotion): refresh in place, merging the dirty bit.
        for i in range.clone() {
            if let Some(slot) = &mut self.slots[i] {
                if slot.block == block {
                    slot.dirty |= dirty;
                    slot.stamp = stamp;
                    return L2Demotion {
                        slot: self.slot_line(i),
                        home_writeback: None,
                    };
                }
            }
        }
        // Free slot if any, else evict the LRU way.
        let target = range
            .clone()
            .find(|&i| self.slots[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.slots[i].map_or(0, |s| s.stamp))
                    .expect("set has at least one way")
            });
        let mut home_writeback = None;
        if let Some(victim) = self.slots[target] {
            if victim.dirty {
                home_writeback = Some(victim.block);
                self.writebacks += 1;
            }
        }
        self.slots[target] = Some(Slot {
            block,
            dirty,
            stamp,
        });
        L2Demotion {
            slot: self.slot_line(target),
            home_writeback,
        }
    }

    /// Removes `block` if resident, returning `true` if it was dirty
    /// (stale-metadata invalidation: migrations and the bulk fill/seal
    /// engines, which write fresh counters straight to DRAM).
    pub fn invalidate(&mut self, block: u64) -> bool {
        for i in self.set_range(block) {
            if let Some(slot) = self.slots[i] {
                if slot.block == block {
                    self.slots[i] = None;
                    return slot.dirty;
                }
            }
        }
        false
    }

    /// True if `block` is resident (no LRU or stats update).
    pub fn contains(&self, block: u64) -> bool {
        self.set_range(block)
            .any(|i| self.slots[i].is_some_and(|s| s.block == block))
    }

    /// Every resident block id (test/debug probe for the exclusivity
    /// invariant).
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter_map(|s| s.map(|s| s.block))
    }

    /// First DRAM line of the reserved region.
    pub fn base_line(&self) -> u64 {
        self.base_line
    }

    /// Total sealed blocks the store can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.slots.len()
    }

    /// Probe hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Demotions accepted so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Dirty evictions to home locations so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Probe hit rate in `[0,1]`, zero when never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn store() -> L2MetaStore {
        // 4 sets x 2 ways = 8 blocks at base line 1000.
        L2MetaStore::new(ByteSize::from_bytes(8 * 64), 2, 1000)
    }

    /// First `n` block ids mapping to the same set as `anchor`.
    fn colliding(s: &L2MetaStore, anchor: u64, n: usize) -> Vec<u64> {
        let set = s.set_range(anchor).start;
        (0u64..)
            .filter(|&b| s.set_range(b).start == set)
            .take(n)
            .collect()
    }

    #[test]
    fn demote_then_take_roundtrips() {
        let mut s = store();
        let d = s.demote(42, true);
        assert!(d.slot.raw() >= 1000 && d.slot.raw() < 1008);
        assert_eq!(d.home_writeback, None);
        let p = s.take(42).expect("resident");
        assert_eq!(p.line, d.slot);
        assert!(p.dirty);
        assert!(!s.contains(42), "promotion is exclusive");
        assert_eq!(s.hits(), 1);
        assert_eq!(s.take(42), None);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn dirty_eviction_goes_home_clean_is_dropped() {
        let mut s = store();
        let ids = colliding(&s, 0, 4);
        s.demote(ids[0], true);
        s.demote(ids[1], false);
        // Evicts ids[0] (LRU, dirty) -> home write-back.
        let d = s.demote(ids[2], false);
        assert_eq!(d.home_writeback, Some(ids[0]));
        assert_eq!(s.writebacks(), 1);
        // Evicts ids[1] (clean) -> dropped.
        let d = s.demote(ids[3], false);
        assert_eq!(d.home_writeback, None);
        assert_eq!(s.writebacks(), 1);
    }

    #[test]
    fn redemotion_merges_dirty_in_place() {
        let mut s = store();
        let d1 = s.demote(9, false);
        let d2 = s.demote(9, true);
        assert_eq!(d1.slot, d2.slot, "same slot reused");
        assert_eq!(s.demotions(), 2);
        assert!(s.take(9).expect("resident").dirty, "dirty bit merged");
    }

    #[test]
    fn invalidate_reports_dirtiness_and_frees_slot() {
        let mut s = store();
        s.demote(5, true);
        assert!(s.invalidate(5));
        assert!(!s.contains(5));
        assert!(!s.invalidate(5));
    }

    #[test]
    fn slots_are_pinned_to_the_reserved_region() {
        let mut s = L2MetaStore::new(ByteSize::from_kib(64), 16, 1 << 20);
        assert_eq!(s.capacity_blocks(), 1024);
        for b in 0..2048u64 {
            let d = s.demote(b, false);
            let line = d.slot.raw();
            assert!(
                (1 << 20..(1 << 20) + 1024).contains(&line),
                "slot line {line} outside the reserved region"
            );
        }
    }

    #[test]
    fn lru_within_set() {
        let mut s = store();
        let ids = colliding(&s, 0, 3);
        s.demote(ids[0], false);
        s.demote(ids[1], false);
        // Touch ids[0] via a probe round-trip to refresh it.
        let p = s.take(ids[0]).expect("resident");
        let _ = p;
        s.demote(ids[0], false);
        // Now ids[1] is LRU; ids[2] replaces it.
        s.demote(ids[2], false);
        assert!(s.contains(ids[0]));
        assert!(!s.contains(ids[1]));
        assert!(s.contains(ids[2]));
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_ways_panics() {
        let _ = L2MetaStore::new(ByteSize::from_kib(1), 0, 0);
    }
}
