//! The MEE timing/traffic engine.
//!
//! Decomposes every program-visible cache-line access into its DRAM data
//! access plus the metadata traffic (encryption counters, data MACs,
//! integrity-tree nodes) implied by the configured counter mode, all
//! filtered through the two-level metadata hierarchy: the on-chip
//! counter cache (L1), then — when configured — the MAC-sealed
//! [`L2MetaStore`] in a reserved region of SSD DRAM, and only then the
//! home location with its Merkle verification walk. Metadata is
//! write-back at both levels: updates dirty L1 blocks, L1 victims
//! demote into L2, and dirty L2 victims reach their home location on
//! eviction — which is what keeps Table 6's extra-traffic percentages
//! tied to write intensity.

use iceclave_dram::{Dram, MemOp};
use iceclave_types::{ByteSize, CacheLine, SimDuration, SimTime, LINES_PER_PAGE};

use crate::cache::MetaCache;
use crate::counters::{PageClass, SplitCounterBlock};
use crate::faults::{MacFault, MacFaultInjector, MacFaultPlan};
use crate::l2::L2MetaStore;
use crate::tree::TreeGeometry;

/// Which counter organization protects DRAM.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum CounterMode {
    /// No memory protection (the ISC baseline and Figure 8's
    /// "Non-Encryption").
    Unprotected,
    /// Conventional split counters for every page (Figure 8's "SC-64").
    SplitOnly,
    /// IceClave's hybrid: major-only counters for read-only pages,
    /// split counters for writable pages (§4.4).
    Hybrid,
}

/// MEE configuration.
#[derive(Copy, Clone, Debug)]
pub struct MeeConfig {
    /// Counter organization.
    pub mode: CounterMode,
    /// Counter-cache capacity (Table 3: 128 KiB).
    pub counter_cache: ByteSize,
    /// Counter-cache associativity.
    pub cache_ways: usize,
    /// AES pad-generation latency (Table 3: 60 ns).
    pub aes_latency: SimDuration,
    /// MAC computation/verification latency per block.
    pub mac_latency: SimDuration,
    /// Pages of protected DRAM (sets the integrity-tree geometry).
    /// 4 GiB of protected memory is 2^20 pages.
    pub protected_pages: u64,
    /// Store per-line data MACs alongside the data (in the ECC-spare
    /// bits, as Synergy-style designs do) instead of in a separate MAC
    /// region. Co-location removes the separate MAC fetch/write-back
    /// traffic, leaving integrity-tree nodes as the only verification
    /// traffic — which matches Table 6's encryption > verification
    /// ordering for read-heavy workloads.
    pub mac_colocated: bool,
    /// Capacity of the second-level counter store in the reserved
    /// SSD-DRAM region ([`crate::L2MetaStore`]); `ByteSize::ZERO` (the
    /// default) disables the level entirely, leaving the engine's
    /// timing byte-identical to the SRAM-only hierarchy. The region is
    /// carved out of the **top** of the protected DRAM address space,
    /// so L2 traffic contends with program data on the same banks and
    /// buses.
    pub l2_capacity: ByteSize,
    /// Associativity of the second-level counter store.
    pub l2_ways: usize,
}

impl MeeConfig {
    fn with_mode(mode: CounterMode) -> Self {
        MeeConfig {
            mode,
            counter_cache: ByteSize::from_kib(128),
            cache_ways: 8,
            aes_latency: SimDuration::from_nanos(60),
            mac_latency: SimDuration::from_nanos(40),
            protected_pages: 1 << 20,
            mac_colocated: true,
            l2_capacity: ByteSize::ZERO,
            l2_ways: 16,
        }
    }

    /// Enables the DRAM-backed second-level counter store with
    /// `capacity` bytes of sealed blocks.
    pub fn with_l2(mut self, capacity: ByteSize) -> Self {
        self.l2_capacity = capacity;
        self
    }

    /// No protection (ISC baseline).
    pub fn unprotected() -> Self {
        Self::with_mode(CounterMode::Unprotected)
    }

    /// Split counters everywhere (SC-64 baseline of Figure 8).
    pub fn split_only() -> Self {
        Self::with_mode(CounterMode::SplitOnly)
    }

    /// IceClave's hybrid-counter scheme.
    pub fn hybrid() -> Self {
        Self::with_mode(CounterMode::Hybrid)
    }
}

/// Traffic and latency statistics, the source of Table 5's encryption /
/// verification times and Table 6's extra-traffic percentages.
#[derive(Clone, Debug, Default)]
pub struct MeeStats {
    /// Program-visible line reads.
    pub data_reads: u64,
    /// Program-visible line writes.
    pub data_writes: u64,
    /// Extra DRAM reads for encryption counters.
    pub extra_enc_reads: u64,
    /// Extra DRAM writes for counters (evictions, overflow
    /// re-encryption).
    pub extra_enc_writes: u64,
    /// Extra DRAM reads for MACs and tree nodes.
    pub extra_ver_reads: u64,
    /// Extra DRAM writes for MACs and tree nodes.
    pub extra_ver_writes: u64,
    /// DMA fill writes (flash-to-DRAM staging); kept separate from
    /// program traffic so Table 1/6 ratios cover program accesses only.
    pub fill_writes: u64,
    /// DMA seal reads (DRAM-to-flash draining); the write-side mirror
    /// of `fill_writes`, also billed separately from program traffic.
    pub seal_reads: u64,
    /// Whole-page re-encryptions caused by minor-counter overflow.
    pub overflow_reencryptions: u64,
    /// RO/RW page migrations (hybrid mode).
    pub migrations: u64,
    /// MAC verifications performed.
    pub verifications: u64,
    /// Pad generations performed.
    pub encryptions: u64,
    /// Total latency added to reads beyond the raw DRAM access.
    pub read_overhead: SimDuration,
    /// Total latency added to writes beyond the raw DRAM access.
    pub write_overhead: SimDuration,
    /// Per-block-kind L1 (on-chip cache) traffic; also the per-ticket
    /// attribution hook: snapshot before/after a ticket's accesses and
    /// subtract ([`MetaTraffic::since`]).
    pub meta_traffic: MetaTraffic,
    /// L2 probes that hit (L1 miss served by the DRAM store).
    pub l2_hits: u64,
    /// L2 probes that missed (the access fell through to the tree
    /// walk).
    pub l2_misses: u64,
    /// L1 victims demoted into the L2 store (each is one sealed-block
    /// DRAM write into the reserved region).
    pub l2_demotions: u64,
    /// Dirty L2 victims written back to their home metadata location.
    pub l2_writebacks: u64,
    /// L2 MAC mismatches absorbed by discarding the sealed block and
    /// falling back to the authoritative home Merkle walk (suspected
    /// corruption, not tampering — no TEE is harmed).
    pub mac_fallbacks: u64,
    /// MAC mismatches whose authoritative home walk *also* failed:
    /// genuine tampering, escalated to a TEE integrity abort.
    pub tamper_events: u64,
}

/// Per-block-kind metadata-cache traffic: hits and misses of the
/// on-chip L1 cache split by what the block holds, plus the L2 probe
/// totals. `Copy` so callers can snapshot it cheaply around a request
/// and attribute the delta — the per-ticket accounting hook the
/// hierarchical-WFQ work needs to bill counter-cache DRAM traffic to
/// the tenant that caused it.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct MetaTraffic {
    /// L1 hits on encryption-counter blocks (split or major).
    pub counter_hits: u64,
    /// L1 misses on encryption-counter blocks.
    pub counter_misses: u64,
    /// L1 hits on data-MAC blocks.
    pub mac_hits: u64,
    /// L1 misses on data-MAC blocks.
    pub mac_misses: u64,
    /// L1 hits on integrity-tree nodes.
    pub tree_hits: u64,
    /// L1 misses on integrity-tree nodes.
    pub tree_misses: u64,
}

impl MetaTraffic {
    /// The traffic accumulated since an `earlier` snapshot.
    pub fn since(&self, earlier: &MetaTraffic) -> MetaTraffic {
        MetaTraffic {
            counter_hits: self.counter_hits - earlier.counter_hits,
            counter_misses: self.counter_misses - earlier.counter_misses,
            mac_hits: self.mac_hits - earlier.mac_hits,
            mac_misses: self.mac_misses - earlier.mac_misses,
            tree_hits: self.tree_hits - earlier.tree_hits,
            tree_misses: self.tree_misses - earlier.tree_misses,
        }
    }

    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// L1 hit rate on counter blocks.
    pub fn counter_hit_rate(&self) -> f64 {
        Self::rate(self.counter_hits, self.counter_misses)
    }

    /// L1 hit rate on data-MAC blocks.
    pub fn mac_hit_rate(&self) -> f64 {
        Self::rate(self.mac_hits, self.mac_misses)
    }

    /// L1 hit rate on integrity-tree nodes.
    pub fn tree_hit_rate(&self) -> f64 {
        Self::rate(self.tree_hits, self.tree_misses)
    }
}

impl MeeStats {
    /// Extra encryption traffic as a fraction of regular data traffic
    /// (Table 6, "Encryption" column).
    pub fn encryption_traffic_overhead(&self) -> f64 {
        let regular = self.data_reads + self.data_writes;
        if regular == 0 {
            return 0.0;
        }
        (self.extra_enc_reads + self.extra_enc_writes) as f64 / regular as f64
    }

    /// Extra verification traffic as a fraction of regular data traffic
    /// (Table 6, "Integrity Verification" column).
    pub fn verification_traffic_overhead(&self) -> f64 {
        let regular = self.data_reads + self.data_writes;
        if regular == 0 {
            return 0.0;
        }
        (self.extra_ver_reads + self.extra_ver_writes) as f64 / regular as f64
    }

    /// Mean latency added to each read (Table 5, "memory verification").
    pub fn mean_read_overhead(&self) -> SimDuration {
        if self.data_reads == 0 {
            SimDuration::ZERO
        } else {
            self.read_overhead / self.data_reads
        }
    }

    /// Mean latency added to each write (Table 5, "memory encryption").
    pub fn mean_write_overhead(&self) -> SimDuration {
        if self.data_writes == 0 {
            SimDuration::ZERO
        } else {
            self.write_overhead / self.data_writes
        }
    }

    /// L2 probe hit rate in `[0,1]`, zero when the level is disabled or
    /// never probed.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }
}

/// One page of a batched DRAM fill (flash-to-DRAM staging).
#[derive(Copy, Clone, Debug)]
pub struct PageFill {
    /// Destination DRAM page.
    pub page: u64,
    /// Protection class the page is filled as.
    pub class: PageClass,
    /// When the deciphered data is available to the fill engine.
    pub ready: SimTime,
}

/// One page of a batched DRAM drain (DRAM-to-flash persistence) — the
/// write-side mirror of [`PageFill`].
#[derive(Copy, Clone, Debug)]
pub struct PageSeal {
    /// Source DRAM page.
    pub page: u64,
    /// When the flash side is ready to accept the page's outbound
    /// stream (the seal's metadata work can start immediately; this
    /// only gates the DRAM reads).
    pub ready: SimTime,
}

/// The two completion times of one sealed page.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct SealSpan {
    /// When the page's data has been read out of DRAM — the outbound
    /// stream exists from here on, so downstream encryption and the
    /// flash program may start.
    pub data_out: SimTime,
    /// When the seal's metadata work (counter-epoch increment, outbound
    /// MAC generation) has drained; it proceeds concurrently with the
    /// downstream stages and only gates durability.
    pub sealed: SimTime,
}

/// Metadata block kinds, encoded in the low bits of block ids so that
/// ids of different kinds spread across counter-cache sets (tags in high
/// bits would alias every kind's offset 0 into the same set).
const KIND_SPLIT: u64 = 0;
const KIND_MAJOR: u64 = 1;
const KIND_MAC: u64 = 2;
const KIND_STREE: u64 = 3;
const KIND_MTREE: u64 = 4;
/// Low bits of a metadata block id holding the kind tag (shared with
/// the L2 store's stride-aware set indexing).
pub(crate) const KIND_BITS: u64 = 3;
const KIND_MASK: u64 = (1 << KIND_BITS) - 1;

const fn meta_id(kind: u64, payload: u64) -> u64 {
    (payload << KIND_BITS) | kind
}

const fn tree_node_payload(level: u32, index: u64) -> u64 {
    ((level as u64) << 40) | index
}

/// DRAM line used to store a metadata block (a distinct high region of
/// the physical address space).
fn meta_line(id: u64) -> CacheLine {
    CacheLine::new((1 << 44) + id)
}

/// Per-page metadata stored densely. DRAM page numbers are bounded by
/// `protected_pages`, so a grow-on-demand vector indexed by page number
/// replaces hashing on the per-access hot path; untouched pages read as
/// the default value, which matches the old map's absent-key semantics.
#[derive(Debug)]
struct PageSlab<T> {
    slots: Vec<T>,
    default: T,
}

impl<T: Clone> PageSlab<T> {
    fn new(default: T) -> Self {
        PageSlab {
            slots: Vec::new(),
            default,
        }
    }

    #[inline]
    fn get(&self, page: u64) -> Option<&T> {
        self.slots.get(page as usize)
    }

    #[inline]
    fn entry(&mut self, page: u64) -> &mut T {
        let idx = page as usize;
        if idx >= self.slots.len() {
            let default = self.default.clone();
            self.slots.resize(idx + 1, default);
        }
        &mut self.slots[idx]
    }
}

/// The timing/traffic MEE.
///
/// See the crate docs for an example.
#[derive(Debug)]
pub struct MeeEngine {
    config: MeeConfig,
    cache: MetaCache,
    l2: Option<L2MetaStore>,
    page_class: PageSlab<PageClass>,
    split_counters: PageSlab<SplitCounterBlock>,
    split_tree: TreeGeometry,
    major_tree: TreeGeometry,
    stats: MeeStats,
    mac_faults: Option<MacFaultInjector>,
    /// Latched when a MAC mismatch survived the home-walk fallback
    /// (tampering); consumed by [`MeeEngine::take_tamper_event`].
    tampered: bool,
    /// Monotone counter-state epoch: bumped once per acknowledged
    /// write batch and sealed into the metadata journal, so recovery
    /// can reject a rolled-back (stale) counter image. Never decreases
    /// over a device's lifetime, including across reboots.
    counter_epoch: u64,
}

impl MeeEngine {
    /// Creates an engine with cold caches and zeroed counters. When
    /// `config.l2_capacity` is non-zero (and memory is protected at
    /// all), the second-level store is placed in a reserved region at
    /// the **top** of the protected DRAM address space — its slot lines
    /// go through the same bank/bus map as program data, so L2 traffic
    /// contends realistically.
    pub fn new(config: MeeConfig) -> Self {
        let l2_blocks = config.l2_capacity.as_bytes() / 64;
        let l2 = (l2_blocks > 0 && config.mode != CounterMode::Unprotected).then(|| {
            let top = config.protected_pages * LINES_PER_PAGE;
            let base = top.saturating_sub(l2_blocks);
            L2MetaStore::new(config.l2_capacity, config.l2_ways, base)
        });
        MeeEngine {
            config,
            cache: MetaCache::new(config.counter_cache, config.cache_ways),
            l2,
            page_class: PageSlab::new(PageClass::Writable),
            split_counters: PageSlab::new(SplitCounterBlock::new()),
            split_tree: TreeGeometry::for_leaves(config.protected_pages),
            major_tree: TreeGeometry::for_leaves(config.protected_pages.div_ceil(8)),
            stats: MeeStats::default(),
            mac_faults: None,
            tampered: false,
            counter_epoch: 0,
        }
    }

    /// The current counter-state epoch.
    pub fn counter_epoch(&self) -> u64 {
        self.counter_epoch
    }

    /// Advances the counter-state epoch by one and returns the new
    /// value. Called once per acknowledged write batch, immediately
    /// before the epoch is sealed into the metadata journal.
    pub fn advance_counter_epoch(&mut self) -> u64 {
        self.counter_epoch += 1;
        self.counter_epoch
    }

    /// Restores the epoch from the highest journal seal during
    /// recovery. The caller (the recovery path) is responsible for
    /// rejecting regressions before calling this; the engine itself
    /// only ever moves the epoch forward.
    pub fn restore_counter_epoch(&mut self, epoch: u64) {
        self.counter_epoch = self.counter_epoch.max(epoch);
    }

    /// Installs a deterministic L2 MAC-check fault schedule (replacing
    /// any previous one). A no-op schedule may also be installed; it
    /// simply never fires.
    pub fn install_mac_fault_plan(&mut self, plan: MacFaultPlan) {
        self.mac_faults = Some(MacFaultInjector::new(plan));
    }

    /// Consumes the pending tamper event, if a MAC mismatch escalated
    /// past the home-walk fallback since the last call. The runtime
    /// polls this after every protected access and throws the running
    /// TEE out with an integrity abort when it fires.
    pub fn take_tamper_event(&mut self) -> bool {
        core::mem::take(&mut self.tampered)
    }

    /// The engine configuration.
    pub fn config(&self) -> &MeeConfig {
        &self.config
    }

    /// Declares the protection class of a DRAM page (hybrid mode only;
    /// pages default to writable). This is the zero-cost variant used
    /// while setting up fresh TEE memory; use
    /// [`MeeEngine::migrate_page`] for a live permission change.
    pub fn set_page_class(&mut self, page: u64, class: PageClass) {
        if self.config.mode == CounterMode::Hybrid {
            *self.page_class.entry(page) = class;
        }
    }

    /// Dynamic permission change of a live page (§4.4): increments the
    /// major counter, moves the page between the two trees, re-encrypts
    /// all 64 lines and invalidates stale metadata. Returns the
    /// completion time.
    pub fn migrate_page(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        now: SimTime,
    ) -> SimTime {
        if self.config.mode != CounterMode::Hybrid {
            return now;
        }
        let current = self.effective_class(page);
        if current == class {
            return now;
        }
        *self.page_class.entry(page) = class;
        let major = self.split_counters.get(page).map_or(0, |b| b.major());
        *self.split_counters.entry(page) = SplitCounterBlock::with_major(major + 1);
        // Stale counter metadata of the old tree must not be reused —
        // at either level of the hierarchy.
        let stale = self.counter_id(page, current);
        let l1_dirty = self.cache.invalidate(stale);
        let l2_dirty = self.l2.as_mut().is_some_and(|l2| l2.invalidate(stale));
        if l1_dirty || l2_dirty {
            let _ = dram.access(meta_line(stale), MemOp::Write, now);
            self.note_writeback(stale);
        }
        self.stats.migrations += 1;
        // Re-encrypt the page under the new counter: read + write every
        // line, one pad per line.
        self.reencrypt_page(dram, page, now)
    }

    /// DMA-fills one whole DRAM page (flash-to-DRAM staging through the
    /// MEE's streaming encryption path): 64 line writes plus a counter
    /// initialization, billed separately from program traffic. Sets the
    /// page's protection class. Returns the fill completion time.
    pub fn fill_page(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        now: SimTime,
    ) -> SimTime {
        let first = CacheLine::new(page * LINES_PER_PAGE);
        let end = dram.access_run(first, LINES_PER_PAGE, MemOp::Write, now);
        self.stats.fill_writes += LINES_PER_PAGE;
        if self.config.mode == CounterMode::Unprotected {
            return end;
        }
        self.set_page_class(page, class);
        // Fresh counter epoch for the filled page; the streaming cipher
        // pipeline hides per-line AES latency at fill time. The bulk
        // fill engine has its own counter datapath: it writes the new
        // counter block straight to DRAM *without* polluting the
        // core-side counter cache (the program's first read takes the
        // compulsory miss, as in the paper's USIMM experiment).
        let major = self.split_counters.get(page).map_or(0, |b| b.major());
        *self.split_counters.entry(page) = SplitCounterBlock::with_major(major + 1);
        let id = self.counter_id(page, self.effective_class(page));
        let was_cached = self.cache.invalidate(id);
        let _ = was_cached;
        // The home write below supersedes any sealed L2 copy.
        if let Some(l2) = self.l2.as_mut() {
            let _ = l2.invalidate(id);
        }
        let _ = dram.access(meta_line(id), MemOp::Write, end);
        self.stats.extra_enc_writes += 1;
        self.stats.encryptions += LINES_PER_PAGE;
        end + self.config.aes_latency
    }

    /// Fills a batch of DRAM pages, each admitted when its upstream
    /// (deciphered flash data) is ready.
    ///
    /// Fills are issued in ascending ready order, so counter
    /// initialization and MAC generation of early pages overlap with
    /// the flash transfers of later ones — the DRAM channel timelines
    /// provide the only serialization, exactly as the bulk-fill engine
    /// of the paper overlaps verification with data movement. Returns
    /// per-page completion times **in input order**.
    pub fn fill_pages(&mut self, dram: &mut Dram, fills: &[PageFill]) -> Vec<SimTime> {
        let mut order: Vec<usize> = (0..fills.len()).collect();
        order.sort_by_key(|&i| (fills[i].ready, i));
        let mut done = vec![SimTime::ZERO; fills.len()];
        for i in order {
            let fill = &fills[i];
            done[i] = self.fill_page(dram, fill.page, fill.class, fill.ready);
        }
        done
    }

    /// Seals one whole DRAM page for flash persistence (DRAM-to-flash
    /// draining through the MEE's streaming path): 64 line reads, a
    /// counter-epoch increment and an outbound MAC generation, billed
    /// separately from program traffic. The returned [`SealSpan`]
    /// separates the data read-out (which gates downstream encryption
    /// and the flash program) from the metadata completion (which only
    /// gates durability).
    pub fn seal_page(&mut self, dram: &mut Dram, page: u64, now: SimTime) -> SealSpan {
        let first = CacheLine::new(page * LINES_PER_PAGE);
        let end = dram.access_run(first, LINES_PER_PAGE, MemOp::Read, now);
        self.stats.seal_reads += LINES_PER_PAGE;
        if self.config.mode == CounterMode::Unprotected {
            return SealSpan {
                data_out: end,
                sealed: end,
            };
        }
        // The outbound copy gets a fresh counter epoch (its flash-bound
        // MAC must never reuse a pad) — written straight to DRAM by the
        // bulk engine, without polluting the core-side counter cache,
        // exactly like the fill datapath.
        let major = self.split_counters.get(page).map_or(0, |b| b.major());
        *self.split_counters.entry(page) = SplitCounterBlock::with_major(major + 1);
        let id = self.counter_id(page, self.effective_class(page));
        let _ = self.cache.invalidate(id);
        if let Some(l2) = self.l2.as_mut() {
            let _ = l2.invalidate(id);
        }
        let _ = dram.access(meta_line(id), MemOp::Write, end);
        self.stats.extra_enc_writes += 1;
        self.stats.encryptions += LINES_PER_PAGE;
        self.stats.verifications += 1;
        SealSpan {
            data_out: end,
            sealed: end + self.config.aes_latency + self.config.mac_latency,
        }
    }

    /// Seals a batch of DRAM pages, each admitted at its ready time —
    /// the write-side analogue of [`MeeEngine::fill_pages`].
    ///
    /// Seals are issued in ascending ready order, so counter increments
    /// and MAC generation of early pages overlap with the channel
    /// programs of later ones; the DRAM channel timelines provide the
    /// only serialization. Returns per-page [`SealSpan`]s **in input
    /// order**.
    pub fn seal_pages(&mut self, dram: &mut Dram, seals: &[PageSeal]) -> Vec<SealSpan> {
        let mut order: Vec<usize> = (0..seals.len()).collect();
        order.sort_by_key(|&i| (seals[i].ready, i));
        let mut done = vec![
            SealSpan {
                data_out: SimTime::ZERO,
                sealed: SimTime::ZERO,
            };
            seals.len()
        ];
        for i in order {
            let seal = &seals[i];
            done[i] = self.seal_page(dram, seal.page, seal.ready);
        }
        done
    }

    /// A protected read of one cache line. Returns the time the verified
    /// plaintext is available.
    pub fn read_line(&mut self, dram: &mut Dram, line: CacheLine, now: SimTime) -> SimTime {
        let data = dram.access(line, MemOp::Read, now);
        self.stats.data_reads += 1;
        if self.config.mode == CounterMode::Unprotected {
            return data.end;
        }
        let page = line.page_index();
        let class = self.effective_class(page);

        // Counter fetch (+ verification walk on a miss).
        let (counter_ready, counter_hit) = self.fetch_counter(dram, page, class, now);
        // Data-MAC fetch: free when co-located with the data line.
        let mac_ready = if self.config.mac_colocated {
            counter_ready
        } else {
            self.fetch_mac(dram, line, counter_ready)
        };

        // With the counter on-chip the engine precomputes the pad while
        // the data streams (SGX-style decryption pipelining); only a
        // counter miss serializes the AES behind the metadata fetch.
        let pad_ready = if counter_hit {
            now
        } else {
            counter_ready + self.config.aes_latency
        };
        self.stats.encryptions += 1;
        let plaintext = data.end.max(pad_ready);
        // Recompute the data MAC and compare; pipelined unless the
        // metadata path stalled.
        let verify_cost = if counter_hit {
            SimDuration::ZERO
        } else {
            self.config.mac_latency
        };
        let done = plaintext.max(mac_ready) + verify_cost;
        self.stats.verifications += 1;
        self.stats.read_overhead += done.saturating_since(data.end);
        done
    }

    /// A protected write (write-back) of one cache line. Returns the
    /// time the encrypted line and its metadata updates are complete.
    pub fn write_line(&mut self, dram: &mut Dram, line: CacheLine, now: SimTime) -> SimTime {
        if self.config.mode == CounterMode::Unprotected {
            let span = dram.access(line, MemOp::Write, now);
            self.stats.data_writes += 1;
            return span.end;
        }
        let page = line.page_index();
        let class = self.effective_class(page);
        let class = if class == PageClass::ReadOnly {
            // Writing a read-only page forces a permission change first.
            let _ = self.migrate_page(dram, page, PageClass::Writable, now);
            PageClass::Writable
        } else {
            class
        };

        // Counter read-modify-write.
        let (counter_ready, counter_hit) = self.fetch_counter_for_update(dram, page, class, now);
        let line_in_page = (line.raw() % LINES_PER_PAGE) as usize;
        let overflowed = self.split_counters.entry(page).increment(line_in_page);
        let mut t = counter_ready;
        if overflowed {
            self.stats.overflow_reencryptions += 1;
            t = self.reencrypt_page(dram, page, t);
        }

        // Writes are *posted*: the store retires once the line is in
        // the write queue, and the engine encrypts it when the queue
        // drains — by which time the counter (fetched above, occupying
        // DRAM but not the program) has arrived. Only a minor-counter
        // overflow, whose page re-encryption must complete first,
        // gates the program.
        let _ = counter_hit;
        let gate = if overflowed { t } else { now };
        self.stats.encryptions += 1;
        let data = dram.access(line, MemOp::Write, gate);
        self.stats.data_writes += 1;

        // Data-MAC update (rides with the data when co-located) and
        // tree-path update.
        if !self.config.mac_colocated {
            let mac_id = meta_id(KIND_MAC, line.raw() / 8);
            // The posted update supersedes any sealed L2 copy; dropping
            // it (rather than promoting) keeps the hierarchy exclusive,
            // and the dirty L1 insert below re-establishes the home
            // write-back obligation a dirty sealed copy carried.
            if let Some(l2) = self.l2.as_mut() {
                let _ = l2.invalidate(mac_id);
            }
            let _ = self.l1_access(dram, mac_id, true, data.end);
        }
        let done = self.update_tree_path(dram, page, class, data.end);
        self.stats.verifications += 1;
        self.stats.write_overhead += done.saturating_since(data.end);
        done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MeeStats {
        &self.stats
    }

    /// Counter-cache (L1) hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Per-block-kind L1 traffic plus L2 probe totals — snapshot this
    /// around a request to attribute metadata traffic per ticket.
    pub fn meta_traffic(&self) -> MetaTraffic {
        self.stats.meta_traffic
    }

    /// The second-level store, when configured.
    pub fn l2_store(&self) -> Option<&L2MetaStore> {
        self.l2.as_ref()
    }

    /// Functional counter-state probe for equivalence tests: the line
    /// counter of `line_in_page` within `page`, zero when untouched.
    /// The metadata hierarchy is a pure performance layer — this value
    /// must be identical whatever the L1/L2 configuration.
    pub fn line_counter(&self, page: u64, line_in_page: usize) -> u128 {
        self.split_counters
            .get(page)
            .map_or(0, |b| b.line_counter(line_in_page))
    }

    /// The split-counter tree geometry (for reports).
    pub fn split_tree(&self) -> TreeGeometry {
        self.split_tree
    }

    /// The major-counter tree geometry (for reports).
    pub fn major_tree(&self) -> TreeGeometry {
        self.major_tree
    }

    fn effective_class(&self, page: u64) -> PageClass {
        match self.config.mode {
            CounterMode::Hybrid => *self.page_class.get(page).unwrap_or(&PageClass::Writable),
            _ => PageClass::Writable,
        }
    }

    fn counter_id(&self, page: u64, class: PageClass) -> u64 {
        match class {
            PageClass::Writable => meta_id(KIND_SPLIT, page),
            PageClass::ReadOnly => meta_id(KIND_MAJOR, page / 8),
        }
    }

    fn tree_for(&self, class: PageClass) -> (u64, TreeGeometry) {
        match class {
            PageClass::Writable => (KIND_STREE, self.split_tree),
            PageClass::ReadOnly => (KIND_MTREE, self.major_tree),
        }
    }

    fn leaf_index(&self, page: u64, class: PageClass) -> u64 {
        match class {
            PageClass::Writable => page % self.split_tree.leaves(),
            PageClass::ReadOnly => (page / 8) % self.major_tree.leaves(),
        }
    }

    /// L1 lookup with per-kind accounting. A miss inserts the block;
    /// the victim (if any) is demoted into L2 — or, without an L2,
    /// written back to its home location when dirty. Returns whether
    /// the block was already on-chip.
    fn l1_access(&mut self, dram: &mut Dram, id: u64, dirty: bool, now: SimTime) -> bool {
        let out = if dirty {
            self.cache.access_dirty(id)
        } else {
            self.cache.access(id)
        };
        let t = &mut self.stats.meta_traffic;
        match (id & KIND_MASK, out.hit) {
            (KIND_SPLIT | KIND_MAJOR, true) => t.counter_hits += 1,
            (KIND_SPLIT | KIND_MAJOR, false) => t.counter_misses += 1,
            (KIND_MAC, true) => t.mac_hits += 1,
            (KIND_MAC, false) => t.mac_misses += 1,
            (_, true) => t.tree_hits += 1,
            (_, false) => t.tree_misses += 1,
        }
        self.handle_l1_eviction(dram, out.evicted, now);
        out.hit
    }

    /// Routes an L1 victim down the hierarchy. With an L2 the victim is
    /// demoted whether clean or dirty (victim-cache style — read-mostly
    /// metadata must populate L2 for scans to benefit); the sealed-slot
    /// write and any displaced dirty home write-back are issued as one
    /// bank-aware batch. Without an L2, dirty victims write straight
    /// home as before.
    fn handle_l1_eviction(&mut self, dram: &mut Dram, evicted: Option<(u64, bool)>, now: SimTime) {
        let Some((block, was_dirty)) = evicted else {
            return;
        };
        match self.l2.as_mut() {
            Some(l2) => {
                let demotion = l2.demote(block, was_dirty);
                self.stats.l2_demotions += 1;
                let mut writes = [demotion.slot, CacheLine::new(0)];
                let mut n = 1;
                if let Some(victim) = demotion.home_writeback {
                    self.stats.l2_writebacks += 1;
                    self.note_writeback(victim);
                    writes[1] = meta_line(victim);
                    n = 2;
                }
                self.note_writeback(block); // the sealed-slot write is metadata traffic too
                let _ = dram.access_batch(&writes[..n], MemOp::Write, now);
            }
            None => {
                if was_dirty {
                    let _ = dram.access(meta_line(block), MemOp::Write, now);
                    self.note_writeback(block);
                }
            }
        }
    }

    /// Consults the DRAM-resident L2 store after an L1 miss. On a hit
    /// the sealed block is fetched from its reserved-region slot and
    /// its session MAC checked; that single MAC binds id + payload +
    /// epoch, so the block is trusted **without any tree walk** and
    /// promotes (exclusively) into L1, carrying its deferred write-back
    /// obligation. Returns the verified-ready time, or `None` on a
    /// miss.
    fn l2_probe(&mut self, dram: &mut Dram, id: u64, now: SimTime) -> Option<SimTime> {
        let l2 = self.l2.as_mut()?;
        match l2.take(id) {
            Some(promotion) => {
                self.stats.l2_hits += 1;
                let fetch = dram.access(promotion.line, MemOp::Read, now);
                self.note_meta_read(id);
                // The session-MAC check of the sealed block.
                self.stats.verifications += 1;
                match self
                    .mac_faults
                    .as_mut()
                    .map_or(MacFault::None, MacFaultInjector::check_outcome)
                {
                    MacFault::None => {}
                    // Suspected corruption of the sealed copy: it is
                    // discarded (it already left the store) and the
                    // caller falls through to the home location, whose
                    // Merkle walk is authoritative. The counters
                    // themselves live in the functional state — the
                    // hierarchy is timing-only — so nothing is lost;
                    // the fallback costs the walk instead of one MAC
                    // check. Home fetches are speculative in hardware,
                    // so they are modeled from `now`, overlapping the
                    // failed check.
                    MacFault::Mismatch => {
                        self.stats.mac_fallbacks += 1;
                        return None;
                    }
                    // The home walk will fail too: genuine tampering.
                    // Latch the event for the runtime to escalate to
                    // ThrowOutTEE; the fallback walk still executes so
                    // the timing of the detection path is realistic.
                    MacFault::Tamper => {
                        self.stats.mac_fallbacks += 1;
                        self.stats.tamper_events += 1;
                        self.tampered = true;
                        return None;
                    }
                }
                if promotion.dirty {
                    self.cache.mark_dirty(id);
                }
                Some(fetch.end + self.config.mac_latency)
            }
            None => {
                self.stats.l2_misses += 1;
                None
            }
        }
    }

    /// Fetches (and on a miss, verifies) the counter block for a read,
    /// consulting L1 → L2 → home-with-tree-walk in order. Returns the
    /// ready time and whether the counter came from the hierarchy
    /// (L1 or L2) rather than a verification walk.
    ///
    /// An L2 hit reports `true`: the sealed block's single MAC check is
    /// the only exposed serialization — pad generation and the data-MAC
    /// compare are speculated while it completes, exactly as they are
    /// for an on-chip hit — so the hit costs one DRAM fetch plus one
    /// MAC check, not the multi-fetch walk.
    fn fetch_counter(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        now: SimTime,
    ) -> (SimTime, bool) {
        let id = self.counter_id(page, class);
        if self.l1_access(dram, id, false, now) {
            return (now, true);
        }
        if let Some(ready) = self.l2_probe(dram, id, now) {
            return (ready, true);
        }
        self.stats.extra_enc_reads += 1;
        let counter_end = dram.access(meta_line(id), MemOp::Read, now).end;
        let walk_end = self.verify_walk(dram, page, class, now);
        (counter_end.max(walk_end), false)
    }

    /// Counter fetch for an update: identical hierarchy, but the block
    /// ends dirty in L1. Returns the ready time and hit flag.
    fn fetch_counter_for_update(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        now: SimTime,
    ) -> (SimTime, bool) {
        let id = self.counter_id(page, class);
        if self.l1_access(dram, id, true, now) {
            return (now, true);
        }
        if let Some(ready) = self.l2_probe(dram, id, now) {
            return (ready, true);
        }
        self.stats.extra_enc_reads += 1;
        let counter_end = dram.access(meta_line(id), MemOp::Read, now).end;
        let walk_end = self.verify_walk(dram, page, class, now);
        (counter_end.max(walk_end), false)
    }

    /// Walks the integrity tree from the counter leaf upward until a
    /// trusted ancestor — an L1-cached node, an L2-sealed node (one
    /// fetch + one MAC check), or the root register. The MEE issues the
    /// whole path's fetches in parallel with the counter fetch
    /// (hardware walks are speculative); the exposed latency is the
    /// slowest fetch plus one MAC check.
    fn verify_walk(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        start: SimTime,
    ) -> SimTime {
        let (kind, tree) = self.tree_for(class);
        let leaf = self.leaf_index(page, class);
        let mut ready = start;
        for level in 1..=tree.depth() {
            let node_id = meta_id(kind, tree_node_payload(level, tree.ancestor(leaf, level)));
            let hit = self.l1_access(dram, node_id, false, start);
            self.stats.verifications += 1;
            if hit {
                break; // trusted cached ancestor: stop here
            }
            if let Some(node_ready) = self.l2_probe(dram, node_id, start) {
                // A MAC-verified sealed ancestor is as trusted as a
                // cached one: the walk stops here.
                ready = ready.max(node_ready);
                break;
            }
            self.stats.extra_ver_reads += 1;
            ready = ready.max(dram.access(meta_line(node_id), MemOp::Read, start).end);
        }
        ready + self.config.mac_latency
    }

    /// Fetches the data-MAC block covering `line` through the same
    /// L1 → L2 → home hierarchy.
    fn fetch_mac(&mut self, dram: &mut Dram, line: CacheLine, now: SimTime) -> SimTime {
        let mac_id = meta_id(KIND_MAC, line.raw() / 8);
        if self.l1_access(dram, mac_id, false, now) {
            return now;
        }
        if let Some(ready) = self.l2_probe(dram, mac_id, now) {
            return ready;
        }
        self.stats.extra_ver_reads += 1;
        dram.access(meta_line(mac_id), MemOp::Read, now).end
    }

    /// Dirties the counter's tree path: cached ancestors are updated in
    /// place (lazy Bonsai propagation — uncached ancestors are left to
    /// be recomputed when their children are written back). Off the
    /// store's critical path: only traffic effects, no added latency.
    fn update_tree_path(
        &mut self,
        dram: &mut Dram,
        page: u64,
        class: PageClass,
        t: SimTime,
    ) -> SimTime {
        let (kind, tree) = self.tree_for(class);
        let leaf = self.leaf_index(page, class);
        for level in 1..=tree.depth() {
            let node_id = meta_id(kind, tree_node_payload(level, tree.ancestor(leaf, level)));
            if !self.cache.contains(node_id) {
                break;
            }
            let _ = self.l1_access(dram, node_id, true, t);
        }
        t
    }

    /// Whole-page re-encryption (minor overflow or permission change):
    /// 64 line reads and 64 line writes of extra traffic.
    fn reencrypt_page(&mut self, dram: &mut Dram, page: u64, now: SimTime) -> SimTime {
        let first = CacheLine::new(page * LINES_PER_PAGE);
        let mut t = now;
        for i in 0..LINES_PER_PAGE {
            let l = CacheLine::new(first.raw() + i);
            let r = dram.access(l, MemOp::Read, t);
            let w = dram.access(l, MemOp::Write, r.end + self.config.aes_latency);
            t = w.end;
        }
        self.stats.extra_enc_reads += LINES_PER_PAGE;
        self.stats.extra_enc_writes += LINES_PER_PAGE;
        self.stats.encryptions += LINES_PER_PAGE;
        t
    }

    /// Attributes one metadata write to encryption (counters) or
    /// verification (MACs, tree nodes) traffic.
    fn note_writeback(&mut self, id: u64) {
        match id & KIND_MASK {
            KIND_SPLIT | KIND_MAJOR => self.stats.extra_enc_writes += 1,
            _ => self.stats.extra_ver_writes += 1,
        }
    }

    /// Attributes one metadata read the same way.
    fn note_meta_read(&mut self, id: u64) {
        match id & KIND_MASK {
            KIND_SPLIT | KIND_MAJOR => self.stats.extra_enc_reads += 1,
            _ => self.stats.extra_ver_reads += 1,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iceclave_dram::DramConfig;

    fn setup(mode: CounterMode) -> (Dram, MeeEngine) {
        let config = MeeConfig {
            mode,
            ..MeeConfig::hybrid()
        };
        (Dram::new(DramConfig::table3()), MeeEngine::new(config))
    }

    #[test]
    fn unprotected_adds_no_overhead() {
        let (mut dram, mut mee) = setup(CounterMode::Unprotected);
        let t = mee.read_line(&mut dram, CacheLine::new(0), SimTime::ZERO);
        let stats = mee.stats();
        assert_eq!(stats.extra_enc_reads + stats.extra_ver_reads, 0);
        assert_eq!(stats.read_overhead, SimDuration::ZERO);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn protected_read_costs_more_than_raw() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        let protected_done = mee.read_line(&mut dram, CacheLine::new(0), SimTime::ZERO);
        let (mut dram2, mut mee2) = setup(CounterMode::Unprotected);
        let raw_done = mee2.read_line(&mut dram2, CacheLine::new(0), SimTime::ZERO);
        assert!(protected_done > raw_done);
        assert!(mee.stats().extra_enc_reads > 0);
    }

    #[test]
    fn second_read_of_same_page_hits_counter_cache() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        mee.read_line(&mut dram, CacheLine::new(0), SimTime::ZERO);
        let before = mee.stats().extra_enc_reads;
        mee.read_line(&mut dram, CacheLine::new(1), SimTime::ZERO);
        // Same page, same counter block: no extra counter fetch.
        assert_eq!(mee.stats().extra_enc_reads, before);
    }

    #[test]
    fn hybrid_ro_counters_cover_eight_pages() {
        let (mut dram, mut mee) = setup(CounterMode::Hybrid);
        for p in 0..8 {
            mee.set_page_class(p, PageClass::ReadOnly);
        }
        // Touch one line of each of the 8 RO pages: one counter block.
        for p in 0..8u64 {
            mee.read_line(&mut dram, CacheLine::new(p * 64), SimTime::ZERO);
        }
        let ro_fetches = mee.stats().extra_enc_reads;
        assert_eq!(ro_fetches, 1, "8 RO pages share one major block");

        let (mut dram2, mut mee2) = setup(CounterMode::SplitOnly);
        for p in 0..8u64 {
            mee2.read_line(&mut dram2, CacheLine::new(p * 64), SimTime::ZERO);
        }
        assert_eq!(mee2.stats().extra_enc_reads, 8, "split: one per page");
    }

    #[test]
    fn seal_bills_counter_epoch_and_mac() {
        let (mut dram, mut mee) = setup(CounterMode::Hybrid);
        let span = mee.seal_page(&mut dram, 7, SimTime::ZERO);
        let s = mee.stats();
        assert_eq!(s.seal_reads, LINES_PER_PAGE);
        assert_eq!(s.extra_enc_writes, 1, "fresh counter epoch persisted");
        assert_eq!(s.verifications, 1, "outbound MAC generated");
        assert!(span.data_out > SimTime::ZERO);
        // Metadata work extends past the data read-out.
        assert!(span.sealed > span.data_out);
        // Unprotected mode drains without metadata work.
        let (mut dram2, mut mee2) = setup(CounterMode::Unprotected);
        let span2 = mee2.seal_page(&mut dram2, 7, SimTime::ZERO);
        assert_eq!(span2.sealed, span2.data_out);
        assert_eq!(mee2.stats().extra_enc_writes, 0);
    }

    #[test]
    fn seal_pages_returns_input_order() {
        let (mut dram, mut mee) = setup(CounterMode::Hybrid);
        let us = |n| SimTime::ZERO + SimDuration::from_micros(n);
        let seals = [
            PageSeal {
                page: 3,
                ready: us(20),
            },
            PageSeal {
                page: 4,
                ready: us(0),
            },
        ];
        let done = mee.seal_pages(&mut dram, &seals);
        assert_eq!(done.len(), 2);
        // The later-ready page completes later, yet stays at index 0.
        assert!(done[0].sealed > done[1].sealed);
        assert_eq!(mee.stats().seal_reads, 2 * LINES_PER_PAGE);
    }

    #[test]
    fn minor_overflow_reencrypts_page() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        let line = CacheLine::new(0);
        let mut t = SimTime::ZERO;
        // 64 writes to the same line overflow its 6-bit minor counter.
        for _ in 0..64 {
            t = mee.write_line(&mut dram, line, t);
        }
        assert_eq!(mee.stats().overflow_reencryptions, 1);
        assert!(mee.stats().extra_enc_writes >= LINES_PER_PAGE);
    }

    #[test]
    fn migration_changes_class_and_bills_reencryption() {
        let (mut dram, mut mee) = setup(CounterMode::Hybrid);
        mee.set_page_class(3, PageClass::ReadOnly);
        let before = mee.stats().extra_enc_writes;
        let t = mee.migrate_page(&mut dram, 3, PageClass::Writable, SimTime::ZERO);
        assert!(t > SimTime::ZERO);
        assert_eq!(mee.stats().migrations, 1);
        assert_eq!(mee.stats().extra_enc_writes - before, LINES_PER_PAGE);
        // A second migration to the same class is free.
        let t2 = mee.migrate_page(&mut dram, 3, PageClass::Writable, t);
        assert_eq!(t2, t);
    }

    #[test]
    fn write_to_ro_page_forces_migration() {
        let (mut dram, mut mee) = setup(CounterMode::Hybrid);
        mee.set_page_class(5, PageClass::ReadOnly);
        mee.write_line(&mut dram, CacheLine::new(5 * 64), SimTime::ZERO);
        assert_eq!(mee.stats().migrations, 1);
    }

    #[test]
    fn write_traffic_produces_dirty_writebacks() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        // Touch many distinct pages to force counter-block evictions.
        let mut t = SimTime::ZERO;
        for page in 0..8192u64 {
            t = mee.write_line(&mut dram, CacheLine::new(page * 64), t);
        }
        assert!(
            mee.stats().extra_enc_writes > 0,
            "evictions should write back dirty counters"
        );
    }

    /// A small hierarchy that thrashes quickly: 4 KiB L1 (64 blocks)
    /// over a 64 KiB L2 (1024 sealed blocks).
    fn setup_small_l2(mode: CounterMode, l2_kib: u64) -> (Dram, MeeEngine) {
        let config = MeeConfig {
            mode,
            counter_cache: ByteSize::from_kib(4),
            l2_capacity: ByteSize::from_kib(l2_kib),
            ..MeeConfig::hybrid()
        };
        (Dram::new(DramConfig::table3()), MeeEngine::new(config))
    }

    /// Sweeps line 0 of `pages` pages, returning the engine clock.
    fn sweep(dram: &mut Dram, mee: &mut MeeEngine, pages: u64, mut t: SimTime) -> SimTime {
        for p in 0..pages {
            t = mee.read_line(dram, CacheLine::new(p * LINES_PER_PAGE), t);
        }
        t
    }

    #[test]
    fn l2_is_disabled_by_default_and_under_unprotected() {
        let mee = MeeEngine::new(MeeConfig::hybrid());
        assert!(mee.l2_store().is_none(), "ZERO capacity leaves no L2");
        let cfg = MeeConfig::unprotected().with_l2(ByteSize::from_mib(8));
        assert!(MeeEngine::new(cfg).l2_store().is_none());
    }

    #[test]
    fn l2_region_is_carved_from_the_top_of_protected_dram() {
        let cfg = MeeConfig::split_only().with_l2(ByteSize::from_mib(8));
        let mee = MeeEngine::new(cfg);
        let l2 = mee.l2_store().expect("configured");
        let blocks = (8 << 20) / 64;
        assert_eq!(l2.capacity_blocks() as u64, blocks);
        let top = cfg.protected_pages * LINES_PER_PAGE;
        assert_eq!(l2.base_line(), top - blocks);
    }

    #[test]
    fn l1_victims_demote_and_rereferences_hit_l2() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 64);
        // 512 split counter blocks: 8x the 64-block L1, inside the
        // 1024-block L2. Pass 1 is compulsory misses + demotions; pass 2
        // must be (almost) pure L2 hits.
        let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
        assert!(mee.stats().l2_demotions > 0, "L1 victims must demote");
        let misses_before = mee.stats().l2_misses;
        sweep(&mut dram, &mut mee, 512, t);
        let s = mee.stats();
        assert!(s.l2_hits > 400, "second pass should hit L2: {}", s.l2_hits);
        assert_eq!(
            s.l2_misses, misses_before,
            "second pass takes no new L2 misses"
        );
        assert!(s.l2_hit_rate() > 0.0);
    }

    #[test]
    fn l2_hit_beats_the_merkle_walk() {
        // Same thrashing sweep twice; the steady-state (second pass)
        // mean read overhead must be measurably lower with the L2 than
        // without — the 1-fetch + 1-MAC hit vs the multi-fetch walk.
        let steady_overhead = |l2_kib: u64| {
            let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, l2_kib);
            let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
            let warm = mee.stats().clone();
            sweep(&mut dram, &mut mee, 512, t);
            let s = mee.stats();
            (s.read_overhead - warm.read_overhead) / (s.data_reads - warm.data_reads)
        };
        let without = {
            let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
            // No-L2 control with the same small L1.
            let config = MeeConfig {
                counter_cache: ByteSize::from_kib(4),
                ..*mee.config()
            };
            mee = MeeEngine::new(config);
            let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
            let warm = mee.stats().clone();
            sweep(&mut dram, &mut mee, 512, t);
            let s = mee.stats();
            (s.read_overhead - warm.read_overhead) / (s.data_reads - warm.data_reads)
        };
        let with = steady_overhead(64);
        assert!(
            with.as_nanos_f64() * 1.3 < without.as_nanos_f64(),
            "L2 steady overhead {with} vs SRAM-only {without}"
        );
    }

    #[test]
    fn hierarchy_is_exclusive() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 64);
        let mut t = SimTime::ZERO;
        // Mixed reads and writes over a thrashing working set, with
        // re-references so promotions happen too.
        for round in 0..3u64 {
            for p in 0..300u64 {
                let line = CacheLine::new(p * LINES_PER_PAGE + round);
                t = if p % 3 == 0 {
                    mee.write_line(&mut dram, line, t)
                } else {
                    mee.read_line(&mut dram, line, t)
                };
            }
        }
        let l2 = mee.l2_store().expect("configured");
        for block in l2.resident_blocks() {
            assert!(
                !mee.cache.contains(block),
                "block {block} resident in both levels"
            );
        }
    }

    #[test]
    fn noncolocated_mac_writes_keep_exclusivity() {
        // Separate MAC region: the write path's MAC update must drop
        // any sealed L2 copy before inserting into L1, or a block ends
        // up resident at both levels.
        let config = MeeConfig {
            mode: CounterMode::SplitOnly,
            counter_cache: ByteSize::from_kib(4),
            l2_capacity: ByteSize::from_kib(64),
            mac_colocated: false,
            ..MeeConfig::split_only()
        };
        let mut dram = Dram::new(DramConfig::table3());
        let mut mee = MeeEngine::new(config);
        let mut t = SimTime::ZERO;
        // Reads spread MAC blocks through L1 and (via demotion) L2,
        // then writes revisit the same lines' MAC blocks.
        for round in 0..2 {
            for i in 0..2048u64 {
                let line = CacheLine::new(i * 8);
                t = if round == 0 {
                    mee.read_line(&mut dram, line, t)
                } else {
                    mee.write_line(&mut dram, line, t)
                };
            }
        }
        let l2 = mee.l2_store().expect("configured");
        for block in l2.resident_blocks() {
            assert!(
                !mee.cache.contains(block),
                "block {block} resident in both levels"
            );
        }
    }

    #[test]
    fn dirty_demotions_eventually_write_home() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 8);
        // Tiny L2 (128 blocks): dirty counters demoted from L1 overflow
        // the store and must drain to their home locations.
        let mut t = SimTime::ZERO;
        for p in 0..2048u64 {
            t = mee.write_line(&mut dram, CacheLine::new(p * LINES_PER_PAGE), t);
        }
        let s = mee.stats();
        assert!(s.l2_writebacks > 0, "dirty L2 victims must go home");
        assert!(s.extra_enc_writes >= s.l2_writebacks);
    }

    #[test]
    fn per_kind_hit_rates_split_the_aggregate() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            t = mee.read_line(&mut dram, CacheLine::new(i), t);
        }
        let traffic = mee.meta_traffic();
        let l1_total = mee.cache.hits() + mee.cache.misses();
        assert_eq!(
            traffic.counter_hits
                + traffic.counter_misses
                + traffic.mac_hits
                + traffic.mac_misses
                + traffic.tree_hits
                + traffic.tree_misses,
            l1_total,
            "per-kind accounting must cover every L1 access"
        );
        assert!(traffic.counter_hit_rate() > 0.0);
        assert!(traffic.tree_hits + traffic.tree_misses > 0);
        // Colocated MACs generate no MAC-block traffic.
        assert_eq!(traffic.mac_hits + traffic.mac_misses, 0);
        // The snapshot hook: a delta over one access attributes only
        // that access's traffic.
        let before = mee.meta_traffic();
        mee.read_line(&mut dram, CacheLine::new(0), t);
        let delta = mee.meta_traffic().since(&before);
        assert_eq!(delta.counter_hits + delta.counter_misses, 1);
    }

    #[test]
    fn migration_invalidates_stale_l2_copies() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::Hybrid, 64);
        // Dirty the page's split counter, thrash it out of L1 into L2,
        // then migrate the page: the sealed copy must not survive.
        let mut t = mee.write_line(&mut dram, CacheLine::new(0), SimTime::ZERO);
        t = sweep(&mut dram, &mut mee, 512, t);
        let split_id = 0u64 << 3; // KIND_SPLIT, page 0
        let in_l2 = mee.l2_store().expect("l2").contains(split_id);
        mee.migrate_page(&mut dram, 0, PageClass::ReadOnly, t);
        assert!(!mee.l2_store().expect("l2").contains(split_id));
        // If the stale copy was sealed dirty, its home write-back was
        // billed by the migration.
        let _ = in_l2;
    }

    #[test]
    fn mac_mismatch_falls_back_without_harm() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 64);
        mee.install_mac_fault_plan(MacFaultPlan {
            mismatch_ops: vec![0, 2],
            ..MacFaultPlan::none()
        });
        // Pass 1 populates L2 via demotions; pass 2 produces the L2
        // hits whose MAC checks the scripted ordinals corrupt.
        let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
        sweep(&mut dram, &mut mee, 512, t);
        let s = mee.stats();
        assert_eq!(s.mac_fallbacks, 2, "both scripted checks fell back");
        assert_eq!(s.tamper_events, 0);
        assert!(!mee.take_tamper_event(), "corruption never escalates");
        // The fallback is pure recovery: functional counter state is
        // untouched by which level served the fetch.
        assert_eq!(mee.line_counter(0, 0), 0);
    }

    #[test]
    fn tamper_latches_one_event_for_escalation() {
        let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 64);
        mee.install_mac_fault_plan(MacFaultPlan {
            tamper_ops: vec![1],
            ..MacFaultPlan::none()
        });
        let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
        sweep(&mut dram, &mut mee, 512, t);
        let s = mee.stats();
        assert_eq!(s.tamper_events, 1);
        assert_eq!(s.mac_fallbacks, 1, "a tamper is also a failed check");
        assert!(mee.take_tamper_event(), "event latched");
        assert!(!mee.take_tamper_event(), "event consumed");
    }

    #[test]
    fn empty_mac_plan_changes_nothing() {
        let run = |install: bool| {
            let (mut dram, mut mee) = setup_small_l2(CounterMode::SplitOnly, 64);
            if install {
                mee.install_mac_fault_plan(MacFaultPlan::none());
            }
            let t = sweep(&mut dram, &mut mee, 512, SimTime::ZERO);
            let t = sweep(&mut dram, &mut mee, 512, t);
            (t, mee.stats().clone())
        };
        let (t_with, s_with) = run(true);
        let (t_without, s_without) = run(false);
        assert_eq!(t_with, t_without, "no-op plan is timing-invisible");
        assert_eq!(s_with.l2_hits, s_without.l2_hits);
        assert_eq!(s_with.mac_fallbacks, 0);
    }

    #[test]
    fn stats_overheads_are_consistent() {
        let (mut dram, mut mee) = setup(CounterMode::SplitOnly);
        let mut t = SimTime::ZERO;
        for i in 0..100u64 {
            t = mee.read_line(&mut dram, CacheLine::new(i), t);
        }
        let s = mee.stats();
        assert_eq!(s.data_reads, 100);
        assert!(s.mean_read_overhead() > SimDuration::ZERO);
        assert!(s.encryption_traffic_overhead() >= 0.0);
        assert!(mee.cache_hit_rate() > 0.0);
    }
}
