//! Encryption-counter blocks (Figure 7).
//!
//! Counter-mode memory encryption derives each cache line's one-time pad
//! from a per-line counter that must be unique per write. The
//! split-counter layout packs a 64-bit *major* counter and 64 six-bit
//! *minor* counters (one per line of the page) into a single 64 B
//! metadata line; a minor overflow bumps the major and forces the whole
//! page to be re-encrypted. Read-only pages never increment, so IceClave
//! stores only major counters for them — eight pages per metadata line.

/// Exclusive upper bound of a 6-bit minor counter.
pub const MINOR_LIMIT: u8 = 64;

/// Read/write classification of a DRAM page, which selects its counter
/// layout under the hybrid scheme.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum PageClass {
    /// Input pages: encrypted once when filled, never re-encrypted.
    ReadOnly,
    /// Intermediate/result pages: counters move on every write-back.
    Writable,
}

/// Split-counter block covering one 4 KiB page (Figure 7b).
///
/// # Examples
///
/// ```
/// use iceclave_mee::SplitCounterBlock;
///
/// let mut block = SplitCounterBlock::new();
/// let before = block.line_counter(5);
/// assert!(!block.increment(5)); // no overflow on the first write
/// assert!(block.line_counter(5) > before);
/// ```
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SplitCounterBlock {
    major: u64,
    minors: [u8; 64],
}

impl SplitCounterBlock {
    /// A fresh block with all counters at zero.
    pub fn new() -> Self {
        SplitCounterBlock {
            major: 0,
            minors: [0; 64],
        }
    }

    /// A block starting from a given major counter (used when a page
    /// migrates from the read-only tree).
    pub fn with_major(major: u64) -> Self {
        SplitCounterBlock {
            major,
            minors: [0; 64],
        }
    }

    /// The combined (major ‖ minor) counter for `line` (0..64), used as
    /// the CTR-mode nonce component.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    pub fn line_counter(&self, line: usize) -> u128 {
        (u128::from(self.major) << 6) | u128::from(self.minors[line])
    }

    /// Increments the minor counter of `line` for a write-back. Returns
    /// `true` if the minor overflowed: the caller must re-encrypt the
    /// whole page under the incremented major (the paper's overflow
    /// path).
    pub fn increment(&mut self, line: usize) -> bool {
        self.minors[line] += 1;
        if self.minors[line] >= MINOR_LIMIT {
            self.major += 1;
            self.minors = [0; 64];
            true
        } else {
            false
        }
    }

    /// Current major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// Serializes the block for MAC computation (64 B line image).
    pub fn to_line_bytes(&self) -> [u8; 64] {
        // 8 bytes of major followed by a 6-bit-packed minor array (48 B)
        // leaves 8 B of padding; we keep the simpler byte-per-minor image
        // truncated into the line via XOR folding of the top half so the
        // MAC still covers every counter bit.
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_be_bytes());
        for (i, m) in self.minors.iter().enumerate() {
            out[8 + i % 56] ^= m.rotate_left((i / 56) as u32);
        }
        out
    }
}

impl Default for SplitCounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Major-only counter block covering eight read-only pages (Figure 7a).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct MajorCounterBlock {
    majors: [u64; 8],
}

impl MajorCounterBlock {
    /// A fresh block with all majors at zero.
    pub fn new() -> Self {
        MajorCounterBlock { majors: [0; 8] }
    }

    /// The counter for `slot` (0..8); every line of a read-only page
    /// shares its page's major counter.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn counter(&self, slot: usize) -> u128 {
        u128::from(self.majors[slot]) << 6
    }

    /// Raw major value for `slot`.
    pub fn major(&self, slot: usize) -> u64 {
        self.majors[slot]
    }

    /// Sets `slot`'s major (page fill or RW→RO migration).
    pub fn set_major(&mut self, slot: usize, major: u64) {
        self.majors[slot] = major;
    }

    /// Serializes the block for MAC computation.
    pub fn to_line_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, m) in self.majors.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&m.to_be_bytes());
        }
        out
    }
}

impl Default for MajorCounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn split_counter_increments_are_unique() {
        let mut b = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            assert!(seen.insert(b.line_counter(3)));
            b.increment(3);
        }
    }

    #[test]
    fn minor_overflow_bumps_major_and_resets() {
        let mut b = SplitCounterBlock::new();
        b.increment(1);
        let mut overflowed = false;
        for _ in 0..(MINOR_LIMIT as usize) {
            overflowed = b.increment(0);
            if overflowed {
                break;
            }
        }
        assert!(overflowed);
        assert_eq!(b.major(), 1);
        // All minors reset, including line 1's earlier increment.
        assert_eq!(b.line_counter(1), 1u128 << 6);
    }

    #[test]
    fn counters_remain_unique_across_overflow() {
        let mut b = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(b.line_counter(0)), "counter reuse");
            b.increment(0);
        }
    }

    #[test]
    fn major_block_packs_eight_pages() {
        let mut m = MajorCounterBlock::new();
        m.set_major(7, 42);
        assert_eq!(m.major(7), 42);
        assert_eq!(m.counter(7), 42u128 << 6);
        assert_eq!(m.counter(0), 0);
        let bytes = m.to_line_bytes();
        assert_eq!(&bytes[56..64], &42u64.to_be_bytes());
    }

    #[test]
    fn split_line_bytes_cover_all_minors() {
        let mut a = SplitCounterBlock::new();
        let b = SplitCounterBlock::new();
        // Changing any minor must change the MACed image.
        a.increment(63);
        assert_ne!(a.to_line_bytes(), b.to_line_bytes());
        let mut c = SplitCounterBlock::new();
        c.increment(0);
        assert_ne!(c.to_line_bytes(), b.to_line_bytes());
    }

    #[test]
    fn with_major_starts_fresh_minors() {
        let b = SplitCounterBlock::with_major(9);
        assert_eq!(b.major(), 9);
        assert_eq!(b.line_counter(0), 9u128 << 6);
    }
}
