//! The on-chip metadata (counter) cache.
//!
//! Table 3 gives the MEE a 128 KiB counter cache. It holds counter
//! blocks, MAC blocks and integrity-tree nodes; a hit short-circuits
//! both the DRAM fetch and the remainder of the Merkle verification walk
//! (a cached node is trusted — it was verified when it was brought
//! on-chip). The cache is write-back: dirtied metadata reaches DRAM only
//! when evicted, which is what keeps the extra write traffic of Table 6
//! proportional to the workload's write intensity.

use iceclave_types::ByteSize;

/// Result of one cache access.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct CacheOutcome {
    /// Whether the block was already resident.
    pub hit: bool,
    /// A dirty block evicted to make room, which must be written back to
    /// DRAM by the caller.
    pub writeback: Option<u64>,
}

/// A set-associative write-back LRU cache over 64 B metadata blocks,
/// keyed by an opaque block id.
///
/// # Examples
///
/// ```
/// use iceclave_mee::MetaCache;
/// use iceclave_types::ByteSize;
///
/// let mut cache = MetaCache::new(ByteSize::from_kib(128), 8);
/// assert!(!cache.access(7).hit); // cold miss, now resident
/// assert!(cache.access(7).hit); // hit
/// ```
#[derive(Clone, Debug)]
pub struct MetaCache {
    /// Per-set vectors ordered most-recently-used first.
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl MetaCache {
    /// Creates a cache of `capacity` bytes of 64 B blocks with `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer blocks than one set.
    pub fn new(capacity: ByteSize, ways: usize) -> Self {
        let blocks = (capacity.as_bytes() / 64) as usize;
        assert!(
            ways > 0 && blocks >= ways,
            "cache must hold at least one set"
        );
        let set_count = (blocks / ways).max(1);
        MetaCache {
            sets: vec![Vec::with_capacity(ways); set_count],
            ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Looks up `block` for reading, inserting it clean on a miss.
    pub fn access(&mut self, block: u64) -> CacheOutcome {
        self.touch(block, false)
    }

    /// Looks up `block` and marks it dirty (a metadata update).
    pub fn access_dirty(&mut self, block: u64) -> CacheOutcome {
        self.touch(block, true)
    }

    fn touch(&mut self, block: u64, dirty: bool) -> CacheOutcome {
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(block % set_count) as usize];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let (b, was_dirty) = set.remove(pos);
            set.insert(0, (b, was_dirty || dirty));
            self.hits += 1;
            CacheOutcome {
                hit: true,
                writeback: None,
            }
        } else {
            let mut writeback = None;
            if set.len() == self.ways {
                if let Some((victim, victim_dirty)) = set.pop() {
                    if victim_dirty {
                        writeback = Some(victim);
                        self.writebacks += 1;
                    }
                }
            }
            set.insert(0, (block, dirty));
            self.misses += 1;
            CacheOutcome {
                hit: false,
                writeback,
            }
        }
    }

    /// True if `block` is resident (no LRU update, no stats update).
    pub fn contains(&self, block: u64) -> bool {
        let set_count = self.sets.len() as u64;
        self.sets[(block % set_count) as usize]
            .iter()
            .any(|&(b, _)| b == block)
    }

    /// Removes `block` if resident, returning `true` if it was dirty
    /// (used when metadata is invalidated by a page-class migration; the
    /// caller decides whether to write it back).
    pub fn invalidate(&mut self, block: u64) -> bool {
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(block % set_count) as usize];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let (_, dirty) = set.remove(pos);
            dirty
        } else {
            false
        }
    }

    /// Flushes every dirty block, returning them; the cache ends clean
    /// but still resident (a "clean" operation, not an invalidation).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for entry in set.iter_mut() {
                if entry.1 {
                    entry.1 = false;
                    out.push(entry.0);
                    self.writebacks += 1;
                }
            }
        }
        out
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions observed so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate in `[0,1]`, zero when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total blocks the cache can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MetaCache {
        // 4 sets x 2 ways = 8 blocks.
        MetaCache::new(ByteSize::from_bytes(8 * 64), 2)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = small();
        assert!(!c.access(0).hit);
        assert!(c.access(0).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets); 2 ways.
        c.access(0);
        c.access(4);
        c.access(0); // 0 is now MRU
        c.access(8); // evicts 4
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = small();
        c.access(0);
        c.access(4);
        let out = c.access(8);
        assert_eq!(out.writeback, None);
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        c.access_dirty(0);
        c.access_dirty(4);
        // Evicts 0 (LRU), which is dirty.
        let out = c.access(8);
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn dirtiness_is_sticky_until_eviction() {
        let mut c = small();
        c.access_dirty(0);
        c.access(0); // read does not clean it
        c.access(4);
        let out = c.access(8); // evicts 4 (clean)... LRU order: 0 older
                               // After access(0), order is [0,4] -> access(4) -> [4,0]; evicting 0.
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access_dirty(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
    }

    #[test]
    fn flush_dirty_cleans_in_place() {
        let mut c = small();
        c.access_dirty(1);
        c.access_dirty(2);
        c.access(3);
        let mut flushed = c.flush_dirty();
        flushed.sort_unstable();
        assert_eq!(flushed, vec![1, 2]);
        assert!(c.contains(1));
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn table3_capacity() {
        let c = MetaCache::new(ByteSize::from_kib(128), 8);
        assert_eq!(c.capacity_blocks(), 2048);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_ways_panics() {
        let _ = MetaCache::new(ByteSize::from_kib(1), 0);
    }
}
