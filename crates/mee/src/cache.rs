//! The on-chip metadata (counter) cache.
//!
//! Table 3 gives the MEE a 128 KiB counter cache. It holds counter
//! blocks, MAC blocks and integrity-tree nodes; a hit short-circuits
//! both the DRAM fetch and the remainder of the Merkle verification walk
//! (a cached node is trusted — it was verified when it was brought
//! on-chip). The cache is write-back: dirtied metadata reaches DRAM only
//! when evicted, which is what keeps the extra write traffic of Table 6
//! proportional to the workload's write intensity.
//!
//! Two implementation points matter for fidelity:
//!
//! * **Set selection mixes the block id** (`mix64`, the splitmix64
//!   finalizer). Metadata block ids are structured — split-counter ids
//!   stride by 8 (one per page, kind tag in the low bits), tree-node ids
//!   carry the level in high bits — so a plain `id % set_count` aliases
//!   a strided sweep into a fraction of the sets and collapses the
//!   effective capacity. Mixing first spreads any arithmetic id pattern
//!   uniformly.
//! * **LRU is an explicit stamp** per way, not a move-to-front vector:
//!   a hit updates one integer instead of memmoving the set, which keeps
//!   the simulator's hottest path (every modeled memory access probes
//!   this cache at least once) cheap. `micro_components` benchmarks it.

use iceclave_types::ByteSize;

/// The splitmix64 finalizer: a cheap, invertible 64-bit mixer used to
/// decorrelate structured metadata block ids from the set index.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Result of one cache access.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct CacheOutcome {
    /// Whether the block was already resident.
    pub hit: bool,
    /// The `(block, dirty)` victim evicted to make room. Dirty victims
    /// must be written back to DRAM by the caller; with a second-level
    /// store below, clean victims are demoted as well (victim-cache
    /// style), so the eviction is reported either way.
    pub evicted: Option<(u64, bool)>,
}

impl CacheOutcome {
    /// The evicted block if it was dirty (must reach DRAM), `None`
    /// otherwise — the write-back obligation of this access.
    pub fn writeback(&self) -> Option<u64> {
        match self.evicted {
            Some((block, true)) => Some(block),
            _ => None,
        }
    }
}

/// One occupied way: the block id, its dirty bit, and the LRU stamp
/// (monotone per-cache counter; the smallest stamp in a set is the LRU
/// way).
#[derive(Copy, Clone, Debug)]
struct Way {
    block: u64,
    dirty: bool,
    stamp: u64,
}

/// A set-associative write-back LRU cache over 64 B metadata blocks,
/// keyed by an opaque block id.
///
/// # Examples
///
/// ```
/// use iceclave_mee::MetaCache;
/// use iceclave_types::ByteSize;
///
/// let mut cache = MetaCache::new(ByteSize::from_kib(128), 8);
/// assert!(!cache.access(7).hit); // cold miss, now resident
/// assert!(cache.access(7).hit); // hit
/// ```
#[derive(Clone, Debug)]
pub struct MetaCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl MetaCache {
    /// Creates a cache of `capacity` bytes of 64 B blocks with `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer blocks than one set.
    pub fn new(capacity: ByteSize, ways: usize) -> Self {
        let blocks = (capacity.as_bytes() / 64) as usize;
        assert!(
            ways > 0 && blocks >= ways,
            "cache must hold at least one set"
        );
        let set_count = (blocks / ways).max(1);
        MetaCache {
            sets: vec![Vec::with_capacity(ways); set_count],
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        // Stock capacities give a power-of-two set count; the mask is
        // bit-identical to the modulo there and skips the division on
        // the per-access hot path.
        let n = self.sets.len() as u64;
        let h = mix64(block);
        let set = if n.is_power_of_two() {
            h & (n - 1)
        } else {
            h % n
        };
        set as usize
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `block` for reading, inserting it clean on a miss.
    pub fn access(&mut self, block: u64) -> CacheOutcome {
        self.touch(block, false)
    }

    /// Looks up `block` and marks it dirty (a metadata update).
    pub fn access_dirty(&mut self, block: u64) -> CacheOutcome {
        self.touch(block, true)
    }

    fn touch(&mut self, block: u64, dirty: bool) -> CacheOutcome {
        let stamp = self.next_stamp();
        let set_idx = self.set_of(block);
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.block == block) {
            way.stamp = stamp;
            way.dirty |= dirty;
            self.hits += 1;
            return CacheOutcome {
                hit: true,
                evicted: None,
            };
        }
        let mut evicted = None;
        if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let victim = set[lru];
            evicted = Some((victim.block, victim.dirty));
            if victim.dirty {
                self.writebacks += 1;
            }
            set[lru] = Way {
                block,
                dirty,
                stamp,
            };
        } else {
            set.push(Way {
                block,
                dirty,
                stamp,
            });
        }
        self.misses += 1;
        CacheOutcome {
            hit: false,
            evicted,
        }
    }

    /// True if `block` is resident (no LRU update, no stats update).
    pub fn contains(&self, block: u64) -> bool {
        self.sets[self.set_of(block)]
            .iter()
            .any(|w| w.block == block)
    }

    /// Marks an already-resident `block` dirty without touching LRU
    /// state or statistics (used when a block promoted from the
    /// second-level store carries a deferred write-back obligation).
    /// Returns `false` if the block is not resident.
    pub fn mark_dirty(&mut self, block: u64) -> bool {
        let set_idx = self.set_of(block);
        match self.sets[set_idx].iter_mut().find(|w| w.block == block) {
            Some(way) => {
                way.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Removes `block` if resident, returning `true` if it was dirty
    /// (used when metadata is invalidated by a page-class migration; the
    /// caller decides whether to write it back).
    pub fn invalidate(&mut self, block: u64) -> bool {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.block == block) {
            set.swap_remove(pos).dirty
        } else {
            false
        }
    }

    /// Flushes every dirty block, returning them; the cache ends clean
    /// but still resident (a "clean" operation, not an invalidation).
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.dirty {
                    way.dirty = false;
                    out.push(way.block);
                    self.writebacks += 1;
                }
            }
        }
        out
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions observed so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate in `[0,1]`, zero when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total blocks the cache can hold.
    pub fn capacity_blocks(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn small() -> MetaCache {
        // 4 sets x 2 ways = 8 blocks.
        MetaCache::new(ByteSize::from_bytes(8 * 64), 2)
    }

    /// First `n` block ids that map to the same set as `anchor`.
    fn colliding(cache: &MetaCache, anchor: u64, n: usize) -> Vec<u64> {
        let set = cache.set_of(anchor);
        (0u64..)
            .filter(|&b| cache.set_of(b) == set)
            .take(n)
            .collect()
    }

    #[test]
    fn hit_after_insert() {
        let mut c = small();
        assert!(!c.access(0).hit);
        assert!(c.access(0).hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        let ids = colliding(&c, 0, 3);
        c.access(ids[0]);
        c.access(ids[1]);
        c.access(ids[0]); // ids[0] is now MRU
        let out = c.access(ids[2]); // evicts ids[1]
        assert_eq!(out.evicted, Some((ids[1], false)));
        assert!(c.contains(ids[0]));
        assert!(!c.contains(ids[1]));
        assert!(c.contains(ids[2]));
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = small();
        let ids = colliding(&c, 0, 3);
        c.access(ids[0]);
        c.access(ids[1]);
        let out = c.access(ids[2]);
        assert_eq!(out.writeback(), None);
        assert!(out.evicted.is_some(), "the clean victim is still reported");
        assert_eq!(c.writebacks(), 0);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small();
        let ids = colliding(&c, 0, 3);
        c.access_dirty(ids[0]);
        c.access_dirty(ids[1]);
        // Evicts ids[0] (LRU), which is dirty.
        let out = c.access(ids[2]);
        assert_eq!(out.writeback(), Some(ids[0]));
        assert_eq!(out.evicted, Some((ids[0], true)));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn dirtiness_is_sticky_until_eviction() {
        let mut c = small();
        let ids = colliding(&c, 0, 3);
        c.access_dirty(ids[0]);
        c.access(ids[0]); // read does not clean it
        c.access(ids[1]);
        // LRU order after the touches: ids[0] older than ids[1].
        let out = c.access(ids[2]);
        assert_eq!(out.writeback(), Some(ids[0]));
    }

    #[test]
    fn mark_dirty_sets_writeback_obligation() {
        let mut c = small();
        let ids = colliding(&c, 0, 3);
        c.access(ids[0]);
        assert!(c.mark_dirty(ids[0]));
        assert!(!c.mark_dirty(ids[2]), "absent block cannot be dirtied");
        c.access(ids[1]);
        let out = c.access(ids[2]); // evicts ids[0]
        assert_eq!(out.writeback(), Some(ids[0]));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access_dirty(5);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        assert!(!c.invalidate(5));
    }

    #[test]
    fn flush_dirty_cleans_in_place() {
        let mut c = small();
        c.access_dirty(1);
        c.access_dirty(2);
        c.access(3);
        let mut flushed = c.flush_dirty();
        flushed.sort_unstable();
        assert_eq!(flushed, vec![1, 2]);
        assert!(c.contains(1));
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn table3_capacity() {
        let c = MetaCache::new(ByteSize::from_kib(128), 8);
        assert_eq!(c.capacity_blocks(), 2048);
        assert_eq!(c.set_count(), 256);
    }

    /// Regression for the set-indexing fix: split-counter ids stride by
    /// 8 (the kind tag occupies the low 3 bits), so under plain modulo
    /// indexing a page sweep uses only `set_count / 8` sets and the
    /// cache thrashes at 1/8th of its nominal capacity. With mixed
    /// indexing the strided ids spread over (nearly) all sets and a
    /// working set that fits the cache actually fits.
    #[test]
    fn strided_ids_do_not_collapse_onto_few_sets() {
        let c = MetaCache::new(ByteSize::from_kib(128), 8); // 256 sets
        let sets_used: std::collections::HashSet<usize> =
            (0..256u64).map(|p| c.set_of(p * 8)).collect();
        // Plain modulo would land all 256 strided ids in 32 sets.
        assert!(
            sets_used.len() > 128,
            "strided ids use only {} of 256 sets",
            sets_used.len()
        );
    }

    #[test]
    fn strided_working_set_that_fits_stays_resident() {
        // 512 blocks, 8-way: a 256-block strided sweep fits in half the
        // capacity, so a second pass must be (almost) all hits. Under
        // the old modulo indexing the 8-strided ids aliased into 8 of
        // the 64 sets (64 blocks of reach) and the second pass missed.
        let mut c = MetaCache::new(ByteSize::from_kib(32), 8);
        for p in 0..256u64 {
            c.access(p * 8);
        }
        let misses_before = c.misses();
        for p in 0..256u64 {
            c.access(p * 8);
        }
        let second_pass_misses = c.misses() - misses_before;
        // Uniform mixing still leaves a few overfull sets (balls into
        // bins), but nothing like the old collapse: modulo indexing kept
        // only 64 of the 256 blocks resident (8 aliased sets), missing
        // 190+ on the second pass.
        assert!(
            second_pass_misses < 64,
            "second pass should mostly hit, missed {second_pass_misses}/256"
        );
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_ways_panics() {
        let _ = MetaCache::new(ByteSize::from_kib(1), 0);
    }
}
