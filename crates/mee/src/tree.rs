//! Bonsai Merkle Trees (Rogers et al., MICRO'07), as used by IceClave.
//!
//! A Bonsai Merkle Tree protects the *encryption counters* rather than
//! the data itself (data lines are covered by per-line MACs that bind
//! data, address and counter). The tree's leaves are MACs of counter
//! blocks; each internal node MACs its eight children; the root lives in
//! a processor register where physical attacks cannot reach it. IceClave
//! keeps **two** trees — one over the major-only counter region and one
//! over the split-counter region (Figure 7) — at a memory cost of about
//! 0.5 MiB + 4 MiB for 4 GiB of DRAM.

use iceclave_cipher::Aes128;

/// Fan-out of the tree: a 64 B node holds eight 8-byte child MACs.
pub const TREE_ARITY: u64 = 8;

/// Shape of a tree: enough levels of arity-8 nodes to cover `leaves`
/// counter blocks.
///
/// # Examples
///
/// ```
/// use iceclave_mee::TreeGeometry;
///
/// let g = TreeGeometry::for_leaves(4096);
/// assert_eq!(g.depth(), 4); // 8^4 = 4096
/// assert_eq!(g.nodes_at_level(1), 512);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct TreeGeometry {
    leaves: u64,
    depth: u32,
}

impl TreeGeometry {
    /// Geometry covering at least `leaves` leaves (minimum one level).
    pub fn for_leaves(leaves: u64) -> Self {
        let leaves = leaves.max(1);
        let mut depth = 0;
        let mut width = 1u64;
        while width < leaves {
            width = width.saturating_mul(TREE_ARITY);
            depth += 1;
        }
        TreeGeometry { leaves, depth }
    }

    /// Number of counter-block leaves covered.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Levels between the leaves and the root (the root itself is level
    /// `depth()` and is stored on-chip).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of nodes at `level` (level 0 = leaves).
    pub fn nodes_at_level(&self, level: u32) -> u64 {
        let mut n = self.leaves;
        for _ in 0..level {
            n = n.div_ceil(TREE_ARITY);
        }
        n.max(1)
    }

    /// Index of the ancestor of `leaf` at `level`.
    pub fn ancestor(&self, leaf: u64, level: u32) -> u64 {
        leaf / TREE_ARITY.pow(level)
    }

    /// Total in-memory size of the tree in bytes (64 B per node above
    /// the leaves, excluding the on-chip root).
    pub fn memory_bytes(&self) -> u64 {
        (1..=self.depth)
            .map(|lvl| self.nodes_at_level(lvl) * 64)
            .sum()
    }
}

/// A functional Bonsai Merkle Tree over 8-byte leaf MACs.
///
/// Internal nodes are stored in plain (attackable) memory — the
/// [`MerkleTree::tamper_node`] test hook models a physical write to
/// DRAM — while the root stays private. Verification recomputes the
/// path from the claimed leaf MAC through stored siblings and compares
/// against the root register, so any tamper or rollback below the root
/// is caught.
#[derive(Debug)]
pub struct MerkleTree {
    geometry: TreeGeometry,
    /// `levels[l]` holds the node MACs of level `l+1` (level 0 leaf MACs
    /// are supplied by the counter store, not duplicated here).
    levels: Vec<Vec<[u8; 8]>>,
    leaf_macs: Vec<[u8; 8]>,
    root: [u8; 8],
    mac_key: Aes128,
}

/// Computes an 8-byte MAC of a 64-byte block with AES in
/// Matyas–Meyer–Oseas mode, truncated. `domain` separates leaf/node and
/// position so identical payloads at different places MAC differently.
pub(crate) fn mac64(key: &Aes128, domain: u64, block: &[u8; 64]) -> [u8; 8] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(&domain.to_be_bytes());
    for chunk in block.chunks(16) {
        let mut x = [0u8; 16];
        for (i, b) in chunk.iter().enumerate() {
            x[i] = h[i] ^ b;
        }
        let e = key.encrypt_block(&x);
        for i in 0..16 {
            h[i] = e[i] ^ chunk[i];
        }
    }
    let mut out = [0u8; 8];
    out.copy_from_slice(&h[..8]);
    out
}

impl MerkleTree {
    /// Builds a tree over `leaves` all-zero leaf MACs.
    pub fn new(leaves: u64, mac_key: Aes128) -> Self {
        let geometry = TreeGeometry::for_leaves(leaves);
        let leaf_macs = vec![[0u8; 8]; geometry.leaves() as usize];
        let mut tree = MerkleTree {
            geometry,
            levels: Vec::new(),
            leaf_macs,
            root: [0u8; 8],
            mac_key,
        };
        tree.rebuild();
        tree
    }

    fn node_payload(children: &[[u8; 8]]) -> [u8; 64] {
        let mut block = [0u8; 64];
        for (i, c) in children.iter().enumerate() {
            block[i * 8..(i + 1) * 8].copy_from_slice(c);
        }
        block
    }

    fn hash_children(&self, level: u32, index: u64, children: &[[u8; 8]]) -> [u8; 8] {
        let domain = (u64::from(level) << 48) | index;
        mac64(&self.mac_key, domain, &Self::node_payload(children))
    }

    fn rebuild(&mut self) {
        self.levels.clear();
        let mut current: Vec<[u8; 8]> = self.leaf_macs.clone();
        for level in 1..=self.geometry.depth() {
            let parents = self.geometry.nodes_at_level(level);
            let mut next = Vec::with_capacity(parents as usize);
            for p in 0..parents {
                let start = (p * TREE_ARITY) as usize;
                let end = (start + TREE_ARITY as usize).min(current.len());
                let mut children = [[0u8; 8]; 8];
                for (i, c) in current[start..end].iter().enumerate() {
                    children[i] = *c;
                }
                next.push(self.hash_children(level, p, &children));
            }
            self.levels.push(next.clone());
            current = next;
        }
        self.root = self.hash_children(self.geometry.depth() + 1, 0, &[current[0]]);
    }

    /// The geometry of this tree.
    pub fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    /// The root MAC (conceptually an on-chip register).
    pub fn root(&self) -> [u8; 8] {
        self.root
    }

    /// Updates the MAC of `leaf` and recomputes its path to the root.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn update_leaf(&mut self, leaf: u64, mac: [u8; 8]) {
        assert!(leaf < self.geometry.leaves(), "leaf out of range");
        self.leaf_macs[leaf as usize] = mac;
        // Recompute ancestors bottom-up.
        for level in 1..=self.geometry.depth() {
            let parent = self.geometry.ancestor(leaf, level);
            let children = self.children_of(level, parent);
            let h = self.hash_children(level, parent, &children);
            self.levels[(level - 1) as usize][parent as usize] = h;
        }
        let top = self
            .levels
            .last()
            .map(|l| l[0])
            .unwrap_or(self.leaf_macs[0]);
        self.root = self.hash_children(self.geometry.depth() + 1, 0, &[top]);
    }

    /// Verifies that `mac` is the authentic current MAC of `leaf` by
    /// recomputing the path through the (attackable) stored nodes and
    /// comparing with the private root.
    pub fn verify_leaf(&self, leaf: u64, mac: [u8; 8]) -> bool {
        if leaf >= self.geometry.leaves() {
            return false;
        }
        let mut carried = mac;
        for level in 1..=self.geometry.depth() {
            let parent = self.geometry.ancestor(leaf, level);
            let mut children = self.children_of(level, parent);
            // Replace the claimed child along the path with what we have
            // verified so far.
            let child_pos = (self.geometry.ancestor(leaf, level - 1) % TREE_ARITY) as usize;
            children[child_pos] = carried;
            carried = self.hash_children(level, parent, &children);
        }
        self.hash_children(self.geometry.depth() + 1, 0, &[carried]) == self.root
    }

    /// Test hook modelling a physical attack: overwrites a stored node
    /// (level >= 1) or a stored leaf MAC (level 0) without updating the
    /// root.
    pub fn tamper_node(&mut self, level: u32, index: u64, value: [u8; 8]) {
        if level == 0 {
            self.leaf_macs[index as usize] = value;
        } else {
            self.levels[(level - 1) as usize][index as usize] = value;
        }
    }

    /// The stored MAC of `leaf` (what untrusted memory currently
    /// claims).
    pub fn stored_leaf(&self, leaf: u64) -> [u8; 8] {
        self.leaf_macs[leaf as usize]
    }

    fn children_of(&self, level: u32, parent: u64) -> [[u8; 8]; 8] {
        let source: &[[u8; 8]] = if level == 1 {
            &self.leaf_macs
        } else {
            &self.levels[(level - 2) as usize]
        };
        let start = (parent * TREE_ARITY) as usize;
        let mut children = [[0u8; 8]; 8];
        for i in 0..8 {
            if start + i < source.len() {
                children[i] = source[start + i];
            }
        }
        children
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn key() -> Aes128 {
        Aes128::new(&[0x11; 16])
    }

    #[test]
    fn geometry_depths() {
        assert_eq!(TreeGeometry::for_leaves(1).depth(), 0);
        assert_eq!(TreeGeometry::for_leaves(8).depth(), 1);
        assert_eq!(TreeGeometry::for_leaves(9).depth(), 2);
        assert_eq!(TreeGeometry::for_leaves(64).depth(), 2);
        assert_eq!(TreeGeometry::for_leaves(4096).depth(), 4);
    }

    #[test]
    fn geometry_memory_cost_matches_paper_scale() {
        // 4 GiB of DRAM = 1 Mi pages of split counters (1 block each).
        let split = TreeGeometry::for_leaves(1 << 20);
        let mib = split.memory_bytes() as f64 / (1024.0 * 1024.0);
        // The paper quotes ~4 MiB for the writable tree of Figure 7b
        // plus ~0.5 MiB for the read-only tree.
        assert!((4.0..12.0).contains(&mib), "split tree {mib} MiB");
        let major = TreeGeometry::for_leaves((1 << 20) / 8);
        let mib = major.memory_bytes() as f64 / (1024.0 * 1024.0);
        assert!((0.5..2.0).contains(&mib), "major tree {mib} MiB");
    }

    #[test]
    fn update_then_verify() {
        let mut t = MerkleTree::new(100, key());
        t.update_leaf(42, [7; 8]);
        assert!(t.verify_leaf(42, [7; 8]));
        assert!(!t.verify_leaf(42, [8; 8]));
        assert!(!t.verify_leaf(41, [7; 8]));
    }

    #[test]
    fn root_changes_with_updates() {
        let mut t = MerkleTree::new(64, key());
        let r0 = t.root();
        t.update_leaf(0, [1; 8]);
        let r1 = t.root();
        assert_ne!(r0, r1);
        t.update_leaf(0, [2; 8]);
        assert_ne!(r1, t.root());
    }

    #[test]
    fn tampered_internal_node_is_detected() {
        let mut t = MerkleTree::new(512, key());
        t.update_leaf(100, [9; 8]);
        assert!(t.verify_leaf(100, [9; 8]));
        // Physical attack: overwrite the level-1 node covering leaves
        // 96..104. Verification of any leaf under a *different* level-1
        // parent but the same level-2 ancestor reads the tampered node
        // as a sibling and must fail (path nodes themselves are
        // recomputed, so only sibling reads expose the tamper).
        t.tamper_node(1, 100 / 8, [0xAA; 8]);
        assert!(!t.verify_leaf(104, t.stored_leaf(104)));
        // Leaf 100's own path recomputes the tampered node, so its own
        // verification still passes — the attack gained nothing.
        assert!(t.verify_leaf(100, [9; 8]));
    }

    #[test]
    fn replayed_leaf_is_detected() {
        let mut t = MerkleTree::new(64, key());
        t.update_leaf(5, [1; 8]);
        let old = t.stored_leaf(5);
        t.update_leaf(5, [2; 8]);
        // Roll back the stored leaf MAC to its old value: root no longer
        // matches.
        assert!(!t.verify_leaf(5, old));
        assert!(t.verify_leaf(5, [2; 8]));
    }

    #[test]
    fn out_of_range_leaf_fails_verification() {
        let t = MerkleTree::new(8, key());
        assert!(!t.verify_leaf(8, [0; 8]));
    }

    #[test]
    fn mac64_is_position_sensitive() {
        let k = key();
        let block = [5u8; 64];
        assert_ne!(mac64(&k, 1, &block), mac64(&k, 2, &block));
        let mut other = block;
        other[63] ^= 1;
        assert_ne!(mac64(&k, 1, &block), mac64(&k, 1, &other));
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = MerkleTree::new(1, key());
        t.update_leaf(0, [3; 8]);
        assert!(t.verify_leaf(0, [3; 8]));
        assert!(!t.verify_leaf(0, [4; 8]));
    }
}
