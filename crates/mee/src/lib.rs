//! Memory Encryption Engine (MEE) for the SSD's internal DRAM (§4.4).
//!
//! IceClave protects in-SSD DRAM with counter-mode encryption plus
//! integrity verification through Bonsai Merkle Trees. The paper's key
//! observation is that in-storage workloads are overwhelmingly
//! read-intensive (Table 1), so it introduces a **hybrid-counter**
//! scheme: read-only pages use *major-only* counter blocks (8 pages per
//! 64 B counter line — 8x the cache reach), while writable pages keep
//! the conventional *split-counter* layout (one page per counter line:
//! a 64-bit major plus 64 six-bit minors). Two Merkle trees protect the
//! two counter spaces, with both roots pinned in processor registers.
//!
//! This crate implements the scheme at two levels:
//!
//! * [`MeeEngine`] — the **timing/traffic** model: every program-visible
//!   cache-line access is decomposed into DRAM data traffic plus the
//!   extra counter/MAC/tree traffic, filtered through a two-level
//!   metadata hierarchy: a real set-associative on-chip counter cache
//!   (128 KiB in Table 3's configuration) backed, when configured, by a
//!   MAC-sealed second-level store ([`L2MetaStore`]) in a reserved
//!   region of the SSD's DRAM — an L2 hit costs one DRAM fetch plus one
//!   MAC check instead of a Merkle walk. This is what produces the
//!   overhead numbers of Figures 8/11 and the extra-traffic percentages
//!   of Table 6.
//! * [`SecureMemory`] — the **functional** model: byte-accurate
//!   encryption (AES-CTR pads), MAC computation and Merkle verification
//!   over real data, used by the threat-model tests to demonstrate that
//!   tampering, splicing and replay are detected.
//!
//! # Examples
//!
//! ```
//! use iceclave_mee::{CounterMode, MeeConfig, MeeEngine, PageClass};
//! use iceclave_dram::{Dram, DramConfig};
//! use iceclave_types::{CacheLine, SimTime};
//!
//! let mut dram = Dram::new(DramConfig::table3());
//! let mut mee = MeeEngine::new(MeeConfig::hybrid());
//! mee.set_page_class(0, PageClass::ReadOnly);
//! let done = mee.read_line(&mut dram, CacheLine::new(3), SimTime::ZERO);
//! assert!(done > SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

pub mod cache;
pub mod counters;
pub mod engine;
pub mod faults;
pub mod l2;
pub mod secure;
pub mod tree;

pub use cache::{CacheOutcome, MetaCache};
pub use counters::{MajorCounterBlock, PageClass, SplitCounterBlock, MINOR_LIMIT};
pub use engine::{
    CounterMode, MeeConfig, MeeEngine, MeeStats, MetaTraffic, PageFill, PageSeal, SealSpan,
};
pub use faults::{MacFault, MacFaultInjector, MacFaultPlan};
pub use l2::{L2Demotion, L2MetaStore, L2Promotion};
pub use secure::{SecureMemory, VerifyError};
pub use tree::{MerkleTree, TreeGeometry};
