//! Deterministic MAC-check fault injection for the second-level
//! metadata store.
//!
//! An L2 hit trusts a sealed block on the strength of one session MAC
//! (see [`crate::L2MetaStore`]). That MAC can mismatch for two very
//! different reasons, and the engine must tell them apart:
//!
//! * **Corruption** — a bit flip in the reserved DRAM region (the SSD's
//!   internal DRAM has weaker RAS than host memory). The sealed copy is
//!   garbage, but the *home* location plus its Merkle walk is still
//!   authoritative: discard the sealed block, fall back to the walk,
//!   count a `mac_fallback` and carry on. No TEE is harmed.
//! * **Tampering** — an adversary rewrote the metadata everywhere; the
//!   authoritative walk fails too. Only then does the engine raise a
//!   tamper event, which the runtime escalates to ThrowOutTEE with an
//!   integrity abort (§4.5 of the paper).
//!
//! [`MacFaultPlan`] declares a deterministic schedule of both kinds,
//! seeded from [`iceclave_sim::SimRng`]: each L2 MAC check consumes one
//! draw from a dedicated sub-stream, so identical runs inject
//! bit-identical faults — the same reproducibility contract as
//! `iceclave_flash::faults`.

use iceclave_sim::SimRng;

/// What one L2 session-MAC check drew from the fault plan.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum MacFault {
    /// The MAC verified; the sealed block is trusted.
    None,
    /// The MAC mismatched but the home location is intact — suspected
    /// corruption; recover through the authoritative Merkle walk.
    Mismatch,
    /// The MAC mismatched *and* the home walk fails too — genuine
    /// tampering; the access must escalate to a TEE abort.
    Tamper,
}

/// A declarative, reproducible schedule of L2 MAC-check faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MacFaultPlan {
    /// Root seed of the fault stream (independent of every other
    /// randomness consumer in the simulation).
    pub seed: u64,
    /// Per-MAC-check probability of a corruption mismatch.
    pub mismatch_rate: f64,
    /// Explicit MAC-check ordinals (0-based, counted over L2 hits) that
    /// mismatch as corruption — for scripting exact scenarios in tests.
    pub mismatch_ops: Vec<u64>,
    /// Explicit MAC-check ordinals that mismatch as tampering: the home
    /// walk fails too and the access escalates.
    pub tamper_ops: Vec<u64>,
}

impl MacFaultPlan {
    /// The empty plan: every MAC check passes.
    pub fn none() -> Self {
        MacFaultPlan::default()
    }

    /// A purely random corruption plan at `rate` mismatches per check.
    pub fn corruption(seed: u64, rate: f64) -> Self {
        MacFaultPlan {
            seed,
            mismatch_rate: rate,
            ..MacFaultPlan::default()
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.mismatch_rate <= 0.0 && self.mismatch_ops.is_empty() && self.tamper_ops.is_empty()
    }
}

/// The stateful drawer produced from a [`MacFaultPlan`].
#[derive(Debug)]
pub struct MacFaultInjector {
    plan: MacFaultPlan,
    rng: SimRng,
    checks: u64,
}

impl MacFaultInjector {
    /// Builds the injector, deriving a dedicated sub-stream so the
    /// fault schedule is independent of all other simulation draws.
    pub fn new(plan: MacFaultPlan) -> Self {
        let rng = SimRng::new(plan.seed).derive("mee/l2-mac");
        MacFaultInjector {
            plan,
            rng,
            checks: 0,
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &MacFaultPlan {
        &self.plan
    }

    /// Draws the outcome of the next L2 session-MAC check. Exactly one
    /// call per check keeps scripted ordinals aligned.
    pub fn check_outcome(&mut self) -> MacFault {
        let op = self.checks;
        self.checks += 1;
        if self.plan.tamper_ops.contains(&op) {
            return MacFault::Tamper;
        }
        if self.plan.mismatch_ops.contains(&op) {
            return MacFault::Mismatch;
        }
        if self.plan.mismatch_rate > 0.0 && self.rng.gen_bool(self.plan.mismatch_rate) {
            return MacFault::Mismatch;
        }
        MacFault::None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let mut inj = MacFaultInjector::new(MacFaultPlan::none());
        for _ in 0..10_000 {
            assert_eq!(inj.check_outcome(), MacFault::None);
        }
    }

    #[test]
    fn scripted_ordinals_fire_exactly_once() {
        let plan = MacFaultPlan {
            mismatch_ops: vec![3],
            tamper_ops: vec![7],
            ..MacFaultPlan::none()
        };
        let mut inj = MacFaultInjector::new(plan);
        let outcomes: Vec<MacFault> = (0..10).map(|_| inj.check_outcome()).collect();
        assert_eq!(outcomes[3], MacFault::Mismatch);
        assert_eq!(outcomes[7], MacFault::Tamper);
        let faults = outcomes.iter().filter(|o| **o != MacFault::None).count();
        assert_eq!(faults, 2);
    }

    #[test]
    fn random_mismatches_are_reproducible() {
        let draw = || {
            let mut inj = MacFaultInjector::new(MacFaultPlan::corruption(42, 0.05));
            (0..5000).map(|_| inj.check_outcome()).collect::<Vec<_>>()
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b);
        let hits = a.iter().filter(|o| **o == MacFault::Mismatch).count();
        assert!(hits > 100 && hits < 500, "{hits} mismatches at 5%");
    }
}
