//! Functional (byte-accurate) protected memory.
//!
//! While [`crate::MeeEngine`] models *when* things happen,
//! [`SecureMemory`] models *what* happens: real counter-mode encryption
//! with AES pads, real per-line MACs binding ciphertext + counter +
//! address, and a real Bonsai Merkle Tree over the counter blocks. The
//! stored ciphertext, MACs and counters are all "in DRAM" and therefore
//! attackable — the test hooks model the physical attacks of the threat
//! model (§3): bus snooping sees only ciphertext, and tampering,
//! splicing or replaying any stored state is detected on the next read.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use iceclave_cipher::Aes128;
use iceclave_types::{CacheLine, LINES_PER_PAGE};

use crate::counters::SplitCounterBlock;
use crate::tree::{mac64, MerkleTree};

/// Verification failure on a protected read.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum VerifyError {
    /// The line was never written.
    NotWritten(CacheLine),
    /// The data MAC did not match: the ciphertext, its MAC, or its
    /// counter was modified (tamper/splice/replay of data).
    MacMismatch(CacheLine),
    /// The counter block failed Merkle verification: counters were
    /// tampered with or rolled back.
    CounterIntegrity {
        /// The affected DRAM page.
        page: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotWritten(line) => write!(f, "read of unwritten line {line}"),
            VerifyError::MacMismatch(line) => write!(f, "MAC mismatch on {line}"),
            VerifyError::CounterIntegrity { page } => {
                write!(f, "counter integrity failure on page {page}")
            }
        }
    }
}

impl Error for VerifyError {}

/// A snapshot of one line's stored (attackable) state, for replay
/// attacks.
#[derive(Clone, Debug)]
pub struct LineSnapshot {
    cipher: [u8; 64],
    mac: [u8; 8],
}

/// Byte-accurate encrypted + integrity-protected memory.
///
/// # Examples
///
/// ```
/// use iceclave_mee::SecureMemory;
/// use iceclave_types::CacheLine;
///
/// let mut mem = SecureMemory::new(64, [1u8; 16], [2u8; 16]);
/// let line = CacheLine::new(5);
/// mem.write_line(line, &[0xAB; 64]);
/// assert_eq!(mem.read_line(line)?, [0xAB; 64]);
/// // A physical attacker flips a ciphertext bit...
/// mem.tamper_line(line, |bytes| bytes[0] ^= 1);
/// assert!(mem.read_line(line).is_err()); // ...and is detected.
/// # Ok::<(), iceclave_mee::VerifyError>(())
/// ```
#[derive(Debug)]
pub struct SecureMemory {
    data_key: Aes128,
    mac_key: Aes128,
    /// Stored ciphertext lines (attackable).
    lines: HashMap<u64, [u8; 64]>,
    /// Stored per-line MACs (attackable).
    macs: HashMap<u64, [u8; 8]>,
    /// Stored counter blocks, one per page (attackable).
    counters: HashMap<u64, SplitCounterBlock>,
    /// Integrity tree over the counter blocks; root is private.
    tree: MerkleTree,
    pages: u64,
}

impl SecureMemory {
    /// Creates protected memory covering `pages` 4 KiB pages.
    pub fn new(pages: u64, data_key: [u8; 16], mac_key: [u8; 16]) -> Self {
        SecureMemory {
            data_key: Aes128::new(&data_key),
            mac_key: Aes128::new(&mac_key),
            lines: HashMap::new(),
            macs: HashMap::new(),
            counters: HashMap::new(),
            tree: MerkleTree::new(pages, Aes128::new(&mac_key)),
            pages,
        }
    }

    /// Encrypts and stores one 64-byte line, updating its counter, MAC
    /// and the integrity tree.
    ///
    /// # Panics
    ///
    /// Panics if the line is outside the protected region.
    pub fn write_line(&mut self, line: CacheLine, plain: &[u8; 64]) {
        let page = line.page_index();
        assert!(page < self.pages, "line outside protected region");
        let slot = (line.raw() % LINES_PER_PAGE) as usize;

        let old_block = self.counters.get(&page).cloned().unwrap_or_default();
        let mut block = old_block.clone();
        let overflowed = block.increment(slot);
        if overflowed {
            // Re-encrypt every resident line of the page under the new
            // major counter (the paper's overflow path, done for real).
            let first = page * LINES_PER_PAGE;
            for i in 0..LINES_PER_PAGE {
                if i == slot as u64 {
                    continue;
                }
                let addr = first + i;
                if let Some(cipher) = self.lines.get(&addr).copied() {
                    let old_ctr = old_block.line_counter(i as usize);
                    let plain_i = self.apply_pad(CacheLine::new(addr), old_ctr, &cipher);
                    let new_ctr = block.line_counter(i as usize);
                    let recipher = self.apply_pad(CacheLine::new(addr), new_ctr, &plain_i);
                    self.lines.insert(addr, recipher);
                    let mac = self.line_mac(CacheLine::new(addr), new_ctr, &recipher);
                    self.macs.insert(addr, mac);
                }
            }
        }

        let ctr = block.line_counter(slot);
        let cipher = self.apply_pad(line, ctr, plain);
        let mac = self.line_mac(line, ctr, &cipher);
        self.lines.insert(line.raw(), cipher);
        self.macs.insert(line.raw(), mac);
        let leaf_mac = mac64(&self.mac_key, page, &block.to_line_bytes());
        self.tree.update_leaf(page, leaf_mac);
        self.counters.insert(page, block);
    }

    /// Verifies and decrypts one line.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] when the line was never written, the
    /// data MAC fails, or the counter block fails Merkle verification.
    pub fn read_line(&self, line: CacheLine) -> Result<[u8; 64], VerifyError> {
        let page = line.page_index();
        let cipher = self
            .lines
            .get(&line.raw())
            .ok_or(VerifyError::NotWritten(line))?;
        let block = self
            .counters
            .get(&page)
            .ok_or(VerifyError::NotWritten(line))?;

        // 1. Counter integrity: leaf MAC against the private root.
        let leaf_mac = mac64(&self.mac_key, page, &block.to_line_bytes());
        if !self.tree.verify_leaf(page, leaf_mac) {
            return Err(VerifyError::CounterIntegrity { page });
        }

        // 2. Data integrity: recompute the line MAC.
        let slot = (line.raw() % LINES_PER_PAGE) as usize;
        let ctr = block.line_counter(slot);
        let expected = self.line_mac(line, ctr, cipher);
        if self.macs.get(&line.raw()) != Some(&expected) {
            return Err(VerifyError::MacMismatch(line));
        }

        // 3. Decrypt.
        Ok(self.apply_pad(line, ctr, cipher))
    }

    /// The raw stored ciphertext of a line — what a bus-snooping
    /// attacker observes.
    pub fn snoop_line(&self, line: CacheLine) -> Option<[u8; 64]> {
        self.lines.get(&line.raw()).copied()
    }

    /// Attack hook: mutate the stored ciphertext in place.
    pub fn tamper_line(&mut self, line: CacheLine, f: impl FnOnce(&mut [u8; 64])) {
        if let Some(cipher) = self.lines.get_mut(&line.raw()) {
            f(cipher);
        }
    }

    /// Attack hook: overwrite the stored MAC of a line.
    pub fn tamper_mac(&mut self, line: CacheLine, mac: [u8; 8]) {
        self.macs.insert(line.raw(), mac);
    }

    /// Attack hook: mutate the stored counter block of a page.
    pub fn tamper_counter(&mut self, page: u64, f: impl FnOnce(&mut SplitCounterBlock)) {
        let mut block = self.counters.get(&page).cloned().unwrap_or_default();
        f(&mut block);
        self.counters.insert(page, block);
    }

    /// Captures the stored state of a line for a later replay attack.
    pub fn snapshot_line(&self, line: CacheLine) -> Option<LineSnapshot> {
        Some(LineSnapshot {
            cipher: *self.lines.get(&line.raw())?,
            mac: *self.macs.get(&line.raw())?,
        })
    }

    /// Attack hook: roll a line's ciphertext and MAC back to an earlier
    /// snapshot (a classic replay attack).
    pub fn replay_line(&mut self, line: CacheLine, snapshot: &LineSnapshot) {
        self.lines.insert(line.raw(), snapshot.cipher);
        self.macs.insert(line.raw(), snapshot.mac);
    }

    /// Generates the CTR-mode pad for a line and XORs it with `input`.
    fn apply_pad(&self, line: CacheLine, ctr: u128, input: &[u8; 64]) -> [u8; 64] {
        let mut out = [0u8; 64];
        for blk in 0..4u128 {
            // Nonce binds address, counter and block index: unique per
            // (line, write epoch, 16-byte block).
            let nonce = (u128::from(line.raw()) << 80) | (ctr << 8) | blk;
            let pad = self.data_key.encrypt_counter(nonce);
            let base = (blk as usize) * 16;
            for i in 0..16 {
                out[base + i] = input[base + i] ^ pad[i];
            }
        }
        out
    }

    /// MAC binding ciphertext, counter and address.
    fn line_mac(&self, line: CacheLine, ctr: u128, cipher: &[u8; 64]) -> [u8; 8] {
        let inner = mac64(&self.mac_key, line.raw(), cipher);
        let mut trailer = [0u8; 64];
        trailer[..16].copy_from_slice(&ctr.to_be_bytes());
        trailer[16..24].copy_from_slice(&inner);
        mac64(&self.mac_key, !line.raw(), &trailer)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn mem() -> SecureMemory {
        SecureMemory::new(16, [1; 16], [2; 16])
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        let line = CacheLine::new(3);
        let plain = [0x5A; 64];
        m.write_line(line, &plain);
        assert_eq!(m.read_line(line).unwrap(), plain);
    }

    #[test]
    fn unwritten_line_errors() {
        let m = mem();
        assert_eq!(
            m.read_line(CacheLine::new(0)),
            Err(VerifyError::NotWritten(CacheLine::new(0)))
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut m = mem();
        let line = CacheLine::new(7);
        let plain = [0u8; 64];
        m.write_line(line, &plain);
        let snooped = m.snoop_line(line).unwrap();
        assert_ne!(snooped, plain, "bus snooper must not see plaintext");
    }

    #[test]
    fn rewrites_change_ciphertext_even_for_same_plaintext() {
        let mut m = mem();
        let line = CacheLine::new(7);
        let plain = [9u8; 64];
        m.write_line(line, &plain);
        let c1 = m.snoop_line(line).unwrap();
        m.write_line(line, &plain);
        let c2 = m.snoop_line(line).unwrap();
        assert_ne!(c1, c2, "counter must advance per write");
        assert_eq!(m.read_line(line).unwrap(), plain);
    }

    #[test]
    fn tampered_ciphertext_is_detected() {
        let mut m = mem();
        let line = CacheLine::new(1);
        m.write_line(line, &[1; 64]);
        m.tamper_line(line, |c| c[17] ^= 0x80);
        assert_eq!(m.read_line(line), Err(VerifyError::MacMismatch(line)));
    }

    #[test]
    fn tampered_mac_is_detected() {
        let mut m = mem();
        let line = CacheLine::new(1);
        m.write_line(line, &[1; 64]);
        m.tamper_mac(line, [0; 8]);
        assert_eq!(m.read_line(line), Err(VerifyError::MacMismatch(line)));
    }

    #[test]
    fn tampered_counter_is_detected_by_the_tree() {
        let mut m = mem();
        let line = CacheLine::new(64); // page 1
        m.write_line(line, &[1; 64]);
        m.tamper_counter(1, |b| {
            b.increment(0);
        });
        assert_eq!(
            m.read_line(line),
            Err(VerifyError::CounterIntegrity { page: 1 })
        );
    }

    #[test]
    fn replayed_line_is_detected() {
        let mut m = mem();
        let line = CacheLine::new(2);
        m.write_line(line, &[1; 64]);
        let old = m.snapshot_line(line).unwrap();
        m.write_line(line, &[2; 64]);
        m.replay_line(line, &old);
        // Old ciphertext+MAC under the *current* counter: MAC mismatch.
        assert_eq!(m.read_line(line), Err(VerifyError::MacMismatch(line)));
    }

    #[test]
    fn minor_overflow_reencrypts_page_correctly() {
        let mut m = mem();
        let a = CacheLine::new(0);
        let b = CacheLine::new(1);
        m.write_line(b, &[0xBB; 64]);
        // Overflow line 0's minor counter: 64 writes.
        for i in 0..64u8 {
            m.write_line(a, &[i; 64]);
        }
        // Line b must still decrypt after the page re-encryption.
        assert_eq!(m.read_line(b).unwrap(), [0xBB; 64]);
        assert_eq!(m.read_line(a).unwrap(), [63; 64]);
    }

    #[test]
    fn distinct_lines_same_content_have_distinct_ciphertext() {
        let mut m = mem();
        let plain = [7u8; 64];
        m.write_line(CacheLine::new(0), &plain);
        m.write_line(CacheLine::new(1), &plain);
        assert_ne!(
            m.snoop_line(CacheLine::new(0)),
            m.snoop_line(CacheLine::new(1)),
            "pads must be spatially unique"
        );
    }

    #[test]
    #[should_panic(expected = "outside protected region")]
    fn out_of_region_write_panics() {
        let mut m = mem();
        m.write_line(CacheLine::new(16 * 64), &[0; 64]);
    }
}
