//! Property-based tests for counters, cache and tree invariants.

use iceclave_cipher::Aes128;
use iceclave_mee::{MerkleTree, MetaCache, SplitCounterBlock, MINOR_LIMIT};
use iceclave_types::ByteSize;
use proptest::prelude::*;

proptest! {
    /// Line counters never repeat for any increment pattern (temporal
    /// uniqueness — the property CTR-mode security rests on).
    #[test]
    fn split_counters_never_repeat(lines in prop::collection::vec(0usize..64, 1..500)) {
        let mut block = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        // Record the initial counter of every line we will touch.
        for &l in &lines {
            seen.insert((l, block.line_counter(l)));
        }
        for &l in &lines {
            block.increment(l);
            for probe in 0..64usize {
                let c = (probe, block.line_counter(probe));
                if seen.contains(&c) && probe == l {
                    // The incremented line must have a fresh counter.
                    prop_assert!(false, "counter reuse on line {l}");
                }
            }
            seen.insert((l, block.line_counter(l)));
        }
    }

    /// Minor counters stay below their 6-bit limit whatever happens.
    #[test]
    fn minor_counters_bounded(lines in prop::collection::vec(0usize..64, 1..2000)) {
        let mut block = SplitCounterBlock::new();
        for &l in &lines {
            block.increment(l);
            prop_assert!(block.line_counter(l) & 0x3F < u128::from(MINOR_LIMIT));
        }
    }

    /// The cache honors inclusion: after any access pattern, the most
    /// recently accessed block is resident.
    #[test]
    fn cache_mru_always_resident(blocks in prop::collection::vec(0u64..512, 1..300)) {
        let mut cache = MetaCache::new(ByteSize::from_kib(4), 4);
        for &b in &blocks {
            cache.access(b);
            prop_assert!(cache.contains(b));
        }
    }

    /// Merkle verification accepts exactly the current leaf values and
    /// rejects any stale one.
    #[test]
    fn tree_accepts_current_rejects_stale(updates in prop::collection::vec((0u64..64, prop::array::uniform8(0u8..)), 1..50)) {
        let mut tree = MerkleTree::new(64, Aes128::new(&[9; 16]));
        let mut current: std::collections::HashMap<u64, [u8; 8]> = Default::default();
        let mut stale: Vec<(u64, [u8; 8])> = Vec::new();
        for (leaf, mac) in updates {
            if let Some(old) = current.insert(leaf, mac) {
                if old != mac {
                    stale.push((leaf, old));
                }
            }
            tree.update_leaf(leaf, mac);
        }
        for (&leaf, &mac) in &current {
            prop_assert!(tree.verify_leaf(leaf, mac));
        }
        for (leaf, old) in stale {
            if current.get(&leaf) != Some(&old) {
                prop_assert!(!tree.verify_leaf(leaf, old), "stale MAC accepted for {leaf}");
            }
        }
    }
}
