//! Property-based tests for counters, cache, tree and metadata-hierarchy
//! invariants.

use iceclave_cipher::Aes128;
use iceclave_dram::{Dram, DramConfig};
use iceclave_mee::{
    CounterMode, MeeConfig, MeeEngine, MerkleTree, MetaCache, PageClass, SplitCounterBlock,
    MINOR_LIMIT,
};
use iceclave_types::{ByteSize, CacheLine, SimTime, LINES_PER_PAGE};
use proptest::prelude::*;

/// One protected-memory operation of the equivalence driver, decoded
/// from a sampled `(selector, page, line)` tuple: selectors 0-3 read,
/// 4-6 write, 7 fills, 8 seals, 9 migrates (the line value doubles as
/// the read-only flag for fills and migrations). Pages span 0..48 —
/// several times the 64-block L1 and comparable to the small L2, so
/// demotions, promotions and L2 evictions all happen.
#[derive(Copy, Clone, Debug)]
enum MemOpKind {
    Read(u64, u64),
    Write(u64, u64),
    Fill(u64, bool),
    Seal(u64),
    Migrate(u64, bool),
}

impl MemOpKind {
    fn decode(selector: u8, page: u64, line: u64) -> MemOpKind {
        match selector {
            0..=3 => MemOpKind::Read(page, line),
            4..=6 => MemOpKind::Write(page, line),
            7 => MemOpKind::Fill(page, line.is_multiple_of(2)),
            8 => MemOpKind::Seal(page),
            _ => MemOpKind::Migrate(page, line.is_multiple_of(2)),
        }
    }
}

/// A hierarchy under test: its own DRAM, engine and virtual clock.
struct Rig {
    dram: Dram,
    mee: MeeEngine,
    clock: SimTime,
}

impl Rig {
    fn new(l2: ByteSize) -> Rig {
        let config = MeeConfig {
            mode: CounterMode::Hybrid,
            counter_cache: ByteSize::from_kib(4),
            cache_ways: 2,
            l2_capacity: l2,
            l2_ways: 4,
            ..MeeConfig::hybrid()
        };
        Rig {
            dram: Dram::new(DramConfig::table3()),
            mee: MeeEngine::new(config),
            clock: SimTime::ZERO,
        }
    }

    /// Applies one op, returning how many MAC verifications it did.
    fn apply(&mut self, op: MemOpKind) -> u64 {
        let before = self.mee.stats().verifications;
        let class = |ro| {
            if ro {
                PageClass::ReadOnly
            } else {
                PageClass::Writable
            }
        };
        self.clock = match op {
            MemOpKind::Read(p, l) => self.mee.read_line(
                &mut self.dram,
                CacheLine::new(p * LINES_PER_PAGE + l),
                self.clock,
            ),
            MemOpKind::Write(p, l) => self.mee.write_line(
                &mut self.dram,
                CacheLine::new(p * LINES_PER_PAGE + l),
                self.clock,
            ),
            MemOpKind::Fill(p, ro) => self.mee.fill_page(&mut self.dram, p, class(ro), self.clock),
            MemOpKind::Seal(p) => self.mee.seal_page(&mut self.dram, p, self.clock).sealed,
            MemOpKind::Migrate(p, ro) => {
                self.mee
                    .migrate_page(&mut self.dram, p, class(ro), self.clock)
            }
        };
        self.mee.stats().verifications - before
    }
}

proptest! {
    /// Line counters never repeat for any increment pattern (temporal
    /// uniqueness — the property CTR-mode security rests on).
    #[test]
    fn split_counters_never_repeat(lines in prop::collection::vec(0usize..64, 1..500)) {
        let mut block = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        // Record the initial counter of every line we will touch.
        for &l in &lines {
            seen.insert((l, block.line_counter(l)));
        }
        for &l in &lines {
            block.increment(l);
            for probe in 0..64usize {
                let c = (probe, block.line_counter(probe));
                if seen.contains(&c) && probe == l {
                    // The incremented line must have a fresh counter.
                    prop_assert!(false, "counter reuse on line {l}");
                }
            }
            seen.insert((l, block.line_counter(l)));
        }
    }

    /// Minor counters stay below their 6-bit limit whatever happens.
    #[test]
    fn minor_counters_bounded(lines in prop::collection::vec(0usize..64, 1..2000)) {
        let mut block = SplitCounterBlock::new();
        for &l in &lines {
            block.increment(l);
            prop_assert!(block.line_counter(l) & 0x3F < u128::from(MINOR_LIMIT));
        }
    }

    /// The cache honors inclusion: after any access pattern, the most
    /// recently accessed block is resident.
    #[test]
    fn cache_mru_always_resident(blocks in prop::collection::vec(0u64..512, 1..300)) {
        let mut cache = MetaCache::new(ByteSize::from_kib(4), 4);
        for &b in &blocks {
            cache.access(b);
            prop_assert!(cache.contains(b));
        }
    }

    /// The L2 store is a pure performance layer: for ANY access
    /// sequence, the engine with an L2 and the engine without one agree
    /// on every functional observable — counter values (the input to
    /// every pad, so ciphertexts would be byte-identical), page
    /// classes, data/fill/seal traffic, overflow re-encryptions and
    /// migrations — and both uphold the verification-ordering
    /// guarantee: every protected read or write performs at least one
    /// MAC verification before it completes. Only *latency* may differ.
    #[test]
    fn l2_is_a_pure_performance_layer(
        raw_ops in prop::collection::vec((0u8..10, 0u64..48, 0u64..LINES_PER_PAGE), 1..120)
    ) {
        let ops: Vec<MemOpKind> = raw_ops
            .iter()
            .map(|&(s, p, l)| MemOpKind::decode(s, p, l))
            .collect();
        let mut with = Rig::new(ByteSize::from_kib(16));
        let mut without = Rig::new(ByteSize::ZERO);
        prop_assert!(with.mee.l2_store().is_some());
        prop_assert!(without.mee.l2_store().is_none());
        for &op in &ops {
            let v_with = with.apply(op);
            let v_without = without.apply(op);
            if matches!(op, MemOpKind::Read(..) | MemOpKind::Write(..)) {
                prop_assert!(v_with >= 1, "unverified access with L2: {op:?}");
                prop_assert!(v_without >= 1, "unverified access without L2: {op:?}");
            }
        }
        // Functional state: identical line counters everywhere.
        for page in 0..48u64 {
            for line in 0..LINES_PER_PAGE as usize {
                prop_assert_eq!(
                    with.mee.line_counter(page, line),
                    without.mee.line_counter(page, line),
                    "counter divergence at page {} line {}", page, line
                );
            }
        }
        let a = with.mee.stats();
        let b = without.mee.stats();
        prop_assert_eq!(a.data_reads, b.data_reads);
        prop_assert_eq!(a.data_writes, b.data_writes);
        prop_assert_eq!(a.fill_writes, b.fill_writes);
        prop_assert_eq!(a.seal_reads, b.seal_reads);
        prop_assert_eq!(a.overflow_reencryptions, b.overflow_reencryptions);
        prop_assert_eq!(a.migrations, b.migrations);
        prop_assert_eq!(a.encryptions, b.encryptions);
        // And the disabled-L2 engine never touched a second level.
        prop_assert_eq!(b.l2_hits + b.l2_misses + b.l2_demotions, 0);
    }

    /// Merkle verification accepts exactly the current leaf values and
    /// rejects any stale one.
    #[test]
    fn tree_accepts_current_rejects_stale(updates in prop::collection::vec((0u64..64, prop::array::uniform8(0u8..)), 1..50)) {
        let mut tree = MerkleTree::new(64, Aes128::new(&[9; 16]));
        let mut current: std::collections::HashMap<u64, [u8; 8]> = Default::default();
        let mut stale: Vec<(u64, [u8; 8])> = Vec::new();
        for (leaf, mac) in updates {
            if let Some(old) = current.insert(leaf, mac) {
                if old != mac {
                    stale.push((leaf, old));
                }
            }
            tree.update_leaf(leaf, mac);
        }
        for (&leaf, &mac) in &current {
            prop_assert!(tree.verify_leaf(leaf, mac));
        }
        for (leaf, old) in stale {
            if current.get(&leaf) != Some(&old) {
                prop_assert!(!tree.verify_leaf(leaf, old), "stale MAC accepted for {leaf}");
            }
        }
    }
}
