//! `repro` — regenerate every table and figure of the IceClave paper.
//!
//! Usage:
//!
//! ```text
//! repro [artifact...]
//!
//! artifacts: table1 fig5 fig8 table5 table6 fig11 fig12 fig13 fig14
//!            fig15 fig16 fig17 fig18 energy ablation_counter_cache
//!            (default: all)
//! env: ICECLAVE_SCALE_MIB=<n>   functional scale per workload (default 8)
//!      ICECLAVE_CSV_DIR=<path>  additionally write each artifact as CSV
//! ```

use std::time::Instant;

use iceclave_bench::{banner, bench_config};
use iceclave_experiments::figures;
use iceclave_workloads::WorkloadConfig;

type Artifact = (&'static str, fn(&WorkloadConfig) -> figures::FigureReport);

const ARTIFACTS: &[Artifact] = &[
    ("table1", figures::table1),
    ("fig5", figures::fig5),
    ("fig8", figures::fig8),
    ("table5", figures::table5),
    ("table6", figures::table6),
    ("fig11", figures::fig11),
    ("fig12", figures::fig12),
    ("fig13", figures::fig13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("fig17", figures::fig17),
    ("fig18", figures::fig18),
    ("energy", figures::energy_table),
    ("ablation_counter_cache", figures::ablation_counter_cache),
];

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let cfg = bench_config();
    let mut ran = 0;
    for (name, generate) in ARTIFACTS {
        if !requested.is_empty() && !requested.iter().any(|r| r == name) {
            continue;
        }
        banner(name);
        let start = Instant::now();
        let report = generate(&cfg);
        println!("{report}");
        println!("  [generated in {:.1}s]\n", start.elapsed().as_secs_f64());
        if let Ok(dir) = std::env::var("ICECLAVE_CSV_DIR") {
            let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, report.table.to_csv()) {
                eprintln!("could not write {}: {e}", path.display());
            }
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "unknown artifact(s) {:?}; available: {:?}",
            requested,
            ARTIFACTS.iter().map(|(n, _)| *n).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }
}
