//! Trace smoke run: captures a ticket op-log from a small 2-tenant
//! interleaving workload, verifies it replays, and writes it to disk.
//!
//! ```text
//! trace_smoke [output.trace]
//! ```
//!
//! The output path defaults to `trace_smoke.trace` (first CLI argument
//! overrides). CI runs this binary and uploads the capture as a build
//! artifact, so every merge leaves behind a replayable op-log of a
//! known workload. Before writing, the binary replays the capture
//! as-fast-as-possible against a fresh identically-configured device
//! and checks the completion sequence matches — the replay-equivalence
//! property the integration tests assert, exercised here end to end on
//! every CI run.

use std::process::ExitCode;

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_obs::{replay, ReplayMode};
use iceclave_types::{Lpn, PageWrite, SimTime, TeeId};

const TEES: u64 = 2;
const PAGES_PER_TEE: u64 = 48;
const READ_BATCH: usize = 16;
const ROUNDS: usize = 4;

fn device() -> (IceClave, Vec<(TeeId, Vec<Lpn>)>, SimTime) {
    let overrides = Overrides {
        channels: Some(8),
        ..Overrides::none()
    };
    let mut ice = IceClave::new(Mode::IceClave.ssd_config(&overrides));
    let t = ice
        .populate(Lpn::new(0), TEES * PAGES_PER_TEE, SimTime::ZERO)
        .expect("population fits");
    let mut tees = Vec::new();
    for tee_idx in 0..TEES {
        let base = tee_idx * PAGES_PER_TEE;
        let lpns: Vec<Lpn> = (base..base + PAGES_PER_TEE).map(Lpn::new).collect();
        let (tee, _) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
        tees.push((tee, lpns));
    }
    (ice, tees, t)
}

/// The captured workload: both tenants interleave 16-page read batches
/// with an 8-page write batch per round.
fn workload(ice: &mut IceClave, tees: &[(TeeId, Vec<Lpn>)], start: SimTime) -> SimTime {
    let mut t = start;
    for _ in 0..ROUNDS {
        for (tee, lpns) in tees {
            ice.submit_batch_async(*tee, &lpns[..READ_BATCH], t)
                .expect("read batch");
            let writes: Vec<PageWrite> = lpns[READ_BATCH..READ_BATCH + 8]
                .iter()
                .map(|&lpn| PageWrite::new(lpn))
                .collect();
            ice.submit_write_batch_async_as(*tee, writes, t)
                .expect("write batch");
        }
        for ev in ice.drain_completions() {
            t = t.max(ev.ready_at());
        }
    }
    t
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_smoke.trace".to_string());

    let (mut ice, tees, t0) = device();
    ice.enable_tracing();
    workload(&mut ice, &tees, t0);
    let log = ice.take_trace().expect("tracing was enabled");
    let pages: usize = log.records().iter().map(|r| r.pages.len()).sum();
    println!(
        "captured {} tickets ({} pages) from the 2-tenant smoke workload",
        log.len(),
        pages
    );

    // Replay equivalence: a fresh identically-configured device fed the
    // capture AFAP must retire the same (tee, lpn, status) sequence.
    let (mut fresh, _, rt0) = device();
    let outcome = match replay(&mut fresh, &log, ReplayMode::Afap, rt0) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("trace_smoke: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let captured: Vec<(u8, u64, bool)> = log
        .records()
        .iter()
        .flat_map(|r| {
            r.pages
                .iter()
                .map(move |p| (r.tee, p.lpn.raw(), p.status.is_done()))
        })
        .collect();
    let mut replayed: Vec<(u8, u64, bool)> = outcome
        .completions
        .iter()
        .map(|e| (e.tee.raw(), e.lpn.raw(), e.status.is_done()))
        .collect();
    // The capture is keyed by close order while the drain is keyed by
    // ready order; compare as multisets of per-page outcomes.
    let mut expected = captured.clone();
    expected.sort_unstable();
    replayed.sort_unstable();
    if expected != replayed {
        eprintln!(
            "trace_smoke: replay mismatch: {} captured pages vs {} replayed",
            expected.len(),
            replayed.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "afap replay reproduced all {} page outcomes on a fresh device",
        replayed.len()
    );

    if let Err(e) = log.write_to(std::path::Path::new(&out)) {
        eprintln!("trace_smoke: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote op-log to {out} ({} bytes)", log.as_bytes().len());
    ExitCode::SUCCESS
}
