//! Shared plumbing for the benchmark harness.
//!
//! Every `benches/` target regenerates one table or figure of the
//! paper by calling into [`iceclave_experiments::figures`]; this crate
//! only holds the scale configuration they share.

#![warn(missing_docs)]

use iceclave_types::ByteSize;
use iceclave_workloads::WorkloadConfig;

/// The workload scale used by the benchmark harness.
///
/// Defaults to 8 MiB of functional data per workload (modeling the
/// paper's 32 GiB — see DESIGN.md for why relative results are
/// scale-robust). Override with the `ICECLAVE_SCALE_MIB` environment
/// variable; 32 MiB gives tighter numbers at ~4x the runtime.
pub fn bench_config() -> WorkloadConfig {
    let mib = std::env::var("ICECLAVE_SCALE_MIB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(8)
        .clamp(1, 512);
    WorkloadConfig {
        functional_bytes: ByteSize::from_mib(mib),
        ..WorkloadConfig::bench()
    }
}

/// Prints the standard banner for one regenerated artifact.
pub fn banner(name: &str) {
    let cfg = bench_config();
    println!(
        "### {name} — functional scale {}, modeling {} ###\n",
        cfg.functional_bytes, cfg.modeled_bytes
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_8mib() {
        // (Assumes the env var is unset in the test environment.)
        if std::env::var("ICECLAVE_SCALE_MIB").is_err() {
            assert_eq!(bench_config().functional_bytes, ByteSize::from_mib(8));
        }
    }
}
