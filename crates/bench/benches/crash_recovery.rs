//! Crash-point sweep: reboot latency and replay throughput after a
//! power loss at every phase of a fixed two-tenant scenario.
//!
//! The robustness counterpart of `faults.rs` for *power* faults: a
//! deterministic two-tenant read/write schedule is replayed on a
//! journaled device, the power is cut at [`CUTS`] evenly spaced
//! executor-event indices, and each crash is rebooted through
//! `IceClave::recover`. Per crash point the bench records:
//!
//! * **recovery time** — simulated time the journal replay took
//!   (reading the journal pages through the real flash path and
//!   rebuilding the mapping/grown-bad/IV tables);
//! * **replay throughput** — journal records replayed per simulated
//!   second of recovery;
//! * **pages lost** — unacknowledged in-flight pages the crash
//!   destroyed (the loss report; acknowledged writes never count).
//!
//! The bench emits `BENCH_recovery.json` (override the path with
//! `BENCH_RECOVERY_JSON`) and asserts the crash-consistency contract
//! from `docs/ARCHITECTURE.md`: every crash point must recover, and
//! the later the cut the more records replay (the journal only
//! grows).

use criterion::{criterion_group, criterion_main, Criterion};

use iceclave_core::{IceClave, IceClaveError, PowerLossPlan};
use iceclave_experiments::{Mode, Overrides};
use iceclave_obs::{BenchReport, Direction};
use iceclave_types::{Lpn, SimTime, TeeId};

/// Logical pages per tenant.
const SPAN: u64 = 64;
/// Interleaved write+read rounds per tenant.
const ROUNDS: u64 = 3;
/// Flash channels of the bench device.
const CHANNELS: u32 = 8;
/// Reserved metadata-journal blocks.
const JOURNAL_BLOCKS: u32 = 8;
/// Evenly spaced crash points swept over the scenario's event horizon.
const CUTS: u64 = 16;

/// What one crash point produced.
struct CrashPoint {
    cut: u64,
    recovery_us: f64,
    records_replayed: u64,
    pages_read: u64,
    pages_lost: u64,
    acked_batches: u64,
}

/// A journaled device with two tenants over `2 * SPAN` populated LPNs.
fn setup() -> (IceClave, [TeeId; 2], SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let mut config = Mode::IceClave.ssd_config(&overrides);
    config.platform.ftl.journal_blocks = JOURNAL_BLOCKS;
    let mut ice = IceClave::new(config);
    let t = ice
        .populate(Lpn::new(0), 2 * SPAN, SimTime::ZERO)
        .expect("population fits");
    let lpns_a: Vec<Lpn> = (0..SPAN).map(Lpn::new).collect();
    let lpns_b: Vec<Lpn> = (SPAN..2 * SPAN).map(Lpn::new).collect();
    let (tee_a, t) = ice.offload_code(64 << 10, &lpns_a, t).expect("offload A");
    let (tee_b, t) = ice.offload_code(64 << 10, &lpns_b, t).expect("offload B");
    (ice, [tee_a, tee_b], t)
}

/// Runs the fixed schedule until completion or the first power loss.
/// Returns the acknowledged write-batch count and the clock at exit.
fn run_schedule(ice: &mut IceClave, tees: [TeeId; 2], mut t: SimTime) -> (u64, SimTime, bool) {
    let mut acked = 0u64;
    for _ in 0..ROUNDS {
        for (i, &tee) in tees.iter().enumerate() {
            let base = i as u64 * SPAN;
            let lpns: Vec<Lpn> = (base..base + SPAN).map(Lpn::new).collect();
            match ice.submit_write_batch(tee, &lpns, t) {
                Ok(done) => {
                    t = done.finished;
                    acked += 1;
                }
                Err(IceClaveError::PowerLost) => return (acked, t, true),
                Err(e) => panic!("write batch failed: {e}"),
            }
            match ice.submit_batch(tee, &lpns, t) {
                Ok(done) => t = done.finished,
                Err(IceClaveError::PowerLost) => return (acked, t, true),
                Err(e) => panic!("read batch failed: {e}"),
            }
        }
    }
    (acked, t, false)
}

/// Measures the schedule's event horizon with an armed-but-empty plan.
fn event_horizon() -> u64 {
    let (mut ice, tees, t) = setup();
    ice.install_power_loss_plan(PowerLossPlan::none());
    let (_, _, crashed) = run_schedule(&mut ice, tees, t);
    assert!(!crashed, "the empty plan never cuts");
    ice.events_processed().expect("injector counts events")
}

/// Crashes the scenario at event `cut` and reboots through recovery.
fn run_cut(cut: u64) -> CrashPoint {
    let (mut ice, tees, t0) = setup();
    ice.install_power_loss_plan(PowerLossPlan::at_event(cut));
    let (acked, t, crashed) = run_schedule(&mut ice, tees, t0);
    assert!(crashed, "cut {cut} must land inside the schedule");
    let stats = ice.recover(t).expect("every crash point recovers");
    assert!(!stats.clean_boot);
    assert_eq!(stats.torn_records, 0, "between-event cuts never tear");
    assert!(ice.counter_epoch() >= acked, "no counter rollback");
    CrashPoint {
        cut,
        recovery_us: stats.recovery_time.as_micros_f64(),
        records_replayed: stats.records_replayed,
        pages_read: stats.pages_read,
        pages_lost: stats.pages_lost,
        acked_batches: acked,
    }
}

fn bench_crash_recovery(c: &mut Criterion) {
    let events = event_horizon();
    let points: Vec<CrashPoint> = (0..CUTS).map(|i| run_cut(i * events / CUTS)).collect();
    for p in &points {
        println!(
            "crash at event {}: recovery {:.1} us, {} records replayed \
             ({} journal pages), {} pages lost, {} batches acked",
            p.cut, p.recovery_us, p.records_replayed, p.pages_read, p.pages_lost, p.acked_batches,
        );
    }

    // The journal only grows: a later cut never replays fewer records.
    for w in points.windows(2) {
        assert!(
            w[1].records_replayed >= w[0].records_replayed,
            "replay shrank between cut {} and cut {}",
            w[0].cut,
            w[1].cut,
        );
    }
    write_artifact(events, &points);

    // The criterion group tracks the wall-clock cost of one full
    // crash-and-reboot cycle at the deepest swept point.
    let deepest = points.last().map_or(0, |p| p.cut);
    let mut group = c.benchmark_group("crash_recovery");
    group.bench_function("cut_recover_deepest", |b| {
        b.iter(|| run_cut(deepest).records_replayed)
    });
    group.finish();
}

/// Emits the sweep as a [`BenchReport`]. The scenario and the cut
/// schedule are deterministic, so the simulated metrics are gated with
/// tight tolerances; the raw replay counters ride along ungated as
/// diagnostics.
fn write_artifact(events: u64, points: &[CrashPoint]) {
    let n = points.len() as f64;
    let mean_recovery_us = points.iter().map(|p| p.recovery_us).sum::<f64>() / n;
    let max_recovery_us = points.iter().map(|p| p.recovery_us).fold(0.0, f64::max);
    let mean_replay_per_s = points
        .iter()
        .map(|p| p.records_replayed as f64 / (p.recovery_us / 1e6).max(f64::EPSILON))
        .sum::<f64>()
        / n;
    let total_pages_lost: u64 = points.iter().map(|p| p.pages_lost).sum();
    let max_records: u64 = points.iter().map(|p| p.records_replayed).max().unwrap_or(0);
    let max_pages_read: u64 = points.iter().map(|p| p.pages_read).max().unwrap_or(0);

    let mut report = BenchReport::new("crash_recovery")
        .config("scenario", format!("2tee_{CHANNELS}ch_{ROUNDS}rounds"))
        .config("span_pages", SPAN)
        .config("journal_blocks", JOURNAL_BLOCKS)
        .config("cuts", CUTS)
        .config("event_horizon", events);
    report.push_metric(
        "recovery_time_mean_us",
        "us",
        mean_recovery_us,
        Direction::Lower,
        0.02,
        true,
    );
    report.push_metric(
        "recovery_time_max_us",
        "us",
        max_recovery_us,
        Direction::Lower,
        0.02,
        true,
    );
    report.push_metric(
        "replay_records_per_sim_s_mean",
        "records/s",
        mean_replay_per_s,
        Direction::Higher,
        0.02,
        true,
    );
    report.push_metric(
        "pages_lost_total",
        "pages",
        total_pages_lost as f64,
        Direction::Lower,
        0.0,
        true,
    );
    report.push_metric(
        "records_replayed_max",
        "records",
        max_records as f64,
        Direction::Either,
        0.1,
        false,
    );
    report.push_metric(
        "journal_pages_read_max",
        "pages",
        max_pages_read as f64,
        Direction::Either,
        0.1,
        false,
    );
    match report.write_default("BENCH_RECOVERY_JSON", "BENCH_recovery.json") {
        Ok(path) => println!("wrote crash-recovery report to {path}"),
        Err(e) => eprintln!("could not write crash-recovery report: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_crash_recovery
}
criterion_main!(benches);
