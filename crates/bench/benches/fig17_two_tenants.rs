//! Regenerates the paper's fig17 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig17");
    println!(
        "{}",
        iceclave_experiments::figures::fig17(&iceclave_bench::bench_config())
    );
}
