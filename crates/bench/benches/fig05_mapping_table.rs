//! Regenerates the paper's fig5 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig5");
    println!(
        "{}",
        iceclave_experiments::figures::fig5(&iceclave_bench::bench_config())
    );
}
