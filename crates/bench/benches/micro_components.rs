//! Criterion micro-benchmarks of the substrate components: cipher
//! throughput, MEE operations, FTL translation, DRAM accesses and
//! flash page operations. These measure the *simulator's* execution
//! speed (host-side), complementing the figure benches which report
//! *simulated* time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use iceclave_cipher::{Aes128, CipherEngine, Trivium};
use iceclave_dram::{Dram, DramConfig, MemOp};
use iceclave_flash::FlashConfig;
use iceclave_ftl::{Ftl, FtlConfig, Requestor};
use iceclave_mee::{MeeConfig, MeeEngine, MetaCache};
use iceclave_trustzone::WorldMonitor;
use iceclave_types::{ByteSize, CacheLine, Hertz, Lpn, SimTime};

fn bench_trivium(c: &mut Criterion) {
    let mut group = c.benchmark_group("trivium");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("keystream_4k", |b| {
        let mut cipher = Trivium::new(&[7; 10], &[9; 10]);
        let mut buf = vec![0u8; 4096];
        b.iter(|| cipher.apply_keystream(&mut buf));
    });
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes128");
    group.throughput(Throughput::Bytes(16));
    let aes = Aes128::new(&[1; 16]);
    let mut counter = 0u128;
    group.bench_function("encrypt_block", |b| {
        b.iter(|| {
            counter = counter.wrapping_add(1);
            aes.encrypt_counter(counter)
        })
    });
    group.finish();
}

fn bench_cipher_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher_engine");
    group.throughput(Throughput::Bytes(4096));
    let mut engine = CipherEngine::new([3; 10], Hertz::from_mhz(800), 1);
    let page = vec![0xABu8; 4096];
    group.bench_function("encrypt_page_4k", |b| {
        let mut ppa = 0u32;
        b.iter(|| {
            ppa = ppa.wrapping_add(1);
            engine.encrypt_page(ppa, &page)
        })
    });
    group.finish();
}

fn bench_mee(c: &mut Criterion) {
    let mut group = c.benchmark_group("mee");
    group.bench_function("protected_read", |b| {
        let mut dram = Dram::new(DramConfig::table3());
        let mut mee = MeeEngine::new(MeeConfig::hybrid());
        let mut line = 0u64;
        let mut t = SimTime::ZERO;
        b.iter(|| {
            line = (line + 1) % 1_000_000;
            t = mee.read_line(&mut dram, CacheLine::new(line), t);
            t
        })
    });
    group.bench_function("protected_write", |b| {
        let mut dram = Dram::new(DramConfig::table3());
        let mut mee = MeeEngine::new(MeeConfig::hybrid());
        let mut line = 0u64;
        let mut t = SimTime::ZERO;
        b.iter(|| {
            line = (line + 1) % 1_000_000;
            t = mee.write_line(&mut dram, CacheLine::new(line), t);
            t
        })
    });
    group.finish();
}

/// The metadata cache is the simulator's hottest structure: every
/// modeled memory access probes it at least once. The `hit_hot_path`
/// case is the one the explicit LRU stamp optimized — before it, every
/// hit paid a `remove` + `insert(0)` memmove of the set vector; now it
/// updates one integer. `strided_sweep` exercises the mixed set
/// indexing on the miss/eviction path.
fn bench_meta_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_cache");
    group.bench_function("hit_hot_path", |b| {
        // Table 3 geometry (256 sets x 8 ways), pre-warmed with 256
        // ids — one per set on average, so no set overflows its ways
        // and the loop stays on the pure hit path.
        let mut cache = MetaCache::new(ByteSize::from_kib(128), 8);
        for block in 0..256u64 {
            cache.access(block * 8);
        }
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 1) % 256;
            cache.access(block * 8).hit
        })
    });
    group.bench_function("strided_sweep", |b| {
        // 4x capacity, stride-8 ids: every access misses and evicts —
        // the demotion-feed path of the two-level hierarchy.
        let mut cache = MetaCache::new(ByteSize::from_kib(128), 8);
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 1) % 8192;
            cache.access(block * 8).evicted
        })
    });
    group.finish();
}

fn bench_ftl(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.bench_function("translate_hit", |b| {
        let mut ftl = Ftl::new(FlashConfig::table3(), FtlConfig::default());
        let mut monitor = WorldMonitor::with_table5_cost();
        let t = ftl
            .write(Requestor::Host, Lpn::new(0), &mut monitor, SimTime::ZERO)
            .expect("write");
        b.iter(|| {
            ftl.translate(Requestor::Host, Lpn::new(0), &mut monitor, t)
                .expect("mapped")
        })
    });
    group.bench_function("out_of_place_write", |b| {
        let mut ftl = Ftl::new(FlashConfig::table3(), FtlConfig::default());
        let mut monitor = WorldMonitor::with_table5_cost();
        let mut t = SimTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t = ftl
                .write(Requestor::Host, Lpn::new(i % 4096), &mut monitor, t)
                .expect("capacity");
            t
        })
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.bench_function("sequential_read", |b| {
        let mut dram = Dram::new(DramConfig::table3());
        let mut line = 0u64;
        let mut t = SimTime::ZERO;
        b.iter(|| {
            line += 1;
            t = dram.access(CacheLine::new(line), MemOp::Read, t).end;
            t
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_trivium, bench_aes, bench_cipher_engine, bench_mee, bench_meta_cache,
        bench_ftl, bench_dram
}
criterion_main!(benches);
