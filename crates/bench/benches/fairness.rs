//! Cross-tenant fairness sweep: a 2-tenant antagonist duel through the
//! weighted-fair-queueing channel arbiter (Figures 17/18 machinery).
//!
//! One tenant (the *antagonist*) keeps {1, 2, 4, 8} 32-page read
//! tickets in flight; the other (the *victim*) cycles solo 4-page
//! tickets — the latency-sensitive pattern the WFQ scheduler protects.
//! Every sweep point runs under both `SchedPolicy::Fifo` (the legacy
//! event-order scheduler) and `SchedPolicy::Wfq`, and reports:
//!
//! * the victim's p99 per-ticket latency under each policy (the
//!   acceptance criterion: ≥ 2x improvement at the 8-ticket point);
//! * Jain's fairness index over per-tenant channel time, measured with
//!   both tenants backlogged (the victim keeps four 4-page tickets in
//!   flight so every channel sees both claimants; see
//!   `iceclave_experiments::fairness::jain` for the formula) — 1.0 is
//!   a perfect split, the acceptance floor is 0.95 under WFQ.
//!
//! A second, **intra-tenant** sweep puts both roles inside one TEE,
//! where only the hierarchical per-ticket clocks
//! (`TicketPolicy::Wfq`) can protect the victim: the same antagonist
//! depths run under the flat lane (`TicketPolicy::Fifo`) and the
//! hierarchical one, and the acceptance criterion is again a ≥ 2x
//! victim-p99 improvement at the deepest point.
//!
//! The duel driver itself lives in `iceclave_experiments::fairness`,
//! shared with the acceptance tests in `tests/wfq_fairness.rs` so the
//! benchmark baseline and the tested protocol cannot diverge. The
//! simulated numbers are printed once and emitted as a
//! `BENCH_fairness.json` [`BenchReport`] (uploaded as a CI artifact
//! beside `BENCH_writes.json` and `BENCH_exec.json`, and gated by
//! `check_regression`). Override the output path with the
//! `BENCH_FAIRNESS_JSON` environment variable. Criterion times the WFQ
//! duel's submit+poll loop as a smoke check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use iceclave_core::SchedPolicy;
use iceclave_experiments::fairness::{
    jain, p99, run_duel, run_intra_duel, TicketPolicy, ANTAGONIST_TICKET_PAGES, VICTIM_TICKET_PAGES,
};
use iceclave_obs::{BenchReport, Direction};

const CHANNELS: u32 = 8;
const ANTAGONIST_IN_FLIGHT: [usize; 4] = [1, 2, 4, 8];
const VICTIM_TICKETS: usize = 40;
const BACKLOG_TICKETS: usize = 150;

struct SweepPoint {
    in_flight: usize,
    p99_fifo: u64,
    p99_wfq: u64,
    jain_fifo: f64,
    jain_wfq: f64,
}

/// One point of the intra-tenant duel: the same deep antagonist, but
/// sharing the victim's TEE — flat lane vs hierarchical ticket clocks.
struct IntraPoint {
    in_flight: usize,
    p99_flat: u64,
    p99_hier: u64,
}

fn bench_fairness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairness");
    let mut sweep: Vec<SweepPoint> = Vec::new();
    for &in_flight in &ANTAGONIST_IN_FLIGHT {
        // Latency mode: strictly solo victim (one ticket at a time).
        let fifo = run_duel(SchedPolicy::Fifo, CHANNELS, in_flight, 1, VICTIM_TICKETS);
        let wfq = run_duel(SchedPolicy::Wfq, CHANNELS, in_flight, 1, VICTIM_TICKETS);
        // Fairness mode: both tenants backlogged (the victim's four
        // 4-page tickets cover all 8 channels).
        let fifo_backlog = run_duel(SchedPolicy::Fifo, CHANNELS, in_flight, 4, BACKLOG_TICKETS);
        let wfq_backlog = run_duel(SchedPolicy::Wfq, CHANNELS, in_flight, 4, BACKLOG_TICKETS);
        let point = SweepPoint {
            in_flight,
            p99_fifo: p99(&fifo.victim_latencies).as_nanos(),
            p99_wfq: p99(&wfq.victim_latencies).as_nanos(),
            jain_fifo: jain(fifo_backlog.victim_pages, fifo_backlog.antagonist_pages),
            jain_wfq: jain(wfq_backlog.victim_pages, wfq_backlog.antagonist_pages),
        };
        println!(
            "fairness antagonist x{in_flight}: victim p99 fifo {} ns / wfq {} ns ({:.2}x), \
             jain fifo {:.3} / wfq {:.3}",
            point.p99_fifo,
            point.p99_wfq,
            point.p99_fifo as f64 / point.p99_wfq as f64,
            point.jain_fifo,
            point.jain_wfq,
        );
        sweep.push(point);
    }

    // Intra-tenant sweep: both roles share one TEE; only the
    // hierarchical ticket clocks can protect the victim.
    let mut intra: Vec<IntraPoint> = Vec::new();
    for &in_flight in &ANTAGONIST_IN_FLIGHT {
        let flat = run_intra_duel(TicketPolicy::Fifo, CHANNELS, in_flight, VICTIM_TICKETS);
        let hier = run_intra_duel(TicketPolicy::Wfq, CHANNELS, in_flight, VICTIM_TICKETS);
        let point = IntraPoint {
            in_flight,
            p99_flat: p99(&flat.victim_latencies).as_nanos(),
            p99_hier: p99(&hier.victim_latencies).as_nanos(),
        };
        println!(
            "fairness intra-tenant antagonist x{in_flight}: victim p99 flat {} ns / \
             hierarchical {} ns ({:.2}x)",
            point.p99_flat,
            point.p99_hier,
            point.p99_flat as f64 / point.p99_hier as f64,
        );
        intra.push(point);
    }

    // Criterion smoke: time the deepest WFQ duel's submit+poll loop.
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("wfq_duel_8x32_vs_solo4", 8), &8, |b, _| {
        b.iter(|| {
            run_duel(SchedPolicy::Wfq, CHANNELS, 8, 1, 8)
                .victim_latencies
                .len()
        })
    });
    group.finish();
    write_baseline(&sweep, &intra);

    // The acceptance floor of the antagonist sweep's deepest point.
    let deepest = sweep.last().expect("sweep is non-empty");
    assert!(
        deepest.p99_wfq * 2 <= deepest.p99_fifo,
        "victim p99 under WFQ ({} ns) must beat FIFO ({} ns) by 2x",
        deepest.p99_wfq,
        deepest.p99_fifo,
    );
    assert!(
        deepest.jain_wfq >= 0.95,
        "Jain index under WFQ ({:.3}) must be >= 0.95",
        deepest.jain_wfq,
    );
    // And of the intra-tenant sweep's deepest point: the hierarchical
    // clocks must buy the same-tenant victim at least 2x on p99.
    let deepest = intra.last().expect("sweep is non-empty");
    assert!(
        deepest.p99_hier * 2 <= deepest.p99_flat,
        "intra-tenant victim p99 under hierarchical WFQ ({} ns) must beat the flat lane ({} ns) by 2x",
        deepest.p99_hier,
        deepest.p99_flat,
    );
}

/// Emits the fairness report: per sweep point the victim's p99 under
/// both policies and both Jain indices, and per intra-tenant point the
/// victim's p99 under both ticket policies — all gated (deterministic
/// simulated values) — plus the acceptance ratios at the deepest
/// points as ungated informational metrics.
fn write_baseline(sweep: &[SweepPoint], intra: &[IntraPoint]) {
    let mut report = BenchReport::new("fairness")
        .config("channels", CHANNELS)
        .config("antagonist_batch_pages", ANTAGONIST_TICKET_PAGES)
        .config("victim_ticket_pages", VICTIM_TICKET_PAGES)
        .config("victim_tickets", VICTIM_TICKETS);
    for p in sweep {
        let n = p.in_flight;
        report.push_metric(
            format!("victim_p99_ns_fifo_x{n}"),
            "ns",
            p.p99_fifo as f64,
            Direction::Either,
            0.02,
            true,
        );
        report.push_metric(
            format!("victim_p99_ns_wfq_x{n}"),
            "ns",
            p.p99_wfq as f64,
            Direction::Lower,
            0.02,
            true,
        );
        report.push_metric(
            format!("jain_channel_time_fifo_x{n}"),
            "index",
            p.jain_fifo,
            Direction::Either,
            0.05,
            true,
        );
        report.push_metric(
            format!("jain_channel_time_wfq_x{n}"),
            "index",
            p.jain_wfq,
            Direction::Higher,
            0.01,
            true,
        );
    }
    let deepest = sweep.last().expect("sweep is non-empty");
    report.push_metric(
        "p99_improvement_at_8",
        "ratio",
        deepest.p99_fifo as f64 / deepest.p99_wfq as f64,
        Direction::Higher,
        0.1,
        false,
    );
    for p in intra {
        let n = p.in_flight;
        report.push_metric(
            format!("intra_victim_p99_ns_flat_x{n}"),
            "ns",
            p.p99_flat as f64,
            Direction::Either,
            0.02,
            true,
        );
        report.push_metric(
            format!("intra_victim_p99_ns_hier_x{n}"),
            "ns",
            p.p99_hier as f64,
            Direction::Lower,
            0.02,
            true,
        );
    }
    let deepest = intra.last().expect("sweep is non-empty");
    report.push_metric(
        "intra_p99_improvement_at_8",
        "ratio",
        deepest.p99_flat as f64 / deepest.p99_hier as f64,
        Direction::Higher,
        0.1,
        false,
    );
    match report.write_default("BENCH_FAIRNESS_JSON", "BENCH_fairness.json") {
        Ok(path) => println!("fairness report written to {path}"),
        Err(e) => eprintln!("could not write fairness report: {e}"),
    }
}

criterion_group!(benches, bench_fairness);
criterion_main!(benches);
