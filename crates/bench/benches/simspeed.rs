//! Simulator-speed bench: wall-clock throughput of the executor hot
//! path on a fixed 2-tenant interleaving scenario.
//!
//! Unlike the figure benches (which report *simulated* latencies), this
//! bench measures how fast the simulator itself runs: simulated pages
//! retired per wall-clock second while two TEEs keep read and write
//! tickets interleaved across 16 channels under WFQ. This is the
//! metric that gates fleet-scale serving and trace replay — see the
//! "Simulator performance" section of `docs/ARCHITECTURE.md`.
//!
//! The scenario is fixed so numbers are comparable across PRs:
//! 2 TEEs x 4 concurrent 32-page read batches + one 16-page write
//! batch per TEE per round, 8 rounds per iteration (2,304 simulated
//! pages). The bench emits `BENCH_simspeed.json` (override the path
//! with `BENCH_SIMSPEED_JSON`) and asserts a conservative pages/s
//! floor so a future PR cannot silently regress the hot path.

use std::io::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_types::{Lpn, PageWrite, SimTime, TeeId, PAGE_SIZE};

const TEES: u64 = 2;
const READ_BATCHES: u64 = 4;
const BATCH_PAGES: u64 = 32;
const WRITE_PAGES: u64 = 16;
const ROUNDS: u64 = 8;
const CHANNELS: u32 = 16;

/// Simulated pages retired per iteration of the scenario.
const PAGES_PER_ITER: u64 = ROUNDS * TEES * (READ_BATCHES * BATCH_PAGES + WRITE_PAGES);

/// Conservative wall-clock floor (pages/s) asserted at the end of the
/// bench. The flattened hot path sustains well over 10^6 pages/s on a
/// development machine; the floor is set an order of magnitude below
/// the post-flattening rate so slow shared CI runners pass while a
/// return to the pre-flattening executor (~5x slower) still trips it.
const FLOOR_PAGES_PER_S: f64 = 150_000.0;

/// A 16-channel device with two TEEs. Each TEE's grant is split into a
/// read half and a write half so in-flight read and write tickets never
/// race the same logical page (the executor's documented in-flight
/// contract).
fn setup() -> (IceClave, Vec<(TeeId, Vec<Lpn>)>, SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let pages_per_tee = READ_BATCHES * BATCH_PAGES + WRITE_PAGES;
    let t = ice
        .populate(Lpn::new(0), TEES * pages_per_tee, SimTime::ZERO)
        .expect("population fits");
    let mut tees = Vec::new();
    for tee_idx in 0..TEES {
        let base = tee_idx * pages_per_tee;
        let lpns: Vec<Lpn> = (base..base + pages_per_tee).map(Lpn::new).collect();
        let (tee, _) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
        tees.push((tee, lpns));
    }
    (ice, tees, t)
}

/// Runs one iteration of the fixed scenario: `ROUNDS` rounds of
/// concurrent read + write tickets from both tenants, each round
/// drained to idle. Returns the number of completions (checked against
/// `PAGES_PER_ITER`) and the simulated finish time.
fn scenario(ice: &mut IceClave, tees: &[(TeeId, Vec<Lpn>)], start: SimTime) -> (u64, SimTime) {
    let read_pages = (READ_BATCHES * BATCH_PAGES) as usize;
    let mut t = start;
    let mut completions = 0u64;
    for _ in 0..ROUNDS {
        for (tee, lpns) in tees {
            for batch in 0..READ_BATCHES as usize {
                let chunk = &lpns[batch * BATCH_PAGES as usize..(batch + 1) * BATCH_PAGES as usize];
                ice.submit_batch_async(*tee, chunk, t).expect("read batch");
            }
            let writes: Vec<PageWrite> = lpns[read_pages..]
                .iter()
                .map(|&lpn| PageWrite::new(lpn))
                .collect();
            ice.submit_write_batch_async_as(*tee, writes, t)
                .expect("write batch");
        }
        for ev in ice.drain_completions() {
            completions += 1;
            t = t.max(ev.ready_at());
        }
    }
    (completions, t)
}

fn bench_simspeed(c: &mut Criterion) {
    let (mut ice, tees, t0) = setup();
    let (completions, _) = scenario(&mut ice, &tees, t0);
    assert_eq!(completions, PAGES_PER_ITER, "scenario retired every page");

    // Wall-clock measurement for the JSON baseline: warm up, then time
    // a fixed block of iterations with a plain monotonic clock (the
    // criterion group below tracks the same path statistically).
    let mut t = t0;
    for _ in 0..3 {
        t = scenario(&mut ice, &tees, t).1;
    }
    const SAMPLES: usize = 5;
    const ITERS_PER_SAMPLE: u64 = 10;
    let mut rates = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let begin = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            t = scenario(&mut ice, &tees, t).1;
        }
        let wall = begin.elapsed().as_secs_f64();
        rates.push((ITERS_PER_SAMPLE * PAGES_PER_ITER) as f64 / wall);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let pages_per_s = rates[SAMPLES / 2];
    println!(
        "simspeed 2tee interleaving: {PAGES_PER_ITER} simulated pages/iter, \
         {pages_per_s:.0} simulated pages per wall-clock second (median of {SAMPLES})"
    );
    write_baseline(pages_per_s);

    let mut group = c.benchmark_group("simspeed");
    group.throughput(Throughput::Bytes(PAGES_PER_ITER * PAGE_SIZE));
    group.bench_function("interleaving_2tee_16ch", |b| {
        b.iter(|| {
            let (n, finished) = scenario(&mut ice, &tees, t);
            t = finished;
            n
        })
    });
    group.finish();

    assert!(
        pages_per_s >= FLOOR_PAGES_PER_S,
        "simulator speed regressed: {pages_per_s:.0} pages/s is below the \
         {FLOOR_PAGES_PER_S:.0} pages/s floor"
    );
}

/// Writes the simulator-speed baseline as JSON (no serde in the
/// offline workspace; the format is flat enough to emit by hand).
fn write_baseline(pages_per_s: f64) {
    let path =
        std::env::var("BENCH_SIMSPEED_JSON").unwrap_or_else(|_| "BENCH_simspeed.json".to_string());
    let json = format!(
        "{{\n  \"scenario\": \"2tee_16ch_interleaving\",\n  \"tees\": {TEES},\n  \
         \"read_batches_per_tee\": {READ_BATCHES},\n  \"batch_pages\": {BATCH_PAGES},\n  \
         \"write_pages_per_tee\": {WRITE_PAGES},\n  \"rounds\": {ROUNDS},\n  \
         \"channels\": {CHANNELS},\n  \"simulated_pages_per_iter\": {PAGES_PER_ITER},\n  \
         \"simulated_pages_per_wall_s\": {pages_per_s:.0},\n  \
         \"floor_pages_per_s\": {FLOOR_PAGES_PER_S:.0}\n}}\n"
    );
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote simulator-speed baseline to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simspeed
}
criterion_main!(benches);
