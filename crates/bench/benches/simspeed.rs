//! Simulator-speed bench: wall-clock throughput of the executor hot
//! path on a fixed 2-tenant interleaving scenario.
//!
//! Unlike the figure benches (which report *simulated* latencies), this
//! bench measures how fast the simulator itself runs: simulated pages
//! retired per wall-clock second while two TEEs keep read and write
//! tickets interleaved across 16 channels under WFQ. This is the
//! metric that gates fleet-scale serving and trace replay — see the
//! "Simulator performance" section of `docs/ARCHITECTURE.md`.
//!
//! The scenario is fixed so numbers are comparable across PRs:
//! 2 TEEs x 4 concurrent 32-page read batches + one 16-page write
//! batch per TEE per round, 8 rounds per iteration (2,304 simulated
//! pages). The bench emits a `BenchReport` to `BENCH_simspeed.json`
//! (override the path with `BENCH_SIMSPEED_JSON`) and asserts a
//! conservative pages/s floor — with op-log capture *off* — so a
//! future PR cannot silently regress the hot path. A second datapoint
//! measures the same scenario with capture *on*, quantifying the
//! observer's overhead.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_obs::{BenchReport, Direction};
use iceclave_types::{Lpn, PageWrite, SimTime, TeeId, PAGE_SIZE};

const TEES: u64 = 2;
const READ_BATCHES: u64 = 4;
const BATCH_PAGES: u64 = 32;
const WRITE_PAGES: u64 = 16;
const ROUNDS: u64 = 8;
const CHANNELS: u32 = 16;

/// Simulated pages retired per iteration of the scenario.
const PAGES_PER_ITER: u64 = ROUNDS * TEES * (READ_BATCHES * BATCH_PAGES + WRITE_PAGES);

/// Conservative wall-clock floor (pages/s) asserted at the end of the
/// bench, with trace capture off. The flattened hot path sustains well
/// over 10^6 pages/s on a development machine; the floor is set an
/// order of magnitude below the post-flattening rate so slow shared CI
/// runners pass while a return to the pre-flattening executor (~5x
/// slower) still trips it.
const FLOOR_PAGES_PER_S: f64 = 150_000.0;

/// A 16-channel device with two TEEs. Each TEE's grant is split into a
/// read half and a write half so in-flight read and write tickets never
/// race the same logical page (the executor's documented in-flight
/// contract).
fn setup() -> (IceClave, Vec<(TeeId, Vec<Lpn>)>, SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let pages_per_tee = READ_BATCHES * BATCH_PAGES + WRITE_PAGES;
    let t = ice
        .populate(Lpn::new(0), TEES * pages_per_tee, SimTime::ZERO)
        .expect("population fits");
    let mut tees = Vec::new();
    for tee_idx in 0..TEES {
        let base = tee_idx * pages_per_tee;
        let lpns: Vec<Lpn> = (base..base + pages_per_tee).map(Lpn::new).collect();
        let (tee, _) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
        tees.push((tee, lpns));
    }
    (ice, tees, t)
}

/// Runs one iteration of the fixed scenario: `ROUNDS` rounds of
/// concurrent read + write tickets from both tenants, each round
/// drained to idle. Returns the number of completions (checked against
/// `PAGES_PER_ITER`) and the simulated finish time.
fn scenario(ice: &mut IceClave, tees: &[(TeeId, Vec<Lpn>)], start: SimTime) -> (u64, SimTime) {
    let read_pages = (READ_BATCHES * BATCH_PAGES) as usize;
    let mut t = start;
    let mut completions = 0u64;
    for _ in 0..ROUNDS {
        for (tee, lpns) in tees {
            for batch in 0..READ_BATCHES as usize {
                let chunk = &lpns[batch * BATCH_PAGES as usize..(batch + 1) * BATCH_PAGES as usize];
                ice.submit_batch_async(*tee, chunk, t).expect("read batch");
            }
            let writes: Vec<PageWrite> = lpns[read_pages..]
                .iter()
                .map(|&lpn| PageWrite::new(lpn))
                .collect();
            ice.submit_write_batch_async_as(*tee, writes, t)
                .expect("write batch");
        }
        for ev in ice.drain_completions() {
            completions += 1;
            t = t.max(ev.ready_at());
        }
    }
    (completions, t)
}

/// Median wall-clock pages/s over `SAMPLES` timed blocks.
fn measure(ice: &mut IceClave, tees: &[(TeeId, Vec<Lpn>)], t: &mut SimTime) -> f64 {
    const SAMPLES: usize = 5;
    const ITERS_PER_SAMPLE: u64 = 10;
    let mut rates = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let begin = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            *t = scenario(ice, tees, *t).1;
        }
        let wall = begin.elapsed().as_secs_f64();
        rates.push((ITERS_PER_SAMPLE * PAGES_PER_ITER) as f64 / wall);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[SAMPLES / 2]
}

fn bench_simspeed(c: &mut Criterion) {
    let (mut ice, tees, t0) = setup();
    let (completions, sim_end) = scenario(&mut ice, &tees, t0);
    assert_eq!(completions, PAGES_PER_ITER, "scenario retired every page");
    let sim_elapsed_ns = sim_end.saturating_since(t0).as_nanos_f64();

    // Wall-clock measurement for the JSON report: warm up, then time a
    // fixed block of iterations with a plain monotonic clock (the
    // criterion group below tracks the same path statistically).
    let mut t = t0;
    for _ in 0..3 {
        t = scenario(&mut ice, &tees, t).1;
    }
    let pages_per_s = measure(&mut ice, &tees, &mut t);

    // Capture-on datapoint: the same scenario with the op-log observer
    // installed, so the trace hook's overhead has a tracked number.
    ice.enable_tracing();
    let pages_per_s_traced = measure(&mut ice, &tees, &mut t);
    let trace = ice.take_trace().expect("tracing was enabled");
    assert!(!trace.is_empty(), "capture-on run recorded tickets");

    println!(
        "simspeed 2tee interleaving: {PAGES_PER_ITER} simulated pages/iter, \
         {pages_per_s:.0} pages per wall-clock second capture-off, \
         {pages_per_s_traced:.0} capture-on ({:.1}% overhead)",
        (1.0 - pages_per_s_traced / pages_per_s) * 100.0
    );

    let mut report = BenchReport::new("simspeed")
        .config("scenario", "2tee_16ch_interleaving")
        .config("tees", TEES)
        .config("read_batches_per_tee", READ_BATCHES)
        .config("batch_pages", BATCH_PAGES)
        .config("write_pages_per_tee", WRITE_PAGES)
        .config("rounds", ROUNDS)
        .config("channels", CHANNELS);
    report.push_metric(
        "simulated_pages_per_iter",
        "pages",
        PAGES_PER_ITER as f64,
        Direction::Either,
        0.0,
        true,
    );
    report.push_metric(
        "sim_elapsed_ns",
        "ns",
        sim_elapsed_ns,
        Direction::Lower,
        0.02,
        true,
    );
    report.push_metric(
        "pages_per_wall_s",
        "pages/s",
        pages_per_s,
        Direction::Higher,
        0.5,
        false,
    );
    report.push_metric(
        "pages_per_wall_s_traced",
        "pages/s",
        pages_per_s_traced,
        Direction::Higher,
        0.5,
        false,
    );
    match report.write_default("BENCH_SIMSPEED_JSON", "BENCH_simspeed.json") {
        Ok(path) => println!("wrote simulator-speed report to {path}"),
        Err(e) => eprintln!("could not write simspeed report: {e}"),
    }

    let mut group = c.benchmark_group("simspeed");
    group.throughput(Throughput::Bytes(PAGES_PER_ITER * PAGE_SIZE));
    group.bench_function("interleaving_2tee_16ch", |b| {
        b.iter(|| {
            let (n, finished) = scenario(&mut ice, &tees, t);
            t = finished;
            n
        })
    });
    group.finish();

    assert!(
        pages_per_s >= FLOOR_PAGES_PER_S,
        "simulator speed regressed: {pages_per_s:.0} pages/s (capture off) is below \
         the {FLOOR_PAGES_PER_S:.0} pages/s floor"
    );
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simspeed
}
criterion_main!(benches);
