//! Executor interleaving sweep: 2 TEEs × {1, 2, 4, 8} in-flight
//! batches through the event-driven completion-queue API.
//!
//! Each configuration submits `in_flight` 32-page read batches per TEE
//! as concurrent tickets at the same simulated instant and drains the
//! completion queue. The bench reports the simulated throughput
//! (pages/s) and per-page p99 latency, times the submit+drain path
//! with criterion, and emits a `BENCH_exec.json` baseline (uploaded as
//! a CI artifact beside `BENCH_writes.json`) so the executor's
//! interleaving trajectory is tracked across PRs. Override the output
//! path with the `BENCH_EXEC_JSON` environment variable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_obs::{BenchReport, Direction};
use iceclave_sim::Histogram;
use iceclave_types::{CompletionEvent, Lpn, SimTime, TeeId, PAGE_SIZE};

const TEES: u64 = 2;
const BATCH_PAGES: u64 = 32;
const IN_FLIGHT: [u64; 4] = [1, 2, 4, 8];
const CHANNELS: u32 = 16;

/// A 16-channel device with two TEEs, each granted enough pages for
/// the deepest sweep point.
fn setup(in_flight: u64) -> (IceClave, Vec<(TeeId, Vec<Lpn>)>, SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let pages_per_tee = BATCH_PAGES * in_flight;
    let t = ice
        .populate(Lpn::new(0), TEES * pages_per_tee, SimTime::ZERO)
        .expect("population fits");
    let mut tees = Vec::new();
    for tee_idx in 0..TEES {
        let base = tee_idx * pages_per_tee;
        let lpns: Vec<Lpn> = (base..base + pages_per_tee).map(Lpn::new).collect();
        let (tee, _) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
        tees.push((tee, lpns));
    }
    (ice, tees, t)
}

/// Submits `in_flight` batches per TEE concurrently and drains them.
/// Returns the drained events.
fn interleave(
    ice: &mut IceClave,
    tees: &[(TeeId, Vec<Lpn>)],
    in_flight: u64,
    t: SimTime,
) -> Vec<CompletionEvent> {
    for batch in 0..in_flight as usize {
        for (tee, lpns) in tees {
            let chunk = &lpns[batch * BATCH_PAGES as usize..(batch + 1) * BATCH_PAGES as usize];
            ice.submit_batch_async(*tee, chunk, t)
                .expect("granted batch");
        }
    }
    ice.drain_completions()
}

fn bench_exec_interleaving(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_interleaving");
    let mut baseline: Vec<(u64, f64, u64)> = Vec::new();
    for &in_flight in &IN_FLIGHT {
        let total_pages = TEES * BATCH_PAGES * in_flight;
        group.throughput(Throughput::Bytes(total_pages * PAGE_SIZE));

        // Report the simulated numbers once, outside the timed loop.
        let (mut ice, tees, t) = setup(in_flight);
        let events = interleave(&mut ice, &tees, in_flight, t);
        assert_eq!(events.len(), total_pages as usize);
        let mut latencies = Histogram::new();
        let mut finished = t;
        for ev in &events {
            latencies.record(ev.breakdown.total().as_nanos());
            finished = finished.max(ev.ready_at());
        }
        let sim_latency = finished.saturating_since(t);
        let pages_per_s = total_pages as f64 / (sim_latency.as_nanos_f64() * 1e-9);
        let p99_ns = latencies.quantile(0.99);
        println!(
            "exec 2tee x {in_flight} batches: simulated drain {sim_latency}, \
             {pages_per_s:.0} pages/s, p99 page latency {p99_ns} ns"
        );
        baseline.push((in_flight, pages_per_s, p99_ns));

        // Time ONLY the submit+drain path: device construction stays
        // outside the measured region (the runtime persists across
        // iterations; every iteration schedules the same ticket mix).
        group.bench_with_input(
            BenchmarkId::new("submit_drain_2tee_32p", in_flight),
            &in_flight,
            |b, &in_flight| b.iter(|| interleave(&mut ice, &tees, in_flight, t).len()),
        );
    }
    group.finish();
    write_baseline(&baseline);
}

/// Emits the interleaving report: simulated pages/s and p99 page
/// latency per sweep point, all gated (deterministic simulated
/// values).
fn write_baseline(baseline: &[(u64, f64, u64)]) {
    let mut report = BenchReport::new("exec")
        .config("tees", TEES)
        .config("batch_pages", BATCH_PAGES)
        .config("channels", CHANNELS);
    for &(in_flight, pages_per_s, p99_ns) in baseline {
        report.push_metric(
            format!("pages_per_s_if{in_flight}"),
            "pages/s",
            pages_per_s,
            Direction::Higher,
            0.02,
            true,
        );
        report.push_metric(
            format!("p99_page_latency_ns_if{in_flight}"),
            "ns",
            p99_ns as f64,
            Direction::Lower,
            0.02,
            true,
        );
    }
    match report.write_default("BENCH_EXEC_JSON", "BENCH_exec.json") {
        Ok(path) => println!("wrote executor interleaving report to {path}"),
        Err(e) => eprintln!("could not write interleaving report: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_exec_interleaving
}
criterion_main!(benches);
