//! Regenerates the paper's fig14 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig14");
    println!(
        "{}",
        iceclave_experiments::figures::fig14(&iceclave_bench::bench_config())
    );
}
