//! Regenerates the paper's table1 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("table1");
    println!(
        "{}",
        iceclave_experiments::figures::table1(&iceclave_bench::bench_config())
    );
}
