//! Table 1 (write-intensity sweep), rebuilt on the batched data path:
//! criterion benches that push a 64-page mixed batch through
//! `IceClave::submit_batch` + `IceClave::submit_write_batch` at write
//! ratios {0, 20, 50, 80, 100}% and report the simulated latency and
//! throughput alongside, matching the fig12/fig13 structure.
//!
//! The bench also sweeps a pure write batch across 2/4/8/16 channels
//! and emits a `BENCH_writes.json` [`BenchReport`] (simulated pages/s
//! per channel count) so the write-path perf trajectory is tracked and
//! gated across PRs. Override the output path with the
//! `BENCH_WRITES_JSON` environment variable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_obs::{BenchReport, Direction};
use iceclave_types::{Lpn, SimTime, PAGE_SIZE};

const BATCH_PAGES: u64 = 64;
const WRITE_RATIOS: [u64; 5] = [0, 20, 50, 80, 100];
const CHANNELS: [u32; 4] = [2, 4, 8, 16];

/// Builds a populated runtime with an offloaded TEE owning
/// `BATCH_PAGES` pages, at the given channel count.
fn setup(channels: u32) -> (IceClave, iceclave_types::TeeId, SimTime) {
    let overrides = Overrides {
        channels: Some(channels),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice
        .populate(Lpn::new(0), BATCH_PAGES, SimTime::ZERO)
        .expect("population fits");
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
    (ice, tee, t)
}

/// One mixed 64-page step at `ratio`% writes: the write fraction goes
/// through `submit_write_batch`, the rest through `submit_batch`.
/// Returns the simulated completion of the slower side.
fn mixed_step(
    ice: &mut IceClave,
    tee: iceclave_types::TeeId,
    read_lpns: &[Lpn],
    write_lpns: &[Lpn],
    t: SimTime,
) -> SimTime {
    let mut finished = t;
    if !read_lpns.is_empty() {
        finished = finished.max(
            ice.submit_batch(tee, read_lpns, t)
                .expect("granted batch")
                .finished,
        );
    }
    if !write_lpns.is_empty() {
        finished = finished.max(
            ice.submit_write_batch(tee, write_lpns, t)
                .expect("granted batch")
                .finished,
        );
    }
    finished
}

fn bench_write_ratio_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_write_ratio");
    group.throughput(Throughput::Bytes(BATCH_PAGES * PAGE_SIZE));
    for &ratio in &WRITE_RATIOS {
        let writes = (BATCH_PAGES * ratio / 100) as usize;
        let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
        let (read_lpns, write_lpns) = lpns.split_at(lpns.len() - writes);
        // Report the simulated numbers once, outside the timed loop.
        let (mut ice, tee, t) = setup(8);
        let done = mixed_step(&mut ice, tee, read_lpns, write_lpns, t);
        let sim_latency = done.saturating_since(t);
        let pages_per_s = BATCH_PAGES as f64 / (sim_latency.as_nanos_f64() * 1e-9);
        println!(
            "table1 {ratio:>3}% writes: simulated batch latency {sim_latency}, \
             {pages_per_s:.0} pages/s"
        );

        // Time ONLY the batched data path: device construction stays
        // outside the measured region (the runtime persists across
        // iterations; each call schedules the same 64-page mix).
        group.bench_with_input(
            BenchmarkId::new("mixed_batch_64p", format!("writes{ratio}pct")),
            &ratio,
            |b, _| b.iter(|| mixed_step(&mut ice, tee, read_lpns, write_lpns, t)),
        );
    }
    group.finish();
}

/// Pure write batch across the channel sweep; emits the
/// `BENCH_writes.json` baseline of simulated write throughput.
fn bench_write_channel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_write_channel_sweep");
    group.throughput(Throughput::Bytes(BATCH_PAGES * PAGE_SIZE));
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    let mut baseline: Vec<(u32, f64)> = Vec::new();
    for &channels in &CHANNELS {
        let (mut ice, tee, t) = setup(channels);
        let done = ice.submit_write_batch(tee, &lpns, t).expect("granted");
        let sim_latency = done.latency();
        let pages_per_s = BATCH_PAGES as f64 / (sim_latency.as_nanos_f64() * 1e-9);
        println!(
            "writes ch{channels:<2}: simulated batch latency {sim_latency}, \
             {pages_per_s:.0} pages/s"
        );
        baseline.push((channels, pages_per_s));

        group.bench_with_input(
            BenchmarkId::new("submit_write_batch_64p", channels),
            &channels,
            |b, _| {
                b.iter(|| {
                    ice.submit_write_batch(tee, &lpns, t)
                        .expect("granted batch")
                        .finished
                })
            },
        );
    }
    group.finish();
    write_baseline(&baseline);
}

/// Emits the simulated write-throughput report: one gated pages/s
/// metric per channel count (deterministic simulated values, so the
/// tolerance band is tight).
fn write_baseline(baseline: &[(u32, f64)]) {
    let mut report = BenchReport::new("writes").config("batch_pages", BATCH_PAGES);
    for &(channels, pages_per_s) in baseline {
        report.push_metric(
            format!("pages_per_s_ch{channels}"),
            "pages/s",
            pages_per_s,
            Direction::Higher,
            0.02,
            true,
        );
    }
    match report.write_default("BENCH_WRITES_JSON", "BENCH_writes.json") {
        Ok(path) => println!("wrote write-path report to {path}"),
        Err(e) => eprintln!("could not write write-path report: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_write_ratio_sweep, bench_write_channel_sweep
}
criterion_main!(benches);
