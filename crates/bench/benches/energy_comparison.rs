//! Regenerates the derived energy comparison (see DESIGN.md).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("energy");
    println!(
        "{}",
        iceclave_experiments::figures::energy_table(&iceclave_bench::bench_config())
    );
}
