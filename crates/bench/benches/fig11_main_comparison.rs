//! Regenerates the paper's fig11 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig11");
    println!(
        "{}",
        iceclave_experiments::figures::fig11(&iceclave_bench::bench_config())
    );
}
