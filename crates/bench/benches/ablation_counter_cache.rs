//! Regenerates the counter-metadata hierarchy ablation: the
//! two-dimensional L1 (on-chip SRAM) × L2 (MAC-sealed reserved-DRAM
//! store) sweep. Runs as a `harness = false` bench target so
//! `cargo bench` reproduces the artifact.
//!
//! Emits `BENCH_counter_cache.json` (override the path with the
//! `BENCH_COUNTER_CACHE_JSON` environment variable) with:
//!
//! * the scan-heavy microbench grid — steady-state mean read overhead
//!   over a working set 4× the L1's split-counter coverage, for every
//!   L1 {32..512} KiB × L2 {0, 2, 8, 32} MiB point;
//! * end-to-end workload rows (TPC-H Q1 under SC-64, TPC-B hybrid) on
//!   the smaller grid;
//! * the acceptance figures, asserted here: at every L1 size, the
//!   8 MiB L2 must cut the scan's mean read overhead by ≥ 1.3× vs the
//!   SRAM-only baseline at the same L1 size.

use std::io::Write as _;

use iceclave_experiments::ablation::{
    scan_sweep, workload_sweep, ScanPoint, WorkloadPoint, L2_SWEEP_MIB, WORKING_SET_FACTOR,
};

fn main() {
    iceclave_bench::banner("ablation_counter_cache");
    let scan = scan_sweep();
    let workloads = workload_sweep(&iceclave_bench::bench_config());
    println!(
        "{}",
        iceclave_experiments::figures::ablation_report(&scan, &workloads)
    );
    write_baseline(&scan, &workloads);

    // Acceptance: the 8 MiB L2 vs SRAM-only, same L1, working set at
    // 4x the L1's coverage.
    for chunk in scan.chunks(L2_SWEEP_MIB.len()) {
        let off = chunk
            .iter()
            .find(|p| p.l2.as_bytes() == 0)
            .expect("sweep includes the SRAM-only baseline");
        let l2_8m = chunk
            .iter()
            .find(|p| p.l2.as_bytes() == 8 << 20)
            .expect("sweep includes the 8 MiB point");
        let ratio = off.mean_read_overhead.as_nanos_f64() / l2_8m.mean_read_overhead.as_nanos_f64();
        assert!(
            ratio >= 1.3,
            "at L1 {} (working set {} pages = {}x coverage), the 8 MiB L2 \
             must cut mean read overhead 1.3x; got {ratio:.2} ({} vs {})",
            off.l1,
            off.working_set_pages,
            WORKING_SET_FACTOR,
            off.mean_read_overhead,
            l2_8m.mean_read_overhead,
        );
    }
    println!("acceptance: 8 MiB L2 beats SRAM-only by >= 1.3x at every L1 size");
}

/// Writes the sweep as JSON (no serde in the offline workspace; the
/// format is flat enough to emit by hand).
fn write_baseline(scan: &[ScanPoint], workloads: &[WorkloadPoint]) {
    let path = std::env::var("BENCH_COUNTER_CACHE_JSON")
        .unwrap_or_else(|_| "BENCH_counter_cache.json".to_string());
    let scan_entries: Vec<String> = scan
        .iter()
        .map(|p| {
            format!(
                "    {{ \"l1_kib\": {}, \"l2_mib\": {}, \"working_set_pages\": {}, \
                 \"mean_read_overhead_ns\": {:.2}, \"l1_hit_rate\": {:.4}, \
                 \"l2_hit_rate\": {:.4} }}",
                p.l1.as_bytes() / 1024,
                p.l2.as_bytes() >> 20,
                p.working_set_pages,
                p.mean_read_overhead.as_nanos_f64(),
                p.l1_hit_rate,
                p.l2_hit_rate,
            )
        })
        .collect();
    let workload_entries: Vec<String> = workloads
        .iter()
        .map(|p| {
            format!(
                "    {{ \"workload\": \"{}\", \"mode\": \"{}\", \"l1_kib\": {}, \
                 \"l2_mib\": {}, \"mem_time_ns\": {}, \"mean_read_overhead_ns\": {:.2}, \
                 \"counter_hit_rate\": {:.4}, \"tree_hit_rate\": {:.4}, \
                 \"l2_hit_rate\": {:.4} }}",
                p.workload.label(),
                p.mode,
                p.l1.as_bytes() / 1024,
                p.l2.as_bytes() >> 20,
                p.mem_time.as_nanos(),
                p.mean_read_overhead.as_nanos_f64(),
                p.counter_hit_rate,
                p.tree_hit_rate,
                p.l2_hit_rate,
            )
        })
        .collect();
    // Acceptance summary per L1 size.
    let acceptance: Vec<String> = scan
        .chunks(L2_SWEEP_MIB.len())
        .filter_map(|chunk| {
            let off = chunk.iter().find(|p| p.l2.as_bytes() == 0)?;
            let l2_8m = chunk.iter().find(|p| p.l2.as_bytes() == 8 << 20)?;
            Some(format!(
                "    {{ \"l1_kib\": {}, \"overhead_ratio_off_vs_8mib\": {:.2} }}",
                off.l1.as_bytes() / 1024,
                off.mean_read_overhead.as_nanos_f64() / l2_8m.mean_read_overhead.as_nanos_f64(),
            ))
        })
        .collect();
    let json = format!(
        "{{\n  \"working_set_factor\": {WORKING_SET_FACTOR},\n  \"scan_sweep\": [\n{}\n  ],\n  \
         \"workload_sweep\": [\n{}\n  ],\n  \"acceptance_min_ratio\": 1.3,\n  \
         \"acceptance\": [\n{}\n  ]\n}}\n",
        scan_entries.join(",\n"),
        workload_entries.join(",\n"),
        acceptance.join(",\n"),
    );
    let mut file = std::fs::File::create(&path).expect("create counter-cache baseline");
    file.write_all(json.as_bytes()).expect("write baseline");
    println!("counter-cache baseline written to {path}");
}
