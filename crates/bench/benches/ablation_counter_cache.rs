//! Regenerates the counter-cache capacity ablation (see DESIGN.md).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("ablation_counter_cache");
    println!(
        "{}",
        iceclave_experiments::figures::ablation_counter_cache(&iceclave_bench::bench_config())
    );
}
