//! Regenerates the counter-metadata hierarchy ablation: the
//! two-dimensional L1 (on-chip SRAM) × L2 (MAC-sealed reserved-DRAM
//! store) sweep. Runs as a `harness = false` bench target so
//! `cargo bench` reproduces the artifact.
//!
//! Emits `BENCH_counter_cache.json` (override the path with the
//! `BENCH_COUNTER_CACHE_JSON` environment variable) with:
//!
//! * the scan-heavy microbench grid — steady-state mean read overhead
//!   over a working set 4× the L1's split-counter coverage, for every
//!   L1 {32..512} KiB × L2 {0, 2, 8, 32} MiB point;
//! * end-to-end workload rows (TPC-H Q1 under SC-64, TPC-B hybrid) on
//!   the smaller grid;
//! * the acceptance figures, asserted here: at every L1 size, the
//!   8 MiB L2 must cut the scan's mean read overhead by ≥ 1.3× vs the
//!   SRAM-only baseline at the same L1 size.

use iceclave_experiments::ablation::{
    scan_sweep, workload_sweep, ScanPoint, WorkloadPoint, L2_SWEEP_MIB, WORKING_SET_FACTOR,
};
use iceclave_obs::{BenchReport, Direction};

fn main() {
    iceclave_bench::banner("ablation_counter_cache");
    let scan = scan_sweep();
    let workloads = workload_sweep(&iceclave_bench::bench_config());
    println!(
        "{}",
        iceclave_experiments::figures::ablation_report(&scan, &workloads)
    );
    write_baseline(&scan, &workloads);

    // Acceptance: the 8 MiB L2 vs SRAM-only, same L1, working set at
    // 4x the L1's coverage.
    for chunk in scan.chunks(L2_SWEEP_MIB.len()) {
        let off = chunk
            .iter()
            .find(|p| p.l2.as_bytes() == 0)
            .expect("sweep includes the SRAM-only baseline");
        let l2_8m = chunk
            .iter()
            .find(|p| p.l2.as_bytes() == 8 << 20)
            .expect("sweep includes the 8 MiB point");
        let ratio = off.mean_read_overhead.as_nanos_f64() / l2_8m.mean_read_overhead.as_nanos_f64();
        assert!(
            ratio >= 1.3,
            "at L1 {} (working set {} pages = {}x coverage), the 8 MiB L2 \
             must cut mean read overhead 1.3x; got {ratio:.2} ({} vs {})",
            off.l1,
            off.working_set_pages,
            WORKING_SET_FACTOR,
            off.mean_read_overhead,
            l2_8m.mean_read_overhead,
        );
    }
    println!("acceptance: 8 MiB L2 beats SRAM-only by >= 1.3x at every L1 size");
}

/// Emits the sweep as a [`BenchReport`]: per scan point the mean read
/// overhead is gated (deterministic simulated value) and the hit rates
/// ride along ungated; per workload row the memory time is gated; the
/// per-L1 acceptance ratio (SRAM-only vs 8 MiB L2) is gated with a
/// floor-preserving band.
fn write_baseline(scan: &[ScanPoint], workloads: &[WorkloadPoint]) {
    let mut report = BenchReport::new("counter_cache")
        .config("working_set_factor", WORKING_SET_FACTOR)
        .config("acceptance_min_ratio", "1.3");
    for p in scan {
        let key = format!(
            "l1_{}k_l2_{}m",
            p.l1.as_bytes() / 1024,
            p.l2.as_bytes() >> 20
        );
        report.push_metric(
            format!("scan_overhead_ns_{key}"),
            "ns",
            p.mean_read_overhead.as_nanos_f64(),
            Direction::Lower,
            0.02,
            true,
        );
        report.push_metric(
            format!("scan_l1_hit_rate_{key}"),
            "rate",
            p.l1_hit_rate,
            Direction::Higher,
            0.05,
            false,
        );
        report.push_metric(
            format!("scan_l2_hit_rate_{key}"),
            "rate",
            p.l2_hit_rate,
            Direction::Higher,
            0.05,
            false,
        );
    }
    for p in workloads {
        let key = format!(
            "{}_{}_l1_{}k_l2_{}m",
            p.workload.label(),
            p.mode,
            p.l1.as_bytes() / 1024,
            p.l2.as_bytes() >> 20
        );
        report.push_metric(
            format!("mem_time_ns_{key}"),
            "ns",
            p.mem_time.as_nanos() as f64,
            Direction::Lower,
            0.02,
            true,
        );
    }
    for chunk in scan.chunks(L2_SWEEP_MIB.len()) {
        let (Some(off), Some(l2_8m)) = (
            chunk.iter().find(|p| p.l2.as_bytes() == 0),
            chunk.iter().find(|p| p.l2.as_bytes() == 8 << 20),
        ) else {
            continue;
        };
        report.push_metric(
            format!(
                "overhead_ratio_off_vs_8mib_l1_{}k",
                off.l1.as_bytes() / 1024
            ),
            "ratio",
            off.mean_read_overhead.as_nanos_f64() / l2_8m.mean_read_overhead.as_nanos_f64(),
            Direction::Higher,
            0.05,
            true,
        );
    }
    match report.write_default("BENCH_COUNTER_CACHE_JSON", "BENCH_counter_cache.json") {
        Ok(path) => println!("counter-cache report written to {path}"),
        Err(e) => eprintln!("could not write counter-cache report: {e}"),
    }
}
