//! Regenerates the paper's table6 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("table6");
    println!(
        "{}",
        iceclave_experiments::figures::table6(&iceclave_bench::bench_config())
    );
}
