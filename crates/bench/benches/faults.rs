//! Fault-rate sweep: goodput and tail latency under injected flash
//! faults.
//!
//! The robustness counterpart of `simspeed.rs`: a fixed single-tenant
//! read/write scenario is replayed under [`FaultPlan`]s of increasing
//! severity (fault-free, 1e-3, 1e-2 read-burst + program-fail rates)
//! and the bench reports, per rate:
//!
//! * **goodput** — pages delivered `Done` per *simulated* second (a
//!   degraded page costs its retry ladder and still counts zero), and
//! * **victim p99** — the 99th-percentile per-page read latency, which
//!   captures the backoff rungs the retry ladder inserts on faulting
//!   pages.
//!
//! The bench emits `BENCH_faults.json` (override the path with
//! `BENCH_FAULTS_JSON`) and asserts the recovery contract from
//! `docs/ARCHITECTURE.md`: at a 1e-3 fault rate the retry ladder must
//! preserve at least 90% of fault-free goodput — degradation has to be
//! graceful, not a cliff.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_flash::FaultPlan;
use iceclave_obs::{BenchReport, Direction};
use iceclave_types::{Lpn, SimTime, TeeId, PAGE_SIZE};

const PAGES: u64 = 256;
const BATCH_PAGES: u64 = 32;
const ROUNDS: u64 = 4;
const CHANNELS: u32 = 8;
const SEED: u64 = 2021;

/// The swept per-operation fault rates. `RATES[1]` is the rate the
/// goodput floor is asserted at.
const RATES: [f64; 3] = [0.0, 1e-3, 1e-2];

/// Minimum fraction of fault-free goodput the device must retain at a
/// 1e-3 fault rate.
const GOODPUT_FLOOR_AT_1E3: f64 = 0.9;

/// What one swept rate produced.
struct RatePoint {
    rate: f64,
    goodput_pages_per_sim_s: f64,
    victim_p99_us: f64,
    done_pages: u64,
    failed_pages: u64,
    read_retries: u64,
    program_remaps: u64,
    blocks_retired: u64,
}

/// A fresh single-TEE device over `PAGES` populated LPNs.
fn setup() -> (IceClave, TeeId, Vec<Lpn>, SimTime) {
    let overrides = Overrides {
        channels: Some(CHANNELS),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice
        .populate(Lpn::new(0), PAGES, SimTime::ZERO)
        .expect("population fits");
    let lpns: Vec<Lpn> = (0..PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
    (ice, tee, lpns, t)
}

/// Replays the fixed scenario at one fault rate: `ROUNDS` rounds of a
/// full-range write wave followed by `PAGES / BATCH_PAGES` read
/// batches, all drained to completion.
fn run_rate(rate: f64) -> RatePoint {
    let (mut ice, tee, lpns, mut t) = setup();
    ice.install_fault_plan(FaultPlan {
        seed: SEED,
        read_burst_rate: rate,
        max_burst: 16,
        ecc_t: 8,
        program_fail_rate: rate,
        erase_fail_rate: rate,
        ..FaultPlan::none()
    });

    let start = t;
    let mut done_pages = 0u64;
    let mut failed_pages = 0u64;
    let mut read_latencies_us: Vec<f64> = Vec::new();
    for _ in 0..ROUNDS {
        let wt = ice
            .submit_write_batch_async(tee, &lpns, t)
            .expect("write batch");
        let writes = ice.wait_write_batch(wt).expect("write wave completes");
        t = writes.finished;
        for c in &writes.completions {
            if c.status.is_done() {
                done_pages += 1;
            } else {
                failed_pages += 1;
            }
        }
        for chunk in lpns.chunks(BATCH_PAGES as usize) {
            let rt = ice.submit_batch_async(tee, chunk, t).expect("read batch");
            let reads = ice.wait_batch(rt).expect("read batch completes");
            for c in &reads.completions {
                if c.status.is_done() {
                    done_pages += 1;
                    read_latencies_us
                        .push(c.ready_at.as_micros_f64() - reads.issued.as_micros_f64());
                } else {
                    failed_pages += 1;
                }
            }
            t = reads.finished;
        }
    }

    let sim_elapsed_s = (t.as_secs_f64() - start.as_secs_f64()).max(f64::EPSILON);
    read_latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_idx = (read_latencies_us.len().saturating_sub(1)) * 99 / 100;
    let victim_p99_us = read_latencies_us.get(p99_idx).copied().unwrap_or(0.0);
    let rt = ice.stats();
    let ftl = ice.platform().ftl.stats();
    RatePoint {
        rate,
        goodput_pages_per_sim_s: done_pages as f64 / sim_elapsed_s,
        victim_p99_us,
        done_pages,
        failed_pages,
        read_retries: rt.read_retries,
        program_remaps: ftl.program_remaps,
        blocks_retired: ftl.blocks_retired,
    }
}

fn bench_faults(c: &mut Criterion) {
    let points: Vec<RatePoint> = RATES.iter().map(|&rate| run_rate(rate)).collect();
    for p in &points {
        println!(
            "faults rate={:.0e}: goodput {:.0} pages/sim-s, victim p99 {:.1} us, \
             {} done / {} failed, {} retries, {} remaps, {} blocks retired",
            p.rate,
            p.goodput_pages_per_sim_s,
            p.victim_p99_us,
            p.done_pages,
            p.failed_pages,
            p.read_retries,
            p.program_remaps,
            p.blocks_retired,
        );
    }
    write_artifact(&points);

    // The criterion group tracks the wall-clock cost of the faulting
    // path itself (retry scheduling, remap bookkeeping) at the highest
    // swept rate.
    let mut group = c.benchmark_group("faults");
    group.throughput(Throughput::Bytes(ROUNDS * 2 * PAGES * PAGE_SIZE));
    group.bench_function("sweep_1e-2", |b| b.iter(|| run_rate(RATES[2]).done_pages));
    group.finish();

    // Recovery contract: a realistic 1e-3 fault rate must not cost more
    // than 10% of fault-free goodput.
    let fault_free = points[0].goodput_pages_per_sim_s;
    let at_1e3 = points[1].goodput_pages_per_sim_s;
    assert!(
        at_1e3 >= GOODPUT_FLOOR_AT_1E3 * fault_free,
        "goodput cliff at 1e-3 faults: {at_1e3:.0} pages/sim-s is below \
         {GOODPUT_FLOOR_AT_1E3}x the fault-free {fault_free:.0} pages/sim-s"
    );
}

/// Emits the fault sweep as a [`BenchReport`]: goodput, tail latency
/// and page outcomes are gated per rate (the fault stream is seeded,
/// so every number is deterministic); the raw recovery counters ride
/// along ungated as diagnostics.
fn write_artifact(points: &[RatePoint]) {
    let mut report = BenchReport::new("faults")
        .config("scenario", format!("1tee_{CHANNELS}ch_fault_sweep"))
        .config("pages", PAGES)
        .config("rounds", ROUNDS)
        .config("seed", SEED)
        .config("goodput_floor_at_1e-3", GOODPUT_FLOOR_AT_1E3);
    for p in points {
        let key = format!("{:.0e}", p.rate).replace('-', "m");
        report.push_metric(
            format!("goodput_pages_per_sim_s_r{key}"),
            "pages/s",
            p.goodput_pages_per_sim_s,
            Direction::Higher,
            0.02,
            true,
        );
        report.push_metric(
            format!("victim_p99_us_r{key}"),
            "us",
            p.victim_p99_us,
            Direction::Lower,
            0.02,
            true,
        );
        report.push_metric(
            format!("done_pages_r{key}"),
            "pages",
            p.done_pages as f64,
            Direction::Higher,
            0.0,
            true,
        );
        report.push_metric(
            format!("failed_pages_r{key}"),
            "pages",
            p.failed_pages as f64,
            Direction::Lower,
            0.0,
            true,
        );
        for (name, value) in [
            ("read_retries", p.read_retries),
            ("program_remaps", p.program_remaps),
            ("blocks_retired", p.blocks_retired),
        ] {
            report.push_metric(
                format!("{name}_r{key}"),
                "count",
                value as f64,
                Direction::Either,
                0.1,
                false,
            );
        }
    }
    match report.write_default("BENCH_FAULTS_JSON", "BENCH_faults.json") {
        Ok(path) => println!("wrote fault sweep report to {path}"),
        Err(e) => eprintln!("could not write fault sweep report: {e}"),
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_faults
}
criterion_main!(benches);
