//! Figure 12 (channel sweep vs Host), rebuilt on the batched data
//! path: criterion benches that push a 64-page batch through
//! `IceClave::submit_batch` at 2/4/8/16 channels and report simulated
//! in-storage throughput against the host's PCIe-bound load path.
//!
//! Two numbers per channel count:
//! - the criterion measurement (host-side simulator speed), and
//! - the *simulated* batch latency/throughput plus the speedup over
//!   shipping the same pages to the host, printed alongside.
//!
//! The full per-workload figure table remains available via
//! `cargo run -p iceclave_bench --bin repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_types::{Lpn, SimTime, PAGE_SIZE};

const BATCH_PAGES: u64 = 64;
const CHANNELS: [u32; 4] = [2, 4, 8, 16];

/// Builds a populated runtime with an offloaded TEE owning
/// `BATCH_PAGES` pages, at the given channel count.
fn setup(channels: u32) -> (IceClave, iceclave_types::TeeId, SimTime) {
    let overrides = Overrides {
        channels: Some(channels),
        ..Overrides::none()
    };
    let config = Mode::IceClave.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice
        .populate(Lpn::new(0), BATCH_PAGES, SimTime::ZERO)
        .expect("population fits");
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
    (ice, tee, t)
}

fn bench_channel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_submit_batch_vs_host");
    group.throughput(Throughput::Bytes(BATCH_PAGES * PAGE_SIZE));
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    for &channels in &CHANNELS {
        // Report the simulated numbers once, outside the timed loop.
        let (mut ice, tee, t) = setup(channels);
        let done = ice.submit_batch(tee, &lpns, t).expect("granted batch");
        let sim_latency = done.latency();
        let bytes = BATCH_PAGES * PAGE_SIZE;
        let sim_gbps = bytes as f64 / sim_latency.as_nanos_f64();
        let host_side = ice.platform().pcie_transfer_time(bytes);
        let host_total = sim_latency.max(host_side) + host_side;
        println!(
            "fig12 ch{channels:<2}: simulated batch latency {sim_latency}, \
             {sim_gbps:.2} GB/s in-storage, {:.2}x vs host PCIe path",
            host_total / sim_latency
        );

        // Time ONLY the batched data path: device construction stays
        // outside the measured region (the runtime persists across
        // iterations; each call schedules the same 64-page batch).
        group.bench_with_input(
            BenchmarkId::new("submit_batch_64p", channels),
            &channels,
            |b, _| {
                b.iter(|| {
                    ice.submit_batch(tee, &lpns, t)
                        .expect("granted batch")
                        .finished
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_channel_sweep
}
criterion_main!(benches);
