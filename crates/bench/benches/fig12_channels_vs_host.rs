//! Regenerates the paper's fig12 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig12");
    println!("{}", iceclave_experiments::figures::fig12(&iceclave_bench::bench_config()));
}
