//! Regenerates the paper's fig16 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig16");
    println!(
        "{}",
        iceclave_experiments::figures::fig16(&iceclave_bench::bench_config())
    );
}
