//! Regenerates the paper's fig13 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig13");
    println!("{}", iceclave_experiments::figures::fig13(&iceclave_bench::bench_config()));
}
