//! Figure 13 (channel sweep vs ISC), rebuilt on the batched data path:
//! criterion benches that push a 64-page batch through
//! `IceClave::submit_batch` at 2/4/8/16 channels for both the secured
//! runtime and the unprotected ISC configuration, reporting the
//! security overhead at every channel count.
//!
//! The full per-workload figure table remains available via
//! `cargo run -p iceclave_bench --bin repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use iceclave_core::IceClave;
use iceclave_experiments::{Mode, Overrides};
use iceclave_types::{Lpn, SimDuration, SimTime, PAGE_SIZE};

const BATCH_PAGES: u64 = 64;
const CHANNELS: [u32; 4] = [2, 4, 8, 16];

/// A populated runtime with an offloaded TEE owning `BATCH_PAGES`
/// pages, under `mode` at `channels`.
fn setup(mode: Mode, channels: u32) -> (IceClave, iceclave_types::TeeId, SimTime) {
    let overrides = Overrides {
        channels: Some(channels),
        ..Overrides::none()
    };
    let config = mode.ssd_config(&overrides);
    let mut ice = IceClave::new(config);
    let t = ice
        .populate(Lpn::new(0), BATCH_PAGES, SimTime::ZERO)
        .expect("population fits");
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(64 << 10, &lpns, t).expect("offload");
    (ice, tee, t)
}

/// Simulated latency of one 64-page batch under `mode` at `channels`.
fn simulated_batch_latency(mode: Mode, channels: u32) -> SimDuration {
    let (mut ice, tee, t) = setup(mode, channels);
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    ice.submit_batch(tee, &lpns, t)
        .expect("granted batch")
        .latency()
}

fn bench_channel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_submit_batch_vs_isc");
    group.throughput(Throughput::Bytes(BATCH_PAGES * PAGE_SIZE));
    let lpns: Vec<Lpn> = (0..BATCH_PAGES).map(Lpn::new).collect();
    for &channels in &CHANNELS {
        let ice_latency = simulated_batch_latency(Mode::IceClave, channels);
        let isc_latency = simulated_batch_latency(Mode::Isc, channels);
        println!(
            "fig13 ch{channels:<2}: IceClave {ice_latency} vs ISC {isc_latency} \
             ({:+.1}% security overhead)",
            (ice_latency / isc_latency - 1.0) * 100.0
        );

        // Time ONLY the batched data path — device construction stays
        // outside the measured region.
        for (label, mode) in [("iceclave_64p", Mode::IceClave), ("isc_64p", Mode::Isc)] {
            let (mut ice, tee, t) = setup(mode, channels);
            group.bench_with_input(BenchmarkId::new(label, channels), &channels, |b, _| {
                b.iter(|| {
                    ice.submit_batch(tee, &lpns, t)
                        .expect("granted batch")
                        .finished
                })
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_channel_sweep
}
criterion_main!(benches);
