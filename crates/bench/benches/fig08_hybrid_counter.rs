//! Regenerates the paper's fig8 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig8");
    println!(
        "{}",
        iceclave_experiments::figures::fig8(&iceclave_bench::bench_config())
    );
}
