//! Regenerates the paper's fig18 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig18");
    println!(
        "{}",
        iceclave_experiments::figures::fig18(&iceclave_bench::bench_config())
    );
}
