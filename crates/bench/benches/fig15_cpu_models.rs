//! Regenerates the paper's fig15 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("fig15");
    println!(
        "{}",
        iceclave_experiments::figures::fig15(&iceclave_bench::bench_config())
    );
}
