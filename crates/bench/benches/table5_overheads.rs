//! Regenerates the paper's table5 (see DESIGN.md experiment index).
//! Runs as a `harness = false` bench target so `cargo bench`
//! reproduces the artifact.

fn main() {
    iceclave_bench::banner("table5");
    println!(
        "{}",
        iceclave_experiments::figures::table5(&iceclave_bench::bench_config())
    );
}
