//! RISC-V realization of the IceClave memory regions (§4.7).
//!
//! The paper's discussion notes that SSD vendors are adopting RISC-V
//! controllers and sketches how IceClave maps onto them: the machine /
//! supervisor / user privilege levels take the roles of the secure
//! world, the FTL service layer, and in-storage programs, with Physical
//! Memory Protection (PMP) entries enforcing the three-region policy of
//! Figure 4. This module implements that mapping so the portability
//! claim is executable, not rhetorical.

use iceclave_types::{ByteSize, PhysAddr};

use crate::attributes::{AccessType, Region};
use crate::map::MemoryMap;

/// RISC-V privilege levels (the three levels of §4.7).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum PrivilegeLevel {
    /// U-mode: offloaded in-storage programs.
    User,
    /// S-mode: the FTL's service layer / IceClave runtime services.
    Supervisor,
    /// M-mode: the security monitor (root of trust).
    Machine,
}

/// One PMP entry: a NAPOT-style range with R/W/X bits per privilege
/// class (modelled at the granularity IceClave needs).
#[derive(Copy, Clone, Debug)]
pub struct PmpEntry {
    /// Range start.
    pub start: u64,
    /// Exclusive range end.
    pub end: u64,
    /// U-mode may read.
    pub u_read: bool,
    /// U-mode may write.
    pub u_write: bool,
    /// S-mode may read.
    pub s_read: bool,
    /// S-mode may write.
    pub s_write: bool,
}

/// Standard RISC-V cores expose 16 PMP entries.
pub const MAX_PMP_ENTRIES: usize = 16;

/// A PMP-based encoding of the IceClave memory map.
///
/// # Examples
///
/// ```
/// use iceclave_trustzone::riscv::{PmpMemoryMap, PrivilegeLevel};
/// use iceclave_trustzone::{AccessType, MemoryMap, Region};
/// use iceclave_types::{ByteSize, PhysAddr};
///
/// let mut arm = MemoryMap::new();
/// arm.define(PhysAddr::new(0), ByteSize::from_mib(64), Region::Secure)?;
/// arm.define(
///     PhysAddr::new(64 << 20),
///     ByteSize::from_mib(16),
///     Region::Protected,
/// )?;
/// let pmp = PmpMemoryMap::from_memory_map(&arm);
///
/// // U-mode (an in-storage program) can read the mapping table...
/// assert!(pmp.permits(PrivilegeLevel::User, PhysAddr::new(64 << 20), AccessType::Read));
/// // ...but not write it, and cannot touch the secure region at all.
/// assert!(!pmp.permits(PrivilegeLevel::User, PhysAddr::new(64 << 20), AccessType::Write));
/// assert!(!pmp.permits(PrivilegeLevel::User, PhysAddr::new(0), AccessType::Read));
/// # Ok::<(), iceclave_trustzone::RegionError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct PmpMemoryMap {
    entries: Vec<PmpEntry>,
}

impl PmpMemoryMap {
    /// Translates a TrustZone-style [`MemoryMap`] into PMP entries:
    /// secure regions become M-mode-only, protected regions
    /// U-read/S-write, and the normal background stays open.
    pub fn from_memory_map(map: &MemoryMap) -> Self {
        // Walk the address space by probing region boundaries; the
        // MemoryMap's registers are not exposed directly, so probe at
        // page granularity over the configured regions by asking for
        // the region of each register's range. For the fidelity needed
        // here, re-deriving entries from region_of at 1 MiB probes over
        // the first 256 MiB (where IceClave places its windows) is
        // sufficient and keeps the API decoupled.
        let mut entries = Vec::new();
        let probe = ByteSize::from_mib(1).as_bytes();
        let horizon = ByteSize::from_mib(256).as_bytes();
        let mut current: Option<(u64, Region)> = None;
        let mut addr = 0u64;
        while addr <= horizon {
            let region = map.region_of(PhysAddr::new(addr));
            match current {
                Some((_, r)) if r == region => {}
                Some((start, r)) => {
                    if r != Region::Normal {
                        entries.push(Self::entry_for(start, addr, r));
                    }
                    current = Some((addr, region));
                }
                None => current = Some((addr, region)),
            }
            addr += probe;
        }
        if let Some((start, r)) = current {
            if r != Region::Normal {
                entries.push(Self::entry_for(start, addr, r));
            }
        }
        entries.truncate(MAX_PMP_ENTRIES);
        PmpMemoryMap { entries }
    }

    fn entry_for(start: u64, end: u64, region: Region) -> PmpEntry {
        match region {
            Region::Secure => PmpEntry {
                start,
                end,
                u_read: false,
                u_write: false,
                s_read: false,
                s_write: false,
            },
            Region::Protected => PmpEntry {
                start,
                end,
                u_read: true,
                u_write: false,
                s_read: true,
                s_write: true,
            },
            Region::Normal => PmpEntry {
                start,
                end,
                u_read: true,
                u_write: true,
                s_read: true,
                s_write: true,
            },
        }
    }

    /// Whether `level` may perform `access` at `addr`. M-mode bypasses
    /// PMP checks entirely (as on real hardware with no locked
    /// entries).
    pub fn permits(&self, level: PrivilegeLevel, addr: PhysAddr, access: AccessType) -> bool {
        if level == PrivilegeLevel::Machine {
            return true;
        }
        let a = addr.raw();
        for e in &self.entries {
            if e.start <= a && a < e.end {
                return match (level, access) {
                    (PrivilegeLevel::User, AccessType::Read) => e.u_read,
                    (PrivilegeLevel::User, AccessType::Write) => e.u_write,
                    (PrivilegeLevel::Supervisor, AccessType::Read) => e.s_read,
                    (PrivilegeLevel::Supervisor, AccessType::Write) => e.s_write,
                    (PrivilegeLevel::Machine, _) => true,
                };
            }
        }
        // Background: open (the normal region).
        true
    }

    /// Number of PMP entries used.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iceclave_layout() -> MemoryMap {
        let mut map = MemoryMap::new();
        map.define(PhysAddr::new(0), ByteSize::from_mib(64), Region::Secure)
            .unwrap();
        map.define(
            PhysAddr::new(64 << 20),
            ByteSize::from_mib(16),
            Region::Protected,
        )
        .unwrap();
        map
    }

    #[test]
    fn permission_matrix_matches_trustzone_semantics() {
        let arm = iceclave_layout();
        let pmp = PmpMemoryMap::from_memory_map(&arm);
        let secure = PhysAddr::new(0);
        let table = PhysAddr::new(64 << 20);
        let app = PhysAddr::new(128 << 20);
        use AccessType::*;
        use PrivilegeLevel::*;

        // User = normal world.
        assert!(!pmp.permits(User, secure, Read));
        assert!(pmp.permits(User, table, Read));
        assert!(!pmp.permits(User, table, Write));
        assert!(pmp.permits(User, app, Write));

        // Machine = secure world: everything.
        assert!(pmp.permits(Machine, secure, Write));
        assert!(pmp.permits(Machine, table, Write));

        // Supervisor: runtime services can maintain the mapping table
        // but stay out of M-mode memory.
        assert!(pmp.permits(Supervisor, table, Write));
        assert!(!pmp.permits(Supervisor, secure, Read));
    }

    #[test]
    fn entry_budget_respected() {
        let pmp = PmpMemoryMap::from_memory_map(&iceclave_layout());
        assert!(pmp.entry_count() <= MAX_PMP_ENTRIES);
        assert!(pmp.entry_count() >= 2, "secure + protected windows");
    }

    #[test]
    fn agreement_with_arm_map_on_sampled_addresses() {
        let arm = iceclave_layout();
        let pmp = PmpMemoryMap::from_memory_map(&arm);
        for mib in 0..200u64 {
            let addr = PhysAddr::new(mib << 20);
            for access in [AccessType::Read, AccessType::Write] {
                let arm_allows = arm
                    .check(crate::attributes::World::Normal, addr, access)
                    .is_ok();
                let pmp_allows = pmp.permits(PrivilegeLevel::User, addr, access);
                assert_eq!(
                    arm_allows, pmp_allows,
                    "divergence at {addr} for {access:?}"
                );
            }
        }
    }
}
