//! TrustZone extension model (§4.2, Figures 4 and 6).
//!
//! IceClave partitions the SSD controller's physical address space into
//! three regions by extending ARM TrustZone's page attributes:
//!
//! * **Secure** — FTL code/data and the IceClave runtime; inaccessible
//!   from the normal world.
//! * **Protected** — a new region (the paper's contribution) holding the
//!   cached FTL mapping table: *read-only* from the normal world so
//!   in-storage programs translate addresses without a world switch,
//!   read/write from the secure world.
//! * **Normal** — TEE heaps and application memory.
//!
//! The encoding follows Figure 6: the `NS` bit marks non-secure pages,
//! the `AP` permission field carries the access rights, and a reserved
//! bit (`ES`) distinguishes the protected region. [`MemoryMap`] plays the role of
//! the TZASC (TrustZone Address Space Controller) with a bounded number
//! of region registers, and [`WorldMonitor`] bills the 3.8 us
//! secure/normal context switch measured on the FPGA prototype
//! (Table 5).
//!
//! # Examples
//!
//! ```
//! use iceclave_trustzone::{AccessType, MemoryMap, Region, World};
//! use iceclave_types::{ByteSize, PhysAddr};
//!
//! let mut map = MemoryMap::new();
//! map.define(PhysAddr::new(0), ByteSize::from_mib(16), Region::Protected)?;
//! // The normal world may read the protected mapping table...
//! assert!(map
//!     .check(World::Normal, PhysAddr::new(64), AccessType::Read)
//!     .is_ok());
//! // ...but writing it faults.
//! assert!(map
//!     .check(World::Normal, PhysAddr::new(64), AccessType::Write)
//!     .is_err());
//! # Ok::<(), iceclave_trustzone::RegionError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attributes;
pub mod map;
pub mod monitor;
pub mod riscv;

pub use attributes::{AccessType, PageAttributes, Region, World};
pub use map::{MemoryMap, ProtectionFault, RegionError};
pub use monitor::{SwitchStats, WorldMonitor};
