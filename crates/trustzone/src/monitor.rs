//! The secure monitor: world switching and its cost.
//!
//! Crossing between the normal and secure worlds goes through the
//! monitor (SMC on real hardware). Table 5 measures the round trip at
//! 3.8 us on the Cosmos+ FPGA prototype; IceClave's design goal is to
//! make these switches *rare* by serving address translation from the
//! protected region (§4.2 and the 0.17% miss rate of §6.3).

use iceclave_sim::Resource;
use iceclave_types::{SimDuration, SimTime};

use crate::attributes::World;

/// Switch statistics for reports.
#[derive(Copy, Clone, Debug, Default)]
pub struct SwitchStats {
    /// Number of world switches performed.
    pub switches: u64,
    /// Total time spent switching.
    pub total_time: SimDuration,
}

/// Tracks the current world of one core and bills switch latency.
///
/// # Examples
///
/// ```
/// use iceclave_trustzone::{World, WorldMonitor};
/// use iceclave_types::{SimDuration, SimTime};
///
/// let mut monitor = WorldMonitor::new(SimDuration::from_nanos(3800));
/// let t = monitor.switch_to(World::Secure, SimTime::ZERO);
/// assert_eq!(t.as_nanos(), 3800);
/// // Already secure: no cost.
/// assert_eq!(monitor.switch_to(World::Secure, t), t);
/// ```
#[derive(Clone, Debug)]
pub struct WorldMonitor {
    current: World,
    switch_cost: SimDuration,
    /// The monitor executes on the core: overlapping switch requests
    /// serialize on this timeline (parallel flash requests cannot all
    /// be in the secure world at once — the Figure 5 effect).
    timeline: Resource,
    stats: SwitchStats,
}

impl WorldMonitor {
    /// Creates a monitor starting in the normal world (where offloaded
    /// programs run).
    pub fn new(switch_cost: SimDuration) -> Self {
        WorldMonitor {
            current: World::Normal,
            switch_cost,
            timeline: Resource::new("secure-monitor"),
            stats: SwitchStats::default(),
        }
    }

    /// The Table 5 cost: 3.8 us per switch.
    pub fn with_table5_cost() -> Self {
        Self::new(SimDuration::from_nanos(3800))
    }

    /// The world the core currently executes in.
    pub fn current(&self) -> World {
        self.current
    }

    /// Switches to `world` if not already there, returning the time the
    /// switch completes. Concurrent switch requests queue behind each
    /// other on the monitor's timeline.
    pub fn switch_to(&mut self, world: World, now: SimTime) -> SimTime {
        if world == self.current {
            return now;
        }
        self.current = world;
        self.stats.switches += 1;
        self.stats.total_time += self.switch_cost;
        self.timeline.acquire(now, self.switch_cost).end
    }

    /// Runs `f` in `world` and returns to the original world afterward,
    /// billing both switches; the whole round trip holds the monitor's
    /// timeline, so concurrent service calls serialize. Returns the
    /// completion time.
    ///
    /// This is the shape of every secure-world service call: the
    /// round-trip cost is why IceClave keeps the mapping table readable
    /// from the normal world.
    pub fn call_into<F>(&mut self, world: World, now: SimTime, f: F) -> SimTime
    where
        F: FnOnce(SimTime) -> SimTime,
    {
        if world == self.current {
            return f(now);
        }
        let entered = self.timeline.acquire(now, self.switch_cost).end;
        self.stats.switches += 1;
        self.stats.total_time += self.switch_cost;
        let done = f(entered);
        // The return switch also holds the timeline until complete.
        let span = self.timeline.acquire(done, self.switch_cost);
        self.stats.switches += 1;
        self.stats.total_time += self.switch_cost;
        span.end
    }

    /// Switch statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The configured per-switch cost.
    pub fn switch_cost(&self) -> SimDuration {
        self.switch_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_normal_world() {
        let m = WorldMonitor::with_table5_cost();
        assert_eq!(m.current(), World::Normal);
    }

    #[test]
    fn switch_bills_once_per_transition() {
        let mut m = WorldMonitor::with_table5_cost();
        let t1 = m.switch_to(World::Secure, SimTime::ZERO);
        let t2 = m.switch_to(World::Secure, t1);
        assert_eq!(t1, t2);
        assert_eq!(m.stats().switches, 1);
        let t3 = m.switch_to(World::Normal, t2);
        assert_eq!(m.stats().switches, 2);
        assert_eq!(t3.saturating_since(SimTime::ZERO).as_nanos(), 2 * 3800);
    }

    #[test]
    fn call_into_round_trips() {
        let mut m = WorldMonitor::with_table5_cost();
        let service = SimDuration::from_micros(10);
        let done = m.call_into(World::Secure, SimTime::ZERO, |t| t + service);
        assert_eq!(m.current(), World::Normal);
        assert_eq!(m.stats().switches, 2);
        assert_eq!(
            done.saturating_since(SimTime::ZERO),
            service + SimDuration::from_nanos(2 * 3800)
        );
    }

    #[test]
    fn call_into_same_world_is_free() {
        let mut m = WorldMonitor::with_table5_cost();
        let done = m.call_into(World::Normal, SimTime::ZERO, |t| t);
        assert_eq!(done, SimTime::ZERO);
        assert_eq!(m.stats().switches, 0);
    }
}
