//! The TZASC-style memory map: region registers and permission checks.

use std::error::Error;
use std::fmt;

use iceclave_types::{ByteSize, PhysAddr};

use crate::attributes::{AccessType, PageAttributes, Region, World};

/// Maximum number of region registers, matching the ARM CoreLink
/// TZC-400's nine (one background + eight programmable) regions.
pub const MAX_REGIONS: usize = 9;

/// A protection fault raised by [`MemoryMap::check`].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct ProtectionFault {
    /// The world that attempted the access.
    pub world: World,
    /// The faulting address.
    pub addr: PhysAddr,
    /// The attempted access type.
    pub access: AccessType,
    /// The region the address belongs to.
    pub region: Region,
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} access to {} denied ({} region)",
            self.world, self.access, self.addr, self.region
        )
    }
}

impl Error for ProtectionFault {}

/// Errors configuring the memory map.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum RegionError {
    /// All region registers are in use.
    TooManyRegions,
    /// The new range overlaps an existing region register.
    Overlap,
    /// Zero-sized region.
    Empty,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionError::TooManyRegions => "all TZASC region registers are in use",
            RegionError::Overlap => "region overlaps an existing register",
            RegionError::Empty => "region must not be empty",
        };
        f.write_str(s)
    }
}

impl Error for RegionError {}

#[derive(Copy, Clone, Debug)]
struct RegionRegister {
    start: u64,
    end: u64, // exclusive
    region: Region,
}

/// The physical-memory protection map.
///
/// Addresses not covered by any region register fall into the background
/// region, which is `Normal` (matching the TZC-400's programmable
/// background behaviour, with IceClave defaulting open and carving out
/// secure/protected windows).
///
/// # Examples
///
/// See the crate-level example.
#[derive(Clone, Debug, Default)]
pub struct MemoryMap {
    regions: Vec<RegionRegister>,
}

impl MemoryMap {
    /// An empty map: everything is background `Normal`.
    pub fn new() -> Self {
        MemoryMap {
            regions: Vec::new(),
        }
    }

    /// Programs a region register covering `[start, start+size)`.
    ///
    /// # Errors
    ///
    /// [`RegionError::TooManyRegions`] when all [`MAX_REGIONS`] are
    /// used (the background region counts as one),
    /// [`RegionError::Overlap`] when ranges collide, and
    /// [`RegionError::Empty`] for zero-size regions.
    pub fn define(
        &mut self,
        start: PhysAddr,
        size: ByteSize,
        region: Region,
    ) -> Result<(), RegionError> {
        if size.is_zero() {
            return Err(RegionError::Empty);
        }
        if self.regions.len() + 1 >= MAX_REGIONS {
            return Err(RegionError::TooManyRegions);
        }
        let new_start = start.raw();
        let new_end = new_start + size.as_bytes();
        for r in &self.regions {
            if new_start < r.end && r.start < new_end {
                return Err(RegionError::Overlap);
            }
        }
        self.regions.push(RegionRegister {
            start: new_start,
            end: new_end,
            region,
        });
        Ok(())
    }

    /// The region an address belongs to.
    pub fn region_of(&self, addr: PhysAddr) -> Region {
        let a = addr.raw();
        self.regions
            .iter()
            .find(|r| r.start <= a && a < r.end)
            .map_or(Region::Normal, |r| r.region)
    }

    /// The page attributes the MMU would present for an address.
    pub fn attributes_of(&self, addr: PhysAddr) -> PageAttributes {
        PageAttributes::for_region(self.region_of(addr))
    }

    /// Checks an access, returning a fault when the Figure 6 permission
    /// matrix denies it.
    ///
    /// # Errors
    ///
    /// [`ProtectionFault`] describing the denied access.
    pub fn check(
        &self,
        world: World,
        addr: PhysAddr,
        access: AccessType,
    ) -> Result<(), ProtectionFault> {
        let region = self.region_of(addr);
        if PageAttributes::for_region(region).permits(world, access) {
            Ok(())
        } else {
            Err(ProtectionFault {
                world,
                addr,
                access,
                region,
            })
        }
    }

    /// Number of programmed region registers.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard_map() -> MemoryMap {
        // The layout of Figure 4: secure (FTL + runtime), protected
        // (mapping table), rest normal.
        let mut map = MemoryMap::new();
        map.define(PhysAddr::new(0), ByteSize::from_mib(64), Region::Secure)
            .unwrap();
        map.define(
            PhysAddr::new(ByteSize::from_mib(64).as_bytes()),
            ByteSize::from_mib(64),
            Region::Protected,
        )
        .unwrap();
        map
    }

    #[test]
    fn background_is_normal() {
        let map = standard_map();
        let app_addr = PhysAddr::new(ByteSize::from_mib(256).as_bytes());
        assert_eq!(map.region_of(app_addr), Region::Normal);
        assert!(map
            .check(World::Normal, app_addr, AccessType::Write)
            .is_ok());
    }

    #[test]
    fn normal_world_cannot_touch_secure() {
        let map = standard_map();
        let ftl_addr = PhysAddr::new(4096);
        let fault = map
            .check(World::Normal, ftl_addr, AccessType::Read)
            .unwrap_err();
        assert_eq!(fault.region, Region::Secure);
        assert_eq!(fault.world, World::Normal);
        assert!(map
            .check(World::Secure, ftl_addr, AccessType::Write)
            .is_ok());
    }

    #[test]
    fn protected_region_is_read_only_for_normal_world() {
        let map = standard_map();
        let table_addr = PhysAddr::new(ByteSize::from_mib(64).as_bytes() + 128);
        assert!(map
            .check(World::Normal, table_addr, AccessType::Read)
            .is_ok());
        let fault = map
            .check(World::Normal, table_addr, AccessType::Write)
            .unwrap_err();
        assert_eq!(fault.region, Region::Protected);
        assert!(map
            .check(World::Secure, table_addr, AccessType::Write)
            .is_ok());
    }

    #[test]
    fn overlapping_regions_are_rejected() {
        let mut map = standard_map();
        assert_eq!(
            map.define(PhysAddr::new(0), ByteSize::from_kib(4), Region::Normal),
            Err(RegionError::Overlap)
        );
        // Adjacent (non-overlapping) is fine.
        assert!(map
            .define(
                PhysAddr::new(ByteSize::from_mib(128).as_bytes()),
                ByteSize::from_kib(4),
                Region::Secure
            )
            .is_ok());
    }

    #[test]
    fn register_budget_is_enforced() {
        let mut map = MemoryMap::new();
        for i in 0..(MAX_REGIONS - 1) {
            map.define(
                PhysAddr::new(i as u64 * 4096),
                ByteSize::from_bytes(4096),
                Region::Secure,
            )
            .unwrap();
        }
        assert_eq!(
            map.define(
                PhysAddr::new(MAX_REGIONS as u64 * 4096),
                ByteSize::from_bytes(4096),
                Region::Secure
            ),
            Err(RegionError::TooManyRegions)
        );
    }

    #[test]
    fn empty_region_is_rejected() {
        let mut map = MemoryMap::new();
        assert_eq!(
            map.define(PhysAddr::new(0), ByteSize::ZERO, Region::Secure),
            Err(RegionError::Empty)
        );
    }

    #[test]
    fn fault_display_is_informative() {
        let map = standard_map();
        let fault = map
            .check(World::Normal, PhysAddr::new(0), AccessType::Write)
            .unwrap_err();
        let msg = fault.to_string();
        assert!(msg.contains("normal-world"));
        assert!(msg.contains("secure region"));
    }
}
