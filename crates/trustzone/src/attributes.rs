//! Page attributes and the Figure 6 encoding.

use std::fmt;

/// The two TrustZone execution worlds.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum World {
    /// The secure world: FTL core functions and the IceClave runtime.
    Secure,
    /// The normal world: offloaded in-storage programs.
    Normal,
}

/// The three memory regions of Figure 4.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Region {
    /// Secure-world-only memory.
    Secure,
    /// IceClave's protected region: normal world reads, secure world
    /// writes. Hosts the cached FTL mapping table.
    Protected,
    /// Ordinary non-secure memory.
    Normal,
}

/// Read or write, for permission checks.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum AccessType {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The Figure 6 page-attribute encoding: `NS` (non-secure), `AP[2:1]`
/// (access permission) and the repurposed reserved bit `ES` that marks
/// the protected region.
///
/// | Region    | ES | NS | AP\[2:1\] | Normal world | Secure world |
/// |-----------|----|----|---------|--------------|--------------|
/// | Normal    | 1  | 1  | 01      | R/W          | R/W          |
/// | Protected | 0  | 1  | 01      | R            | R/W          |
/// | Secure    | 0  | 0  | 00      | no access    | R/W          |
///
/// # Examples
///
/// ```
/// use iceclave_trustzone::{AccessType, PageAttributes, Region, World};
///
/// let attrs = PageAttributes::for_region(Region::Protected);
/// assert!(attrs.permits(World::Normal, AccessType::Read));
/// assert!(!attrs.permits(World::Normal, AccessType::Write));
/// assert!(attrs.permits(World::Secure, AccessType::Write));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct PageAttributes {
    /// The repurposed reserved bit: cleared for protected and secure
    /// pages.
    pub es: bool,
    /// Non-secure bit.
    pub ns: bool,
    /// `AP[2:1]` access-permission field.
    pub ap: u8,
}

impl PageAttributes {
    /// The canonical attribute encoding for each region (Figure 6).
    pub fn for_region(region: Region) -> Self {
        match region {
            Region::Normal => PageAttributes {
                es: true,
                ns: true,
                ap: 0b01,
            },
            Region::Protected => PageAttributes {
                es: false,
                ns: true,
                ap: 0b01,
            },
            Region::Secure => PageAttributes {
                es: false,
                ns: false,
                ap: 0b00,
            },
        }
    }

    /// Decodes the attribute bits back to a region, if the encoding is
    /// one of the three canonical ones.
    pub fn region(&self) -> Option<Region> {
        match (self.es, self.ns, self.ap) {
            (true, true, 0b01) => Some(Region::Normal),
            (false, true, 0b01) => Some(Region::Protected),
            (false, false, 0b00) => Some(Region::Secure),
            _ => None,
        }
    }

    /// Whether an access from `world` of type `access` is allowed.
    ///
    /// The secure world can access everything (it hosts the FTL, which
    /// manages the whole address space, §4.2). The normal world gets
    /// R/W on normal pages, R on protected pages, nothing on secure
    /// pages.
    pub fn permits(&self, world: World, access: AccessType) -> bool {
        match world {
            World::Secure => true,
            World::Normal => match self.region() {
                Some(Region::Normal) => true,
                Some(Region::Protected) => access == AccessType::Read,
                Some(Region::Secure) | None => false,
            },
        }
    }

    /// The raw descriptor bits as they would appear in a stage-1 page
    /// table entry (ES at bit 55 of the ignored field, NS at bit 5,
    /// AP\[2:1\] at bits 7:6 — the layout sketched in Figure 6).
    pub fn descriptor_bits(&self) -> u64 {
        (u64::from(self.es) << 55) | (u64::from(self.ap) << 6) | (u64::from(self.ns) << 5)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Secure => "secure",
            Region::Protected => "protected",
            Region::Normal => "normal",
        };
        f.write_str(s)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            World::Secure => "secure-world",
            World::Normal => "normal-world",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for region in [Region::Secure, Region::Protected, Region::Normal] {
            let attrs = PageAttributes::for_region(region);
            assert_eq!(attrs.region(), Some(region));
        }
    }

    #[test]
    fn non_canonical_encoding_decodes_to_none() {
        let attrs = PageAttributes {
            es: true,
            ns: false,
            ap: 0b11,
        };
        assert_eq!(attrs.region(), None);
        // And an unknown encoding denies the normal world entirely.
        assert!(!attrs.permits(World::Normal, AccessType::Read));
    }

    #[test]
    fn permission_matrix_matches_figure6() {
        use AccessType::*;
        use World::*;
        let n = PageAttributes::for_region(Region::Normal);
        let p = PageAttributes::for_region(Region::Protected);
        let s = PageAttributes::for_region(Region::Secure);

        assert!(n.permits(Normal, Read) && n.permits(Normal, Write));
        assert!(n.permits(Secure, Read) && n.permits(Secure, Write));

        assert!(p.permits(Normal, Read) && !p.permits(Normal, Write));
        assert!(p.permits(Secure, Read) && p.permits(Secure, Write));

        assert!(!s.permits(Normal, Read) && !s.permits(Normal, Write));
        assert!(s.permits(Secure, Read) && s.permits(Secure, Write));
    }

    #[test]
    fn descriptor_bits_place_fields() {
        let p = PageAttributes::for_region(Region::Protected);
        let bits = p.descriptor_bits();
        assert_eq!((bits >> 55) & 1, 0); // ES clear
        assert_eq!((bits >> 5) & 1, 1); // NS set
        assert_eq!((bits >> 6) & 0b11, 0b01); // AP[2:1]
    }
}
