//! SSD-internal DRAM timing model (USIMM-equivalent substrate).
//!
//! Models the DDR3-1600 DRAM of Table 3: one channel, two ranks of eight
//! banks, open-row policy with `tRCD`-`tRAS`-`tRP`-`tCL`-`tWR` command
//! timing at the 800 MHz command clock. Each access is classified as a
//! row-buffer **hit** (`tCL` + burst), **closed-row miss**
//! (`tRCD + tCL` + burst) or **conflict** (`tRP + tRCD + tCL` + burst,
//! plus write recovery when the previous access wrote), and serialized on
//! its bank and on the channel data bus.
//!
//! The memory-encryption engine (`iceclave-mee`) drives this model with
//! both program data and its own metadata traffic (counters, MACs,
//! integrity-tree nodes), which is how the extra-traffic percentages of
//! Table 6 arise.
//!
//! # Examples
//!
//! ```
//! use iceclave_dram::{Dram, DramConfig, MemOp};
//! use iceclave_types::{CacheLine, SimTime};
//!
//! let mut dram = Dram::new(DramConfig::table3());
//! let first = dram.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
//! // Line 16 maps to the same bank and row (16 banks interleave low
//! // bits), so the second access is a row-buffer hit and is faster.
//! let second = dram.access(CacheLine::new(16), MemOp::Read, first.end);
//! assert!(second.service() < first.service());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use iceclave_sim::{Resource, ServiceSpan};
use iceclave_types::{ByteSize, CacheLine, Hertz, SimDuration, SimTime, CACHE_LINE_SIZE};

/// Read or write, the two DRAM operations the model distinguishes.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MemOp {
    /// A cache-line read.
    Read,
    /// A cache-line write-back.
    Write,
}

/// Row-buffer outcome of one access.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no open row).
    ClosedMiss,
    /// Another row was open and had to be precharged first.
    Conflict,
}

/// DDR3 device and timing configuration (Table 3).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Total capacity.
    pub capacity: ByteSize,
    /// Row-buffer size per bank.
    pub row_size: ByteSize,
    /// Command clock (800 MHz for DDR3-1600).
    pub clock: Hertz,
    /// Activate-to-read delay, in command-clock cycles.
    pub t_rcd: u32,
    /// Activate-to-precharge minimum, in cycles.
    pub t_ras: u32,
    /// Precharge time, in cycles.
    pub t_rp: u32,
    /// CAS (read) latency, in cycles.
    pub t_cl: u32,
    /// Write recovery time, in cycles.
    pub t_wr: u32,
    /// Data-burst occupancy of the bus per 64 B line (BL8 = 4 cycles).
    pub burst_cycles: u32,
    /// Model periodic refresh: every `t_refi` cycles the rank is
    /// unavailable for `t_rfc` cycles. Off by default (a ~1–3% effect);
    /// enable for refresh-sensitivity studies.
    pub refresh_enabled: bool,
    /// Refresh interval (DDR3: 7.8 us = 6240 cycles at 800 MHz).
    pub t_refi: u32,
    /// Refresh cycle time (4 Gb DDR3: ~260 ns = 208 cycles).
    pub t_rfc: u32,
}

impl DramConfig {
    /// Table 3: DDR3-1600, 4 GiB, 1 channel, 2 ranks/channel,
    /// 8 banks/rank, 11-28-11-11-12 timing.
    pub fn table3() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            capacity: ByteSize::from_gib(4),
            row_size: ByteSize::from_kib(8),
            clock: Hertz::from_mhz(800),
            t_rcd: 11,
            t_ras: 28,
            t_rp: 11,
            t_cl: 11,
            t_wr: 12,
            burst_cycles: 4,
            refresh_enabled: false,
            t_refi: 6240,
            t_rfc: 208,
        }
    }

    /// Enables periodic-refresh modeling.
    pub fn with_refresh(mut self) -> Self {
        self.refresh_enabled = true;
        self
    }

    /// Table 3 configuration with a different capacity (Figure 16 sweeps
    /// 4 GiB vs 2 GiB).
    pub fn with_capacity(mut self, capacity: ByteSize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_size.as_bytes() / CACHE_LINE_SIZE
    }

    /// Total banks across the device.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Peak data-bus bandwidth per channel in bytes/second.
    pub fn peak_bandwidth_per_channel(&self) -> u64 {
        // One 64 B line every `burst_cycles` command cycles.
        self.clock.as_hz() / u64::from(self.burst_cycles) * CACHE_LINE_SIZE
    }
}

/// Latency/traffic statistics for the DRAM model.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct DramStats {
    /// Cache-line reads served.
    pub reads: u64,
    /// Cache-line writes served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to idle banks.
    pub row_closed_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Accesses delayed by a refresh cycle (refresh modeling only).
    pub refresh_stalls: u64,
    /// Sum of access latencies.
    pub total_latency: SimDuration,
}

impl DramStats {
    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Bytes moved on the data bus.
    pub fn bytes(&self) -> u64 {
        self.accesses() * CACHE_LINE_SIZE
    }

    /// Mean access latency, or zero when idle.
    pub fn mean_latency(&self) -> SimDuration {
        let n = self.accesses();
        if n == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / n
        }
    }

    /// Row-buffer hit rate in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Bank {
    busy: Resource,
    open_row: Option<u64>,
    last_activate: SimTime,
    last_was_write: bool,
}

/// Command durations precomputed at construction so the per-access path
/// never re-derives them through `Hertz::cycles` (a 128-bit division).
/// Each field caches `clock.cycles(n)` for exactly the cycle count `n`
/// the access path would otherwise pass, so timings are bit-identical.
#[derive(Copy, Clone, Debug)]
struct Timing {
    /// Bank occupancy of a row-buffer hit (`burst_cycles`).
    occ_hit: SimDuration,
    /// Bank occupancy of a conflict (`t_rp + t_rcd + burst_cycles`).
    occ_conflict: SimDuration,
    /// Conflict occupancy plus write recovery (`… + t_wr`).
    occ_conflict_wr: SimDuration,
    /// Bank occupancy of a closed-row miss (`t_rcd + burst_cycles`).
    occ_closed: SimDuration,
    /// Activate-to-precharge minimum.
    t_ras: SimDuration,
    /// CAS latency.
    t_cl: SimDuration,
    /// Data-bus burst occupancy.
    burst: SimDuration,
    /// Refresh interval in picoseconds.
    refi_ps: u64,
    /// Refresh cycle time in picoseconds.
    rfc_ps: u64,
}

impl Timing {
    fn new(c: &DramConfig) -> Self {
        let clock = c.clock;
        Timing {
            occ_hit: clock.cycles(c.burst_cycles.into()),
            occ_conflict: clock.cycles(u64::from(c.t_rp + c.t_rcd + c.burst_cycles)),
            occ_conflict_wr: clock.cycles(u64::from(c.t_rp + c.t_rcd + c.burst_cycles + c.t_wr)),
            occ_closed: clock.cycles(u64::from(c.t_rcd + c.burst_cycles)),
            t_ras: clock.cycles(c.t_ras.into()),
            t_cl: clock.cycles(c.t_cl.into()),
            burst: clock.cycles(c.burst_cycles.into()),
            refi_ps: clock.cycles(c.t_refi.into()).as_ps(),
            rfc_ps: clock.cycles(c.t_rfc.into()).as_ps(),
        }
    }
}

/// Shift/mask address decomposition for power-of-two geometries; the
/// general divide/modulo path stays as the fallback for odd configs.
#[derive(Copy, Clone, Debug)]
struct MapShifts {
    ch_mask: u64,
    ch_shift: u32,
    bank_mask: u64,
    bank_shift: u32,
    rank_mask: u64,
    rank_shift: u32,
    row_shift: u32,
}

impl MapShifts {
    fn new(c: &DramConfig) -> Option<Self> {
        let log2 = |v: u64| (v.is_power_of_two()).then(|| v.trailing_zeros());
        let ch_shift = log2(u64::from(c.channels))?;
        let bank_shift = log2(u64::from(c.banks_per_rank))?;
        let rank_shift = log2(u64::from(c.ranks_per_channel))?;
        let row_shift = log2(c.lines_per_row())?;
        Some(MapShifts {
            ch_mask: u64::from(c.channels) - 1,
            ch_shift,
            bank_mask: u64::from(c.banks_per_rank) - 1,
            bank_shift,
            rank_mask: u64::from(c.ranks_per_channel) - 1,
            rank_shift,
            row_shift,
        })
    }
}

/// The DRAM device model.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    timing: Timing,
    shifts: Option<MapShifts>,
    banks: Vec<Bank>,
    buses: Vec<Resource>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with all banks precharged.
    pub fn new(config: DramConfig) -> Self {
        let banks = (0..config.total_banks())
            .map(|i| Bank {
                busy: Resource::new(format!("bank{i}")),
                open_row: None,
                last_activate: SimTime::ZERO,
                last_was_write: false,
            })
            .collect();
        let buses = (0..config.channels)
            .map(|i| Resource::new(format!("dram-bus{i}")))
            .collect();
        Dram {
            timing: Timing::new(&config),
            shifts: MapShifts::new(&config),
            config,
            banks,
            buses,
            stats: DramStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Serves one cache-line access, returning its service span (`end` is
    /// when the data burst completes on the bus).
    pub fn access(&mut self, line: CacheLine, op: MemOp, arrival: SimTime) -> ServiceSpan {
        let (channel, bank_idx, row) = self.map(line);
        let timing = self.timing;

        // Bank *occupancy* covers only the commands that keep the bank
        // busy (activate/precharge and the CAS slot); the CAS-to-data
        // latency (tCL) is pipelined, so back-to-back row hits stream at
        // the burst rate while each access still sees tCL of latency.
        let (outcome, occupancy) = {
            let bank = &self.banks[bank_idx];
            match bank.open_row {
                Some(open) if open == row => (RowOutcome::Hit, timing.occ_hit),
                Some(_) if bank.last_was_write => (RowOutcome::Conflict, timing.occ_conflict_wr),
                Some(_) => (RowOutcome::Conflict, timing.occ_conflict),
                None => (RowOutcome::ClosedMiss, timing.occ_closed),
            }
        };

        // On a conflict the precharge may additionally wait for tRAS since
        // the previous activate.
        let mut earliest_start = if outcome == RowOutcome::Conflict {
            let ras_done = self.banks[bank_idx].last_activate + timing.t_ras;
            arrival.max(ras_done)
        } else {
            arrival
        };
        // Periodic refresh: commands issued while the rank refreshes
        // wait for the refresh cycle to complete.
        if self.config.refresh_enabled {
            let into_window = earliest_start.as_ps() % timing.refi_ps;
            if into_window < timing.rfc_ps {
                earliest_start += SimDuration::from_ps(timing.rfc_ps - into_window);
                self.stats.refresh_stalls += 1;
            }
        }

        let command = self.banks[bank_idx].busy.acquire(earliest_start, occupancy);
        // Data appears tCL after the column command and occupies the
        // shared data bus for the burst.
        let burst = self.buses[channel as usize]
            .acquire(command.end + timing.t_cl - timing.burst, timing.burst);

        let bank = &mut self.banks[bank_idx];
        if outcome != RowOutcome::Hit {
            bank.last_activate = command.start;
        }
        bank.open_row = Some(row);
        bank.last_was_write = op == MemOp::Write;

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::ClosedMiss => self.stats.row_closed_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        match op {
            MemOp::Read => self.stats.reads += 1,
            MemOp::Write => self.stats.writes += 1,
        }
        let span = ServiceSpan {
            start: command.start,
            end: burst.end,
        };
        self.stats.total_latency += span.latency_since(arrival);
        span
    }

    /// Serves `count` consecutive cache-line accesses starting at `line`,
    /// returning the completion time of the last one. A convenience for
    /// streaming transfers (page fills, tree walks).
    pub fn access_run(
        &mut self,
        line: CacheLine,
        count: u64,
        op: MemOp,
        arrival: SimTime,
    ) -> SimTime {
        // The streaming runs of the page fill/seal paths dominate the
        // simulator's wall-clock profile, so the common case (power-of-
        // two geometry, no refresh) runs a specialized loop with the
        // timing constants hoisted and statistics batched into locals.
        // `run_equals_access_loop` pins it to the general path.
        let (Some(s), false) = (self.shifts, self.config.refresh_enabled) else {
            let mut t = arrival;
            for i in 0..count {
                t = self
                    .access(CacheLine::new(line.raw() + i), op, arrival)
                    .end
                    .max(t);
            }
            return t;
        };
        let timing = self.timing;
        let is_write = op == MemOp::Write;
        // The per-channel data buses form independent acquire chains;
        // keep each chain's frontier in a stack slot and commit the
        // aggregate back to the `Resource` once after the loop.
        const MAX_LOCAL_CH: usize = 64;
        let nch = self.buses.len();
        if nch > MAX_LOCAL_CH {
            let mut t = arrival;
            for i in 0..count {
                t = self
                    .access(CacheLine::new(line.raw() + i), op, arrival)
                    .end
                    .max(t);
            }
            return t;
        }
        let mut bus_free = [SimTime::ZERO; MAX_LOCAL_CH];
        let mut bus_ops = [0u64; MAX_LOCAL_CH];
        for (c, bus) in self.buses.iter().enumerate() {
            bus_free[c] = bus.next_free();
        }
        let mut done = arrival;
        let (mut hits, mut closed, mut conflicts) = (0u64, 0u64, 0u64);
        let mut total = SimDuration::ZERO;
        for i in 0..count {
            let x = line.raw() + i;
            let channel = (x & s.ch_mask) as usize;
            let y = x >> s.ch_shift;
            let bank_lo = y & s.bank_mask;
            let rank = (y >> s.bank_shift) & s.rank_mask;
            let row = ((y >> s.bank_shift) >> s.rank_shift) >> s.row_shift;
            let bank_idx =
                (((((x & s.ch_mask) << s.rank_shift) + rank) << s.bank_shift) + bank_lo) as usize;
            let bank = &mut self.banks[bank_idx];
            let (hit, occupancy, earliest) = match bank.open_row {
                Some(open) if open == row => {
                    hits += 1;
                    (true, timing.occ_hit, arrival)
                }
                Some(_) => {
                    conflicts += 1;
                    let occ = if bank.last_was_write {
                        timing.occ_conflict_wr
                    } else {
                        timing.occ_conflict
                    };
                    (false, occ, arrival.max(bank.last_activate + timing.t_ras))
                }
                None => {
                    closed += 1;
                    (false, timing.occ_closed, arrival)
                }
            };
            let command = bank.busy.acquire(earliest, occupancy);
            if !hit {
                bank.last_activate = command.start;
            }
            bank.open_row = Some(row);
            bank.last_was_write = is_write;
            let burst_start = (command.end + timing.t_cl - timing.burst).max(bus_free[channel]);
            let burst_end = burst_start + timing.burst;
            bus_free[channel] = burst_end;
            bus_ops[channel] += 1;
            total += burst_end.saturating_since(arrival);
            done = done.max(burst_end);
        }
        for (c, bus) in self.buses.iter_mut().enumerate() {
            if bus_ops[c] > 0 {
                bus.commit_run(bus_free[c], timing.burst * bus_ops[c], bus_ops[c]);
            }
        }
        self.stats.row_hits += hits;
        self.stats.row_closed_misses += closed;
        self.stats.row_conflicts += conflicts;
        match op {
            MemOp::Read => self.stats.reads += count,
            MemOp::Write => self.stats.writes += count,
        }
        self.stats.total_latency += total;
        done
    }

    /// Serves a set of independent cache-line accesses that all become
    /// ready at `arrival` — a batched metadata write-back or fetch.
    /// The batch is issued **bank-aware**: accesses are grouped by bank
    /// and issued round-robin one per bank, so independent banks
    /// overlap their activates instead of one bank's queue being booked
    /// ahead while others sit idle (issue order decides who claims the
    /// shared data bus first). Returns the completion time of the last
    /// access.
    pub fn access_batch(&mut self, lines: &[CacheLine], op: MemOp, arrival: SimTime) -> SimTime {
        // Group by flat bank index, preserving arrival order per bank.
        let mut groups: Vec<(usize, Vec<CacheLine>)> = Vec::new();
        for &line in lines {
            let bank = self.map(line).1;
            match groups.iter_mut().find(|(b, _)| *b == bank) {
                Some((_, q)) => q.push(line),
                None => groups.push((bank, vec![line])),
            }
        }
        let mut done = arrival;
        let mut round = 0;
        loop {
            let mut issued = false;
            for (_, q) in &groups {
                if let Some(&line) = q.get(round) {
                    issued = true;
                    done = done.max(self.access(line, op, arrival).end);
                }
            }
            if !issued {
                return done;
            }
            round += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets timing state and statistics (rows precharged, buses idle).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.busy.reset();
            b.open_row = None;
            b.last_activate = SimTime::ZERO;
            b.last_was_write = false;
        }
        for bus in &mut self.buses {
            bus.reset();
        }
        self.stats = DramStats::default();
    }

    /// Maps a cache line to `(channel, flat bank index, row)`.
    ///
    /// Layout (LSB to MSB): channel, bank, rank, column, row — standard
    /// bank-interleaved mapping so consecutive lines hit the same row via
    /// different columns once the channel/bank bits wrap.
    fn map(&self, line: CacheLine) -> (u32, usize, u64) {
        let c = &self.config;
        if let Some(s) = self.shifts {
            // Power-of-two geometry (every stock config): the chained
            // divides reduce to shifts and masks.
            let x = line.raw();
            let channel = (x & s.ch_mask) as u32;
            let x = x >> s.ch_shift;
            let bank = x & s.bank_mask;
            let x = x >> s.bank_shift;
            let rank = x & s.rank_mask;
            let x = x >> s.rank_shift;
            let row = x >> s.row_shift;
            let flat_bank = ((u64::from(channel) << s.rank_shift) + rank) << s.bank_shift;
            return (channel, (flat_bank + bank) as usize, row);
        }
        let mut x = line.raw();
        let channel = (x % u64::from(c.channels)) as u32;
        x /= u64::from(c.channels);
        let bank = x % u64::from(c.banks_per_rank);
        x /= u64::from(c.banks_per_rank);
        let rank = x % u64::from(c.ranks_per_channel);
        x /= u64::from(c.ranks_per_channel);
        let col = x % c.lines_per_row();
        let row = x / c.lines_per_row();
        let _ = col;
        let flat_bank = (u64::from(channel) * u64::from(c.ranks_per_channel) + rank)
            * u64::from(c.banks_per_rank)
            + bank;
        (channel, flat_bank as usize, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::table3())
    }

    fn cycles(n: u32) -> SimDuration {
        Hertz::from_mhz(800).cycles(n.into())
    }

    #[test]
    fn closed_miss_then_hit() {
        let mut d = dram();
        let c = *d.config();
        let first = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert_eq!(first.service(), cycles(c.t_rcd + c.t_cl + c.burst_cycles));
        // Consecutive lines map to different banks (bank-interleaved), so
        // revisit line 0's row through a line in the same bank+row.
        let same_row = CacheLine::new(u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel));
        let second = d.access(same_row, MemOp::Read, first.end);
        assert_eq!(second.service(), cycles(c.t_cl + c.burst_cycles));
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_closed_misses, 1);
    }

    #[test]
    fn conflict_costs_precharge() {
        let mut d = dram();
        let c = *d.config();
        let lines_per_row = c.lines_per_row();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        // Two lines in the same bank but different rows.
        let a = CacheLine::new(0);
        let b = CacheLine::new(banks * lines_per_row);
        let first = d.access(a, MemOp::Read, SimTime::ZERO);
        let second = d.access(b, MemOp::Read, first.end);
        assert!(second.service() >= cycles(c.t_rp + c.t_rcd + c.t_cl + c.burst_cycles));
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn write_recovery_penalizes_following_conflict() {
        let mut d = dram();
        let c = *d.config();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        let a = CacheLine::new(0);
        let b = CacheLine::new(banks * c.lines_per_row());
        let w = d.access(a, MemOp::Write, SimTime::ZERO);
        let after_write = d.access(b, MemOp::Read, w.end);

        let mut d2 = dram();
        let r = d2.access(a, MemOp::Read, SimTime::ZERO);
        let after_read = d2.access(b, MemOp::Read, r.end);
        assert!(after_write.service() > after_read.service());
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        // Lines 0 and 1 interleave across banks, so both start at zero.
        let a = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        let b = d.access(CacheLine::new(1), MemOp::Read, SimTime::ZERO);
        assert_eq!(a.start, b.start);
        // But the shared data bus serializes the bursts.
        assert_ne!(a.end, b.end);
    }

    #[test]
    fn access_run_moves_time_forward() {
        let mut d = dram();
        let t = d.access_run(CacheLine::new(0), 8, MemOp::Read, SimTime::ZERO);
        assert!(t > SimTime::ZERO);
        assert_eq!(d.stats().reads, 8);
        assert_eq!(d.stats().bytes(), 8 * 64);
    }

    #[test]
    fn run_equals_access_loop() {
        // The specialized streaming loop must be indistinguishable from
        // per-line `access` calls: same completion times, same stats,
        // same bank state afterwards (probed by the final run).
        let mut fast = dram();
        let mut slow = dram();
        let mut t_fast = SimTime::ZERO;
        let mut t_slow = SimTime::ZERO;
        let runs = [
            (0u64, 64u64, MemOp::Write),
            (64, 64, MemOp::Read),
            (17, 5, MemOp::Write),
            (64, 64, MemOp::Write),
            (4096, 64, MemOp::Read),
            (0, 64, MemOp::Read),
        ];
        for (base, count, op) in runs {
            t_fast = fast.access_run(CacheLine::new(base), count, op, t_fast);
            let arrival = t_slow;
            for i in 0..count {
                t_slow = slow
                    .access(CacheLine::new(base + i), op, arrival)
                    .end
                    .max(t_slow);
            }
            assert_eq!(t_fast, t_slow);
        }
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn access_batch_interleaves_across_banks() {
        // Three lines: two on bank A (same row), one on bank B. Naive
        // in-order issue puts both bank-A bursts on the bus before
        // bank B's; bank-aware issue lets bank B's burst claim the bus
        // between them, finishing the whole batch no later.
        let c = DramConfig::table3();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        let lines = [
            CacheLine::new(0),
            CacheLine::new(banks), // bank 0, next column
            CacheLine::new(1),     // bank 1
        ];
        let mut batched = Dram::new(c);
        let batch_end = batched.access_batch(&lines, MemOp::Write, SimTime::ZERO);
        let mut naive = Dram::new(c);
        let mut naive_end = SimTime::ZERO;
        for &l in &lines {
            naive_end = naive_end.max(naive.access(l, MemOp::Write, SimTime::ZERO).end);
        }
        assert!(batch_end <= naive_end);
        assert_eq!(batched.stats().writes, 3);
    }

    #[test]
    fn access_batch_empty_is_a_no_op() {
        let mut d = dram();
        let t = SimTime::ZERO + SimDuration::from_nanos(5);
        assert_eq!(d.access_batch(&[], MemOp::Read, t), t);
        assert_eq!(d.stats().accesses(), 0);
    }

    #[test]
    fn stats_mean_latency() {
        let mut d = dram();
        d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert!(d.stats().mean_latency() > SimDuration::ZERO);
        assert_eq!(d.stats().hit_rate(), 0.0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut d = dram();
        d.access(CacheLine::new(0), MemOp::Write, SimTime::ZERO);
        d.reset();
        assert_eq!(d.stats().accesses(), 0);
        let first = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        let c = *d.config();
        assert_eq!(first.service(), cycles(c.t_rcd + c.t_cl + c.burst_cycles));
    }

    #[test]
    fn refresh_delays_unlucky_accesses() {
        let mut d = Dram::new(DramConfig::table3().with_refresh());
        // An access at t=0 lands inside the first refresh window.
        let delayed = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert_eq!(d.stats().refresh_stalls, 1);

        let mut plain = Dram::new(DramConfig::table3());
        let base = plain.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert!(delayed.end > base.end);
        // 260 ns of tRFC shift.
        let shift = delayed.end.saturating_since(base.end);
        assert_eq!(shift.as_nanos(), 260);
    }

    #[test]
    fn refresh_leaves_mid_interval_accesses_alone() {
        let mut d = Dram::new(DramConfig::table3().with_refresh());
        // Midway between refreshes: unaffected.
        let t = SimTime::ZERO + SimDuration::from_nanos(4_000);
        d.access(CacheLine::new(0), MemOp::Read, t);
        assert_eq!(d.stats().refresh_stalls, 0);
    }

    #[test]
    fn peak_bandwidth_is_ddr3_1600() {
        let c = DramConfig::table3();
        // 800 MHz command clock / 4 cycles per line * 64 B = 12.8 GB/s.
        assert_eq!(c.peak_bandwidth_per_channel(), 12_800_000_000);
    }
}
