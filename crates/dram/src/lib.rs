//! SSD-internal DRAM timing model (USIMM-equivalent substrate).
//!
//! Models the DDR3-1600 DRAM of Table 3: one channel, two ranks of eight
//! banks, open-row policy with `tRCD`-`tRAS`-`tRP`-`tCL`-`tWR` command
//! timing at the 800 MHz command clock. Each access is classified as a
//! row-buffer **hit** (`tCL` + burst), **closed-row miss**
//! (`tRCD + tCL` + burst) or **conflict** (`tRP + tRCD + tCL` + burst,
//! plus write recovery when the previous access wrote), and serialized on
//! its bank and on the channel data bus.
//!
//! The memory-encryption engine (`iceclave-mee`) drives this model with
//! both program data and its own metadata traffic (counters, MACs,
//! integrity-tree nodes), which is how the extra-traffic percentages of
//! Table 6 arise.
//!
//! # Examples
//!
//! ```
//! use iceclave_dram::{Dram, DramConfig, MemOp};
//! use iceclave_types::{CacheLine, SimTime};
//!
//! let mut dram = Dram::new(DramConfig::table3());
//! let first = dram.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
//! // Line 16 maps to the same bank and row (16 banks interleave low
//! // bits), so the second access is a row-buffer hit and is faster.
//! let second = dram.access(CacheLine::new(16), MemOp::Read, first.end);
//! assert!(second.service() < first.service());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use iceclave_sim::{Resource, ServiceSpan};
use iceclave_types::{ByteSize, CacheLine, Hertz, SimDuration, SimTime, CACHE_LINE_SIZE};

/// Read or write, the two DRAM operations the model distinguishes.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum MemOp {
    /// A cache-line read.
    Read,
    /// A cache-line write-back.
    Write,
}

/// Row-buffer outcome of one access.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (no open row).
    ClosedMiss,
    /// Another row was open and had to be precharged first.
    Conflict,
}

/// DDR3 device and timing configuration (Table 3).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Total capacity.
    pub capacity: ByteSize,
    /// Row-buffer size per bank.
    pub row_size: ByteSize,
    /// Command clock (800 MHz for DDR3-1600).
    pub clock: Hertz,
    /// Activate-to-read delay, in command-clock cycles.
    pub t_rcd: u32,
    /// Activate-to-precharge minimum, in cycles.
    pub t_ras: u32,
    /// Precharge time, in cycles.
    pub t_rp: u32,
    /// CAS (read) latency, in cycles.
    pub t_cl: u32,
    /// Write recovery time, in cycles.
    pub t_wr: u32,
    /// Data-burst occupancy of the bus per 64 B line (BL8 = 4 cycles).
    pub burst_cycles: u32,
    /// Model periodic refresh: every `t_refi` cycles the rank is
    /// unavailable for `t_rfc` cycles. Off by default (a ~1–3% effect);
    /// enable for refresh-sensitivity studies.
    pub refresh_enabled: bool,
    /// Refresh interval (DDR3: 7.8 us = 6240 cycles at 800 MHz).
    pub t_refi: u32,
    /// Refresh cycle time (4 Gb DDR3: ~260 ns = 208 cycles).
    pub t_rfc: u32,
}

impl DramConfig {
    /// Table 3: DDR3-1600, 4 GiB, 1 channel, 2 ranks/channel,
    /// 8 banks/rank, 11-28-11-11-12 timing.
    pub fn table3() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            capacity: ByteSize::from_gib(4),
            row_size: ByteSize::from_kib(8),
            clock: Hertz::from_mhz(800),
            t_rcd: 11,
            t_ras: 28,
            t_rp: 11,
            t_cl: 11,
            t_wr: 12,
            burst_cycles: 4,
            refresh_enabled: false,
            t_refi: 6240,
            t_rfc: 208,
        }
    }

    /// Enables periodic-refresh modeling.
    pub fn with_refresh(mut self) -> Self {
        self.refresh_enabled = true;
        self
    }

    /// Table 3 configuration with a different capacity (Figure 16 sweeps
    /// 4 GiB vs 2 GiB).
    pub fn with_capacity(mut self, capacity: ByteSize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_size.as_bytes() / CACHE_LINE_SIZE
    }

    /// Total banks across the device.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Peak data-bus bandwidth per channel in bytes/second.
    pub fn peak_bandwidth_per_channel(&self) -> u64 {
        // One 64 B line every `burst_cycles` command cycles.
        self.clock.as_hz() / u64::from(self.burst_cycles) * CACHE_LINE_SIZE
    }
}

/// Latency/traffic statistics for the DRAM model.
#[derive(Clone, Debug, Default)]
pub struct DramStats {
    /// Cache-line reads served.
    pub reads: u64,
    /// Cache-line writes served.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to idle banks.
    pub row_closed_misses: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Accesses delayed by a refresh cycle (refresh modeling only).
    pub refresh_stalls: u64,
    /// Sum of access latencies.
    pub total_latency: SimDuration,
}

impl DramStats {
    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Bytes moved on the data bus.
    pub fn bytes(&self) -> u64 {
        self.accesses() * CACHE_LINE_SIZE
    }

    /// Mean access latency, or zero when idle.
    pub fn mean_latency(&self) -> SimDuration {
        let n = self.accesses();
        if n == 0 {
            SimDuration::ZERO
        } else {
            self.total_latency / n
        }
    }

    /// Row-buffer hit rate in `[0,1]`.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Bank {
    busy: Resource,
    open_row: Option<u64>,
    last_activate: SimTime,
    last_was_write: bool,
}

/// The DRAM device model.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    buses: Vec<Resource>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with all banks precharged.
    pub fn new(config: DramConfig) -> Self {
        let banks = (0..config.total_banks())
            .map(|i| Bank {
                busy: Resource::new(format!("bank{i}")),
                open_row: None,
                last_activate: SimTime::ZERO,
                last_was_write: false,
            })
            .collect();
        let buses = (0..config.channels)
            .map(|i| Resource::new(format!("dram-bus{i}")))
            .collect();
        Dram {
            config,
            banks,
            buses,
            stats: DramStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Serves one cache-line access, returning its service span (`end` is
    /// when the data burst completes on the bus).
    pub fn access(&mut self, line: CacheLine, op: MemOp, arrival: SimTime) -> ServiceSpan {
        let (channel, bank_idx, row) = self.map(line);
        let clock = self.config.clock;

        // Bank *occupancy* covers only the commands that keep the bank
        // busy (activate/precharge and the CAS slot); the CAS-to-data
        // latency (tCL) is pipelined, so back-to-back row hits stream at
        // the burst rate while each access still sees tCL of latency.
        let (outcome, occupancy_cycles) = {
            let bank = &self.banks[bank_idx];
            match bank.open_row {
                Some(open) if open == row => (RowOutcome::Hit, u64::from(self.config.burst_cycles)),
                Some(_) => {
                    let mut cycles =
                        u64::from(self.config.t_rp + self.config.t_rcd + self.config.burst_cycles);
                    if bank.last_was_write {
                        cycles += u64::from(self.config.t_wr);
                    }
                    (RowOutcome::Conflict, cycles)
                }
                None => (
                    RowOutcome::ClosedMiss,
                    u64::from(self.config.t_rcd + self.config.burst_cycles),
                ),
            }
        };

        // On a conflict the precharge may additionally wait for tRAS since
        // the previous activate.
        let mut earliest_start = if outcome == RowOutcome::Conflict {
            let ras_done =
                self.banks[bank_idx].last_activate + clock.cycles(self.config.t_ras.into());
            arrival.max(ras_done)
        } else {
            arrival
        };
        // Periodic refresh: commands issued while the rank refreshes
        // wait for the refresh cycle to complete.
        if self.config.refresh_enabled {
            let refi_ps = clock.cycles(self.config.t_refi.into()).as_ps();
            let rfc_ps = clock.cycles(self.config.t_rfc.into()).as_ps();
            let into_window = earliest_start.as_ps() % refi_ps;
            if into_window < rfc_ps {
                earliest_start = earliest_start + clock.cycles(0) // no-op for type clarity
                    + iceclave_types::SimDuration::from_ps(rfc_ps - into_window);
                self.stats.refresh_stalls += 1;
            }
        }

        let command = self.banks[bank_idx]
            .busy
            .acquire(earliest_start, clock.cycles(occupancy_cycles));
        // Data appears tCL after the column command and occupies the
        // shared data bus for the burst.
        let burst = self.buses[channel as usize].acquire(
            command.end + clock.cycles(self.config.t_cl.into())
                - clock.cycles(self.config.burst_cycles.into()),
            clock.cycles(self.config.burst_cycles.into()),
        );

        let bank = &mut self.banks[bank_idx];
        if outcome != RowOutcome::Hit {
            bank.last_activate = command.start;
        }
        bank.open_row = Some(row);
        bank.last_was_write = op == MemOp::Write;

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::ClosedMiss => self.stats.row_closed_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        match op {
            MemOp::Read => self.stats.reads += 1,
            MemOp::Write => self.stats.writes += 1,
        }
        let span = ServiceSpan {
            start: command.start,
            end: burst.end,
        };
        self.stats.total_latency += span.latency_since(arrival);
        span
    }

    /// Serves `count` consecutive cache-line accesses starting at `line`,
    /// returning the completion time of the last one. A convenience for
    /// streaming transfers (page fills, tree walks).
    pub fn access_run(
        &mut self,
        line: CacheLine,
        count: u64,
        op: MemOp,
        arrival: SimTime,
    ) -> SimTime {
        let mut t = arrival;
        for i in 0..count {
            t = self
                .access(CacheLine::new(line.raw() + i), op, arrival)
                .end
                .max(t);
        }
        t
    }

    /// Serves a set of independent cache-line accesses that all become
    /// ready at `arrival` — a batched metadata write-back or fetch.
    /// The batch is issued **bank-aware**: accesses are grouped by bank
    /// and issued round-robin one per bank, so independent banks
    /// overlap their activates instead of one bank's queue being booked
    /// ahead while others sit idle (issue order decides who claims the
    /// shared data bus first). Returns the completion time of the last
    /// access.
    pub fn access_batch(&mut self, lines: &[CacheLine], op: MemOp, arrival: SimTime) -> SimTime {
        // Group by flat bank index, preserving arrival order per bank.
        let mut groups: Vec<(usize, Vec<CacheLine>)> = Vec::new();
        for &line in lines {
            let bank = self.map(line).1;
            match groups.iter_mut().find(|(b, _)| *b == bank) {
                Some((_, q)) => q.push(line),
                None => groups.push((bank, vec![line])),
            }
        }
        let mut done = arrival;
        let mut round = 0;
        loop {
            let mut issued = false;
            for (_, q) in &groups {
                if let Some(&line) = q.get(round) {
                    issued = true;
                    done = done.max(self.access(line, op, arrival).end);
                }
            }
            if !issued {
                return done;
            }
            round += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets timing state and statistics (rows precharged, buses idle).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.busy.reset();
            b.open_row = None;
            b.last_activate = SimTime::ZERO;
            b.last_was_write = false;
        }
        for bus in &mut self.buses {
            bus.reset();
        }
        self.stats = DramStats::default();
    }

    /// Maps a cache line to `(channel, flat bank index, row)`.
    ///
    /// Layout (LSB to MSB): channel, bank, rank, column, row — standard
    /// bank-interleaved mapping so consecutive lines hit the same row via
    /// different columns once the channel/bank bits wrap.
    fn map(&self, line: CacheLine) -> (u32, usize, u64) {
        let c = &self.config;
        let mut x = line.raw();
        let channel = (x % u64::from(c.channels)) as u32;
        x /= u64::from(c.channels);
        let bank = x % u64::from(c.banks_per_rank);
        x /= u64::from(c.banks_per_rank);
        let rank = x % u64::from(c.ranks_per_channel);
        x /= u64::from(c.ranks_per_channel);
        let col = x % c.lines_per_row();
        let row = x / c.lines_per_row();
        let _ = col;
        let flat_bank = (u64::from(channel) * u64::from(c.ranks_per_channel) + rank)
            * u64::from(c.banks_per_rank)
            + bank;
        (channel, flat_bank as usize, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::table3())
    }

    fn cycles(n: u32) -> SimDuration {
        Hertz::from_mhz(800).cycles(n.into())
    }

    #[test]
    fn closed_miss_then_hit() {
        let mut d = dram();
        let c = *d.config();
        let first = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert_eq!(first.service(), cycles(c.t_rcd + c.t_cl + c.burst_cycles));
        // Consecutive lines map to different banks (bank-interleaved), so
        // revisit line 0's row through a line in the same bank+row.
        let same_row = CacheLine::new(u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel));
        let second = d.access(same_row, MemOp::Read, first.end);
        assert_eq!(second.service(), cycles(c.t_cl + c.burst_cycles));
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_closed_misses, 1);
    }

    #[test]
    fn conflict_costs_precharge() {
        let mut d = dram();
        let c = *d.config();
        let lines_per_row = c.lines_per_row();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        // Two lines in the same bank but different rows.
        let a = CacheLine::new(0);
        let b = CacheLine::new(banks * lines_per_row);
        let first = d.access(a, MemOp::Read, SimTime::ZERO);
        let second = d.access(b, MemOp::Read, first.end);
        assert!(second.service() >= cycles(c.t_rp + c.t_rcd + c.t_cl + c.burst_cycles));
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn write_recovery_penalizes_following_conflict() {
        let mut d = dram();
        let c = *d.config();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        let a = CacheLine::new(0);
        let b = CacheLine::new(banks * c.lines_per_row());
        let w = d.access(a, MemOp::Write, SimTime::ZERO);
        let after_write = d.access(b, MemOp::Read, w.end);

        let mut d2 = dram();
        let r = d2.access(a, MemOp::Read, SimTime::ZERO);
        let after_read = d2.access(b, MemOp::Read, r.end);
        assert!(after_write.service() > after_read.service());
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dram();
        // Lines 0 and 1 interleave across banks, so both start at zero.
        let a = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        let b = d.access(CacheLine::new(1), MemOp::Read, SimTime::ZERO);
        assert_eq!(a.start, b.start);
        // But the shared data bus serializes the bursts.
        assert_ne!(a.end, b.end);
    }

    #[test]
    fn access_run_moves_time_forward() {
        let mut d = dram();
        let t = d.access_run(CacheLine::new(0), 8, MemOp::Read, SimTime::ZERO);
        assert!(t > SimTime::ZERO);
        assert_eq!(d.stats().reads, 8);
        assert_eq!(d.stats().bytes(), 8 * 64);
    }

    #[test]
    fn access_batch_interleaves_across_banks() {
        // Three lines: two on bank A (same row), one on bank B. Naive
        // in-order issue puts both bank-A bursts on the bus before
        // bank B's; bank-aware issue lets bank B's burst claim the bus
        // between them, finishing the whole batch no later.
        let c = DramConfig::table3();
        let banks = u64::from(c.banks_per_rank) * u64::from(c.ranks_per_channel);
        let lines = [
            CacheLine::new(0),
            CacheLine::new(banks), // bank 0, next column
            CacheLine::new(1),     // bank 1
        ];
        let mut batched = Dram::new(c);
        let batch_end = batched.access_batch(&lines, MemOp::Write, SimTime::ZERO);
        let mut naive = Dram::new(c);
        let mut naive_end = SimTime::ZERO;
        for &l in &lines {
            naive_end = naive_end.max(naive.access(l, MemOp::Write, SimTime::ZERO).end);
        }
        assert!(batch_end <= naive_end);
        assert_eq!(batched.stats().writes, 3);
    }

    #[test]
    fn access_batch_empty_is_a_no_op() {
        let mut d = dram();
        let t = SimTime::ZERO + SimDuration::from_nanos(5);
        assert_eq!(d.access_batch(&[], MemOp::Read, t), t);
        assert_eq!(d.stats().accesses(), 0);
    }

    #[test]
    fn stats_mean_latency() {
        let mut d = dram();
        d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert!(d.stats().mean_latency() > SimDuration::ZERO);
        assert_eq!(d.stats().hit_rate(), 0.0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut d = dram();
        d.access(CacheLine::new(0), MemOp::Write, SimTime::ZERO);
        d.reset();
        assert_eq!(d.stats().accesses(), 0);
        let first = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        let c = *d.config();
        assert_eq!(first.service(), cycles(c.t_rcd + c.t_cl + c.burst_cycles));
    }

    #[test]
    fn refresh_delays_unlucky_accesses() {
        let mut d = Dram::new(DramConfig::table3().with_refresh());
        // An access at t=0 lands inside the first refresh window.
        let delayed = d.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert_eq!(d.stats().refresh_stalls, 1);

        let mut plain = Dram::new(DramConfig::table3());
        let base = plain.access(CacheLine::new(0), MemOp::Read, SimTime::ZERO);
        assert!(delayed.end > base.end);
        // 260 ns of tRFC shift.
        let shift = delayed.end.saturating_since(base.end);
        assert_eq!(shift.as_nanos(), 260);
    }

    #[test]
    fn refresh_leaves_mid_interval_accesses_alone() {
        let mut d = Dram::new(DramConfig::table3().with_refresh());
        // Midway between refreshes: unaffected.
        let t = SimTime::ZERO + SimDuration::from_nanos(4_000);
        d.access(CacheLine::new(0), MemOp::Read, t);
        assert_eq!(d.stats().refresh_stalls, 0);
    }

    #[test]
    fn peak_bandwidth_is_ddr3_1600() {
        let c = DramConfig::table3();
        // 800 MHz command clock / 4 cycles per line * 64 B = 12.8 GB/s.
        assert_eq!(c.peak_bandwidth_per_channel(), 12_800_000_000);
    }
}
