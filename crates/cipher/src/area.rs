//! Analytic area model for the stream-cipher engine.
//!
//! The paper uses CACTI 6.5 to estimate that the cipher engine adds
//! "only 1.6% area overhead to a modern SSD controller such as that of
//! Intel DC P4500" (§5). CACTI is not available here, so this module
//! reproduces the estimate analytically from published synthesis
//! results: a 64-bit-parallel Trivium core is ≈4.9 kGE, and the
//! engine's area is dominated by its per-channel page/stream SRAM
//! buffers (Figure 10). The substitution is documented in DESIGN.md.

use iceclave_types::ByteSize;

/// Area model inputs and the derived report.
#[derive(Copy, Clone, Debug)]
pub struct CipherAreaModel {
    /// Number of flash channels, each with its own cipher datapath
    /// (Figure 10 shows per-flash-controller engines).
    pub channels: u32,
    /// Gate count of one 64-bit-parallel Trivium core (literature:
    /// ≈4.9 kGE).
    pub core_gates: u64,
    /// SRAM buffering per channel: a page buffer plus a stream buffer.
    pub buffer_per_channel: ByteSize,
    /// Logic density in gate-equivalents per mm² (≈3.5 MGE/mm² at the
    /// 28 nm node the controller generation used).
    pub gates_per_mm2: f64,
    /// SRAM density in bits per mm² (≈4.5 Mbit/mm² at 28 nm including
    /// periphery).
    pub sram_bits_per_mm2: f64,
    /// Die area of the SSD controller being compared against
    /// (DC P4500-class controllers are ≈12 mm²).
    pub controller_area_mm2: f64,
}

/// The derived area numbers.
#[derive(Copy, Clone, Debug)]
pub struct AreaReport {
    /// Total logic area of all cipher cores, mm².
    pub logic_mm2: f64,
    /// Total SRAM buffer area, mm².
    pub sram_mm2: f64,
    /// Engine total, mm².
    pub total_mm2: f64,
    /// Engine area as a fraction of the controller die.
    pub fraction_of_controller: f64,
}

impl Default for CipherAreaModel {
    fn default() -> Self {
        CipherAreaModel {
            channels: 8,
            core_gates: 4_900,
            // 4 KiB page buffer + 4 KiB stream buffer per channel.
            buffer_per_channel: ByteSize::from_kib(8),
            gates_per_mm2: 3_500_000.0,
            sram_bits_per_mm2: 4_500_000.0 * 8.0 / 8.0, // 4.5 Mbit/mm²
            controller_area_mm2: 12.0,
        }
    }
}

impl CipherAreaModel {
    /// Evaluates the model.
    pub fn report(&self) -> AreaReport {
        let logic_mm2 = (self.core_gates as f64 * f64::from(self.channels)) / self.gates_per_mm2;
        let sram_bits = self.buffer_per_channel.as_bytes() as f64 * 8.0 * f64::from(self.channels);
        let sram_mm2 = sram_bits / self.sram_bits_per_mm2;
        let total_mm2 = logic_mm2 + sram_mm2;
        AreaReport {
            logic_mm2,
            sram_mm2,
            total_mm2,
            fraction_of_controller: total_mm2 / self.controller_area_mm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_near_the_papers_1_6_percent() {
        let report = CipherAreaModel::default().report();
        let pct = report.fraction_of_controller * 100.0;
        assert!(
            (1.0..2.5).contains(&pct),
            "expected ≈1.6% controller area, got {pct:.2}%"
        );
    }

    #[test]
    fn sram_dominates_logic() {
        let report = CipherAreaModel::default().report();
        assert!(report.sram_mm2 > report.logic_mm2);
        assert!(report.total_mm2 > 0.0);
    }

    #[test]
    fn area_scales_with_channels() {
        let base = CipherAreaModel::default().report();
        let doubled = CipherAreaModel {
            channels: 16,
            ..CipherAreaModel::default()
        }
        .report();
        assert!((doubled.total_mm2 / base.total_mm2 - 2.0).abs() < 1e-9);
    }
}
