//! The Trivium stream cipher (De Cannière & Preneel, eSTREAM portfolio).
//!
//! Trivium keeps a 288-bit state in three shift registers A (93 bits),
//! B (84 bits) and C (111 bits). Every step produces one keystream bit;
//! because every feedback tap is at least 66 positions deep, up to 64
//! steps can be computed at once, which is exactly the property the
//! paper's hardware engine exploits to emit 64 keystream bits per cycle
//! (§5). [`Trivium`] is that word-sliced implementation;
//! [`TriviumRef`] is an independent bit-at-a-time reference used to
//! cross-validate it.
//!
//! Bit conventions (fixed by this crate and used consistently by both
//! implementations): key bit 1 is the most-significant bit of `key[0]`,
//! IV bit 1 is the most-significant bit of `iv[0]`, and the first
//! generated keystream bit is the most-significant bit of the first
//! keystream byte.

/// Number of warm-up steps before keystream output (4 full state
/// rotations).
const WARMUP_STEPS: usize = 4 * 288;

/// Word-sliced Trivium producing 64 keystream bits per internal step.
///
/// # Examples
///
/// ```
/// use iceclave_cipher::Trivium;
///
/// let mut a = Trivium::new(&[1; 10], &[2; 10]);
/// let mut b = Trivium::new(&[1; 10], &[2; 10]);
/// assert_eq!(a.keystream_bytes(32), b.keystream_bytes(32));
/// ```
#[derive(Clone, Debug)]
pub struct Trivium {
    /// Register A: state bits s1..s93, with s_i at bit position i-1.
    a: u128,
    /// Register B: state bits s94..s177 (local positions 1..84).
    b: u128,
    /// Register C: state bits s178..s288 (local positions 1..111).
    c: u128,
    /// Buffered keystream bytes not yet consumed.
    buffer: [u8; 8],
    /// Number of bytes of `buffer` already consumed.
    consumed: usize,
}

const MASK_A: u128 = (1u128 << 93) - 1;
const MASK_B: u128 = (1u128 << 84) - 1;
const MASK_C: u128 = (1u128 << 111) - 1;

/// Extracts the 64 tap bits for local position `k` over one 64-step
/// batch: step `j` (0-based) reads local position `k - j`, returned with
/// step 0 in bit 63 (so `to_be_bytes` emits the first bit first).
#[inline]
fn tap64(reg: u128, k: u32) -> u64 {
    debug_assert!(k >= 64);
    (reg >> (k - 64)) as u64
}

/// Shifts a register forward by 64 steps, inserting the new word (step 0
/// at bit 63) and keeping `len` bits.
#[inline]
fn shift_in(reg: u128, word: u64, mask: u128) -> u128 {
    ((reg << 64) | u128::from(word)) & mask
}

impl Trivium {
    /// Initializes the cipher from an 80-bit key and 80-bit IV and runs
    /// the 1152 warm-up steps.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `iv` is not exactly 10 bytes.
    pub fn new(key: &[u8], iv: &[u8]) -> Self {
        assert_eq!(key.len(), 10, "Trivium key must be 80 bits");
        assert_eq!(iv.len(), 10, "Trivium IV must be 80 bits");

        // Load key bits K1..K80 into s1..s80, IV bits into s94..s173,
        // and set s286..s288. Bit b of a register is local position b+1.
        let mut a: u128 = 0;
        let mut b: u128 = 0;
        for i in 0..80 {
            let key_bit = (key[i / 8] >> (7 - (i % 8))) & 1;
            a |= u128::from(key_bit) << i;
            let iv_bit = (iv[i / 8] >> (7 - (i % 8))) & 1;
            b |= u128::from(iv_bit) << i;
        }
        let c: u128 = 0b111 << 108; // s286, s287, s288 (local 109..111)

        let mut this = Trivium {
            a,
            b,
            c,
            buffer: [0; 8],
            consumed: 8,
        };
        for _ in 0..WARMUP_STEPS / 64 {
            let _ = this.step64();
        }
        this
    }

    /// Runs one 64-step batch, returning the 64 keystream bits (first
    /// bit in the most-significant position).
    fn step64(&mut self) -> u64 {
        let (a, b, c) = (self.a, self.b, self.c);
        // Global taps mapped to local register positions:
        //   A: s66->66, s91->91, s92->92, s93->93, s69->69
        //   B: s162->69, s171->78, s175->82, s176->83, s177->84
        //   C: s243->66, s264->87, s286->109, s287->110, s288->111
        let t1 = tap64(a, 66) ^ tap64(a, 93);
        let t2 = tap64(b, 69) ^ tap64(b, 84);
        let t3 = tap64(c, 66) ^ tap64(c, 111);
        let z = t1 ^ t2 ^ t3;
        let na = t3 ^ (tap64(c, 109) & tap64(c, 110)) ^ tap64(a, 69);
        let nb = t1 ^ (tap64(a, 91) & tap64(a, 92)) ^ tap64(b, 78);
        let nc = t2 ^ (tap64(b, 82) & tap64(b, 83)) ^ tap64(c, 87);
        self.a = shift_in(a, na, MASK_A);
        self.b = shift_in(b, nb, MASK_B);
        self.c = shift_in(c, nc, MASK_C);
        z
    }

    /// Produces the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.consumed == 8 {
            self.buffer = self.step64().to_be_bytes();
            self.consumed = 0;
        }
        let byte = self.buffer[self.consumed];
        self.consumed += 1;
        byte
    }

    /// Produces `n` keystream bytes.
    pub fn keystream_bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_byte()).collect()
    }

    /// XORs the keystream into `data` in place (encryption and
    /// decryption are the same operation).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data {
            *byte ^= self.next_byte();
        }
    }
}

/// Bit-at-a-time reference implementation of Trivium, kept deliberately
/// naive and independent of [`Trivium`] so the two can cross-validate
/// each other.
#[derive(Clone, Debug)]
pub struct TriviumRef {
    /// `s[0]` is spec bit s1.
    s: [u8; 288],
}

impl TriviumRef {
    /// Initializes and warms up the reference cipher.
    ///
    /// # Panics
    ///
    /// Panics if `key` or `iv` is not exactly 10 bytes.
    pub fn new(key: &[u8], iv: &[u8]) -> Self {
        assert_eq!(key.len(), 10);
        assert_eq!(iv.len(), 10);
        let mut s = [0u8; 288];
        for i in 0..80 {
            s[i] = (key[i / 8] >> (7 - (i % 8))) & 1;
            s[93 + i] = (iv[i / 8] >> (7 - (i % 8))) & 1;
        }
        s[285] = 1;
        s[286] = 1;
        s[287] = 1;
        let mut this = TriviumRef { s };
        for _ in 0..WARMUP_STEPS {
            let _ = this.step();
        }
        this
    }

    /// One step of the spec's pseudo-code; returns the keystream bit.
    fn step(&mut self) -> u8 {
        let s = &self.s;
        let t1 = s[65] ^ s[92];
        let t2 = s[161] ^ s[176];
        let t3 = s[242] ^ s[287];
        let z = t1 ^ t2 ^ t3;
        let t1n = t1 ^ (s[90] & s[91]) ^ s[170];
        let t2n = t2 ^ (s[174] & s[175]) ^ s[263];
        let t3n = t3 ^ (s[285] & s[286]) ^ s[68];
        // Shift each register by one (s_i -> s_{i+1}).
        self.s.copy_within(0..92, 1);
        self.s.copy_within(93..176, 94);
        self.s.copy_within(177..287, 178);
        self.s[0] = t3n;
        self.s[93] = t1n;
        self.s[177] = t2n;
        z
    }

    /// Produces `n` keystream bytes (first bit = MSB of first byte).
    pub fn keystream_bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n)
            .map(|_| {
                let mut byte = 0u8;
                for _ in 0..8 {
                    byte = (byte << 1) | self.step();
                }
                byte
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sliced_matches_reference() {
        let cases = [
            ([0u8; 10], [0u8; 10]),
            ([0xFF; 10], [0xFF; 10]),
            (
                [0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF, 0x12, 0x34],
                [0xFE, 0xDC, 0xBA, 0x98, 0x76, 0x54, 0x32, 0x10, 0xAA, 0x55],
            ),
        ];
        for (key, iv) in cases {
            let fast = Trivium::new(&key, &iv).keystream_bytes(256);
            let slow = TriviumRef::new(&key, &iv).keystream_bytes(256);
            assert_eq!(fast, slow, "key={key:02x?}");
        }
    }

    #[test]
    fn different_ivs_give_different_streams() {
        let key = [7u8; 10];
        let a = Trivium::new(&key, &[0u8; 10]).keystream_bytes(64);
        let mut iv = [0u8; 10];
        iv[9] = 1;
        let b = Trivium::new(&key, &iv).keystream_bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let iv = [3u8; 10];
        let a = Trivium::new(&[0u8; 10], &iv).keystream_bytes(64);
        let b = Trivium::new(&[1u8; 10], &iv).keystream_bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_not_trivially_biased() {
        // A weak smoke test: the all-zero key/IV stream should have a
        // roughly balanced bit population over 4 KiB.
        let bytes = Trivium::new(&[0u8; 10], &[0u8; 10]).keystream_bytes(4096);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let total = 4096 * 8;
        let frac = f64::from(ones) / f64::from(total as u32);
        assert!((0.45..0.55).contains(&frac), "bit bias {frac}");
    }

    #[test]
    fn apply_keystream_round_trips() {
        let key = [9u8; 10];
        let iv = [4u8; 10];
        let plain: Vec<u8> = (0..=255).collect();
        let mut data = plain.clone();
        Trivium::new(&key, &iv).apply_keystream(&mut data);
        assert_ne!(data, plain);
        Trivium::new(&key, &iv).apply_keystream(&mut data);
        assert_eq!(data, plain);
    }

    #[test]
    fn byte_and_bulk_interfaces_agree() {
        let mut a = Trivium::new(&[5; 10], &[6; 10]);
        let mut b = Trivium::new(&[5; 10], &[6; 10]);
        let bulk = a.keystream_bytes(100);
        let bytes: Vec<u8> = (0..100).map(|_| b.next_byte()).collect();
        assert_eq!(bulk, bytes);
    }

    #[test]
    #[should_panic(expected = "80 bits")]
    fn short_key_panics() {
        let _ = Trivium::new(&[0u8; 9], &[0u8; 10]);
    }
}
