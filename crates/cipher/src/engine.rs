//! Timing model of the in-controller stream-cipher engine.
//!
//! The engine of §5 sits between the flash controllers and the internal
//! bus (Figure 3), keeps the device key in a secure register, and once
//! initialized "generates 64 keystream bits per cycle". Decryption of a
//! page therefore pipelines with the channel-bus transfer; the exposed
//! latency is the key/IV initialization (1152 warm-up steps / 64 per
//! cycle = 18 cycles) plus the drain of the last beat, with throughput
//! bounded by 64 bits/cycle.

use iceclave_types::{Hertz, SimDuration};

use crate::iv::{IvGenerator, PageIv};
use crate::Trivium;

/// The stream-cipher engine: functional encryption plus a latency model.
///
/// # Examples
///
/// ```
/// use iceclave_cipher::CipherEngine;
/// use iceclave_types::Hertz;
///
/// let mut engine = CipherEngine::new([7u8; 10], Hertz::from_mhz(800), 0xACE1);
/// // A 4 KiB page at 64 bits/cycle, 800 MHz: 512 cycles + 18 init.
/// assert_eq!(engine.page_latency(4096).as_nanos(), 662);
///
/// let (cipher, iv) = engine.encrypt_page(9, &[0xAA; 64]);
/// let plain = engine.decrypt_page(&iv, &cipher);
/// assert_eq!(plain, vec![0xAA; 64]);
/// ```
#[derive(Debug)]
pub struct CipherEngine {
    key: [u8; 10],
    clock: Hertz,
    iv_gen: IvGenerator,
    /// Pipeline fill for key/IV initialization: 1152 steps at 64
    /// bits/cycle.
    init_cycles: u64,
    /// Keystream bits produced per cycle.
    bits_per_cycle: u64,
    pages_encrypted: u64,
    pages_decrypted: u64,
}

impl CipherEngine {
    /// Creates an engine clocked at `clock` holding `key` in its secure
    /// register.
    pub fn new(key: [u8; 10], clock: Hertz, iv_seed: u64) -> Self {
        CipherEngine {
            key,
            clock,
            iv_gen: IvGenerator::new(iv_seed),
            init_cycles: 1152 / 64,
            bits_per_cycle: 64,
            pages_encrypted: 0,
            pages_decrypted: 0,
        }
    }

    /// Latency to cipher a whole page of `bytes` bytes when the data is
    /// already streaming through the engine.
    pub fn page_latency(&self, bytes: u64) -> SimDuration {
        let stream_cycles = (bytes * 8).div_ceil(self.bits_per_cycle);
        self.clock.cycles(self.init_cycles + stream_cycles)
    }

    /// Sustained throughput in bytes/second.
    pub fn throughput(&self) -> u64 {
        self.clock.as_hz() * self.bits_per_cycle / 8
    }

    /// Encrypts a page read from flash at physical page address `ppa`,
    /// returning the ciphertext and the IV used (the IV is public and
    /// travels with the data; the key never leaves the engine).
    pub fn encrypt_page(&mut self, ppa: u32, plain: &[u8]) -> (Vec<u8>, PageIv) {
        let mut data = plain.to_vec();
        let iv = self.encrypt_page_in_place(ppa, &mut data);
        (data, iv)
    }

    /// Encrypts a page in place (for callers that already own the
    /// buffer — a stream cipher needs no scratch copy), returning the
    /// IV used.
    pub fn encrypt_page_in_place(&mut self, ppa: u32, data: &mut [u8]) -> PageIv {
        let iv = self.iv_gen.iv_for_page(ppa);
        Trivium::new(&self.key, &iv.bytes()).apply_keystream(data);
        self.pages_encrypted += 1;
        iv
    }

    /// Decrypts a page previously ciphered with `iv`.
    pub fn decrypt_page(&mut self, iv: &PageIv, cipher: &[u8]) -> Vec<u8> {
        let mut data = cipher.to_vec();
        self.decrypt_page_in_place(iv, &mut data);
        data
    }

    /// Decrypts a page in place (the XOR-keystream twin of
    /// [`CipherEngine::encrypt_page_in_place`]).
    pub fn decrypt_page_in_place(&mut self, iv: &PageIv, data: &mut [u8]) {
        Trivium::new(&self.key, &iv.bytes()).apply_keystream(data);
        self.pages_decrypted += 1;
    }

    /// Number of pages encrypted so far.
    pub fn pages_encrypted(&self) -> u64 {
        self.pages_encrypted
    }

    /// Number of pages decrypted so far.
    pub fn pages_decrypted(&self) -> u64 {
        self.pages_decrypted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CipherEngine {
        CipherEngine::new([1u8; 10], Hertz::from_mhz(800), 99)
    }

    #[test]
    fn round_trip() {
        let mut e = engine();
        let plain: Vec<u8> = (0..255).collect();
        let (cipher, iv) = e.encrypt_page(42, &plain);
        assert_ne!(cipher, plain);
        assert_eq!(e.decrypt_page(&iv, &cipher), plain);
        assert_eq!(e.pages_encrypted(), 1);
        assert_eq!(e.pages_decrypted(), 1);
    }

    #[test]
    fn snooped_ciphertext_differs_across_epochs() {
        // Bus snooping defence: encrypting the same page twice yields
        // different ciphertext because the IV base rotates.
        let mut e = engine();
        let plain = vec![0x55u8; 128];
        let (c1, iv1) = e.encrypt_page(7, &plain);
        let (c2, iv2) = e.encrypt_page(7, &plain);
        assert_ne!(iv1, iv2);
        assert_ne!(c1, c2);
    }

    #[test]
    fn latency_scales_with_page_size() {
        let e = engine();
        let l4k = e.page_latency(4096);
        let l8k = e.page_latency(8192);
        assert!(l8k > l4k);
        // 4096 B = 512 cycles + 18 init at 1.25 ns.
        assert_eq!(l4k.as_nanos(), (512 + 18) * 125 / 100);
    }

    #[test]
    fn throughput_is_64_bits_per_cycle() {
        let e = engine();
        assert_eq!(e.throughput(), 800_000_000 * 8);
    }

    #[test]
    fn wrong_iv_fails_to_decrypt() {
        let mut e = engine();
        let plain = vec![1u8; 64];
        let (cipher, _iv) = e.encrypt_page(1, &plain);
        let other_iv = PageIv::compose(0x1111, 1);
        assert_ne!(e.decrypt_page(&other_iv, &cipher), plain);
    }
}
