//! Cryptographic primitives and the stream-cipher engine of IceClave.
//!
//! IceClave secures the flash-to-DRAM data path with a hardware stream
//! cipher based on **Trivium** (§5, Figure 10) whose 80-bit IV is the
//! concatenation of a PRNG output and the physical page address, and it
//! uses **AES-128** as the block cipher behind counter-mode memory
//! encryption in the MEE (§4.4).
//!
//! This crate implements both ciphers for real:
//!
//! * [`Trivium`] — the eSTREAM portfolio cipher, in a word-sliced
//!   implementation producing 64 keystream bits per step (matching the
//!   64 bits/cycle hardware engine of §5), cross-checked against an
//!   independent bit-at-a-time reference ([`trivium::TriviumRef`]).
//! * [`Aes128`] — FIPS-197 AES-128 encryption with the S-box derived
//!   from the GF(2⁸) inverse + affine transform (validated against the
//!   FIPS-197 Appendix C.1 known-answer vector).
//! * [`PageIv`] — the 80-bit per-page IV of Figure 10 (48-bit PRNG base
//!   ‖ 32-bit PPA) with the spatial/temporal uniqueness guarantees the
//!   paper relies on.
//! * [`CipherEngine`] — the timing and area model of the engine placed
//!   in the SSD controller (64 keystream bits per cycle, per-channel
//!   page buffers; ≈1.6% controller area per §5).
//!
//! # Examples
//!
//! ```
//! use iceclave_cipher::{CipherEngine, PageIv, Trivium};
//!
//! let key = [0x42u8; 10]; // 80-bit device key held in a secure register
//! let iv = PageIv::compose(0x0000_dead_beef, 1234);
//! let mut cipher = Trivium::new(&key, &iv.bytes());
//! let plain = b"sensitive flash page contents".to_vec();
//! let mut data = plain.clone();
//! cipher.apply_keystream(&mut data); // encrypt
//! assert_ne!(data, plain);
//! let mut cipher = Trivium::new(&key, &iv.bytes());
//! cipher.apply_keystream(&mut data); // decrypt (XOR is symmetric)
//! assert_eq!(data, plain);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aes;
pub mod area;
pub mod engine;
pub mod iv;
pub mod trivium;

pub use aes::Aes128;
pub use area::{AreaReport, CipherAreaModel};
pub use engine::CipherEngine;
pub use iv::{IvGenerator, PageIv};
pub use trivium::Trivium;
