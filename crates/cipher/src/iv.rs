//! Per-page IV construction (Figure 10).
//!
//! The stream-cipher engine derives one 80-bit IV per flash page by
//! concatenating a 48-bit pseudo-random base (regenerated per epoch by a
//! hardware PRNG) with the 32-bit physical page address. The PPA gives
//! *spatial* uniqueness (no two pages share an IV in one epoch); the
//! PRNG base gives *temporal* uniqueness (the same page re-encrypted
//! later uses a fresh IV). The paper calls this "orthogonal uniqueness".

use std::fmt;

/// An 80-bit Trivium IV composed as `base48 ‖ ppa32`.
///
/// # Examples
///
/// ```
/// use iceclave_cipher::PageIv;
///
/// let a = PageIv::compose(0x1234_5678_9abc, 1);
/// let b = PageIv::compose(0x1234_5678_9abc, 2);
/// assert_ne!(a.bytes(), b.bytes()); // spatial uniqueness
/// assert_eq!(a.ppa(), 1);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct PageIv {
    base: u64, // low 48 bits significant
    ppa: u32,
}

impl PageIv {
    /// Composes an IV from a 48-bit PRNG base and a 32-bit physical page
    /// address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `base` exceeds 48 bits.
    pub fn compose(base: u64, ppa: u32) -> Self {
        debug_assert!(base < (1 << 48), "IV base must fit in 48 bits");
        PageIv {
            base: base & 0xFFFF_FFFF_FFFF,
            ppa,
        }
    }

    /// The 10-byte IV: base (big-endian, 6 bytes) followed by the PPA
    /// (big-endian, 4 bytes).
    pub fn bytes(&self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..6].copy_from_slice(&self.base.to_be_bytes()[2..]);
        out[6..].copy_from_slice(&self.ppa.to_be_bytes());
        out
    }

    /// The PRNG base component.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The physical-page-address component.
    pub fn ppa(&self) -> u32 {
        self.ppa
    }
}

impl fmt::Display for PageIv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IV(base=0x{:012x}, ppa={})", self.base, self.ppa)
    }
}

/// The hardware PRNG of Figure 10, modelled as a maximal-length 48-bit
/// Fibonacci LFSR (taps x⁴⁸ + x⁴⁷ + x²¹ + x²⁰ + 1).
///
/// # Examples
///
/// ```
/// use iceclave_cipher::IvGenerator;
///
/// let mut gen = IvGenerator::new(0xACE1);
/// let iv1 = gen.iv_for_page(7);
/// let iv2 = gen.iv_for_page(7);
/// // Temporal uniqueness: a fresh base for every encryption epoch.
/// assert_ne!(iv1.bytes(), iv2.bytes());
/// ```
#[derive(Clone, Debug)]
pub struct IvGenerator {
    state: u64,
}

impl IvGenerator {
    /// Seeds the LFSR. A zero seed is silently replaced (an LFSR must
    /// never be all-zero).
    pub fn new(seed: u64) -> Self {
        let state = (seed & 0xFFFF_FFFF_FFFF).max(1);
        IvGenerator { state }
    }

    /// Advances the LFSR 48 steps and returns the fresh 48-bit base.
    pub fn next_base(&mut self) -> u64 {
        for _ in 0..48 {
            let bit =
                ((self.state >> 47) ^ (self.state >> 46) ^ (self.state >> 20) ^ (self.state >> 19))
                    & 1;
            self.state = ((self.state << 1) | bit) & 0xFFFF_FFFF_FFFF;
        }
        self.state
    }

    /// Composes the IV for `ppa` with a fresh base.
    pub fn iv_for_page(&mut self, ppa: u32) -> PageIv {
        PageIv::compose(self.next_base(), ppa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn layout_is_base_then_ppa() {
        let iv = PageIv::compose(0x0102_0304_0506, 0x0708_090A);
        assert_eq!(
            iv.bytes(),
            [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A]
        );
    }

    #[test]
    fn spatial_uniqueness_same_epoch() {
        let base = 0x42;
        let mut seen = HashSet::new();
        for ppa in 0..1000 {
            assert!(seen.insert(PageIv::compose(base, ppa).bytes()));
        }
    }

    #[test]
    fn lfsr_period_is_long() {
        let mut gen = IvGenerator::new(1);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(gen.next_base()), "LFSR repeated too early");
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut gen = IvGenerator::new(0);
        assert_ne!(gen.next_base(), 0);
    }

    #[test]
    fn display_shows_components() {
        let iv = PageIv::compose(0xABC, 3);
        assert_eq!(iv.to_string(), "IV(base=0x000000000abc, ppa=3)");
    }
}
