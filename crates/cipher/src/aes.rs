//! AES-128 block encryption (FIPS-197).
//!
//! The memory-encryption engine of §4.4 generates its one-time pads by
//! encrypting counters with a block cipher "such as AES"; Table 3 models
//! the hardware unit with a 60 ns latency. This module provides the
//! functional cipher. The S-box is computed from its definition (the
//! multiplicative inverse in GF(2⁸) followed by the affine transform)
//! rather than pasted as a table, and the implementation is validated
//! against the FIPS-197 Appendix C.1 known-answer vector.

/// AES-128: 10 rounds, 16-byte blocks, 16-byte keys.
///
/// Only encryption is implemented — counter-mode and MAC construction
/// never need the inverse cipher.
///
/// # Examples
///
/// ```
/// use iceclave_cipher::Aes128;
///
/// // FIPS-197 Appendix C.1 known-answer test.
/// let key = [
///     0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
///     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
/// ];
/// let plain = [
///     0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
///     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
/// ];
/// let cipher = Aes128::new(&key);
/// let out = cipher.encrypt_block(&plain);
/// assert_eq!(out[..4], [0x69, 0xc4, 0xe0, 0xd8]);
/// ```
#[derive(Clone, Debug)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    sbox: [u8; 256],
}

/// Multiplication in GF(2⁸) with the AES reduction polynomial x⁸ + x⁴ +
/// x³ + x + 1 (0x11b).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Builds the AES S-box from first principles: S(x) = affine(inv(x)),
/// with inv(0) = 0. The inverse is found by exponentiation
/// (x^254 = x⁻¹ in GF(2⁸)*).
fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    for x in 0..=255u8 {
        let inv = if x == 0 {
            0
        } else {
            // x^254 via square-and-multiply.
            let mut result = 1u8;
            let mut base = x;
            let mut exp = 254u8;
            while exp > 0 {
                if exp & 1 != 0 {
                    result = gf_mul(result, base);
                }
                base = gf_mul(base, base);
                exp >>= 1;
            }
            result
        };
        let b = inv;
        sbox[x as usize] =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
    }
    sbox
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not exactly 16 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert_eq!(key.len(), 16, "AES-128 key must be 128 bits");
        let sbox = build_sbox();
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys, sbox }
    }

    /// Encrypts one 16-byte block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not exactly 16 bytes.
    pub fn encrypt_block(&self, block: &[u8]) -> [u8; 16] {
        assert_eq!(block.len(), 16, "AES block must be 128 bits");
        let mut state = [0u8; 16];
        state.copy_from_slice(block);
        self.add_round_key(&mut state, 0);
        for round in 1..10 {
            self.sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            self.add_round_key(&mut state, round);
        }
        self.sub_bytes(&mut state);
        shift_rows(&mut state);
        self.add_round_key(&mut state, 10);
        state
    }

    /// Encrypts a 128-bit counter value (big-endian), the core of the
    /// MEE's counter-mode pad generation.
    pub fn encrypt_counter(&self, counter: u128) -> [u8; 16] {
        self.encrypt_block(&counter.to_be_bytes())
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn add_round_key(&self, state: &mut [u8; 16], round: usize) {
        for (b, k) in state.iter_mut().zip(self.round_keys[round].iter()) {
            *b ^= k;
        }
    }
}

/// The state is stored column-major (byte `i` is row `i % 4`, column
/// `i / 4`), matching FIPS-197's input ordering.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[col * 4 + row] = s[((col + row) % 4) * 4 + row];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            state[col * 4],
            state[col * 4 + 1],
            state[col * 4 + 2],
            state[col * 4 + 3],
        ];
        state[col * 4] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3];
        state[col * 4 + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3];
        state[col * 4 + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3);
        state[col * 4 + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        let sbox = build_sbox();
        // Canonical spot checks from FIPS-197 Figure 7.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: Vec<u8> = (0x00..=0x0f).collect();
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&plain), expected);
    }

    #[test]
    fn sp800_38a_ecb_vector() {
        // NIST SP 800-38A, F.1.1 ECB-AES128.Encrypt, block #1.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&plain), expected);
    }

    #[test]
    fn counter_encryption_is_deterministic_and_distinct() {
        let aes = Aes128::new(&[0u8; 16]);
        let a = aes.encrypt_counter(1);
        let b = aes.encrypt_counter(2);
        assert_eq!(a, aes.encrypt_counter(1));
        assert_ne!(a, b);
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // FIPS-197 §4.2.1 example
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xff), 0);
    }

    #[test]
    #[should_panic(expected = "128 bits")]
    fn wrong_key_size_panics() {
        let _ = Aes128::new(&[0u8; 15]);
    }
}
