//! Property-based tests for the cipher crate.

use iceclave_cipher::{Aes128, CipherEngine, PageIv, Trivium};
use iceclave_types::Hertz;
use proptest::prelude::*;

proptest! {
    /// Engine encrypt/decrypt is the identity for arbitrary pages.
    #[test]
    fn engine_round_trip(key in prop::array::uniform10(0u8..), seed in 1u64.., data in prop::collection::vec(0u8.., 1..2048)) {
        let mut engine = CipherEngine::new(key, Hertz::from_mhz(800), seed);
        let (cipher, iv) = engine.encrypt_page(7, &data);
        prop_assert_eq!(engine.decrypt_page(&iv, &cipher), data);
    }

    /// Two different pages never produce identical keystream prefixes
    /// under the same key (IV spatial uniqueness).
    #[test]
    fn distinct_pages_distinct_streams(key in prop::array::uniform10(0u8..), base in 0u64..(1 << 48), ppa_a in 0u32.., ppa_b in 0u32..) {
        prop_assume!(ppa_a != ppa_b);
        let iv_a = PageIv::compose(base, ppa_a);
        let iv_b = PageIv::compose(base, ppa_b);
        let a = Trivium::new(&key, &iv_a.bytes()).keystream_bytes(32);
        let b = Trivium::new(&key, &iv_b.bytes()).keystream_bytes(32);
        prop_assert_ne!(a, b);
    }

    /// AES-128 is a permutation: distinct counters produce distinct
    /// blocks under any key.
    #[test]
    fn aes_counter_injective(key in prop::array::uniform16(0u8..), a in 0u128.., b in 0u128..) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_counter(a), aes.encrypt_counter(b));
    }

    /// Keystream bytes are stateless with respect to chunking: pulling
    /// n then m bytes equals pulling n+m at once.
    #[test]
    fn keystream_chunking_is_associative(key in prop::array::uniform10(0u8..), iv in prop::array::uniform10(0u8..), n in 0usize..100, m in 0usize..100) {
        let mut one = Trivium::new(&key, &iv);
        let mut chunks = one.keystream_bytes(n);
        chunks.extend(one.keystream_bytes(m));
        let whole = Trivium::new(&key, &iv).keystream_bytes(n + m);
        prop_assert_eq!(chunks, whole);
    }
}
