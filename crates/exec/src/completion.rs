//! The completion queue of the asynchronous batch API.
//!
//! This module's documentation is the **single source of truth** for
//! the drain-order contract. Other docs (`iceclave_types::ticket`, the
//! executor, the umbrella crate) link here instead of restating the
//! order, and the regression tests quote it verbatim through
//! [`DRAIN_ORDER_CONTRACT`]:
//!
//! > Completions drain in ascending ready time; completions that
//! > became ready at the same simulated tick drain in (ticket id,
//! > page index) order.

use std::any::Any;
use std::fmt;

use iceclave_types::{CompletionEvent, FaultStats, SimTime, Ticket, TicketAttribution};

/// The drain-order contract, verbatim from the module documentation
/// above (a unit test asserts the two stay identical, so there is no
/// second place to update). Regression tests quote this constant in
/// their assertions.
pub const DRAIN_ORDER_CONTRACT: &str = "Completions drain in ascending ready time; \
     completions that became ready at the same simulated tick drain in \
     (ticket id, page index) order.";

/// A tap on the retirement stream: sees every page as it retires and
/// every ticket as it closes.
///
/// The queue invokes the observer from [`CompletionQueue::push`] — the
/// single point every retirement already passes — so a capture layer
/// (e.g. `iceclave_obs`'s ticket op-log) records the stream without the
/// executor or its driver knowing the observer's concrete type. With no
/// observer installed the cost is one `Option` branch per retirement.
///
/// `on_retire` fires once per page, in retirement (not drain) order.
/// `on_close` fires once per ticket after its last page retired; the
/// *driver* calls it (via [`crate::Executor::notify_close`]) because
/// only the driver knows the per-ticket metadata-traffic and fault
/// deltas it accumulated while the ticket was in flight.
pub trait RetireObserver {
    /// One page retired into the completion queue.
    fn on_retire(&mut self, event: &CompletionEvent);

    /// `ticket` closed at `finished` with the metadata traffic and
    /// fault activity charged to it over its lifetime.
    fn on_close(
        &mut self,
        ticket: Ticket,
        finished: SimTime,
        attrib: &TicketAttribution,
        faults: &FaultStats,
    );

    /// Recovers the concrete observer after [`CompletionQueue::take_observer`]
    /// (`Box<dyn RetireObserver>` cannot be downcast directly).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Retired pages waiting to be drained by the submitter.
///
/// Every page of every in-flight ticket lands here exactly once, and
/// drains in the **documented, stable order** of the
/// [module documentation](self) ([`DRAIN_ORDER_CONTRACT`]) — never in
/// the incidental order the executor's stages happened to retire
/// them.
///
/// # Examples
///
/// ```
/// use iceclave_exec::CompletionQueue;
/// use iceclave_types::{
///     CompletionEvent, LatencyBreakdown, Lpn, PageStatus, SimTime, TeeId, Ticket, TicketKind,
/// };
///
/// let page = |ticket: u64, index: u32| CompletionEvent {
///     ticket: Ticket::new(ticket),
///     kind: TicketKind::Read,
///     tee: TeeId::new(1).unwrap(),
///     index,
///     lpn: Lpn::new(index as u64),
///     status: PageStatus::Done,
///     breakdown: LatencyBreakdown::at_submission(SimTime::ZERO),
///     data: None,
/// };
/// let mut q = CompletionQueue::new();
/// // Pushed out of order; all ready at the same tick.
/// q.push(page(2, 0));
/// q.push(page(1, 3));
/// q.push(page(1, 0));
/// let drained = q.drain_due(SimTime::ZERO);
/// let order: Vec<(u64, u32)> = drained.iter().map(|e| (e.ticket.raw(), e.index)).collect();
/// assert_eq!(order, vec![(1, 0), (1, 3), (2, 0)]);
/// ```
#[derive(Default)]
pub struct CompletionQueue {
    pending: Vec<CompletionEvent>,
    /// Reusable partition buffer: holds the kept (not-yet-due) events
    /// during a drain, then swaps with `pending`, so steady-state
    /// polling allocates nothing beyond the returned batch.
    scratch: Vec<CompletionEvent>,
    /// Optional tap on the retirement stream ([`RetireObserver`]).
    observer: Option<Box<dyn RetireObserver>>,
}

impl fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("pending", &self.pending)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CompletionQueue {
            pending: Vec::new(),
            scratch: Vec::new(),
            observer: None,
        }
    }

    /// Enqueues one retired page, notifying the installed observer (if
    /// any) before the event is queued.
    pub fn push(&mut self, event: CompletionEvent) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_retire(&event);
        }
        self.pending.push(event);
    }

    /// Installs `observer` as the retirement tap, replacing (and
    /// returning) any previous one.
    pub fn set_observer(
        &mut self,
        observer: Box<dyn RetireObserver>,
    ) -> Option<Box<dyn RetireObserver>> {
        self.observer.replace(observer)
    }

    /// Removes and returns the installed observer, disabling capture.
    pub fn take_observer(&mut self) -> Option<Box<dyn RetireObserver>> {
        self.observer.take()
    }

    /// True when a retirement observer is installed.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Forwards a ticket-close notification to the observer (if any).
    pub fn notify_close(
        &mut self,
        ticket: Ticket,
        finished: SimTime,
        attrib: &TicketAttribution,
        faults: &FaultStats,
    ) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_close(ticket, finished, attrib, faults);
        }
    }

    /// Number of undrained completions.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is waiting to be drained.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Extracts every event matching `take` in the documented sorted
    /// order, keeping the rest queued. Early-returns an unallocated
    /// `Vec` when nothing matches; when everything matches, the whole
    /// buffer moves out wholesale. Mixed drains partition through the
    /// reusable `scratch` buffer instead of building two fresh `Vec`s.
    fn extract(&mut self, mut take: impl FnMut(&CompletionEvent) -> bool) -> Vec<CompletionEvent> {
        let mut matching = 0;
        for ev in &self.pending {
            if take(ev) {
                matching += 1;
            }
        }
        if matching == 0 {
            return Vec::new();
        }
        let mut out = if matching == self.pending.len() {
            std::mem::take(&mut self.pending)
        } else {
            let mut due = Vec::with_capacity(matching);
            self.scratch.clear();
            self.scratch.reserve(self.pending.len() - matching);
            for ev in self.pending.drain(..) {
                if take(&ev) {
                    due.push(ev);
                } else {
                    self.scratch.push(ev);
                }
            }
            std::mem::swap(&mut self.pending, &mut self.scratch);
            due
        };
        Self::sort(&mut out);
        out
    }

    /// Drains every completion ready at or before `now`, in the
    /// documented *(ready, ticket id, page index)* order. Later
    /// completions stay queued.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<CompletionEvent> {
        self.extract(|e| e.ready_at() <= now)
    }

    /// Drains every queued completion regardless of ready time, in the
    /// documented *(ready, ticket id, page index)* order.
    pub fn drain_all(&mut self) -> Vec<CompletionEvent> {
        let mut all = std::mem::take(&mut self.pending);
        Self::sort(&mut all);
        all
    }

    /// Removes and returns every queued completion of `ticket`, sorted
    /// by *(ready, page index)* — used by the blocking wrappers to
    /// drain exactly their own batch.
    pub fn take_ticket(&mut self, ticket: Ticket) -> Vec<CompletionEvent> {
        self.extract(|e| e.ticket == ticket)
    }

    fn sort(events: &mut [CompletionEvent]) {
        events.sort_by_key(|e| (e.ready_at(), e.ticket, e.index));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iceclave_types::{LatencyBreakdown, Lpn, PageStatus, SimDuration, TeeId, TicketKind};

    fn event(ticket: u64, index: u32, ready_ns: u64) -> CompletionEvent {
        let mut breakdown = LatencyBreakdown::at_submission(SimTime::ZERO);
        breakdown.ready = SimTime::ZERO + SimDuration::from_nanos(ready_ns);
        CompletionEvent {
            ticket: Ticket::new(ticket),
            kind: TicketKind::Read,
            tee: TeeId::new(1).unwrap(),
            index,
            lpn: Lpn::new(u64::from(index)),
            status: PageStatus::Done,
            breakdown,
            data: None,
        }
    }

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    /// The module documentation is the single source of truth for the
    /// drain order; [`DRAIN_ORDER_CONTRACT`] must quote it verbatim so
    /// the regression tests and the docs can never diverge.
    #[test]
    fn contract_constant_quotes_the_module_doc() {
        let source = include_str!("completion.rs");
        let doc_text: String = source
            .lines()
            .take_while(|line| line.starts_with("//!"))
            .map(|line| line.trim_start_matches("//!").trim_start_matches(" >"))
            .collect::<Vec<&str>>()
            .join(" ");
        let normalize = |s: &str| s.split_whitespace().collect::<Vec<&str>>().join(" ");
        assert!(
            normalize(&doc_text).contains(&normalize(DRAIN_ORDER_CONTRACT)),
            "module doc no longer contains the drain-order contract verbatim:\n{DRAIN_ORDER_CONTRACT}"
        );
    }

    #[test]
    fn same_tick_drains_by_ticket_then_page_index() {
        // Regression for the documented stable order: push in reverse
        // and shuffled order, all at the same tick.
        let mut q = CompletionQueue::new();
        for (ticket, index) in [(3, 1), (1, 2), (2, 0), (1, 0), (3, 0), (1, 1)] {
            q.push(event(ticket, index, 100));
        }
        let drained = q.drain_due(at(100));
        let order: Vec<(u64, u32)> = drained.iter().map(|e| (e.ticket.raw(), e.index)).collect();
        assert_eq!(
            order,
            vec![(1, 0), (1, 1), (1, 2), (2, 0), (3, 0), (3, 1)],
            "violated the documented contract: {DRAIN_ORDER_CONTRACT}"
        );
    }

    #[test]
    fn drain_due_leaves_future_completions_queued() {
        let mut q = CompletionQueue::new();
        q.push(event(1, 0, 50));
        q.push(event(1, 1, 500));
        assert_eq!(q.drain_due(at(100)).len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_due(at(500)).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn ready_time_orders_before_ticket_id() {
        let mut q = CompletionQueue::new();
        q.push(event(1, 0, 200));
        q.push(event(2, 0, 100));
        let drained = q.drain_due(at(200));
        assert_eq!(drained[0].ticket.raw(), 2, "earlier tick first");
        assert_eq!(drained[1].ticket.raw(), 1);
    }

    #[test]
    fn empty_polls_return_without_allocating() {
        let mut q = CompletionQueue::new();
        // Nothing queued at all.
        assert_eq!(q.drain_due(at(100)).capacity(), 0);
        assert_eq!(q.take_ticket(Ticket::new(1)).capacity(), 0);
        assert_eq!(q.drain_all().capacity(), 0);
        // Something queued, but nothing due / no match: still no
        // allocation, and the queue is untouched.
        q.push(event(1, 0, 500));
        assert_eq!(q.drain_due(at(100)).capacity(), 0);
        assert_eq!(q.take_ticket(Ticket::new(2)).capacity(), 0);
        assert_eq!(q.len(), 1);
    }

    /// The in-place partition through the reusable scratch buffer
    /// preserves the documented drain order across repeated mixed
    /// polls (the satellite regression for the rewrite).
    #[test]
    fn scratch_partition_keeps_drain_order_across_polls() {
        let mut q = CompletionQueue::new();
        for (ticket, index, ready) in [
            (3, 1, 100),
            (1, 0, 300),
            (2, 0, 100),
            (1, 1, 100),
            (2, 1, 300),
            (4, 0, 500),
        ] {
            q.push(event(ticket, index, ready));
        }
        let first = q.drain_due(at(100));
        let order: Vec<(u64, u32)> = first.iter().map(|e| (e.ticket.raw(), e.index)).collect();
        assert_eq!(order, vec![(1, 1), (2, 0), (3, 1)]);
        // The kept events survived the partition swap and drain in
        // order on the next polls.
        q.push(event(1, 2, 300));
        let second = q.drain_due(at(300));
        let order: Vec<(u64, u32)> = second.iter().map(|e| (e.ticket.raw(), e.index)).collect();
        assert_eq!(order, vec![(1, 0), (1, 2), (2, 1)]);
        let rest = q.drain_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].ticket.raw(), 4);
        assert!(q.is_empty());
    }

    /// A recording observer: proves the tap sees every retirement in
    /// push order (not drain order) plus each close notification, and
    /// that it can be recovered through `into_any`.
    #[derive(Default)]
    struct Recorder {
        retired: Vec<(u64, u32)>,
        closed: Vec<(u64, u64, u64)>,
    }

    impl RetireObserver for Recorder {
        fn on_retire(&mut self, event: &CompletionEvent) {
            self.retired.push((event.ticket.raw(), event.index));
        }
        fn on_close(
            &mut self,
            ticket: Ticket,
            _finished: SimTime,
            attrib: &iceclave_types::TicketAttribution,
            faults: &iceclave_types::FaultStats,
        ) {
            self.closed
                .push((ticket.raw(), attrib.counter_misses, faults.read_retries));
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn observer_sees_retirements_in_push_order_and_closes() {
        let mut q = CompletionQueue::new();
        assert!(!q.has_observer());
        assert!(q.set_observer(Box::new(Recorder::default())).is_none());
        assert!(q.has_observer());
        q.push(event(2, 1, 100));
        q.push(event(1, 0, 50));
        let attrib = iceclave_types::TicketAttribution {
            counter_misses: 7,
            ..Default::default()
        };
        let faults = iceclave_types::FaultStats {
            read_retries: 3,
            ..Default::default()
        };
        q.notify_close(Ticket::new(2), at(100), &attrib, &faults);
        let obs = q.take_observer().expect("observer was installed");
        assert!(!q.has_observer());
        let rec = obs
            .into_any()
            .downcast::<Recorder>()
            .expect("concrete type survives into_any");
        assert_eq!(rec.retired, vec![(2, 1), (1, 0)], "push order, not drain");
        assert_eq!(rec.closed, vec![(2, 7, 3)]);
        // With the observer removed, pushes and closes are silent.
        q.push(event(3, 0, 10));
        q.notify_close(Ticket::new(3), at(10), &attrib, &faults);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn take_ticket_extracts_only_that_batch() {
        let mut q = CompletionQueue::new();
        q.push(event(1, 1, 100));
        q.push(event(2, 0, 50));
        q.push(event(1, 0, 100));
        let mine = q.take_ticket(Ticket::new(1));
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].index, 0);
        assert_eq!(mine[1].index, 1);
        assert_eq!(q.len(), 1);
    }
}
