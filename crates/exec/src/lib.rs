//! Event-driven batch executor with a completion-queue API.
//!
//! The simulator expresses every contended hardware unit — per-channel
//! flash buses and dies, per-lane cipher engines, the DRAM behind the
//! MEE, the secure monitor — as a *resource timeline*
//! ([`iceclave_sim::Resource`]). The blocking batch calls acquire those
//! timelines in **call order**: one TEE's whole batch books every stage
//! before the next call sees the device, so two TEEs' batches serialize
//! at call granularity even though the stages themselves overlap.
//!
//! This crate supplies the missing arbiter. An [`Executor`] holds a
//! deterministic event heap of *stage events*; each event acquires
//! exactly one stage's resource for one page (or one batch-level phase)
//! at the simulated time it actually becomes ready, then schedules its
//! successor. Acquisition order thus becomes **time order**: while
//! TEE A's pages occupy channels 0–3, TEE B's pages stream through
//! channels 4–15 and the decrypt lanes concurrently, exactly as a real
//! device's command queues interleave in-flight requests.
//!
//! The crate is deliberately mechanism-only — it knows nothing about
//! the FTL, MEE, or TEEs. `iceclave_core` implements the
//! [`StageMachine`] trait over its components and exposes the
//! user-facing API (`IceClave::submit_batch_async`,
//! `submit_write_batch_async`, `poll_completions`); the blocking calls
//! are thin wrappers that submit one ticket and drain it.
//!
//! # Determinism
//!
//! * Stage events fire in ascending simulated time; events due at the
//!   same tick fire in *(virtual time, ticket virtual time, ticket id,
//!   page index)* order ([`iceclave_sim::KeyedEventQueue`]). The
//!   virtual-time component carries the channel arbiter's
//!   tenant-level weighted-fair start tags and the
//!   ticket-virtual-time component its per-ticket start tags under
//!   the hierarchical policy ([`Executor::schedule_hierarchical`]);
//!   [`Executor::schedule_weighted`] uses ticket virtual time 0, and
//!   plain [`Executor::schedule`] zeroes both, which degenerates to
//!   the legacy *(ticket id, page index)* tie order.
//! * Completions drain from the [`CompletionQueue`] in the order its
//!   module documentation specifies (the single source of truth for
//!   the drain-order contract, quoted by the regression tests).
//! * Two identical submission sequences therefore produce identical
//!   event traces and identical completion sequences.
//!
//! # In-flight ordering contract
//!
//! Like a real device queue, tickets in flight together have **no
//! ordering guarantees between each other**: access control and
//! address translation snapshot at submission, and programs of
//! different tickets land in stage-completion order. Submitters that
//! need read-your-write (or write-after-write) ordering against an
//! earlier ticket drain that ticket first — the blocking wrappers do
//! exactly this, which is why they remain sequentially consistent.
//!
//! # Examples
//!
//! See the [`Executor`] and [`CompletionQueue`] docs for mechanism
//! examples, and `iceclave_core` for the full pipeline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

pub mod completion;
pub mod executor;
pub mod power;
pub mod reference;

pub use completion::{CompletionQueue, RetireObserver, DRAIN_ORDER_CONTRACT};
pub use executor::{Executor, StageEvent, StageMachine};
pub use power::{PowerLossInjector, PowerLossPlan};
pub use reference::{RefExecutor, RefStageMachine};
