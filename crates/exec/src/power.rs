//! Power-loss injection: cut the simulation dead at an arbitrary
//! executor event.
//!
//! Where the flash-level fault injector fails *individual operations*
//! (a page read burst, a program pulse), the [`PowerLossInjector`]
//! models the supply rail dropping: the executor stops advancing
//! mid-schedule and every volatile byte on the controller — CMT,
//! metadata caches, in-flight tickets, WFQ lane state, undrained
//! completions — is gone. Only flash-durable bytes (programmed pages
//! and the metadata journal) survive into
//! `IceClave::recover`.
//!
//! Cut points are counted in *processed executor events*, the finest
//! deterministic unit of simulated progress: a cut at index `n` means
//! exactly `n` stage events ran and event `n` never fired. Because the
//! simulation only mutates durable state inside events, every possible
//! crash state is reachable this way — there is no "mid-event" torn
//! state to model.
//!
//! An empty plan ([`PowerLossPlan::none`]) never trips and is
//! event-for-event invisible: the injector only counts events, so a
//! run with an empty plan is byte-identical to a run with no injector
//! at all.

/// When (if ever) to cut power, in processed-executor-event units.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PowerLossPlan {
    cut_after_events: Option<u64>,
}

impl PowerLossPlan {
    /// Never cut power. Installing this plan only counts events
    /// (useful to measure a schedule's event horizon for
    /// [`PowerLossPlan::seeded`]).
    pub fn none() -> Self {
        PowerLossPlan {
            cut_after_events: None,
        }
    }

    /// Cut power immediately before executor event index `n`: exactly
    /// `n` events run, event `n` never fires. `at_event(0)` cuts
    /// before any event runs.
    pub fn at_event(n: u64) -> Self {
        PowerLossPlan {
            cut_after_events: Some(n),
        }
    }

    /// A deterministic pseudo-random cut point in `[0, horizon)`
    /// derived from `seed` (splitmix64 — no external dependency, same
    /// seed same cut). A zero horizon never cuts.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        if horizon == 0 {
            return Self::none();
        }
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        PowerLossPlan {
            cut_after_events: Some(z % horizon),
        }
    }

    /// The scheduled cut index, if any.
    pub fn cut_index(&self) -> Option<u64> {
        self.cut_after_events
    }
}

/// The armed injector: a plan plus the running event count.
///
/// Owned by the `Executor`, which consults it immediately before
/// popping each stage event. Once tripped it stays tripped — the
/// executor refuses to advance until the device is rebuilt through
/// recovery.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PowerLossInjector {
    plan: PowerLossPlan,
    events_processed: u64,
    tripped: bool,
}

impl PowerLossInjector {
    /// Arms `plan` with the event counter at zero.
    pub fn new(plan: PowerLossPlan) -> Self {
        PowerLossInjector {
            plan,
            events_processed: 0,
            tripped: false,
        }
    }

    /// Called by the executor at the top of every run-loop iteration:
    /// returns `true` (and latches) when the cut point has been
    /// reached, in which case no further event may run.
    pub(crate) fn check_cut(&mut self) -> bool {
        if self.tripped {
            return true;
        }
        if self.plan.cut_after_events == Some(self.events_processed) {
            self.tripped = true;
        }
        self.tripped
    }

    /// Called by the executor after popping an event that will run.
    pub(crate) fn note_event(&mut self) {
        self.events_processed += 1;
    }

    /// True once power has been cut.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Executor events processed since the injector was armed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The armed plan.
    pub fn plan(&self) -> PowerLossPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_trips() {
        let mut inj = PowerLossInjector::new(PowerLossPlan::none());
        for _ in 0..1000 {
            assert!(!inj.check_cut());
            inj.note_event();
        }
        assert_eq!(inj.events_processed(), 1000);
        assert!(!inj.tripped());
    }

    #[test]
    fn at_event_cuts_exactly_there() {
        let mut inj = PowerLossInjector::new(PowerLossPlan::at_event(3));
        for _ in 0..3 {
            assert!(!inj.check_cut());
            inj.note_event();
        }
        assert!(inj.check_cut(), "event 3 must not run");
        assert!(inj.tripped());
        assert_eq!(inj.events_processed(), 3);
        // The trip latches.
        assert!(inj.check_cut());
    }

    #[test]
    fn at_event_zero_cuts_before_anything() {
        let mut inj = PowerLossInjector::new(PowerLossPlan::at_event(0));
        assert!(inj.check_cut());
        assert_eq!(inj.events_processed(), 0);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = PowerLossPlan::seeded(seed, 100);
            let b = PowerLossPlan::seeded(seed, 100);
            assert_eq!(a, b);
            let cut = a.cut_index().expect("non-zero horizon always cuts");
            assert!(cut < 100);
        }
        assert_eq!(PowerLossPlan::seeded(7, 0), PowerLossPlan::none());
    }
}
