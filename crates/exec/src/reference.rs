//! The retained reference executor: the pre-flattening data
//! structures, kept as the ordering oracle for the hot-path rewrite.
//!
//! [`RefExecutor`] is the executor exactly as it stood before the
//! calendar-queue/slab flattening: a binary-heap keyed event queue
//! ([`iceclave_sim::HeapKeyedEventQueue`]) and a `BTreeMap` ticket
//! table. It is **not** wired into the runtime — its only job is to
//! let the equivalence tests (`tests/exec_reference_equivalence.rs`
//! and the executor unit tests) run arbitrary interleaved schedules
//! through both implementations and assert identical completion
//! sequences, bytes, and latency breakdowns. Keep its semantics
//! frozen; behavioral changes belong in [`crate::Executor`].

use std::collections::BTreeMap;

use iceclave_sim::{EventClock, HeapKeyedEventQueue};
use iceclave_types::{CompletionEvent, SimTime, Ticket, TicketKind};

use crate::completion::CompletionQueue;
use crate::executor::StageEvent;

#[derive(Copy, Clone, Debug)]
struct TicketState {
    pages: u32,
    remaining: u32,
    drained: u32,
    finished: SimTime,
}

/// The stage semantics driven by the reference executor — the same
/// shape as [`crate::StageMachine`], phrased over [`RefExecutor`] so
/// one toy machine type can implement both traits and the tests can
/// drive the two executors with literally the same stage logic.
pub trait RefStageMachine {
    /// The machine-defined stage payload carried by every event.
    type Stage;

    /// Processes one due event.
    fn advance(&mut self, event: StageEvent<Self::Stage>, exec: &mut RefExecutor<Self::Stage>);
}

/// The same-tick event ordering key (mirrors the flattened
/// executor): *(tenant virtual time, ticket virtual time, ticket id,
/// page index)*.
type EventKey = (u64, u64, u64, u32);

/// The pre-flattening batch executor: `BinaryHeap` event queue plus
/// `BTreeMap` ticket table (see the [module docs](self)).
#[derive(Debug)]
pub struct RefExecutor<S> {
    events: HeapKeyedEventQueue<EventKey, (Ticket, u32, S)>,
    clock: EventClock,
    completions: CompletionQueue,
    next_ticket: u64,
    tickets: BTreeMap<u64, TicketState>,
}

impl<S> RefExecutor<S> {
    /// An idle executor with no tickets in flight.
    pub fn new() -> Self {
        RefExecutor {
            events: HeapKeyedEventQueue::new(),
            clock: EventClock::new(),
            completions: CompletionQueue::new(),
            next_ticket: 1,
            tickets: BTreeMap::new(),
        }
    }

    /// Opens a ticket for a `pages`-page batch submitted at `now`.
    pub fn open_ticket(&mut self, kind: TicketKind, pages: u32, now: SimTime) -> Ticket {
        let _ = kind;
        let ticket = Ticket::new(self.next_ticket);
        self.next_ticket += 1;
        self.tickets.insert(
            ticket.raw(),
            TicketState {
                pages,
                remaining: pages,
                drained: 0,
                finished: now,
            },
        );
        ticket
    }

    /// Schedules a stage event with virtual time 0.
    pub fn schedule(&mut self, at: SimTime, ticket: Ticket, page: u32, stage: S) {
        self.schedule_weighted(at, 0, ticket, page, stage);
    }

    /// Schedules a stage event under the fair-queueing start tag
    /// `vtime` (same key shape as the flattened executor).
    pub fn schedule_weighted(
        &mut self,
        at: SimTime,
        vtime: u64,
        ticket: Ticket,
        page: u32,
        stage: S,
    ) {
        self.schedule_hierarchical(at, vtime, 0, ticket, page, stage);
    }

    /// Schedules a stage event under the two-level fair-queueing tags
    /// `(vtime, tvtime)` (same key shape as the flattened executor).
    pub fn schedule_hierarchical(
        &mut self,
        at: SimTime,
        vtime: u64,
        tvtime: u64,
        ticket: Ticket,
        page: u32,
        stage: S,
    ) {
        self.events.push(
            at,
            (vtime, tvtime, ticket.raw(), page),
            (ticket, page, stage),
        );
    }

    /// Retires one page into the completion queue; `true` when the
    /// ticket closed.
    pub fn push_completion(&mut self, event: CompletionEvent) -> bool {
        let ticket = event.ticket.raw();
        let ready = event.ready_at();
        self.completions.push(event);
        let Some(state) = self.tickets.get_mut(&ticket) else {
            return true;
        };
        state.remaining = state.remaining.saturating_sub(1);
        state.finished = state.finished.max(ready);
        state.remaining == 0
    }

    /// True when every page of `ticket` has retired.
    pub fn is_closed(&self, ticket: Ticket) -> bool {
        self.tickets
            .get(&ticket.raw())
            .is_none_or(|s| s.remaining == 0)
    }

    /// When `ticket` finished, if it is closed and not yet drained.
    pub fn finished_at(&self, ticket: Ticket) -> Option<SimTime> {
        self.tickets
            .get(&ticket.raw())
            .filter(|s| s.remaining == 0)
            .map(|s| s.finished)
    }

    /// Number of stage events waiting on the heap.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The event clock's high-water mark.
    pub fn clock(&self) -> SimTime {
        self.clock.now()
    }

    /// Processes every stage event due at or before `now`.
    pub fn run_until<M>(&mut self, machine: &mut M, now: SimTime)
    where
        M: RefStageMachine<Stage = S>,
    {
        while let Some((at, _, (ticket, page, stage))) = self.events.pop_due(now) {
            self.clock.advance_to(at);
            machine.advance(
                StageEvent {
                    at,
                    ticket,
                    page,
                    stage,
                },
                self,
            );
        }
    }

    /// Processes every pending stage event regardless of time.
    pub fn run_to_idle<M>(&mut self, machine: &mut M)
    where
        M: RefStageMachine<Stage = S>,
    {
        while let Some((at, _, (ticket, page, stage))) = self.events.pop() {
            self.clock.advance_to(at);
            machine.advance(
                StageEvent {
                    at,
                    ticket,
                    page,
                    stage,
                },
                self,
            );
        }
    }

    /// Drains every completion ready at or before `now` in the
    /// documented order, retiring fully drained tickets.
    pub fn poll(&mut self, now: SimTime) -> Vec<CompletionEvent> {
        let drained = self.completions.drain_due(now);
        self.bookkeep_drained(&drained);
        drained
    }

    /// Drains every queued completion in the documented order.
    pub fn drain_all(&mut self) -> Vec<CompletionEvent> {
        let drained = self.completions.drain_all();
        self.bookkeep_drained(&drained);
        drained
    }

    fn bookkeep_drained(&mut self, drained: &[CompletionEvent]) {
        for ev in drained {
            if let Some(state) = self.tickets.get_mut(&ev.ticket.raw()) {
                state.drained += 1;
            }
        }
        self.tickets
            .retain(|_, s| s.remaining > 0 || s.drained < s.pages);
    }
}

impl<S> Default for RefExecutor<S> {
    fn default() -> Self {
        Self::new()
    }
}
