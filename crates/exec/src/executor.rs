//! The deterministic discrete-event executor driving batches at stage
//! granularity.

use std::collections::VecDeque;

use iceclave_sim::{EventClock, KeyedEventQueue};
use iceclave_types::{CompletionEvent, FaultStats, SimTime, Ticket, TicketAttribution, TicketKind};

use crate::completion::{CompletionQueue, RetireObserver};
use crate::power::{PowerLossInjector, PowerLossPlan};

/// One due stage event handed to the [`StageMachine`].
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct StageEvent<S> {
    /// The simulated time the event fires.
    pub at: SimTime,
    /// The batch the event belongs to.
    pub ticket: Ticket,
    /// The page index within the batch (stage events that act on the
    /// whole batch use index 0).
    pub page: u32,
    /// The machine-defined stage payload.
    pub stage: S,
}

/// The stage semantics the executor drives.
///
/// The executor owns *when* and *in which order* stages run (the event
/// heap, the ticket table, the completion queue); the machine owns
/// *what* a stage does — acquiring simulator resource timelines,
/// scheduling successor stages, and retiring pages. `advance` receives
/// the executor back so it can call [`Executor::schedule`] and
/// [`Executor::push_completion`].
pub trait StageMachine {
    /// The machine-defined stage payload carried by every event.
    type Stage;

    /// Processes one due event.
    fn advance(&mut self, event: StageEvent<Self::Stage>, exec: &mut Executor<Self::Stage>);
}

#[derive(Copy, Clone, Debug)]
pub(crate) struct TicketState {
    pub(crate) kind: TicketKind,
    pub(crate) pages: u32,
    pub(crate) remaining: u32,
    pub(crate) drained: u32,
    pub(crate) issued: SimTime,
    pub(crate) finished: SimTime,
}

/// Windowed slab of in-flight ticket state, indexed directly by raw
/// ticket id.
///
/// Ticket ids are allocated monotonically and retired roughly in
/// order, so live tickets occupy a dense sliding window
/// `[base, base + slots.len())`: a lookup is one subtraction and one
/// array index instead of a tree probe. The window bounds *are* the
/// generation check — an id below `base` names a retired generation,
/// an id at or past the window end was never issued, and a `None`
/// slot inside the window is a retired ticket whose id can never be
/// reissued (monotonic allocation is the documented same-tick
/// tie-breaker, so ids are never reused).
#[derive(Debug, Default)]
pub(crate) struct TicketTable {
    /// Raw ticket id of `slots[0]`.
    base: u64,
    /// Live window; `None` marks retired tickets awaiting window
    /// advance.
    slots: VecDeque<Option<TicketState>>,
}

impl TicketTable {
    pub(crate) fn new(first_id: u64) -> Self {
        TicketTable {
            base: first_id,
            slots: VecDeque::new(),
        }
    }

    pub(crate) fn get(&self, id: u64) -> Option<&TicketState> {
        let idx = id.checked_sub(self.base)?;
        self.slots.get(idx as usize)?.as_ref()
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut TicketState> {
        let idx = id.checked_sub(self.base)?;
        self.slots.get_mut(idx as usize)?.as_mut()
    }

    /// Inserts the state of the next monotonically allocated id.
    pub(crate) fn push_next(&mut self, id: u64, state: TicketState) {
        debug_assert_eq!(id, self.base + self.slots.len() as u64);
        self.slots.push_back(Some(state));
    }

    /// Drops every ticket failing `keep`, then advances the window
    /// past the retired prefix so the slab stays bounded.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&TicketState) -> bool) {
        for slot in self.slots.iter_mut() {
            if slot.as_ref().is_some_and(|s| !keep(s)) {
                *slot = None;
            }
        }
        // Only the front advances: `push_next` relies on the window
        // end staying aligned with the id allocator, so interior and
        // trailing holes wait for the window to slide past them.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    pub(crate) fn values(&self) -> impl Iterator<Item = &TicketState> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

/// The same-tick event ordering key: *(tenant virtual time, ticket
/// virtual time, ticket id, page index)* — the two-level WFQ tag pair
/// followed by the legacy tie order.
type EventKey = (u64, u64, u64, u32);

/// The deterministic batch executor: an event heap over stage events,
/// a ticket table, and the [`CompletionQueue`].
///
/// Determinism contract: events fire in ascending time; events due at
/// the same simulated tick fire in *(virtual time, ticket virtual
/// time, ticket id, page index)* order. The virtual-time component
/// carries the fair-queueing arbiter's tenant-level start tags and the
/// ticket-virtual-time component its ticket-level start tags
/// ([`Executor::schedule_hierarchical`]) so that contended same-tick
/// stages dequeue in weighted-fair order across tenants and then
/// across one tenant's tickets; stages scheduled through
/// [`Executor::schedule_weighted`] use ticket virtual time 0, and
/// stages scheduled through [`Executor::schedule`] use virtual time 0
/// for both levels, keeping the legacy *(ticket id, page index)* tie
/// order. Two identical submission sequences therefore process every
/// stage — and drain every completion — in exactly the same order.
#[derive(Debug)]
pub struct Executor<S> {
    events: KeyedEventQueue<EventKey, (Ticket, u32, S)>,
    clock: EventClock,
    completions: CompletionQueue,
    next_ticket: u64,
    tickets: TicketTable,
    power: Option<PowerLossInjector>,
}

impl<S> Executor<S> {
    /// An idle executor with no tickets in flight.
    pub fn new() -> Self {
        Executor {
            events: KeyedEventQueue::new(),
            clock: EventClock::new(),
            completions: CompletionQueue::new(),
            next_ticket: 1,
            tickets: TicketTable::new(1),
            power: None,
        }
    }

    /// Arms a [`PowerLossPlan`] (replacing any previous injector): the
    /// run loops consult it before every event and halt dead once it
    /// trips. An armed [`PowerLossPlan::none`] only counts events and
    /// is event-for-event invisible.
    pub fn set_power_plan(&mut self, plan: PowerLossPlan) {
        self.power = Some(PowerLossInjector::new(plan));
    }

    /// True once an armed power-loss plan has tripped: no further
    /// stage event will ever run on this executor.
    pub fn power_lost(&self) -> bool {
        self.power.as_ref().is_some_and(PowerLossInjector::tripped)
    }

    /// Stage events processed since a power plan was armed (`None`
    /// when no injector is installed).
    pub fn events_processed(&self) -> Option<u64> {
        self.power.as_ref().map(PowerLossInjector::events_processed)
    }

    /// True when the armed injector says the next event must not run.
    fn power_cut(&mut self) -> bool {
        self.power
            .as_mut()
            .is_some_and(PowerLossInjector::check_cut)
    }

    /// Counts one popped event against the armed injector.
    fn power_note_event(&mut self) {
        if let Some(p) = self.power.as_mut() {
            p.note_event();
        }
    }

    /// Opens a ticket for a `pages`-page batch submitted at `now`.
    /// A zero-page ticket is born closed with `finished == now`.
    pub fn open_ticket(&mut self, kind: TicketKind, pages: u32, now: SimTime) -> Ticket {
        let ticket = Ticket::new(self.next_ticket);
        self.next_ticket += 1;
        self.tickets.push_next(
            ticket.raw(),
            TicketState {
                kind,
                pages,
                remaining: pages,
                drained: 0,
                issued: now,
                finished: now,
            },
        );
        ticket
    }

    /// Schedules a stage event for `(ticket, page)` at `at` with
    /// virtual time 0 (same-tick ties fall back to the documented
    /// *(ticket id, page index)* order).
    pub fn schedule(&mut self, at: SimTime, ticket: Ticket, page: u32, stage: S) {
        self.schedule_weighted(at, 0, ticket, page, stage);
    }

    /// Schedules a stage event for `(ticket, page)` at `at` under the
    /// fair-queueing start tag `vtime`: events due at the same
    /// simulated tick dequeue in ascending *(vtime, ticket id, page
    /// index)* order, so the arbiter's virtual-time order — not the
    /// incidental FIFO order per channel — decides who advances first.
    pub fn schedule_weighted(
        &mut self,
        at: SimTime,
        vtime: u64,
        ticket: Ticket,
        page: u32,
        stage: S,
    ) {
        self.schedule_hierarchical(at, vtime, 0, ticket, page, stage);
    }

    /// Schedules a stage event for `(ticket, page)` at `at` under the
    /// two-level fair-queueing tags `(vtime, tvtime)`: the arbiter's
    /// tenant-level start tag orders same-tick events across tenants,
    /// and the ticket-level start tag breaks the remaining ties across
    /// one tenant's tickets before falling back to *(ticket id, page
    /// index)*. Grants issued under `TicketPolicy::Fifo` carry
    /// `tvtime == 0`, which collapses this to the flat
    /// [`Executor::schedule_weighted`] order.
    pub fn schedule_hierarchical(
        &mut self,
        at: SimTime,
        vtime: u64,
        tvtime: u64,
        ticket: Ticket,
        page: u32,
        stage: S,
    ) {
        self.events.push(
            at,
            (vtime, tvtime, ticket.raw(), page),
            (ticket, page, stage),
        );
    }

    /// Retires one page into the completion queue, folding its ready
    /// time into the ticket's finish time. Returns `true` when this was
    /// the ticket's last outstanding page (the ticket is now closed).
    pub fn push_completion(&mut self, event: CompletionEvent) -> bool {
        let ticket = event.ticket.raw();
        let ready = event.ready_at();
        self.completions.push(event);
        let Some(state) = self.tickets.get_mut(ticket) else {
            debug_assert!(false, "completion for unknown ticket#{ticket}");
            return true;
        };
        debug_assert!(state.remaining > 0, "ticket#{ticket} over-completed");
        state.remaining = state.remaining.saturating_sub(1);
        state.finished = state.finished.max(ready);
        state.remaining == 0
    }

    /// Installs a [`RetireObserver`] on the completion queue, replacing
    /// (and returning) any previous one. Every subsequent retirement
    /// flows through `observer.on_retire`.
    pub fn install_observer(
        &mut self,
        observer: Box<dyn RetireObserver>,
    ) -> Option<Box<dyn RetireObserver>> {
        self.completions.set_observer(observer)
    }

    /// Removes and returns the retirement observer, disabling capture.
    pub fn take_observer(&mut self) -> Option<Box<dyn RetireObserver>> {
        self.completions.take_observer()
    }

    /// True when a retirement observer is installed.
    pub fn has_observer(&self) -> bool {
        self.completions.has_observer()
    }

    /// Tells the observer (if any) that `ticket` closed, with the
    /// metadata-traffic and fault deltas its driver charged to it. The
    /// close time is the ticket's recorded finish time; the call is a
    /// no-op for tickets that are still open or already retired.
    pub fn notify_close(
        &mut self,
        ticket: Ticket,
        attrib: &TicketAttribution,
        faults: &FaultStats,
    ) {
        if !self.completions.has_observer() {
            return;
        }
        let Some(finished) = self.finished_at(ticket) else {
            return;
        };
        self.completions
            .notify_close(ticket, finished, attrib, faults);
    }

    /// Folds a batch-level completion time (e.g. the write path's
    /// secure-world exit) into the ticket's finish time.
    pub fn note_finished(&mut self, ticket: Ticket, at: SimTime) {
        if let Some(state) = self.tickets.get_mut(ticket.raw()) {
            state.finished = state.finished.max(at);
        }
    }

    /// True when every page of `ticket` has retired (unknown and
    /// already-drained tickets count as closed).
    pub fn is_closed(&self, ticket: Ticket) -> bool {
        self.tickets
            .get(ticket.raw())
            .is_none_or(|s| s.remaining == 0)
    }

    /// When `ticket` finished, if it is closed and not yet drained.
    pub fn finished_at(&self, ticket: Ticket) -> Option<SimTime> {
        self.tickets
            .get(ticket.raw())
            .filter(|s| s.remaining == 0)
            .map(|s| s.finished)
    }

    /// When `ticket` was submitted, if it is not yet drained.
    pub fn issued_at(&self, ticket: Ticket) -> Option<SimTime> {
        self.tickets.get(ticket.raw()).map(|s| s.issued)
    }

    /// The direction of `ticket`, if it is not yet drained.
    pub fn kind_of(&self, ticket: Ticket) -> Option<TicketKind> {
        self.tickets.get(ticket.raw()).map(|s| s.kind)
    }

    /// Number of pages `ticket` was opened with, if it is not yet
    /// drained.
    pub fn pages_of(&self, ticket: Ticket) -> Option<u32> {
        self.tickets.get(ticket.raw()).map(|s| s.pages)
    }

    /// Number of `ticket`'s completions already drained through
    /// [`Executor::poll`]/[`Executor::drain_all`], if the ticket is not
    /// yet retired.
    pub fn drained_of(&self, ticket: Ticket) -> Option<u32> {
        self.tickets.get(ticket.raw()).map(|s| s.drained)
    }

    /// Number of tickets with pages still in flight.
    pub fn open_tickets(&self) -> usize {
        self.tickets.values().filter(|s| s.remaining > 0).count()
    }

    /// Number of stage events waiting on the heap.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The executor's event clock (high-water mark of processed
    /// simulated time).
    pub fn clock(&self) -> SimTime {
        self.clock.now()
    }

    /// Processes every stage event due at or before `now`. Stops dead
    /// (leaving pending events on the heap) if an armed power plan
    /// trips.
    pub fn run_until<M>(&mut self, machine: &mut M, now: SimTime)
    where
        M: StageMachine<Stage = S>,
    {
        while !self.power_cut() {
            let Some((at, _, (ticket, page, stage))) = self.events.pop_due(now) else {
                break;
            };
            self.power_note_event();
            self.clock.advance_to(at);
            machine.advance(
                StageEvent {
                    at,
                    ticket,
                    page,
                    stage,
                },
                self,
            );
        }
    }

    /// Processes stage events (in global time order) until `ticket`
    /// closes — the drain half of the blocking wrappers. Events of
    /// other in-flight tickets that are due earlier run on the way.
    /// Stops dead (the ticket never closes) if an armed power plan
    /// trips.
    pub fn run_ticket<M>(&mut self, machine: &mut M, ticket: Ticket)
    where
        M: StageMachine<Stage = S>,
    {
        while !self.is_closed(ticket) {
            if self.power_cut() {
                break;
            }
            let Some((at, _, (t, page, stage))) = self.events.pop() else {
                debug_assert!(false, "{ticket} can never close: event heap ran dry");
                break;
            };
            self.power_note_event();
            self.clock.advance_to(at);
            machine.advance(
                StageEvent {
                    at,
                    ticket: t,
                    page,
                    stage,
                },
                self,
            );
        }
    }

    /// Processes every pending stage event regardless of time. Stops
    /// dead if an armed power plan trips.
    pub fn run_to_idle<M>(&mut self, machine: &mut M)
    where
        M: StageMachine<Stage = S>,
    {
        while !self.power_cut() {
            let Some((at, _, (ticket, page, stage))) = self.events.pop() else {
                break;
            };
            self.power_note_event();
            self.clock.advance_to(at);
            machine.advance(
                StageEvent {
                    at,
                    ticket,
                    page,
                    stage,
                },
                self,
            );
        }
    }

    /// Drains every completion ready at or before `now` in the
    /// documented drain order (see the [`crate::completion`] module
    /// docs), retiring fully drained tickets. Does **not** advance the
    /// event loop — callers run [`Executor::run_until`] first.
    pub fn poll(&mut self, now: SimTime) -> Vec<CompletionEvent> {
        let drained = self.completions.drain_due(now);
        self.bookkeep_drained(&drained);
        drained
    }

    /// Drains every queued completion regardless of ready time (same
    /// order contract as [`Executor::poll`]), retiring fully drained
    /// tickets.
    pub fn drain_all(&mut self) -> Vec<CompletionEvent> {
        let drained = self.completions.drain_all();
        self.bookkeep_drained(&drained);
        drained
    }

    /// Removes and returns every queued completion of `ticket`, sorted
    /// by *(ready, page index)*, retiring the ticket if it is closed.
    pub fn take_ticket_completions(&mut self, ticket: Ticket) -> Vec<CompletionEvent> {
        let taken = self.completions.take_ticket(ticket);
        if let Some(state) = self.tickets.get_mut(ticket.raw()) {
            state.drained += taken.len() as u32;
        }
        self.retire_drained();
        taken
    }

    /// Counts `drained` against their tickets and forgets closed
    /// tickets whose completions have all been drained (bookkeeping
    /// stays bounded across long runs).
    fn bookkeep_drained(&mut self, drained: &[CompletionEvent]) {
        for ev in drained {
            if let Some(state) = self.tickets.get_mut(ev.ticket.raw()) {
                state.drained += 1;
            }
        }
        self.retire_drained();
    }

    /// Forgets closed tickets whose completions have all been drained
    /// (bookkeeping stays bounded across long runs).
    fn retire_drained(&mut self) {
        self.tickets
            .retain(|s| s.remaining > 0 || s.drained < s.pages);
    }
}

impl<S> Default for Executor<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iceclave_types::{LatencyBreakdown, Lpn, PageStatus, SimDuration, TeeId};

    /// A toy machine: every page takes `hops` stage events, each 10 ns
    /// apart, then retires.
    struct Toy {
        hops: u32,
        trace: Vec<(u64, u32, u32)>,
    }

    impl StageMachine for Toy {
        type Stage = u32;

        fn advance(&mut self, ev: StageEvent<u32>, exec: &mut Executor<u32>) {
            self.trace.push((ev.ticket.raw(), ev.page, ev.stage));
            if ev.stage + 1 < self.hops {
                exec.schedule(
                    ev.at + SimDuration::from_nanos(10),
                    ev.ticket,
                    ev.page,
                    ev.stage + 1,
                );
            } else {
                let mut breakdown = LatencyBreakdown::at_submission(SimTime::ZERO);
                breakdown.ready = ev.at;
                exec.push_completion(CompletionEvent {
                    ticket: ev.ticket,
                    kind: TicketKind::Read,
                    tee: TeeId::new(1).unwrap(),
                    index: ev.page,
                    lpn: Lpn::new(u64::from(ev.page)),
                    status: PageStatus::Done,
                    breakdown,
                    data: None,
                });
            }
        }
    }

    fn at(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn submit(exec: &mut Executor<u32>, pages: u32, now: SimTime) -> Ticket {
        let ticket = exec.open_ticket(TicketKind::Read, pages, now);
        for page in 0..pages {
            exec.schedule(now, ticket, page, 0);
        }
        ticket
    }

    #[test]
    fn same_tick_stages_run_in_ticket_then_page_order() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 1,
            trace: Vec::new(),
        };
        // Submit in reverse page order within one tick.
        let t1 = exec.open_ticket(TicketKind::Read, 2, at(0));
        let t2 = exec.open_ticket(TicketKind::Read, 1, at(0));
        exec.schedule(at(0), t2, 0, 0);
        exec.schedule(at(0), t1, 1, 0);
        exec.schedule(at(0), t1, 0, 0);
        exec.run_to_idle(&mut toy);
        assert_eq!(
            toy.trace,
            vec![(t1.raw(), 0, 0), (t1.raw(), 1, 0), (t2.raw(), 0, 0)]
        );
    }

    #[test]
    fn same_tick_weighted_stages_run_in_vtime_order() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 1,
            trace: Vec::new(),
        };
        // Ticket 2 carries a smaller virtual-time tag than ticket 1:
        // the arbiter's order overrides the ticket-id tie-break.
        let t1 = exec.open_ticket(TicketKind::Read, 1, at(0));
        let t2 = exec.open_ticket(TicketKind::Read, 1, at(0));
        exec.schedule_weighted(at(0), 20, t1, 0, 0);
        exec.schedule_weighted(at(0), 10, t2, 0, 0);
        exec.run_to_idle(&mut toy);
        assert_eq!(toy.trace, vec![(t2.raw(), 0, 0), (t1.raw(), 0, 0)]);
    }

    #[test]
    fn same_tick_hierarchical_stages_run_in_tvtime_order() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 1,
            trace: Vec::new(),
        };
        // Equal tenant-level tags: the ticket-level tag decides, and
        // only then the ticket id.
        let t1 = exec.open_ticket(TicketKind::Read, 1, at(0));
        let t2 = exec.open_ticket(TicketKind::Read, 1, at(0));
        let t3 = exec.open_ticket(TicketKind::Read, 1, at(0));
        exec.schedule_hierarchical(at(0), 5, 30, t1, 0, 0);
        exec.schedule_hierarchical(at(0), 5, 10, t3, 0, 0);
        exec.schedule_hierarchical(at(0), 5, 10, t2, 0, 0);
        exec.run_to_idle(&mut toy);
        assert_eq!(
            toy.trace,
            vec![(t2.raw(), 0, 0), (t3.raw(), 0, 0), (t1.raw(), 0, 0)]
        );
    }

    #[test]
    fn run_ticket_closes_the_target_and_runs_earlier_events() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 3,
            trace: Vec::new(),
        };
        let t1 = submit(&mut exec, 2, at(0));
        let t2 = submit(&mut exec, 1, at(0));
        exec.run_ticket(&mut toy, t2);
        assert!(exec.is_closed(t2));
        // t1's events at the same ticks ran on the way (lower ticket).
        assert!(exec.is_closed(t1));
        assert_eq!(exec.finished_at(t2), Some(at(20)));
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 3,
            trace: Vec::new(),
        };
        let t = submit(&mut exec, 1, at(0));
        exec.run_until(&mut toy, at(10));
        assert!(!exec.is_closed(t));
        assert_eq!(exec.pending_events(), 1);
        assert_eq!(exec.clock(), at(10));
        exec.run_until(&mut toy, at(20));
        assert!(exec.is_closed(t));
        assert_eq!(exec.poll(at(20)).len(), 1);
    }

    #[test]
    fn zero_page_ticket_is_born_closed() {
        let mut exec: Executor<u32> = Executor::new();
        let t = exec.open_ticket(TicketKind::Write, 0, at(5));
        assert!(exec.is_closed(t));
        assert_eq!(exec.finished_at(t), Some(at(5)));
        assert_eq!(exec.issued_at(t), Some(at(5)));
    }

    #[test]
    fn drained_tickets_are_retired() {
        let mut exec = Executor::new();
        let mut toy = Toy {
            hops: 1,
            trace: Vec::new(),
        };
        let t = submit(&mut exec, 2, at(0));
        exec.run_to_idle(&mut toy);
        assert_eq!(exec.open_tickets(), 0);
        let events = exec.take_ticket_completions(t);
        assert_eq!(events.len(), 2);
        assert_eq!(exec.finished_at(t), None, "ticket forgotten after drain");
    }

    #[test]
    fn identical_runs_trace_identically() {
        let run = || {
            let mut exec = Executor::new();
            let mut toy = Toy {
                hops: 2,
                trace: Vec::new(),
            };
            submit(&mut exec, 3, at(0));
            submit(&mut exec, 2, at(5));
            exec.run_to_idle(&mut toy);
            let drained: Vec<(u64, u32)> = exec
                .poll(at(1_000))
                .iter()
                .map(|e| (e.ticket.raw(), e.index))
                .collect();
            (toy.trace, drained)
        };
        assert_eq!(run(), run());
    }
}
