//! Diagnostic probe (ignored by default): prints per-workload
//! Host/ISC/IceClave comparisons with overhead and traffic breakdowns.
//!
//! Run with:
//! `cargo test --release -p iceclave-experiments --test debug_probe -- --ignored --nocapture`

use iceclave_experiments::{run, Mode, Overrides};
use iceclave_types::ByteSize;
use iceclave_workloads::{WorkloadConfig, WorkloadKind};

#[test]
#[ignore = "diagnostic: run manually with --ignored --nocapture"]
fn probe() {
    let cfg = WorkloadConfig {
        functional_bytes: ByteSize::from_mib(8),
        ..WorkloadConfig::test()
    };
    for kind in WorkloadKind::ALL {
        let host = run(Mode::Host, kind, &cfg, &Overrides::none());
        let isc = run(Mode::Isc, kind, &cfg, &Overrides::none());
        let ice = run(Mode::IceClave, kind, &cfg, &Overrides::none());
        println!(
            "{:12} host={:>10} isc={:>10} ice={:>10} | stall={:>10} mem={:>10} sec={:>10} | vs_host={:.2} vs_isc=+{:.1}% enc={:.3} ver={:.3}",
            kind.label(),
            host.total.to_string(),
            isc.total.to_string(),
            ice.total.to_string(),
            ice.load_stall.to_string(),
            ice.mem_time.to_string(),
            ice.sec_overhead.to_string(),
            ice.speedup_over(&host),
            (ice.total / isc.total - 1.0) * 100.0,
            ice.enc_traffic,
            ice.ver_traffic,
        );
    }
}
