//! Multi-tenant execution (§6.8, Figures 17 and 18).
//!
//! Several IceClave instances share one physical SSD: flash channels
//! and dies, the DRAM and its MEE, the embedded cores and the cached
//! mapping table. Each tenant gets its own TEE (distinct ID bits) and
//! its own LPN range. The host-side loop always advances the tenant
//! whose virtual clock is earliest, and **inside the device** the
//! weighted-fair-queueing channel arbiter
//! ([`iceclave_ftl::wfq`](iceclave_ftl::WfqArbiter), the default
//! [`SchedPolicy::Wfq`](iceclave_core::SchedPolicy)) splits every
//! contended flash channel across the tenants' in-flight tickets in
//! page-sized quanta, so one tenant's deep batches cannot collapse
//! another's bandwidth share. [`run_colocated_weighted`] exposes the
//! per-tenant weights.

use iceclave_core::IceClave;
use iceclave_sim::SimRng;
use iceclave_types::{Lpn, SimDuration, SimTime};
use iceclave_workloads::{Batch, WorkloadConfig, WorkloadKind, WorkloadOutput};

use crate::capacity::CapacityModel;
use crate::modes::{Mode, Overrides};
use crate::run::SsdSession;

/// Per-tenant outcome of a colocated run.
#[derive(Clone, Debug)]
pub struct TenantResult {
    /// The tenant's workload.
    pub kind: WorkloadKind,
    /// The tenant's runtime under colocation.
    pub total: SimDuration,
    /// The computed answer (must match the solo run).
    pub output: WorkloadOutput,
}

/// Runs `kinds` concurrently on one shared IceClave SSD, every tenant
/// at fair-queueing weight 1.
///
/// # Panics
///
/// Panics if the platform cannot host the tenants (more than 15, or
/// datasets exceeding the device).
pub fn run_colocated(kinds: &[WorkloadKind], wl_config: &WorkloadConfig) -> Vec<TenantResult> {
    let weighted: Vec<(WorkloadKind, u32)> = kinds.iter().map(|&k| (k, 1)).collect();
    run_colocated_weighted(&weighted, wl_config)
}

/// Runs colocated tenants with explicit fair-queueing weights: while
/// channels are contended, a weight-2 tenant is granted twice the
/// channel time of a weight-1 tenant (the WFQ arbiter's per-channel
/// page quanta).
///
/// # Panics
///
/// Panics if the platform cannot host the tenants (more than 15, or
/// datasets exceeding the device) or a weight is zero.
pub fn run_colocated_weighted(
    tenants_spec: &[(WorkloadKind, u32)],
    wl_config: &WorkloadConfig,
) -> Vec<TenantResult> {
    let kinds: Vec<WorkloadKind> = tenants_spec.iter().map(|&(k, _)| k).collect();
    let kinds = &kinds[..];
    assert!(
        (1..=15).contains(&kinds.len()),
        "tenant count must fit the TEE id space"
    );
    let config = Mode::IceClave.ssd_config(&Overrides::none());
    let cap = CapacityModel {
        modeled_dataset: wl_config.modeled_bytes,
        dram: config.platform.dram.capacity,
        usable_fraction: 0.75,
        scale_factor: wl_config.scale_factor(),
    };
    let mut ice = IceClave::new(config);

    // Build workloads, collect batches, stage datasets back to back.
    struct Tenant {
        kind: WorkloadKind,
        batches: Vec<Batch>,
        next_batch: usize,
        session: Option<SsdSession>,
        tee: Option<iceclave_types::TeeId>,
        output: WorkloadOutput,
        base_lpn: u64,
        started: SimTime,
    }
    let mut tenants: Vec<Tenant> = Vec::new();
    let mut base = 0u64;
    let mut t = SimTime::ZERO;
    for &kind in kinds {
        let workload = kind.build(wl_config);
        let mut batches = Vec::new();
        let output = workload.run(&mut |b| batches.push(b));
        let pages = workload.dataset_pages();
        t = ice
            .populate(Lpn::new(base), pages, t)
            .expect("device holds all tenants");
        tenants.push(Tenant {
            kind,
            batches,
            next_batch: 0,
            session: None,
            tee: None,
            output,
            base_lpn: base,
            started: SimTime::ZERO,
        });
        base += pages;
    }
    let run_start = t;

    // Create all TEEs, then sessions. Each tenant's runtime is measured
    // from before its own offload so lifecycle costs are included, as
    // in the solo runs it is compared against.
    for (tenant, &(_, weight)) in tenants.iter_mut().zip(tenants_spec) {
        let workload = tenant.kind.build(wl_config);
        let pages = workload.dataset_pages();
        let lpns: Vec<Lpn> = (0..pages).map(|i| Lpn::new(tenant.base_lpn + i)).collect();
        let (tee, after) = ice
            .offload_code(256 << 10, &lpns, run_start)
            .expect("id space fits tenants");
        ice.set_tee_weight(tee, weight).expect("tee is running");
        let rng = SimRng::new(wl_config.seed).derive(&format!(
            "tenant/{}/{}",
            tenant.base_lpn,
            tenant.kind.label()
        ));
        tenant.session = Some(SsdSession::new(
            &ice,
            tee,
            tenant.base_lpn,
            &*workload,
            wl_config.scale_factor(),
            after,
            rng,
        ));
        tenant.tee = Some(tee);
        tenant.started = run_start;
    }

    // Fair-progress scheduler: always step the tenant whose clock is
    // earliest.
    loop {
        let next = tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.next_batch < t.batches.len())
            .min_by_key(|(_, t)| t.session.as_ref().expect("session built").clock)
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let tenant = &mut tenants[i];
        let batch = &tenant.batches[tenant.next_batch];
        tenant.next_batch += 1;
        tenant
            .session
            .as_mut()
            .expect("session built")
            .step(&mut ice, batch, &cap)
            .expect("tenant step");
    }

    tenants
        .into_iter()
        .map(|t| {
            let session = t.session.expect("session built");
            let tee = t.tee.expect("tee created");
            let done = ice
                .get_result(tee, 64 << 10, session.drained_clock())
                .and_then(|after| ice.terminate_tee(tee, after))
                .expect("teardown");
            TenantResult {
                kind: t.kind,
                total: done.saturating_since(t.started),
                output: t.output,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::test()
    }

    #[test]
    fn colocation_slows_tenants_down_but_preserves_answers() {
        let pair = [WorkloadKind::TpcC, WorkloadKind::Aggregate];
        let colocated = run_colocated(&pair, &cfg());
        assert_eq!(colocated.len(), 2);
        for tenant in &colocated {
            let solo = run(Mode::IceClave, tenant.kind, &cfg(), &Overrides::none());
            assert_eq!(solo.output, tenant.output, "{}", tenant.kind);
            assert!(
                tenant.total.as_ps() as f64 >= 0.95 * solo.total.as_ps() as f64,
                "{}: colocated {} vs solo {}",
                tenant.kind,
                tenant.total,
                solo.total
            );
        }
    }

    #[test]
    fn four_tenants_interfere_more_than_two() {
        let two = run_colocated(&[WorkloadKind::TpcC, WorkloadKind::TpchQ1], &cfg());
        let four = run_colocated(
            &[
                WorkloadKind::TpcC,
                WorkloadKind::TpchQ1,
                WorkloadKind::TpchQ3,
                WorkloadKind::TpcB,
            ],
            &cfg(),
        );
        let q1_two = two.iter().find(|t| t.kind == WorkloadKind::TpchQ1).unwrap();
        let q1_four = four
            .iter()
            .find(|t| t.kind == WorkloadKind::TpchQ1)
            .unwrap();
        assert!(q1_four.total >= q1_two.total);
    }

    /// Weights change scheduling, never answers: a weighted colocated
    /// run still produces every tenant's solo output.
    #[test]
    fn weighted_colocation_preserves_answers() {
        let spec = [(WorkloadKind::TpcC, 3), (WorkloadKind::Aggregate, 1)];
        let colocated = run_colocated_weighted(&spec, &cfg());
        assert_eq!(colocated.len(), 2);
        for tenant in &colocated {
            let solo = run(Mode::IceClave, tenant.kind, &cfg(), &Overrides::none());
            assert_eq!(solo.output, tenant.output, "{}", tenant.kind);
        }
    }

    #[test]
    #[should_panic(expected = "tenant count")]
    fn too_many_tenants_panic() {
        let kinds = [WorkloadKind::Filter; 16];
        let _ = run_colocated(&kinds, &cfg());
    }
}
