//! Plain-text table rendering for the reproduction reports.

use std::fmt;

/// A fixed-width text table with a title, printable anywhere.
///
/// # Examples
///
/// ```
/// use iceclave_experiments::report::TextTable;
///
/// let mut t = TextTable::new("Demo", &["workload", "value"]);
/// t.row(&["TPC-H Q1", "2.31x"]);
/// let s = t.to_string();
/// assert!(s.contains("TPC-H Q1"));
/// assert!(s.contains("Demo"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as CSV (RFC-4180-style quoting) for plotting
    /// pipelines.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            let mut cells: Vec<String> = row.iter().map(|c| field(c)).collect();
            cells.resize(self.header.len(), String::new());
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, width) in w.iter_mut().enumerate() {
                *width = (*width).max(row.get(c).map_or(0, String::len));
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", h, width = w[i]));
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(f, "{}", "-".repeat(line.trim_end().len()))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                line.push_str(&format!("{:<width$}  ", cell, width = width));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a ratio as `1.23x`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage, `12.3%`.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a small ratio in scientific notation like Table 1.
pub fn fmt_sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("T", &["a", "long-header"]);
        t.row(&["xxxxxxxx", "1"]);
        t.row(&["y", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        // lines[1] is the header, lines[2] the separator; data rows
        // align the second column.
        let c1 = lines[3].find('1').unwrap();
        let c2 = lines[4].find('2').unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(2.308), "2.31x");
        assert_eq!(fmt_pct(0.076), "7.60%");
        assert_eq!(fmt_sci(6.4e-6), "6.40e-6");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("T", &["a", "b", "c"]);
        t.row(&["only-one"]);
        let s = t.to_string();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn csv_escapes_and_pads() {
        let mut t = TextTable::new("T", &["name", "value"]);
        t.row(&["has,comma", "1"]);
        t.row(&["has\"quote", "2"]);
        t.row(&["only-one"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "\"has,comma\",1");
        assert_eq!(lines[2], "\"has\"\"quote\",2");
        assert_eq!(lines[3], "only-one,");
    }
}
