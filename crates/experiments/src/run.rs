//! The workload executor: replays instrumented batches against an
//! execution mode and measures the paper's metrics.
//!
//! The pipeline model is classic double buffering: the flash (or PCIe)
//! load of batch *i* is issued when the compute of batch *i-1* starts,
//! and the compute of batch *i* starts at
//! `max(compute_end(i-1), load_done(i))` — load stall is therefore
//! exactly the time the cores sat waiting on I/O, the quantity the
//! Figure 11 breakdown plots.

use iceclave_core::{IceClave, IceClaveError};
use iceclave_cpu::{CoreModel, SgxModel};
use iceclave_dram::{Dram, DramConfig};
use iceclave_ftl::Requestor;
use iceclave_isc::SsdPlatform;
use iceclave_mee::{CounterMode, MeeConfig, MeeEngine, PageClass};
use iceclave_sim::{Resource, ResourcePool, SimRng};
use iceclave_types::{
    ByteSize, CacheLine, FaultStats, Lpn, RecoveryStats, SimDuration, SimTime, TeeId,
    TicketAttribution, LINES_PER_PAGE, PAGE_SIZE,
};
use iceclave_workloads::{Batch, Workload, WorkloadConfig, WorkloadKind, WorkloadOutput};

use crate::capacity::CapacityModel;
use crate::modes::{Mode, Overrides, HOST_DRAM};

/// Everything measured from one workload execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The workload that ran.
    pub workload: WorkloadKind,
    /// The execution mode.
    pub mode: Mode,
    /// End-to-end runtime (populate/setup excluded).
    pub total: SimDuration,
    /// Time compute sat waiting for flash/PCIe (the "load time" bars).
    pub load_stall: SimDuration,
    /// Pure operator compute time.
    pub ops_time: SimDuration,
    /// DRAM access time (including MEE additions).
    pub mem_time: SimDuration,
    /// Latency added by memory encryption/verification (part of
    /// `mem_time`).
    pub sec_overhead: SimDuration,
    /// Cached-mapping-table miss rate (§6.3 reports 0.17%).
    pub cmt_miss_rate: f64,
    /// Counter-cache (L1) hit rate, all block kinds.
    pub counter_cache_hit_rate: f64,
    /// L1 hit rate on encryption-counter blocks only.
    pub counter_hit_rate: f64,
    /// L1 hit rate on data-MAC blocks only (zero when MACs are
    /// co-located with the data).
    pub mac_hit_rate: f64,
    /// L1 hit rate on integrity-tree nodes only.
    pub tree_hit_rate: f64,
    /// Second-level (DRAM) counter-store hit rate; zero when disabled.
    pub l2_hit_rate: f64,
    /// Mean latency the MEE added to each program read.
    pub mean_read_overhead: SimDuration,
    /// Table 6: extra encryption traffic / regular traffic.
    pub enc_traffic: f64,
    /// Table 6: extra verification traffic / regular traffic.
    pub ver_traffic: f64,
    /// World switches taken.
    pub world_switches: u64,
    /// Fault-and-recovery accounting (all zero when no fault plan was
    /// installed; see `iceclave_flash::faults`).
    pub faults: FaultStats,
    /// Integrity-metadata traffic attributed to executor tickets (the
    /// sum of per-ticket MEE deltas; zero for host-mode runs and for
    /// workloads that never use the batched async path).
    pub ticket_meta: TicketAttribution,
    /// Energy breakdown of the run (derived from activity counters).
    pub energy: crate::energy::EnergyBreakdown,
    /// Crash-recovery accounting, when the run rebooted the device
    /// through `IceClave::recover` (`None` for the standard
    /// experiments, which never lose power; see
    /// `tests/crash_recovery.rs` and the `crash_recovery` bench).
    pub recovery: Option<RecoveryStats>,
    /// The workload's computed answer (identical across modes).
    pub output: WorkloadOutput,
}

impl RunResult {
    /// Speedup of `self` over `baseline` (>1 means `self` is faster).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.total / self.total
    }

    /// Runtime normalized to `baseline` (the paper's "normalized
    /// performance", lower is better for runtime plots).
    pub fn normalized_runtime(&self, baseline: &RunResult) -> f64 {
        self.total / baseline.total
    }
}

/// Runs `kind` under `mode` and returns the measurements.
///
/// # Panics
///
/// Panics if the simulated runtime misbehaves (offload failures etc.);
/// experiment configurations are trusted inputs.
pub fn run(
    mode: Mode,
    kind: WorkloadKind,
    wl_config: &WorkloadConfig,
    overrides: &Overrides,
) -> RunResult {
    let workload = kind.build(wl_config);
    let mut batches = Vec::new();
    let output = workload.run(&mut |b| batches.push(b));
    if mode.is_host() {
        run_host(
            mode, kind, wl_config, overrides, &*workload, &batches, output,
        )
    } else {
        run_ssd(
            mode, kind, wl_config, overrides, &*workload, &batches, output,
        )
        .expect("ssd run must not fail on trusted configuration")
    }
}

// ------------------------------------------------------------- SSD ----

/// Per-tenant execution state on the SSD (shared by the single-tenant
/// runner and the Figures 17/18 multi-tenant scheduler).
#[derive(Debug)]
pub(crate) struct SsdSession {
    tee: TeeId,
    base_lpn: u64,
    dataset_pages: u64,
    staged: ByteSize,
    input_line_span: u64,
    working_line_base: u64,
    working_line_span: u64,
    /// Staged-table probes are radix-partitioned (standard for joins
    /// whose build side exceeds the cache): each partition is
    /// cache-sized, so probes sweep a small window at a time.
    staged_line_span: u64,
    input_cursor: u64,
    rng: SimRng,
    /// Virtual time of this tenant's compute stream.
    pub(crate) clock: SimTime,
    prev_compute_start: SimTime,
    /// Anchor for streaming loads: scans prefetch ahead of compute, so
    /// their flash requests are issued as early as the device accepts
    /// them (the resource timelines provide the back-pressure).
    stream_anchor: SimTime,
    /// Completion times of recently issued load batches: streaming
    /// prefetch is bounded to four batches in flight, which saturates
    /// the channels for one tenant without camping the whole device
    /// queue indefinitely (multi-tenant fairness, Figures 17/18).
    inflight_loads: [SimTime; 4],
    /// Durability horizon of the latest transactional commit batch:
    /// updated pages persist through `submit_write_batch` (group
    /// commit, overlapped with the next batch's compute via the shared
    /// flash timelines); the run is only finished once it has drained.
    pending_commit: SimTime,
    load_stall: SimDuration,
    mem_time: SimDuration,
    ops_time: SimDuration,
}

/// Memory-level parallelism of the executing core: accesses are issued
/// in groups of this size, overlapping across DRAM banks.
const MLP: usize = 4;

impl SsdSession {
    pub(crate) fn new(
        ice: &IceClave,
        tee: TeeId,
        base_lpn: u64,
        workload: &dyn Workload,
        scale_factor: f64,
        start: SimTime,
        rng: SimRng,
    ) -> Self {
        let region_pages = ice.config().tee_region.as_bytes() / PAGE_SIZE;
        let input_pages = region_pages / 2;
        // Random working accesses spread over the *modeled* structure
        // size (clamped to the region half): a hash table that would be
        // hundreds of MiB at the paper's 32 GiB scale must sweep enough
        // DRAM to thrash the counter cache the way the real one would.
        let working_half_lines = (region_pages - input_pages) * LINES_PER_PAGE;
        // working_set() already reports the modeled footprint.
        let modeled_lines = workload.working_set().cache_lines();
        // One radix partition of the staged table: 1 MiB windows.
        let staged_modeled = (workload.staged_bytes().cache_lines() as f64 * scale_factor) as u64;
        let staged_span = staged_modeled.clamp(64, 16_384);
        SsdSession {
            tee,
            base_lpn,
            dataset_pages: workload.dataset_pages(),
            staged: workload.staged_bytes(),
            input_line_span: input_pages * LINES_PER_PAGE,
            working_line_base: input_pages * LINES_PER_PAGE,
            working_line_span: modeled_lines.clamp(64, working_half_lines),
            staged_line_span: staged_span,
            input_cursor: 0,
            rng,
            clock: start,
            prev_compute_start: start,
            stream_anchor: start,
            inflight_loads: [start; 4],
            pending_commit: start,
            load_stall: SimDuration::ZERO,
            mem_time: SimDuration::ZERO,
            ops_time: SimDuration::ZERO,
        }
    }

    fn next_input_offset(&mut self) -> u64 {
        let off = self.input_cursor % self.input_line_span;
        self.input_cursor += 1;
        off
    }

    fn random_working(&mut self) -> u64 {
        self.working_line_base + self.rng.gen_below(self.working_line_span)
    }

    fn random_staged(&mut self) -> u64 {
        self.working_line_base + self.rng.gen_below(self.staged_line_span)
    }

    /// Executes one batch through the runtime, advancing this tenant's
    /// clock.
    pub(crate) fn step(
        &mut self,
        ice: &mut IceClave,
        batch: &Batch,
        cap: &CapacityModel,
    ) -> Result<(), IceClaveError> {
        // Streaming scans prefetch: requests are issued at the stream
        // anchor and queue on the flash resources, keeping every
        // channel bus saturated (the device's internal bandwidth).
        // Data-dependent random access (transactions) cannot prefetch
        // past the previous batch's compute.
        let issue = if batch.random_access {
            self.prev_compute_start
        } else {
            // Bounded lookahead: this batch's requests go out once the
            // batch four positions back has fully arrived.
            self.stream_anchor.max(self.inflight_loads[0])
        };
        let mut load_done = issue;
        let page_hit = cap.page_cache_hit();
        // Streaming input is filled read-only (major counters);
        // transactional pages are about to be updated in place, so they
        // are filled writable (§4.4's dynamic permissions).
        let fill_class = if batch.random_access {
            PageClass::Writable
        } else {
            PageClass::ReadOnly
        };
        // The whole step's page set is submitted as ONE batch, so the
        // FTL's channel scheduler can stripe it across every bus —
        // this is the channel parallelism Figures 12/13 measure.
        let mut lpns: Vec<Lpn> = Vec::new();
        for run in &batch.flash_reads {
            for lpn in run.iter() {
                if batch.random_access && self.rng.gen_bool(page_hit) {
                    continue; // already resident in SSD DRAM
                }
                lpns.push(Lpn::new(self.base_lpn + lpn.raw()));
            }
        }
        // Staged-table lookups that miss the modeled DRAM capacity are
        // re-fetched from flash at page granularity, coalesced (~128
        // row misses per 4 KiB page) and prefetched with the batch's
        // loads — partitioned probing makes the page set known ahead.
        let staged_hit = cap.staged_hit(self.staged);
        let mut staged_lpns: Vec<Lpn> = Vec::new();
        if batch.staged_reads > 0 && staged_hit < 1.0 {
            let mut misses = 0u64;
            for _ in 0..batch.staged_reads {
                if !self.rng.gen_bool(staged_hit) {
                    misses += 1;
                }
            }
            for _ in 0..misses.div_ceil(128) {
                let lpn = self.base_lpn + self.rng.gen_below(self.dataset_pages);
                staged_lpns.push(Lpn::new(lpn));
            }
        }
        // Both load batches are submitted to the event-driven executor
        // as concurrent tickets before either is drained: the staged
        // re-fetches interleave with the main scan at stage granularity
        // (channel gaps, decrypt lanes) instead of queueing wholesale
        // behind it. Staged re-fetches stream in read-only (they back
        // lookups, not in-place updates).
        let main_ticket = if lpns.is_empty() {
            None
        } else {
            Some(ice.submit_batch_async_as(self.tee, &lpns, fill_class, issue)?)
        };
        let staged_ticket = if staged_lpns.is_empty() {
            None
        } else {
            Some(ice.submit_batch_async(self.tee, &staged_lpns, issue)?)
        };
        if let Some(ticket) = main_ticket {
            load_done = load_done.max(ice.wait_batch(ticket)?.finished);
        }
        if let Some(ticket) = staged_ticket {
            load_done = load_done.max(ice.wait_batch(ticket)?.finished);
        }
        self.inflight_loads.rotate_left(1);
        self.inflight_loads[3] = load_done;
        let compute_start = self.clock.max(load_done);
        self.load_stall += compute_start.saturating_since(self.clock);

        let mut t = compute_start;
        let mut group = [0u64; MLP];
        let mut pending = 0usize;
        for _ in 0..batch.input_lines {
            group[pending] = self.next_input_offset();
            pending += 1;
            if pending == MLP {
                t = mem_read_group(ice, self.tee, &group[..pending], t)?;
                pending = 0;
            }
        }
        if pending > 0 {
            t = mem_read_group(ice, self.tee, &group[..pending], t)?;
            pending = 0;
        }
        // Staged-table lookups: partitioned probing within cache-sized
        // windows (the refetch pages were prefetched with the loads).
        for _ in 0..batch.staged_reads {
            group[pending] = self.random_staged();
            pending += 1;
            if pending == MLP {
                t = mem_read_group(ice, self.tee, &group[..pending], t)?;
                pending = 0;
            }
        }
        if pending > 0 {
            t = mem_read_group(ice, self.tee, &group[..pending], t)?;
            pending = 0;
        }
        for _ in 0..batch.working_reads {
            group[pending] = self.random_working();
            pending += 1;
            if pending == MLP {
                t = mem_read_group(ice, self.tee, &group[..pending], t)?;
                pending = 0;
            }
        }
        if pending > 0 {
            t = mem_read_group(ice, self.tee, &group[..pending], t)?;
            pending = 0;
        }
        for _ in 0..batch.working_writes {
            // Transactional writes update records inside the fetched
            // pages (the input ring); analytic writes go to the small
            // working structures.
            group[pending] = if batch.random_access {
                self.rng.gen_below(self.input_line_span)
            } else {
                self.random_working()
            };
            pending += 1;
            if pending == MLP {
                t = mem_write_group(ice, self.tee, &group[..pending], t)?;
                pending = 0;
            }
        }
        if pending > 0 {
            t = mem_write_group(ice, self.tee, &group[..pending], t)?;
        }
        self.mem_time += t.saturating_since(compute_start);
        let done = ice.compute(self.tee, &batch.ops, t)?;
        self.ops_time += done.saturating_since(t);
        // Transactional batches persist their updated pages through the
        // batched, channel-parallel program path (group commit): the
        // write batch is issued when the batch's compute retires and
        // drains concurrently with the next batch's loads — the shared
        // flash timelines provide the contention; only the end of the
        // run waits for the last commit.
        if batch.random_access && batch.working_writes > 0 && !lpns.is_empty() {
            let dirty = (batch.working_writes as usize).min(lpns.len());
            let ticket = ice.submit_write_batch_async(self.tee, &lpns[..dirty], done)?;
            let commit = ice.wait_write_batch(ticket)?;
            self.pending_commit = self.pending_commit.max(commit.finished);
        }
        self.prev_compute_start = compute_start;
        self.clock = done;
        Ok(())
    }

    /// The tenant's clock including the drain of its last commit batch.
    pub(crate) fn drained_clock(&self) -> SimTime {
        self.clock.max(self.pending_commit)
    }
}

/// Issues up to [`MLP`] reads concurrently; completion is the latest.
fn mem_read_group(
    ice: &mut IceClave,
    tee: TeeId,
    offsets: &[u64],
    t: SimTime,
) -> Result<SimTime, IceClaveError> {
    let mut end = t;
    for &off in offsets {
        end = end.max(ice.mem_read(tee, off, t)?);
    }
    Ok(end)
}

/// Issues up to [`MLP`] writes concurrently.
fn mem_write_group(
    ice: &mut IceClave,
    tee: TeeId,
    offsets: &[u64],
    t: SimTime,
) -> Result<SimTime, IceClaveError> {
    let mut end = t;
    for &off in offsets {
        end = end.max(ice.mem_write(tee, off, t)?);
    }
    Ok(end)
}

/// Runs an SSD-side mode with an explicit runtime configuration
/// (ablation studies that tweak knobs outside [`Overrides`]).
pub fn run_with_config(
    config: iceclave_core::IceClaveConfig,
    mode: Mode,
    kind: WorkloadKind,
    wl_config: &WorkloadConfig,
) -> RunResult {
    let workload = kind.build(wl_config);
    let mut batches = Vec::new();
    let output = workload.run(&mut |b| batches.push(b));
    run_ssd_with(config, mode, kind, wl_config, &*workload, &batches, output)
        .expect("ssd run must not fail on trusted configuration")
}

#[allow(clippy::too_many_arguments)]
fn run_ssd(
    mode: Mode,
    kind: WorkloadKind,
    wl_config: &WorkloadConfig,
    overrides: &Overrides,
    workload: &dyn Workload,
    batches: &[Batch],
    output: WorkloadOutput,
) -> Result<RunResult, IceClaveError> {
    let config = mode.ssd_config(overrides);
    run_ssd_with(config, mode, kind, wl_config, workload, batches, output)
}

#[allow(clippy::too_many_arguments)]
fn run_ssd_with(
    config: iceclave_core::IceClaveConfig,
    mode: Mode,
    kind: WorkloadKind,
    wl_config: &WorkloadConfig,
    workload: &dyn Workload,
    batches: &[Batch],
    output: WorkloadOutput,
) -> Result<RunResult, IceClaveError> {
    let cap = CapacityModel {
        modeled_dataset: wl_config.modeled_bytes,
        dram: config.platform.dram.capacity,
        usable_fraction: 0.75,
        scale_factor: wl_config.scale_factor(),
    };
    let mut ice = IceClave::new(config);
    let pages = workload.dataset_pages();
    let t = ice.populate(Lpn::new(0), pages, SimTime::ZERO)?;
    let run_start = t;
    let flash_base = (
        ice.platform().ftl.flash().stats().reads,
        ice.platform().ftl.flash().stats().programs,
    );
    let lpns: Vec<Lpn> = (0..pages).map(Lpn::new).collect();
    let (tee, t) = ice.offload_code(256 << 10, &lpns, t)?;
    let rng = SimRng::new(wl_config.seed).derive(&format!("exec/{}", kind.label()));
    let mut session = SsdSession::new(&ice, tee, 0, workload, wl_config.scale_factor(), t, rng);
    for batch in batches {
        session.step(&mut ice, batch, &cap)?;
    }
    let t = ice.get_result(tee, 64 << 10, session.drained_clock())?;
    let t = ice.terminate_tee(tee, t)?;

    let mee_stats = ice.mee().stats().clone();
    let flash_stats = ice.platform().ftl.flash().stats();
    let activity = crate::energy::Activity {
        flash_reads: flash_stats.reads - flash_base.0,
        flash_programs: flash_stats.programs - flash_base.1,
        dram_accesses: ice.platform().dram.stats().accesses(),
        core_busy: ice.platform().cores.busy_time(),
        on_host: false,
        cipher_pages: ice.stats().pages_loaded,
        mee_ops: mee_stats.encryptions + mee_stats.verifications,
    };
    let energy = crate::energy::EnergyModel::default().evaluate(&activity);
    let ftl_stats = ice.platform().ftl.stats();
    let rt_stats = ice.stats();
    let faults = FaultStats {
        read_retries: rt_stats.read_retries,
        uncorrectable_pages: rt_stats.uncorrectable_pages,
        corrected_bursts: flash_stats.corrected_bursts,
        program_remaps: ftl_stats.program_remaps,
        blocks_retired: ftl_stats.blocks_retired,
        mac_fallbacks: mee_stats.mac_fallbacks,
    };
    Ok(RunResult {
        workload: kind,
        mode,
        total: t.saturating_since(run_start),
        load_stall: session.load_stall,
        ops_time: session.ops_time,
        mem_time: session.mem_time,
        sec_overhead: mee_stats.read_overhead + mee_stats.write_overhead,
        cmt_miss_rate: ice.platform().ftl.cmt().miss_rate(),
        counter_cache_hit_rate: ice.mee().cache_hit_rate(),
        counter_hit_rate: mee_stats.meta_traffic.counter_hit_rate(),
        mac_hit_rate: mee_stats.meta_traffic.mac_hit_rate(),
        tree_hit_rate: mee_stats.meta_traffic.tree_hit_rate(),
        l2_hit_rate: mee_stats.l2_hit_rate(),
        mean_read_overhead: mee_stats.mean_read_overhead(),
        enc_traffic: mee_stats.encryption_traffic_overhead(),
        ver_traffic: mee_stats.verification_traffic_overhead(),
        world_switches: ice.platform().monitor.stats().switches,
        energy,
        faults,
        ticket_meta: rt_stats.ticket_meta,
        recovery: None,
        output,
    })
}

// ------------------------------------------------------------ Host ----

/// Host DRAM model: same DDR3-1600 timing at twice the channels
/// (standing in for the server's dual-channel DDR4).
fn host_dram_config() -> DramConfig {
    DramConfig {
        channels: 2,
        capacity: HOST_DRAM,
        ..DramConfig::table3()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_host(
    mode: Mode,
    kind: WorkloadKind,
    wl_config: &WorkloadConfig,
    overrides: &Overrides,
    workload: &dyn Workload,
    batches: &[Batch],
    output: WorkloadOutput,
) -> RunResult {
    // The SSD side: plain block reads (no in-storage compute).
    let mut ssd_config = Mode::Isc.ssd_config(overrides);
    // Host experiments never change the SSD core; only flash parameters
    // matter for the device side.
    ssd_config.platform.core_model = CoreModel::a72_1_6ghz();
    let mut platform = SsdPlatform::new(ssd_config.platform.clone());
    let pages = workload.dataset_pages();
    let run_start = platform
        .populate(Lpn::new(0), pages, SimTime::ZERO)
        .expect("population fits the device");
    let flash_base = (
        platform.ftl.flash().stats().reads,
        platform.ftl.flash().stats().programs,
    );

    let core = CoreModel::i7_7700k();
    let mut cores = ResourcePool::new("host-core", 1);
    let mut pcie = Resource::new("pcie");
    let mut dram = Dram::new(host_dram_config());
    let mee_config = if mode == Mode::HostSgx {
        MeeConfig {
            mode: CounterMode::SplitOnly,
            ..MeeConfig::split_only()
        }
    } else {
        MeeConfig::unprotected()
    };
    let mut mee = MeeEngine::new(mee_config);
    let cap = CapacityModel {
        modeled_dataset: wl_config.modeled_bytes,
        dram: HOST_DRAM,
        usable_fraction: 0.75,
        scale_factor: wl_config.scale_factor(),
    };
    let sgx = (mode == Mode::HostSgx).then(SgxModel::default);

    // Host memory layout: a 256 MiB input ring then the working region
    // (spanning the modeled structure size, as on the SSD side).
    let input_pages: u64 = 65_536;
    let input_line_span = input_pages * LINES_PER_PAGE;
    let working_line_base = input_line_span;
    let working_line_span = workload
        .working_set()
        .cache_lines()
        .clamp(64, input_line_span);
    let mut input_cursor = 0u64;
    let mut fill_cursor = 0u64;
    let mut rng = SimRng::new(wl_config.seed).derive(&format!("host/{}", kind.label()));

    let mut clock = run_start;
    let mut prev_compute_start = run_start;
    let mut load_stall = SimDuration::ZERO;
    let mut mem_time = SimDuration::ZERO;
    let mut ops_time = SimDuration::ZERO;
    let mut touched = ByteSize::ZERO;
    let staged = workload.staged_bytes();
    let page_transfer = {
        let bytes = u64::from(PAGE_SIZE as u32);
        let bw = ssd_config.platform.pcie_bandwidth;
        SimDuration::from_ps(((bytes as u128 * 1_000_000_000_000u128) / bw as u128) as u64)
    };

    let stream_anchor = run_start;
    for batch in batches {
        // Same issue discipline as the SSD side: scans prefetch, random
        // access cannot.
        let issue = if batch.random_access {
            prev_compute_start
        } else {
            stream_anchor
        };
        let mut load_done = issue;
        // Host flash accesses are cold (direct-I/O transactional path;
        // no device-content caching in host RAM) — the SSD's own DRAM
        // is the only flash cache in the model, which is what Figure 16
        // varies.
        let page_hit = 0.0;
        for run_ in &batch.flash_reads {
            for lpn in run_.iter() {
                if batch.random_access && rng.gen_bool(page_hit) {
                    continue; // already in host memory
                }
                let flash_done = platform
                    .ftl
                    .read(Requestor::Host, lpn, &mut platform.monitor, issue)
                    .expect("populated page");
                let over_pcie = pcie.acquire(flash_done, page_transfer);
                let slot = fill_cursor % input_pages;
                fill_cursor += 1;
                let filled = mee.fill_page(&mut dram, slot, PageClass::Writable, over_pcie.end);
                load_done = load_done.max(filled);
            }
        }
        // Prefetched coalesced re-fetches for staged misses, as on the
        // SSD side (rare on the host: 16 GiB of RAM).
        let staged_hit = cap.staged_hit(staged);
        if batch.staged_reads > 0 && staged_hit < 1.0 {
            let mut misses = 0u64;
            for _ in 0..batch.staged_reads {
                if !rng.gen_bool(staged_hit) {
                    misses += 1;
                }
            }
            for _ in 0..misses.div_ceil(128) {
                let lpn = rng.gen_below(pages);
                let flash_done = platform
                    .ftl
                    .read(Requestor::Host, Lpn::new(lpn), &mut platform.monitor, issue)
                    .expect("populated page");
                load_done = load_done.max(pcie.acquire(flash_done, page_transfer).end);
            }
        }
        let compute_start = clock.max(load_done);
        load_stall += compute_start.saturating_since(clock);

        let mut t = compute_start;
        if let Some(sgx) = &sgx {
            // Enclave boundary crossing per batch (ecall + ocall).
            t += sgx.transition_time(&core, 2);
        }
        let mut issued = 0usize;
        let mut group_start = t;
        let mut group_end = t;
        for _ in 0..batch.input_lines {
            let off = input_cursor % input_line_span;
            input_cursor += 1;
            group_end = group_end.max(mee.read_line(&mut dram, CacheLine::new(off), group_start));
            issued += 1;
            if issued == MLP {
                group_start = group_end;
                issued = 0;
            }
        }
        t = group_end;
        // Staged lookups (refetch pages prefetched with the loads;
        // partitioned probing within cache-sized windows).
        if batch.staged_reads > 0 {
            let staged_span = ((workload.staged_bytes().cache_lines() as f64
                * wl_config.scale_factor()) as u64)
                .clamp(64, 16_384);
            let mut issued = 0usize;
            let mut group_start = t;
            let mut group_end = t;
            for _ in 0..batch.staged_reads {
                let off = working_line_base + rng.gen_below(staged_span);
                group_end =
                    group_end.max(mee.read_line(&mut dram, CacheLine::new(off), group_start));
                issued += 1;
                if issued == MLP {
                    group_start = group_end;
                    issued = 0;
                }
            }
            t = group_end;
        }
        let mut issued = 0usize;
        let mut group_start = t;
        let mut group_end = t;
        for _ in 0..batch.working_reads {
            let off = working_line_base + rng.gen_below(working_line_span);
            group_end = group_end.max(mee.read_line(&mut dram, CacheLine::new(off), group_start));
            issued += 1;
            if issued == MLP {
                group_start = group_end;
                issued = 0;
            }
        }
        t = group_end;
        let mut issued = 0usize;
        let mut group_start = t;
        let mut group_end = t;
        for _ in 0..batch.working_writes {
            let off = working_line_base + rng.gen_below(working_line_span);
            group_end = group_end.max(mee.write_line(&mut dram, CacheLine::new(off), group_start));
            issued += 1;
            if issued == MLP {
                group_start = group_end;
                issued = 0;
            }
        }
        t = group_end;
        if let Some(sgx) = &sgx {
            // EPC paging once the streamed enclave data exceeds the EPC.
            let before = sgx.paging_time(&core, touched);
            touched += ByteSize::from_bytes(batch.flash_pages() * PAGE_SIZE);
            let after = sgx.paging_time(&core, touched);
            t += after.saturating_sub(before);
        }
        mem_time += t.saturating_since(compute_start);
        // §6.2 measures 103% extra computing time inside the enclave
        // (MEE on every miss, checked memory semantics); applied to the
        // CPU component — the documented SGX calibration.
        let mut service = core.time_for(&batch.ops);
        if sgx.is_some() {
            service = service.mul_f64(2.03);
        }
        let done = cores.acquire(t, service).end;
        ops_time += done.saturating_since(t);
        prev_compute_start = compute_start;
        clock = done;
    }

    let mee_stats = mee.stats().clone();
    let flash_stats = platform.ftl.flash().stats();
    let activity = crate::energy::Activity {
        flash_reads: flash_stats.reads - flash_base.0,
        flash_programs: flash_stats.programs - flash_base.1,
        dram_accesses: dram.stats().accesses(),
        core_busy: cores.busy_time(),
        on_host: true,
        cipher_pages: 0,
        mee_ops: mee_stats.encryptions + mee_stats.verifications,
    };
    let energy = crate::energy::EnergyModel::default().evaluate(&activity);
    RunResult {
        workload: kind,
        mode,
        total: clock.saturating_since(run_start),
        load_stall,
        ops_time,
        mem_time,
        sec_overhead: mee_stats.read_overhead + mee_stats.write_overhead,
        cmt_miss_rate: platform.ftl.cmt().miss_rate(),
        counter_cache_hit_rate: mee.cache_hit_rate(),
        counter_hit_rate: mee_stats.meta_traffic.counter_hit_rate(),
        mac_hit_rate: mee_stats.meta_traffic.mac_hit_rate(),
        tree_hit_rate: mee_stats.meta_traffic.tree_hit_rate(),
        l2_hit_rate: mee_stats.l2_hit_rate(),
        mean_read_overhead: mee_stats.mean_read_overhead(),
        enc_traffic: mee_stats.encryption_traffic_overhead(),
        ver_traffic: mee_stats.verification_traffic_overhead(),
        world_switches: platform.monitor.stats().switches,
        energy,
        faults: FaultStats::default(),
        ticket_meta: TicketAttribution::default(),
        recovery: None,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> WorkloadConfig {
        WorkloadConfig::test()
    }

    #[test]
    fn iceclave_beats_host_on_scans() {
        // Big enough that the ~200us TEE lifecycle amortizes.
        let cfg = WorkloadConfig {
            functional_bytes: iceclave_types::ByteSize::from_mib(4),
            ..WorkloadConfig::test()
        };
        let host = run(Mode::Host, WorkloadKind::TpchQ1, &cfg, &Overrides::none());
        let ice = run(
            Mode::IceClave,
            WorkloadKind::TpchQ1,
            &cfg,
            &Overrides::none(),
        );
        assert_eq!(host.output, ice.output, "answers must agree");
        let speedup = ice.speedup_over(&host);
        assert!(
            speedup > 1.2,
            "IceClave should beat Host on I/O-bound scans, got {speedup:.2}x"
        );
    }

    #[test]
    fn iceclave_overhead_over_isc_is_small() {
        let cfg = test_config();
        let isc = run(Mode::Isc, WorkloadKind::Aggregate, &cfg, &Overrides::none());
        let ice = run(
            Mode::IceClave,
            WorkloadKind::Aggregate,
            &cfg,
            &Overrides::none(),
        );
        let overhead = ice.total / isc.total - 1.0;
        assert!(
            (0.0..0.35).contains(&overhead),
            "security overhead {overhead:.3} out of range"
        );
    }

    #[test]
    fn sgx_is_slower_than_plain_host() {
        let cfg = test_config();
        let host = run(Mode::Host, WorkloadKind::Filter, &cfg, &Overrides::none());
        let sgx = run(
            Mode::HostSgx,
            WorkloadKind::Filter,
            &cfg,
            &Overrides::none(),
        );
        assert!(sgx.total > host.total);
        assert_eq!(host.output, sgx.output);
    }

    #[test]
    fn sc64_is_slower_than_hybrid() {
        // The hybrid advantage appears once the input stream sweeps
        // more pages than the 128 KiB counter cache covers (2048 split
        // blocks = 8 MiB), so this test needs a larger-than-default
        // functional scale.
        let cfg = WorkloadConfig {
            functional_bytes: iceclave_types::ByteSize::from_mib(16),
            ..WorkloadConfig::test()
        };
        let hybrid = run(
            Mode::IceClave,
            WorkloadKind::TpchQ1,
            &cfg,
            &Overrides::none(),
        );
        let sc64 = run(
            Mode::IceClaveSc64,
            WorkloadKind::TpchQ1,
            &cfg,
            &Overrides::none(),
        );
        assert!(
            sc64.mem_time > hybrid.mem_time,
            "SC-64 mem {} vs hybrid mem {}",
            sc64.mem_time,
            hybrid.mem_time
        );
        assert!(sc64.counter_cache_hit_rate < hybrid.counter_cache_hit_rate);
    }

    #[test]
    fn mapping_in_secure_world_is_slower() {
        let cfg = test_config();
        let ice = run(
            Mode::IceClave,
            WorkloadKind::Arithmetic,
            &cfg,
            &Overrides::none(),
        );
        let ablation = run(
            Mode::IceClaveMapSecure,
            WorkloadKind::Arithmetic,
            &cfg,
            &Overrides::none(),
        );
        assert!(ablation.total > ice.total);
        assert!(ablation.world_switches > ice.world_switches);
    }

    #[test]
    fn more_channels_speed_up_iceclave() {
        let cfg = test_config();
        let ch4 = run(
            Mode::IceClave,
            WorkloadKind::Filter,
            &cfg,
            &Overrides {
                channels: Some(4),
                ..Overrides::none()
            },
        );
        let ch32 = run(
            Mode::IceClave,
            WorkloadKind::Filter,
            &cfg,
            &Overrides {
                channels: Some(32),
                ..Overrides::none()
            },
        );
        assert!(ch32.total < ch4.total);
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = test_config();
        let a = run(Mode::IceClave, WorkloadKind::TpcB, &cfg, &Overrides::none());
        let b = run(Mode::IceClave, WorkloadKind::TpcB, &cfg, &Overrides::none());
        assert_eq!(a.total, b.total);
        assert_eq!(a.output, b.output);
    }
}
