//! Experiment pipelines reproducing every table and figure of the
//! IceClave evaluation (§6).
//!
//! The executor ([`run()`](run::run)) replays a workload's instrumented batches
//! against one of the execution modes of §6.1:
//!
//! * [`Mode::Host`] — data streams over PCIe to the host CPU.
//! * [`Mode::HostSgx`] — the same, computed inside an SGX-style enclave
//!   (split-counter MEE on every host DRAM access, enclave transition
//!   and EPC paging costs).
//! * [`Mode::Isc`] — in-storage computing without a TEE (the insecure
//!   baseline).
//! * [`Mode::IceClave`] — the full system: protected mapping table,
//!   ID-bit checks, stream cipher, hybrid-counter MEE.
//! * Ablations: [`Mode::IceClaveMapSecure`] (Figure 5) and
//!   [`Mode::IceClaveSc64`] (Figure 8).
//!
//! [`figures`] exposes one function per table/figure returning
//! structured rows; the `iceclave-bench` crate prints them in the
//! paper's format and EXPERIMENTS.md records paper-vs-measured.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod capacity;
pub mod energy;
pub mod fairness;
pub mod figures;
pub mod modes;
pub mod multitenant;
pub mod report;
pub mod run;

pub use capacity::CapacityModel;
pub use energy::{Activity, EnergyBreakdown, EnergyModel};
pub use fairness::{jain, p99, run_duel, DuelOutcome};
pub use modes::{Mode, Overrides};
pub use run::{run, RunResult};
