//! Energy accounting (§1/§6: IceClave "adds minimal area and energy
//! overhead to the SSD controller", and in-storage computing saves the
//! host CPU's power budget).
//!
//! Energy is derived from the component activity counters the simulator
//! already collects, using published per-operation energies for the
//! technology generation of Table 3. Like the timing results, only
//! relative comparisons are meaningful.

use iceclave_types::SimDuration;

/// Per-operation energy constants (documented technology assumptions).
#[derive(Copy, Clone, Debug)]
pub struct EnergyModel {
    /// NAND page read, µJ (mid-2010s TLC: ~50 µJ / 4 KiB page).
    pub flash_read_uj: f64,
    /// NAND page program, µJ (~180 µJ).
    pub flash_program_uj: f64,
    /// DRAM access energy per 64 B line, nJ (~25 nJ incl. I/O).
    pub dram_access_nj: f64,
    /// Embedded core active power, W (Cortex-A72 pair: ~1.5 W).
    pub ssd_core_w: f64,
    /// Host core active power, W (i7-7700K single core: ~20 W).
    pub host_core_w: f64,
    /// Trivium engine energy per ciphered page, nJ (~5 pJ/byte).
    pub cipher_page_nj: f64,
    /// AES-128 pad/MAC operation, nJ.
    pub mee_op_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            flash_read_uj: 50.0,
            flash_program_uj: 180.0,
            dram_access_nj: 25.0,
            ssd_core_w: 1.5,
            host_core_w: 20.0,
            cipher_page_nj: 4096.0 * 0.005,
            mee_op_nj: 1.2,
        }
    }
}

/// Activity counters for one run (extracted from component stats).
#[derive(Copy, Clone, Debug, Default)]
pub struct Activity {
    /// Flash pages read.
    pub flash_reads: u64,
    /// Flash pages programmed.
    pub flash_programs: u64,
    /// DRAM line accesses (program + metadata + fills).
    pub dram_accesses: u64,
    /// Core busy time.
    pub core_busy: SimDuration,
    /// Whether the core is the host CPU.
    pub on_host: bool,
    /// Pages through the stream-cipher engine.
    pub cipher_pages: u64,
    /// MEE pad generations + MAC verifications.
    pub mee_ops: u64,
}

/// Energy breakdown in microjoules.
#[derive(Copy, Clone, Debug, Default)]
pub struct EnergyBreakdown {
    /// Flash array energy.
    pub flash_uj: f64,
    /// DRAM energy.
    pub dram_uj: f64,
    /// Processor energy.
    pub core_uj: f64,
    /// Stream-cipher engine energy.
    pub cipher_uj: f64,
    /// Memory-encryption engine energy.
    pub mee_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy of the run.
    pub fn total_uj(&self) -> f64 {
        self.flash_uj + self.dram_uj + self.core_uj + self.cipher_uj + self.mee_uj
    }

    /// Fraction of the total spent on the security engines (the
    /// paper's "minimal energy overhead" claim).
    pub fn security_fraction(&self) -> f64 {
        let total = self.total_uj();
        if total == 0.0 {
            0.0
        } else {
            (self.cipher_uj + self.mee_uj) / total
        }
    }
}

impl EnergyModel {
    /// Evaluates the model over one run's activity.
    pub fn evaluate(&self, activity: &Activity) -> EnergyBreakdown {
        let core_w = if activity.on_host {
            self.host_core_w
        } else {
            self.ssd_core_w
        };
        EnergyBreakdown {
            flash_uj: activity.flash_reads as f64 * self.flash_read_uj
                + activity.flash_programs as f64 * self.flash_program_uj,
            dram_uj: activity.dram_accesses as f64 * self.dram_access_nj / 1000.0,
            core_uj: activity.core_busy.as_secs_f64() * core_w * 1e6,
            cipher_uj: activity.cipher_pages as f64 * self.cipher_page_nj / 1000.0,
            mee_uj: activity.mee_ops as f64 * self.mee_op_nj / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity() -> Activity {
        Activity {
            flash_reads: 1000,
            flash_programs: 10,
            dram_accesses: 100_000,
            core_busy: SimDuration::from_millis(5),
            on_host: false,
            cipher_pages: 1000,
            mee_ops: 80_000,
        }
    }

    #[test]
    fn security_engines_are_a_small_fraction() {
        let e = EnergyModel::default().evaluate(&activity());
        assert!(e.total_uj() > 0.0);
        assert!(
            e.security_fraction() < 0.05,
            "security energy {:.4} should be minimal",
            e.security_fraction()
        );
    }

    #[test]
    fn host_cores_burn_more_than_ssd_cores() {
        let mut a = activity();
        let ssd = EnergyModel::default().evaluate(&a);
        a.on_host = true;
        let host = EnergyModel::default().evaluate(&a);
        assert!(host.core_uj > 10.0 * ssd.core_uj);
    }

    #[test]
    fn flash_dominates_io_energy() {
        let e = EnergyModel::default().evaluate(&activity());
        assert!(e.flash_uj > e.dram_uj);
    }
}
