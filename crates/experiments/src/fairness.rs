//! Closed-loop antagonist duel — the shared harness behind the WFQ
//! fairness acceptance tests (`tests/wfq_fairness.rs`,
//! `tests/hierarchical_wfq.rs`) and the `fairness` bench
//! (`BENCH_fairness.json`).
//!
//! One role (the *antagonist*) keeps a configurable number of 32-page
//! read tickets in flight; the other (the *victim*) cycles small
//! 4-page tickets — the latency-sensitive pattern the
//! weighted-fair-queueing channel arbiter protects (Figures 17/18).
//! The roles run either as two tenants (the classic cross-tenant duel,
//! [`run_duel`]) or inside **one** tenant ([`run_intra_duel`]), where
//! only the hierarchical per-ticket clocks ([`TicketPolicy::Wfq`]) can
//! protect the victim. Both roles run closed-loop: every completed
//! ticket is immediately resubmitted at the (quantized) completion
//! time, so the duel is fully deterministic.

use std::collections::HashMap;

use iceclave_core::IceClave;
pub use iceclave_ftl::{SchedPolicy, TicketPolicy};
use iceclave_types::{Lpn, SimDuration, SimTime};

use crate::modes::{Mode, Overrides};

/// Pages per antagonist ticket.
pub const ANTAGONIST_TICKET_PAGES: u64 = 32;
/// Pages per victim ticket.
pub const VICTIM_TICKET_PAGES: u64 = 4;

/// Full parameterization of one closed-loop duel.
#[derive(Clone, Debug)]
pub struct DuelConfig {
    /// Cross-tenant arbitration policy.
    pub policy: SchedPolicy,
    /// Intra-lane (per-ticket) scheduling policy.
    pub ticket_policy: TicketPolicy,
    /// MEE metadata surcharge multiplier (`FairnessConfig::mee_line_cost`).
    pub mee_line_cost: u32,
    /// Flash channels on the device.
    pub channels: u32,
    /// 32-page antagonist tickets kept in flight.
    pub antagonist_in_flight: usize,
    /// 4-page victim tickets kept in flight (1 = strictly solo).
    pub victim_in_flight: usize,
    /// Victim tickets to complete before the duel ends.
    pub victim_tickets: usize,
    /// When true, antagonist and victim share **one** TEE — the
    /// intra-tenant interference scenario where only the ticket-level
    /// clocks can help.
    pub shared_tenant: bool,
}

/// Outcome of one closed-loop duel run.
#[derive(Clone, Debug)]
pub struct DuelOutcome {
    /// Per-ticket latency of every completed victim ticket
    /// (submission to last page ready).
    pub victim_latencies: Vec<SimDuration>,
    /// Victim pages drained during the duel window.
    pub victim_pages: u64,
    /// Antagonist pages drained during the duel window.
    pub antagonist_pages: u64,
}

/// Runs the classic cross-tenant duel under `policy` on a
/// `channels`-channel device: the antagonist tenant keeps
/// `antagonist_in_flight` 32-page tickets in flight, the victim tenant
/// `victim_in_flight` 4-page tickets (1 = strictly solo), until the
/// victim completes `victim_tickets` tickets.
///
/// # Panics
///
/// Panics if the device cannot be populated or a submission fails —
/// the duel uses only granted pages, so any error is a harness bug.
pub fn run_duel(
    policy: SchedPolicy,
    channels: u32,
    antagonist_in_flight: usize,
    victim_in_flight: usize,
    victim_tickets: usize,
) -> DuelOutcome {
    run_duel_with(&DuelConfig {
        policy,
        ticket_policy: TicketPolicy::Fifo,
        mee_line_cost: 0,
        channels,
        antagonist_in_flight,
        victim_in_flight,
        victim_tickets,
        shared_tenant: false,
    })
}

/// Runs the **intra-tenant** duel: one TEE owns both roles, the
/// antagonist keeping `antagonist_in_flight` deep tickets in flight
/// against a single cycling 4-page victim ticket, under the given
/// intra-lane `ticket_policy` ([`TicketPolicy::Fifo`] = today's flat
/// lane, [`TicketPolicy::Wfq`] = hierarchical per-ticket clocks).
/// Cross-tenant policy is always [`SchedPolicy::Wfq`] — there is only
/// one tenant, so it contributes nothing; any victim protection comes
/// from the ticket level.
///
/// # Panics
///
/// As [`run_duel`].
pub fn run_intra_duel(
    ticket_policy: TicketPolicy,
    channels: u32,
    antagonist_in_flight: usize,
    victim_tickets: usize,
) -> DuelOutcome {
    run_duel_with(&DuelConfig {
        policy: SchedPolicy::Wfq,
        ticket_policy,
        mee_line_cost: 0,
        channels,
        antagonist_in_flight,
        victim_in_flight: 1,
        victim_tickets,
        shared_tenant: true,
    })
}

/// Runs one closed-loop duel fully parameterized by `config`.
///
/// # Panics
///
/// As [`run_duel`].
pub fn run_duel_with(cfg: &DuelConfig) -> DuelOutcome {
    let overrides = Overrides {
        channels: Some(cfg.channels),
        ..Overrides::none()
    };
    let mut config = Mode::IceClave.ssd_config(&overrides);
    config.fairness.policy = cfg.policy;
    config.fairness.ticket_policy = cfg.ticket_policy;
    config.fairness.mee_line_cost = cfg.mee_line_cost;
    let (antagonist_in_flight, victim_in_flight, victim_tickets) = (
        cfg.antagonist_in_flight,
        cfg.victim_in_flight,
        cfg.victim_tickets,
    );
    let mut ice = IceClave::new(config);
    let ant_range = ANTAGONIST_TICKET_PAGES * antagonist_in_flight as u64;
    let t0 = ice
        .populate(Lpn::new(0), ant_range + 64, SimTime::ZERO)
        .expect("device holds the duel");
    let ant_lpns: Vec<Lpn> = (0..ant_range).map(Lpn::new).collect();
    let victim_lpns: Vec<Lpn> = (ant_range..ant_range + 64).map(Lpn::new).collect();
    let (ant, victim, t0) = if cfg.shared_tenant {
        let all_lpns: Vec<Lpn> = (0..ant_range + 64).map(Lpn::new).collect();
        let (tenant, t0) = ice
            .offload_code(1024, &all_lpns, t0)
            .expect("shared tenant");
        (tenant, tenant, t0)
    } else {
        let (ant, _) = ice.offload_code(1024, &ant_lpns, t0).expect("antagonist");
        let (victim, t0) = ice.offload_code(1024, &victim_lpns, t0).expect("victim");
        (ant, victim, t0)
    };

    struct InFlight {
        is_victim: bool,
        submitted: SimTime,
        remaining: u64,
        last_ready: SimTime,
    }
    let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
    let mut ant_cursor = 0usize;
    let mut victim_cursor = 0usize;
    let submit = |ice: &mut IceClave,
                  is_victim: bool,
                  cursor: &mut usize,
                  at: SimTime,
                  in_flight: &mut HashMap<u64, InFlight>| {
        let (tee, lpns, pages) = if is_victim {
            (victim, &victim_lpns, VICTIM_TICKET_PAGES as usize)
        } else {
            (ant, &ant_lpns, ANTAGONIST_TICKET_PAGES as usize)
        };
        let start = (*cursor * pages) % lpns.len();
        *cursor += 1;
        let ticket = ice
            .submit_batch_async(tee, &lpns[start..start + pages], at)
            .expect("granted batch");
        in_flight.insert(
            ticket.raw(),
            InFlight {
                is_victim,
                submitted: at,
                remaining: pages as u64,
                last_ready: at,
            },
        );
    };
    for _ in 0..antagonist_in_flight {
        submit(&mut ice, false, &mut ant_cursor, t0, &mut in_flight);
    }
    for _ in 0..victim_in_flight {
        submit(&mut ice, true, &mut victim_cursor, t0, &mut in_flight);
    }

    let step = SimDuration::from_micros(5);
    let mut now = t0;
    let mut outcome = DuelOutcome {
        victim_latencies: Vec::with_capacity(victim_tickets),
        victim_pages: 0,
        antagonist_pages: 0,
    };
    while outcome.victim_latencies.len() < victim_tickets {
        now += step;
        for ev in ice.poll_completions(now) {
            let entry = in_flight.get_mut(&ev.ticket.raw()).expect("known ticket");
            entry.remaining -= 1;
            entry.last_ready = entry.last_ready.max(ev.ready_at());
            if entry.is_victim {
                outcome.victim_pages += 1;
            } else {
                outcome.antagonist_pages += 1;
            }
            if entry.remaining == 0 {
                let closed = in_flight.remove(&ev.ticket.raw()).expect("present");
                if closed.is_victim {
                    outcome
                        .victim_latencies
                        .push(closed.last_ready.saturating_since(closed.submitted));
                    if outcome.victim_latencies.len() < victim_tickets {
                        submit(&mut ice, true, &mut victim_cursor, now, &mut in_flight);
                    }
                } else {
                    submit(&mut ice, false, &mut ant_cursor, now, &mut in_flight);
                }
            }
        }
    }
    outcome
}

/// The p99 of a latency sample (by sorting; the samples are small).
///
/// # Panics
///
/// Panics on an empty sample.
pub fn p99(latencies: &[SimDuration]) -> SimDuration {
    assert!(!latencies.is_empty(), "p99 of an empty sample");
    let mut sorted: Vec<SimDuration> = latencies.to_vec();
    sorted.sort();
    sorted[(sorted.len() * 99).div_ceil(100).min(sorted.len()) - 1]
}

/// Jain's fairness index over per-tenant channel time. With uniform
/// 4 KiB pages each tenant's channel time is proportional to its
/// drained page count, so `x = (victim_pages, antagonist_pages)` and
/// `J = (Σx)² / (2·Σx²)` — 1.0 is a perfect split, 0.5 total capture.
pub fn jain(victim_pages: u64, antagonist_pages: u64) -> f64 {
    let (v, a) = (victim_pages as f64, antagonist_pages as f64);
    (v + a) * (v + a) / (2.0 * (v * v + a * a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain(100, 100) - 1.0).abs() < 1e-12);
        assert!((jain(0, 100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p99_of_small_samples_is_the_max_ish() {
        let ns = |n: u64| SimDuration::from_nanos(n);
        assert_eq!(p99(&[ns(5)]), ns(5));
        let sample: Vec<SimDuration> = (1..=100).map(ns).collect();
        assert_eq!(p99(&sample), ns(99));
    }

    /// The duel driver is deterministic: two identical runs produce
    /// identical latency traces and page counts.
    #[test]
    fn duel_runs_are_deterministic() {
        let run = || {
            let d = run_duel(SchedPolicy::Wfq, 8, 2, 1, 5);
            (d.victim_latencies, d.victim_pages, d.antagonist_pages)
        };
        assert_eq!(run(), run());
    }

    /// The intra-tenant duel is deterministic too, under both intra-lane
    /// policies.
    #[test]
    fn intra_duel_runs_are_deterministic() {
        for policy in [TicketPolicy::Fifo, TicketPolicy::Wfq] {
            let run = || {
                let d = run_intra_duel(policy, 8, 2, 5);
                (d.victim_latencies, d.victim_pages, d.antagonist_pages)
            };
            assert_eq!(run(), run());
        }
    }
}
