//! Counter-metadata hierarchy ablation: the two-dimensional
//! L1 (on-chip SRAM) × L2 (reserved-DRAM sealed store) sweep behind
//! `BENCH_counter_cache.json`.
//!
//! Two instruments share the grid:
//!
//! * [`scan_sweep`] — a controlled scan-heavy microbench on the raw
//!   [`MeeEngine`]: repeated passes over a working set sized at
//!   [`WORKING_SET_FACTOR`]× the L1's split-counter coverage, i.e.
//!   deliberately *beyond SRAM reach* (the Figure 8 collapse regime and
//!   the TEE-KVS scan pattern). Steady-state mean read overhead is
//!   measured from the second pass on, so compulsory misses don't
//!   dilute the comparison. This is the acceptance instrument: at every
//!   L1 size an 8 MiB L2 must cut the mean read overhead by ≥ 1.3×.
//! * [`workload_sweep`] — end-to-end runs (TPC-H Q1 under conventional
//!   SC-64 counters, TPC-B under the hybrid scheme) on a smaller grid,
//!   showing the same trend inside the full flash + DRAM pipeline.

use iceclave_dram::{Dram, DramConfig};
use iceclave_mee::{CounterMode, MeeConfig, MeeEngine};
use iceclave_types::{ByteSize, CacheLine, SimDuration, SimTime, LINES_PER_PAGE};
use iceclave_workloads::{WorkloadConfig, WorkloadKind};

use crate::modes::{Mode, Overrides};
use crate::run::run_with_config;

/// L1 (on-chip counter cache) capacities swept, in KiB.
pub const L1_SWEEP_KIB: [u64; 5] = [32, 64, 128, 256, 512];

/// L2 (reserved-DRAM store) capacities swept, in MiB; 0 disables the
/// level (the SRAM-only baseline).
pub const L2_SWEEP_MIB: [u64; 4] = [0, 2, 8, 32];

/// The scan microbench's working set as a multiple of the L1's
/// split-counter coverage (one counter block per page).
pub const WORKING_SET_FACTOR: u64 = 4;

/// The smaller grid the end-to-end workload rows run on.
pub const WORKLOAD_L1_KIB: [u64; 3] = [32, 128, 512];
/// The L2 points of the workload rows (off vs the acceptance 8 MiB).
pub const WORKLOAD_L2_MIB: [u64; 2] = [0, 8];

/// One point of the scan-heavy microbench grid.
#[derive(Copy, Clone, Debug)]
pub struct ScanPoint {
    /// L1 capacity.
    pub l1: ByteSize,
    /// L2 capacity (zero = disabled).
    pub l2: ByteSize,
    /// Pages in the scanned working set (4× the L1's split coverage).
    pub working_set_pages: u64,
    /// Steady-state mean MEE latency added per read.
    pub mean_read_overhead: SimDuration,
    /// L1 hit rate over the whole run.
    pub l1_hit_rate: f64,
    /// L2 probe hit rate over the whole run.
    pub l2_hit_rate: f64,
}

/// One point of the end-to-end workload grid.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadPoint {
    /// The workload that ran.
    pub workload: WorkloadKind,
    /// The counter mode it ran under.
    pub mode: Mode,
    /// L1 capacity.
    pub l1: ByteSize,
    /// L2 capacity (zero = disabled).
    pub l2: ByteSize,
    /// DRAM time of the run (the quantity Figure 8 normalizes).
    pub mem_time: SimDuration,
    /// Mean MEE latency added per program read.
    pub mean_read_overhead: SimDuration,
    /// L1 hit rate on counter blocks.
    pub counter_hit_rate: f64,
    /// L1 hit rate on tree nodes.
    pub tree_hit_rate: f64,
    /// L2 probe hit rate.
    pub l2_hit_rate: f64,
}

/// Runs one scan-microbench point: `passes` sweeps of line 0 of every
/// page in a working set of `WORKING_SET_FACTOR × l1_blocks` pages,
/// under conventional split counters (one block per page, the
/// scan-heavy KVS shape). Statistics are measured from the second pass
/// on.
pub fn scan_probe_point(l1_kib: u64, l2_mib: u64) -> ScanPoint {
    let l1 = ByteSize::from_kib(l1_kib);
    let l2 = ByteSize::from_mib(l2_mib);
    let config = MeeConfig {
        mode: CounterMode::SplitOnly,
        counter_cache: l1,
        l2_capacity: l2,
        ..MeeConfig::split_only()
    };
    let working_set_pages = WORKING_SET_FACTOR * l1.cache_lines();
    let mut dram = Dram::new(DramConfig::table3());
    let mut mee = MeeEngine::new(config);
    let mut t = SimTime::ZERO;
    let mut warm = None;
    for _pass in 0..3 {
        for p in 0..working_set_pages {
            t = mee.read_line(&mut dram, CacheLine::new(p * LINES_PER_PAGE), t);
        }
        if warm.is_none() {
            warm = Some(mee.stats().clone());
        }
    }
    let warm = warm.expect("at least one pass ran");
    let s = mee.stats();
    ScanPoint {
        l1,
        l2,
        working_set_pages,
        mean_read_overhead: (s.read_overhead - warm.read_overhead)
            / (s.data_reads - warm.data_reads),
        l1_hit_rate: mee.cache_hit_rate(),
        l2_hit_rate: s.l2_hit_rate(),
    }
}

/// The full scan-microbench grid, L1-major.
pub fn scan_sweep() -> Vec<ScanPoint> {
    let mut points = Vec::new();
    for &l1 in &L1_SWEEP_KIB {
        for &l2 in &L2_SWEEP_MIB {
            points.push(scan_probe_point(l1, l2));
        }
    }
    points
}

/// Runs one end-to-end workload point with the hierarchy overridden.
pub fn workload_point(
    mode: Mode,
    kind: WorkloadKind,
    l1_kib: u64,
    l2_mib: u64,
    cfg: &WorkloadConfig,
) -> WorkloadPoint {
    let mut config = mode.ssd_config(&Overrides::none());
    config.mee.counter_cache = ByteSize::from_kib(l1_kib);
    config.mee.l2_capacity = ByteSize::from_mib(l2_mib);
    let r = run_with_config(config, mode, kind, cfg);
    WorkloadPoint {
        workload: kind,
        mode,
        l1: ByteSize::from_kib(l1_kib),
        l2: ByteSize::from_mib(l2_mib),
        mem_time: r.mem_time,
        mean_read_overhead: r.mean_read_overhead,
        counter_hit_rate: r.counter_hit_rate,
        tree_hit_rate: r.tree_hit_rate,
        l2_hit_rate: r.l2_hit_rate,
    }
}

/// The end-to-end rows: TPC-H Q1 under SC-64 (the conventional-counter
/// scan) and TPC-B under the hybrid scheme, on the smaller grid.
pub fn workload_sweep(cfg: &WorkloadConfig) -> Vec<WorkloadPoint> {
    let rows = [
        (Mode::IceClaveSc64, WorkloadKind::TpchQ1),
        (Mode::IceClave, WorkloadKind::TpcB),
    ];
    let mut points = Vec::new();
    for (mode, kind) in rows {
        for &l1 in &WORKLOAD_L1_KIB {
            for &l2 in &WORKLOAD_L2_MIB {
                points.push(workload_point(mode, kind, l1, l2, cfg));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_point_sizes_the_working_set_beyond_l1() {
        let p = scan_probe_point(32, 0);
        // 32 KiB = 512 blocks of split coverage; 4x = 2048 pages.
        assert_eq!(p.working_set_pages, 2048);
        assert!(p.l1_hit_rate < 1.0);
        assert_eq!(p.l2_hit_rate, 0.0, "disabled L2 is never probed");
    }

    #[test]
    fn l2_cuts_steady_scan_overhead_by_at_least_1_3x() {
        // The headline acceptance shape at the smallest L1 (fast); the
        // bench asserts it across the whole grid.
        let without = scan_probe_point(32, 0);
        let with = scan_probe_point(32, 8);
        assert!(with.l2_hit_rate > 0.5, "thrash -> L2 hits");
        let ratio =
            without.mean_read_overhead.as_nanos_f64() / with.mean_read_overhead.as_nanos_f64();
        assert!(
            ratio >= 1.3,
            "8 MiB L2 must cut scan overhead 1.3x, got {ratio:.2} \
             ({} vs {})",
            without.mean_read_overhead,
            with.mean_read_overhead
        );
    }
}
