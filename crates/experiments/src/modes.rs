//! Execution modes (§6.1) and parameter-sweep overrides.

use std::fmt;

use iceclave_core::IceClaveConfig;
use iceclave_cpu::CoreModel;
use iceclave_ftl::FtlConfig;
use iceclave_mee::{CounterMode, MeeConfig};
use iceclave_types::{ByteSize, SimDuration};

/// Host DRAM of the evaluation server (16 GB DDR4 in §6.1).
pub const HOST_DRAM: ByteSize = ByteSize::from_gib(16);

/// The execution modes compared in the evaluation.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Mode {
    /// Load data to the host over PCIe, compute on the host CPU.
    Host,
    /// Host computation inside an SGX-style enclave.
    HostSgx,
    /// In-storage computing without a TEE (insecure baseline).
    Isc,
    /// The full IceClave system.
    IceClave,
    /// Figure 5 ablation: FTL mapping table kept in the secure world
    /// (every translation pays a world switch).
    IceClaveMapSecure,
    /// Figure 8 ablation: split counters for every page (SC-64).
    IceClaveSc64,
}

impl Mode {
    /// The four headline modes of Figure 11, in its bar order.
    pub const FIGURE11: [Mode; 4] = [Mode::Host, Mode::HostSgx, Mode::Isc, Mode::IceClave];

    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Host => "Host",
            Mode::HostSgx => "Host+SGX",
            Mode::Isc => "ISC",
            Mode::IceClave => "IceClave",
            Mode::IceClaveMapSecure => "IceClave (map in secure world)",
            Mode::IceClaveSc64 => "IceClave (SC-64)",
        }
    }

    /// True for the host-side modes.
    pub fn is_host(&self) -> bool {
        matches!(self, Mode::Host | Mode::HostSgx)
    }

    /// The runtime configuration for SSD-side modes.
    ///
    /// # Panics
    ///
    /// Panics if called on a host mode.
    pub fn ssd_config(&self, overrides: &Overrides) -> IceClaveConfig {
        assert!(!self.is_host(), "host modes have no SSD runtime config");
        let mut config = IceClaveConfig::table3();
        // Experiments give each TEE a larger dynamic allocation (§4.5
        // allows growth beyond the 16 MiB preallocation) so the input
        // stream sweeps more DRAM than the counter cache covers in
        // either mode: the 128 KiB cache reaches 8 MiB of data with
        // split counters and 64 MiB with major-only counters, so a
        // 128 MiB input ring (half of 256 MiB) exercises the miss
        // behaviour Figure 8 measures for both schemes.
        config.tee_region = ByteSize::from_mib(256);
        match self {
            Mode::Isc => {
                config.mee = MeeConfig::unprotected();
                config.cipher_enabled = false;
            }
            Mode::IceClave => {}
            Mode::IceClaveMapSecure => {
                config.platform.ftl = FtlConfig {
                    mapping_in_secure_world: true,
                    ..config.platform.ftl
                };
            }
            Mode::IceClaveSc64 => {
                config.mee = MeeConfig {
                    mode: CounterMode::SplitOnly,
                    ..MeeConfig::split_only()
                };
            }
            Mode::Host | Mode::HostSgx => unreachable!(),
        }
        overrides.apply(&mut config);
        config
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameter overrides for the sensitivity sweeps (Figures 12–16).
#[derive(Clone, Debug, Default)]
pub struct Overrides {
    /// Flash channel count (Figures 12/13 sweep 4..32).
    pub channels: Option<u32>,
    /// Flash page-read latency (Figure 14 sweeps 10..110 us).
    pub flash_read_latency: Option<SimDuration>,
    /// SSD core model (Figure 15).
    pub core: Option<CoreModel>,
    /// SSD DRAM capacity (Figure 16 sweeps 4 vs 2 GiB).
    pub dram_capacity: Option<ByteSize>,
}

impl Overrides {
    /// No overrides: the Table 3 defaults.
    pub fn none() -> Self {
        Overrides::default()
    }

    fn apply(&self, config: &mut IceClaveConfig) {
        if let Some(channels) = self.channels {
            config.platform.flash.geometry = config.platform.flash.geometry.with_channels(channels);
        }
        if let Some(latency) = self.flash_read_latency {
            config.platform.flash.timing = config.platform.flash.timing.with_read_latency(latency);
        }
        if let Some(core) = &self.core {
            config.platform.core_model = core.clone();
        }
        if let Some(capacity) = self.dram_capacity {
            config.platform.dram = config.platform.dram.with_capacity(capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isc_mode_disables_security() {
        let c = Mode::Isc.ssd_config(&Overrides::none());
        assert_eq!(c.mee.mode, CounterMode::Unprotected);
        assert!(!c.cipher_enabled);
    }

    #[test]
    fn iceclave_mode_is_fully_armed() {
        let c = Mode::IceClave.ssd_config(&Overrides::none());
        assert_eq!(c.mee.mode, CounterMode::Hybrid);
        assert!(c.cipher_enabled);
        assert!(!c.platform.ftl.mapping_in_secure_world);
    }

    #[test]
    fn ablation_modes_differ_in_one_knob() {
        let map = Mode::IceClaveMapSecure.ssd_config(&Overrides::none());
        assert!(map.platform.ftl.mapping_in_secure_world);
        let sc = Mode::IceClaveSc64.ssd_config(&Overrides::none());
        assert_eq!(sc.mee.mode, CounterMode::SplitOnly);
    }

    #[test]
    fn overrides_apply() {
        let o = Overrides {
            channels: Some(16),
            flash_read_latency: Some(SimDuration::from_micros(10)),
            core: Some(CoreModel::a53_1_6ghz()),
            dram_capacity: Some(ByteSize::from_gib(2)),
        };
        let c = Mode::IceClave.ssd_config(&o);
        assert_eq!(c.platform.flash.geometry.channels, 16);
        assert_eq!(c.platform.flash.timing.read, SimDuration::from_micros(10));
        assert_eq!(c.platform.core_model.name(), "A53 @1.6GHz");
        assert_eq!(c.platform.dram.capacity, ByteSize::from_gib(2));
    }

    #[test]
    #[should_panic(expected = "host modes")]
    fn host_mode_has_no_ssd_config() {
        let _ = Mode::Host.ssd_config(&Overrides::none());
    }
}
