//! Paper-scale capacity modeling.
//!
//! Workloads execute at a small *functional* scale but model the
//! paper's 32 GiB datasets (DESIGN.md). Whether a staged table or a
//! randomly re-accessed page is DRAM-resident depends on the *modeled*
//! sizes, so the capacity model scales structure sizes up before
//! comparing them with the (real) DRAM capacity — this is what makes
//! Figure 16's 4 GiB→2 GiB sweep and the host-vs-SSD page-cache
//! asymmetry behave like the paper's.

use iceclave_types::ByteSize;

/// Residency model for one execution environment.
#[derive(Copy, Clone, Debug)]
pub struct CapacityModel {
    /// The dataset size being modeled (32 GiB in the paper).
    pub modeled_dataset: ByteSize,
    /// DRAM capacity of the executing side (SSD: 4 or 2 GiB; host:
    /// 16 GiB per §6.1).
    pub dram: ByteSize,
    /// Fraction of DRAM usable for data (the rest holds firmware,
    /// buffers, the CMT, TEE metadata).
    pub usable_fraction: f64,
    /// modeled-bytes / functional-bytes of the running workload.
    pub scale_factor: f64,
}

impl CapacityModel {
    /// Usable bytes for cached data.
    pub fn usable(&self) -> f64 {
        self.dram.as_bytes() as f64 * self.usable_fraction
    }

    /// Probability a random page of the dataset is cache-resident
    /// (applies to transactional random access).
    pub fn page_cache_hit(&self) -> f64 {
        (self.usable() / self.modeled_dataset.as_bytes() as f64).min(1.0)
    }

    /// Probability a lookup into a staged table of (functional) size
    /// `staged` finds it resident.
    pub fn staged_hit(&self, staged: ByteSize) -> f64 {
        if staged.is_zero() {
            return 1.0;
        }
        let modeled = staged.as_bytes() as f64 * self.scale_factor;
        (self.usable() / modeled).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(dram_gib: u64) -> CapacityModel {
        CapacityModel {
            modeled_dataset: ByteSize::from_gib(32),
            dram: ByteSize::from_gib(dram_gib),
            usable_fraction: 0.75,
            scale_factor: 1024.0,
        }
    }

    #[test]
    fn smaller_dram_hits_less() {
        assert!(model(2).page_cache_hit() < model(4).page_cache_hit());
        assert!((model(4).page_cache_hit() - 3.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn small_staged_tables_are_resident() {
        let m = model(4);
        // 1 KiB functional -> 1 MiB modeled: resident.
        assert_eq!(m.staged_hit(ByteSize::from_kib(1)), 1.0);
        // 32 MiB functional -> 32 GiB modeled: mostly not resident.
        assert!(m.staged_hit(ByteSize::from_mib(32)) < 0.15);
        assert_eq!(m.staged_hit(ByteSize::ZERO), 1.0);
    }

    #[test]
    fn host_has_more_cache_reach_than_ssd() {
        let host = model(16);
        let ssd = model(4);
        assert!(host.page_cache_hit() > ssd.page_cache_hit());
    }
}
