//! One function per table and figure of the evaluation (§6).
//!
//! Every function runs the necessary simulations and returns a
//! [`FigureReport`]: a printable table whose rows mirror the paper's,
//! plus named headline numbers for EXPERIMENTS.md. The `repro` binary
//! in `iceclave-bench` prints them all.

use iceclave_cipher::CipherAreaModel;
use iceclave_cpu::CoreModel;
use iceclave_types::{ByteSize, SimDuration};
use iceclave_workloads::{measured_write_ratio, WorkloadConfig, WorkloadKind};

use crate::modes::{Mode, Overrides};
use crate::multitenant::run_colocated;
use crate::report::{fmt_pct, fmt_sci, fmt_x, TextTable};
use crate::run::{run, RunResult};

/// A reproduced table/figure: the printable rows plus headline numbers.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// The rows, in the paper's layout.
    pub table: TextTable,
    /// Named headline values (averages, ranges) for EXPERIMENTS.md.
    pub summary: Vec<(String, f64)>,
}

impl std::fmt::Display for FigureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)?;
        for (name, value) in &self.summary {
            writeln!(f, "  {name}: {value:.4}")?;
        }
        Ok(())
    }
}

fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

/// Table 1: DRAM write ratio per workload, measured vs paper.
pub fn table1(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Table 1: in-storage workload write ratios",
        &["workload", "measured", "paper"],
    );
    let mut ratios = Vec::new();
    for kind in WorkloadKind::ALL {
        let workload = kind.build(cfg);
        let measured = measured_write_ratio(&*workload);
        table.row(&[
            kind.label().to_string(),
            fmt_sci(measured),
            fmt_sci(kind.paper_write_ratio()),
        ]);
        ratios.push(measured);
    }
    let write_heavy = ratios.iter().filter(|&&r| r > 1e-2).count() as f64;
    FigureReport {
        table,
        summary: vec![("write-heavy workloads (ratio > 1e-2)".into(), write_heavy)],
    }
}

/// Figure 5: IceClave vs IceClave-with-mapping-table-in-secure-world.
pub fn fig5(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Figure 5: protected-region mapping table vs secure-world placement",
        &["workload", "normalized perf (secure-world variant)"],
    );
    let mut improvements = Vec::new();
    for kind in WorkloadKind::ALL {
        let ice = run(Mode::IceClave, kind, cfg, &Overrides::none());
        let ablation = run(Mode::IceClaveMapSecure, kind, cfg, &Overrides::none());
        // Normalized to IceClave (= 1.0); the ablation is slower, < 1.
        let normalized = ice.total / ablation.total;
        improvements.push(ablation.total / ice.total - 1.0);
        table.row(&[kind.label().to_string(), format!("{normalized:.3}")]);
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    FigureReport {
        table,
        summary: vec![(
            "avg improvement of protected-region placement (paper: 21.6%)".into(),
            avg,
        )],
    }
}

/// Figure 8: Non-Encryption vs SC-64 vs IceClave's hybrid counters.
///
/// Normalized by memory-system time, matching the paper's USIMM-level
/// design-choice experiment (end-to-end runtimes hide the memory
/// effect behind the flash pipeline).
pub fn fig8(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Figure 8: memory encryption schemes (memory time normalized to non-encryption)",
        &["workload", "Non-Enc", "SC-64", "IceClave"],
    );
    let mut hybrid_gain = Vec::new();
    for kind in WorkloadKind::ALL {
        let non_enc = run(Mode::Isc, kind, cfg, &Overrides::none());
        let sc64 = run(Mode::IceClaveSc64, kind, cfg, &Overrides::none());
        let hybrid = run(Mode::IceClave, kind, cfg, &Overrides::none());
        let sc_norm = non_enc.mem_time / sc64.mem_time;
        let hy_norm = non_enc.mem_time / hybrid.mem_time;
        hybrid_gain.push(sc64.mem_time / hybrid.mem_time - 1.0);
        table.row(&[
            kind.label().to_string(),
            "1.000".to_string(),
            format!("{sc_norm:.3}"),
            format!("{hy_norm:.3}"),
        ]);
    }
    let avg = hybrid_gain.iter().sum::<f64>() / hybrid_gain.len() as f64;
    FigureReport {
        table,
        summary: vec![(
            "avg hybrid-counter improvement over SC-64 (paper: 43%)".into(),
            avg,
        )],
    }
}

/// Table 5: overhead sources of IceClave.
pub fn table5(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Table 5: overhead sources",
        &["source", "modeled/measured", "paper"],
    );
    // Lifecycle constants are modeled from the FPGA measurements.
    table.row(&["TEE creation", "95 us", "95 us"]);
    table.row(&["TEE deletion", "58 us", "58 us"]);
    table.row(&["Context switch", "3.8 us", "3.8 us"]);

    // Memory encryption/verification: measured from the IceClave runs.
    let mut enc_ns = Vec::new();
    let mut miss_rates = Vec::new();
    let mut counter_rates = Vec::new();
    let mut mac_rates = Vec::new();
    let mut tree_rates = Vec::new();
    for kind in [
        WorkloadKind::TpchQ1,
        WorkloadKind::TpcB,
        WorkloadKind::Wordcount,
    ] {
        let r = run(Mode::IceClave, kind, cfg, &Overrides::none());
        miss_rates.push(r.cmt_miss_rate);
        enc_ns.push(r.sec_overhead.as_nanos_f64());
        counter_rates.push(r.counter_hit_rate);
        mac_rates.push(r.mac_hit_rate);
        tree_rates.push(r.tree_hit_rate);
        let _ = &r;
    }
    // Per-operation means come from a dedicated micro-run.
    let micro = run(
        Mode::IceClaveSc64,
        WorkloadKind::TpcB,
        cfg,
        &Overrides::none(),
    );
    table.row(&[
        "Memory encryption (mean/write)".to_string(),
        format!(
            "{:.1} ns",
            micro.mem_time.as_nanos_f64() / micro.output.rows.max(1) as f64
        ),
        "102.6 ns".to_string(),
    ]);
    table.row(&[
        "Memory verification (cmt miss rate)".to_string(),
        fmt_pct(miss_rates.iter().sum::<f64>() / miss_rates.len() as f64),
        "0.17%".to_string(),
    ]);
    // Per-block-kind counter-cache hit rates: the split the
    // metadata-hierarchy work attributes DRAM traffic by (and the
    // per-ticket accounting hook for hierarchical WFQ).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    table.row(&[
        "Counter-cache hit rate (counter blocks)".to_string(),
        fmt_pct(mean(&counter_rates)),
        "n/a".to_string(),
    ]);
    table.row(&[
        "Counter-cache hit rate (data MACs)".to_string(),
        fmt_pct(mean(&mac_rates)),
        "n/a (colocated)".to_string(),
    ]);
    table.row(&[
        "Counter-cache hit rate (tree nodes)".to_string(),
        fmt_pct(mean(&tree_rates)),
        "n/a".to_string(),
    ]);

    // Cipher engine area (§5: 1.6% of the controller).
    let area = CipherAreaModel::default().report();
    table.row(&[
        "Cipher engine area".to_string(),
        fmt_pct(area.fraction_of_controller),
        "1.6%".to_string(),
    ]);

    let avg_miss = miss_rates.iter().sum::<f64>() / miss_rates.len() as f64;
    FigureReport {
        table,
        summary: vec![
            ("avg CMT miss rate (paper: 0.0017)".into(), avg_miss),
            (
                "cipher area fraction (paper: 0.016)".into(),
                area.fraction_of_controller,
            ),
        ],
    }
}

/// Table 6: extra memory traffic from encryption and verification.
pub fn table6(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Table 6: extra memory traffic of memory protection",
        &[
            "workload",
            "encryption",
            "verification",
            "paper enc",
            "paper ver",
        ],
    );
    let paper: &[(WorkloadKind, f64, f64)] = &[
        (WorkloadKind::Arithmetic, 0.0305, 0.0227),
        (WorkloadKind::Aggregate, 0.0306, 0.0226),
        (WorkloadKind::Filter, 0.0304, 0.0226),
        (WorkloadKind::TpchQ1, 0.0299, 0.0222),
        (WorkloadKind::TpchQ3, 0.0562, 0.045),
        (WorkloadKind::TpchQ12, 0.0511, 0.0378),
        (WorkloadKind::TpchQ14, 0.1028, 0.0539),
        (WorkloadKind::TpchQ19, 0.362, 0.2475),
        (WorkloadKind::TpcB, 0.4692, 0.3668),
        (WorkloadKind::TpcC, 0.3909, 0.3172),
        (WorkloadKind::Wordcount, 0.6745, 0.4381),
    ];
    let mut encs = Vec::new();
    let mut vers = Vec::new();
    for &(kind, paper_enc, paper_ver) in paper {
        let r = run(Mode::IceClave, kind, cfg, &Overrides::none());
        encs.push(r.enc_traffic);
        vers.push(r.ver_traffic);
        table.row(&[
            kind.label().to_string(),
            fmt_pct(r.enc_traffic),
            fmt_pct(r.ver_traffic),
            fmt_pct(paper_enc),
            fmt_pct(paper_ver),
        ]);
    }
    FigureReport {
        table,
        summary: vec![
            (
                "avg encryption traffic overhead (paper: 0.2026)".into(),
                encs.iter().sum::<f64>() / encs.len() as f64,
            ),
            (
                "avg verification traffic overhead (paper: 0.1451)".into(),
                vers.iter().sum::<f64>() / vers.len() as f64,
            ),
        ],
    }
}

/// Figure 11: Host / Host+SGX / ISC / IceClave with runtime breakdown.
pub fn fig11(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Figure 11: normalized runtime and breakdown (lower is better)",
        &[
            "workload",
            "mode",
            "norm runtime",
            "load",
            "compute",
            "mem-encrypt",
        ],
    );
    let mut ice_vs_host = Vec::new();
    let mut ice_vs_sgx = Vec::new();
    let mut ice_vs_isc = Vec::new();
    for kind in WorkloadKind::ALL {
        let results: Vec<RunResult> = Mode::FIGURE11
            .iter()
            .map(|&m| run(m, kind, cfg, &Overrides::none()))
            .collect();
        let host_total = results[0].total;
        for r in &results {
            let norm = r.total / host_total;
            table.row(&[
                kind.label().to_string(),
                r.mode.label().to_string(),
                format!("{norm:.3}"),
                format!("{:.3}", r.load_stall / host_total),
                format!(
                    "{:.3}",
                    (r.ops_time + r.mem_time).saturating_sub(r.sec_overhead) / host_total
                ),
                format!("{:.3}", r.sec_overhead / host_total),
            ]);
        }
        let ice = &results[3];
        ice_vs_host.push(ice.speedup_over(&results[0]));
        ice_vs_sgx.push(ice.speedup_over(&results[1]));
        ice_vs_isc.push(ice.total / results[2].total - 1.0);
    }
    FigureReport {
        table,
        summary: vec![
            (
                "IceClave speedup over Host, geomean (paper: 2.31x)".into(),
                geomean(ice_vs_host.iter().copied()),
            ),
            (
                "IceClave speedup over Host+SGX, geomean (paper: 2.38x)".into(),
                geomean(ice_vs_sgx.iter().copied()),
            ),
            (
                "IceClave overhead vs ISC, mean (paper: 7.6%)".into(),
                ice_vs_isc.iter().sum::<f64>() / ice_vs_isc.len() as f64,
            ),
        ],
    }
}

/// Shared driver for the channel sweeps of Figures 12 and 13.
fn channel_sweep(
    cfg: &WorkloadConfig,
    baseline_mode: Mode,
    title: &str,
    paper_note: &str,
) -> FigureReport {
    let channels = [4u32, 8, 16, 32];
    let mut header: Vec<String> = vec!["workload".into()];
    header.extend(channels.iter().map(|c| format!("{c} ch")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(title, &header_refs);
    let mut all = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut cells = vec![kind.label().to_string()];
        for &ch in &channels {
            let overrides = Overrides {
                channels: Some(ch),
                ..Overrides::none()
            };
            let ice = run(Mode::IceClave, kind, cfg, &overrides);
            let base = run(baseline_mode, kind, cfg, &overrides);
            let speedup = ice.speedup_over(&base);
            all.push(speedup);
            cells.push(fmt_x(speedup));
        }
        table.row(&cells);
    }
    FigureReport {
        table,
        summary: vec![(paper_note.into(), geomean(all))],
    }
}

/// Figure 12: IceClave speedup over Host as channels scale 4→32.
pub fn fig12(cfg: &WorkloadConfig) -> FigureReport {
    channel_sweep(
        cfg,
        Mode::Host,
        "Figure 12: speedup vs Host across channel counts",
        "geomean speedup vs Host across sweep (paper: 1.7-5.0x)",
    )
}

/// Figure 13: IceClave vs ISC as channels scale (overhead stays small).
pub fn fig13(cfg: &WorkloadConfig) -> FigureReport {
    channel_sweep(
        cfg,
        Mode::Isc,
        "Figure 13: speedup vs ISC across channel counts",
        "geomean IceClave/ISC across sweep (paper: ~0.92, overhead <=28%)",
    )
}

/// Figure 14: speedup vs Host as flash read latency sweeps 10–110 us.
pub fn fig14(cfg: &WorkloadConfig) -> FigureReport {
    let latencies = [10u64, 20, 50, 80, 110];
    let mut header: Vec<String> = vec!["workload".into()];
    header.extend(latencies.iter().map(|l| format!("{l}us")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Figure 14: speedup vs Host across flash read latencies",
        &header_refs,
    );
    let mut all = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut cells = vec![kind.label().to_string()];
        for &us in &latencies {
            let overrides = Overrides {
                flash_read_latency: Some(SimDuration::from_micros(us)),
                ..Overrides::none()
            };
            let ice = run(Mode::IceClave, kind, cfg, &overrides);
            let host = run(Mode::Host, kind, cfg, &overrides);
            let speedup = ice.speedup_over(&host);
            all.push(speedup);
            cells.push(fmt_x(speedup));
        }
        table.row(&cells);
    }
    FigureReport {
        table,
        summary: vec![(
            "geomean speedup vs Host across sweep (paper: 1.8-3.2x)".into(),
            geomean(all),
        )],
    }
}

/// Figure 15: speedup vs Host across in-storage core models.
pub fn fig15(cfg: &WorkloadConfig) -> FigureReport {
    let cores = [
        CoreModel::a77_2_8ghz(),
        CoreModel::a72_1_6ghz(),
        CoreModel::a72_0_8ghz(),
        CoreModel::a53_1_6ghz(),
    ];
    let mut header: Vec<String> = vec!["workload".into()];
    header.extend(cores.iter().map(|c| c.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Figure 15: speedup vs Host across in-storage cores",
        &header_refs,
    );
    let host = |kind| run(Mode::Host, kind, cfg, &Overrides::none());
    let mut by_core: Vec<Vec<f64>> = vec![Vec::new(); cores.len()];
    for kind in WorkloadKind::ALL {
        let host_result = host(kind);
        let mut cells = vec![kind.label().to_string()];
        for (i, core) in cores.iter().enumerate() {
            let overrides = Overrides {
                core: Some(core.clone()),
                ..Overrides::none()
            };
            let ice = run(Mode::IceClave, kind, cfg, &overrides);
            let speedup = ice.speedup_over(&host_result);
            by_core[i].push(speedup);
            cells.push(fmt_x(speedup));
        }
        table.row(&cells);
    }
    // The paper reports a 13.7–33.4% drop from the frequency scaling.
    let a72 = geomean(by_core[1].iter().copied());
    let a72_slow = geomean(by_core[2].iter().copied());
    FigureReport {
        table,
        summary: vec![(
            "perf drop A72 1.6GHz -> 0.8GHz (paper: 13.7-33.4%)".into(),
            1.0 - a72_slow / a72,
        )],
    }
}

/// Figure 16: ISC and IceClave with 4 GiB vs 2 GiB of SSD DRAM.
pub fn fig16(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Figure 16: SSD DRAM capacity sensitivity (normalized to ISC/4GiB)",
        &["workload", "ISC 4G", "IceClave 4G", "ISC 2G", "IceClave 2G"],
    );
    let mut drops = Vec::new();
    for kind in WorkloadKind::ALL {
        let small = Overrides {
            dram_capacity: Some(ByteSize::from_gib(2)),
            ..Overrides::none()
        };
        let isc4 = run(Mode::Isc, kind, cfg, &Overrides::none());
        let ice4 = run(Mode::IceClave, kind, cfg, &Overrides::none());
        let isc2 = run(Mode::Isc, kind, cfg, &small);
        let ice2 = run(Mode::IceClave, kind, cfg, &small);
        drops.push(isc2.total / isc4.total - 1.0);
        table.row(&[
            kind.label().to_string(),
            "1.000".to_string(),
            format!("{:.3}", isc4.total / ice4.total),
            format!("{:.3}", isc4.total / isc2.total),
            format!("{:.3}", isc4.total / ice2.total),
        ]);
    }
    FigureReport {
        table,
        summary: vec![(
            "max ISC slowdown at 2GiB (paper: 12-44%)".into(),
            drops.iter().copied().fold(0.0f64, f64::max),
        )],
    }
}

/// The partner sets of Figure 17: TPC-C colocated with each workload.
pub fn fig17(cfg: &WorkloadConfig) -> FigureReport {
    let partners = [
        WorkloadKind::Aggregate,
        WorkloadKind::Arithmetic,
        WorkloadKind::Filter,
        WorkloadKind::TpchQ1,
        WorkloadKind::TpchQ3,
        WorkloadKind::TpchQ12,
        WorkloadKind::TpchQ14,
        WorkloadKind::TpchQ19,
        WorkloadKind::TpcB,
    ];
    let mut table = TextTable::new(
        "Figure 17: two colocated tenants (TPC-C + partner), normalized speedup",
        &["pair", "normalized speedup"],
    );
    let mut slowdowns = Vec::new();
    for partner in partners {
        let pair = [WorkloadKind::TpcC, partner];
        let norm = colocation_normalized_speedup(&pair, cfg);
        slowdowns.push(1.0 - norm);
        table.row(&[format!("TC+{}", short(partner)), format!("{norm:.3}")]);
    }
    FigureReport {
        table,
        summary: vec![(
            "mean slowdown under 2-way colocation (paper: 6.1-15.7%)".into(),
            slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
        )],
    }
}

/// The four-tenant mixes of Figure 18.
pub fn fig18(cfg: &WorkloadConfig) -> FigureReport {
    use WorkloadKind as W;
    let quads: [[WorkloadKind; 4]; 9] = [
        [W::TpcC, W::Aggregate, W::Arithmetic, W::Filter],
        [W::TpcC, W::TpchQ1, W::TpchQ3, W::TpchQ12],
        [W::TpcC, W::TpchQ12, W::TpchQ14, W::TpchQ19],
        [W::TpcC, W::TpcB, W::Aggregate, W::TpchQ1],
        [W::TpcB, W::Aggregate, W::Arithmetic, W::Filter],
        [W::TpcB, W::TpchQ1, W::TpchQ3, W::TpchQ12],
        [W::TpcB, W::TpchQ12, W::TpchQ14, W::TpchQ19],
        [W::TpchQ1, W::TpchQ3, W::TpchQ12, W::TpchQ14],
        [W::TpchQ3, W::TpchQ12, W::TpchQ14, W::TpchQ19],
    ];
    let mut table = TextTable::new(
        "Figure 18: four colocated tenants, normalized speedup",
        &["mix", "normalized speedup"],
    );
    let mut slowdowns = Vec::new();
    for quad in quads {
        let norm = colocation_normalized_speedup(&quad, cfg);
        slowdowns.push(1.0 - norm);
        let label = quad.iter().map(|k| short(*k)).collect::<Vec<_>>().join("+");
        table.row(&[label, format!("{norm:.3}")]);
    }
    FigureReport {
        table,
        summary: vec![(
            "mean slowdown under 4-way colocation (paper: 21.4%)".into(),
            slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
        )],
    }
}

/// Geomean over the tenants of `alone / colocated` runtime.
fn colocation_normalized_speedup(kinds: &[WorkloadKind], cfg: &WorkloadConfig) -> f64 {
    let colocated = run_colocated(kinds, cfg);
    geomean(colocated.iter().map(|tenant| {
        let solo = run(Mode::IceClave, tenant.kind, cfg, &Overrides::none());
        (solo.total / tenant.total).min(1.0)
    }))
}

/// Design-choice ablation: the two-dimensional counter-metadata
/// hierarchy sweep — L1 (on-chip SRAM cache) × L2 (MAC-sealed
/// reserved-DRAM store). The scan rows are the controlled microbench
/// over a working set 4× the L1's split-counter coverage (steady-state
/// mean read overhead in ns); the workload rows show the end-to-end
/// mem-time trend. See [`crate::ablation`] for the grids and the
/// `ablation_counter_cache` bench for the JSON baseline + acceptance.
pub fn ablation_counter_cache(cfg: &WorkloadConfig) -> FigureReport {
    use crate::ablation::{scan_sweep, workload_sweep};
    ablation_report(&scan_sweep(), &workload_sweep(cfg))
}

/// Formats already-computed ablation sweeps as a [`FigureReport`] (the
/// bench computes the sweeps once for the JSON baseline and reuses them
/// here).
pub fn ablation_report(
    scan: &[crate::ablation::ScanPoint],
    workload: &[crate::ablation::WorkloadPoint],
) -> FigureReport {
    use crate::ablation::L2_SWEEP_MIB;

    let mut header: Vec<String> = vec!["config".into()];
    header.extend(L2_SWEEP_MIB.iter().map(|m| {
        if *m == 0 {
            "L2 off".to_string()
        } else {
            format!("L2 {m}M")
        }
    }));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Ablation: metadata hierarchy — scan mean read overhead (ns) and workload mem time (norm. to L2 off)",
        &header_refs,
    );

    let mut summaries = Vec::new();
    for chunk in scan.chunks(L2_SWEEP_MIB.len()) {
        let l1 = chunk[0].l1;
        let mut cells = vec![format!("scan ws=4x, L1 {l1}")];
        cells.extend(
            chunk
                .iter()
                .map(|p| format!("{:.1}", p.mean_read_overhead.as_nanos_f64())),
        );
        table.row(&cells);
        let off = chunk[0].mean_read_overhead.as_nanos_f64();
        if let Some(l2_8m) = chunk.iter().find(|p| p.l2 == ByteSize::from_mib(8)) {
            summaries.push((
                format!("scan L1 {l1}: overhead ratio L2-off / 8MiB-L2 (target >= 1.3)"),
                off / l2_8m.mean_read_overhead.as_nanos_f64(),
            ));
        }
    }

    for chunk in workload.chunks(crate::ablation::WORKLOAD_L2_MIB.len()) {
        let p0 = &chunk[0];
        let mut cells = vec![format!(
            "{} ({}) L1 {}",
            p0.workload.label(),
            p0.mode,
            p0.l1
        )];
        // Place each measured point under its matching L2 column; the
        // workload grid only covers {off, 8 MiB}.
        for &l2_mib in &L2_SWEEP_MIB {
            match chunk.iter().find(|p| p.l2 == ByteSize::from_mib(l2_mib)) {
                Some(p) => cells.push(format!("{:.3}", p.mem_time / p0.mem_time)),
                None => cells.push("-".into()),
            }
        }
        table.row(&cells);
    }

    FigureReport {
        table,
        summary: summaries,
    }
}

/// Derived energy comparison (not a numbered paper artifact; supports
/// §1/§6's claim that IceClave adds "minimal ... energy overhead" and
/// the energy motivation for in-storage computing).
pub fn energy_table(cfg: &WorkloadConfig) -> FigureReport {
    let mut table = TextTable::new(
        "Energy (derived): host vs in-storage, and the security share",
        &[
            "workload",
            "Host mJ",
            "ISC mJ",
            "IceClave mJ",
            "security share",
        ],
    );
    let mut sec_fracs = Vec::new();
    let mut savings = Vec::new();
    for kind in WorkloadKind::ALL {
        let host = run(Mode::Host, kind, cfg, &Overrides::none());
        let isc = run(Mode::Isc, kind, cfg, &Overrides::none());
        let ice = run(Mode::IceClave, kind, cfg, &Overrides::none());
        sec_fracs.push(ice.energy.security_fraction());
        savings.push(host.energy.total_uj() / ice.energy.total_uj());
        table.row(&[
            kind.label().to_string(),
            format!("{:.2}", host.energy.total_uj() / 1000.0),
            format!("{:.2}", isc.energy.total_uj() / 1000.0),
            format!("{:.2}", ice.energy.total_uj() / 1000.0),
            fmt_pct(ice.energy.security_fraction()),
        ]);
    }
    FigureReport {
        table,
        summary: vec![
            (
                "security engines' share of IceClave energy (paper: minimal)".into(),
                sec_fracs.iter().sum::<f64>() / sec_fracs.len() as f64,
            ),
            (
                "host/IceClave energy ratio, geomean".into(),
                geomean(savings.iter().copied()),
            ),
        ],
    }
}

/// The paper's short workload tags used in Figures 17/18.
fn short(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Aggregate => "AG",
        WorkloadKind::Arithmetic => "AR",
        WorkloadKind::Filter => "FI",
        WorkloadKind::TpchQ1 => "H1",
        WorkloadKind::TpchQ3 => "H3",
        WorkloadKind::TpchQ12 => "H12",
        WorkloadKind::TpchQ14 => "H14",
        WorkloadKind::TpchQ19 => "H19",
        WorkloadKind::TpcB => "TB",
        WorkloadKind::TpcC => "TC",
        WorkloadKind::Wordcount => "WC",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::test()
    }

    #[test]
    fn table1_has_eleven_rows() {
        let report = table1(&cfg());
        assert_eq!(report.table.len(), 11);
    }

    #[test]
    fn fig5_shows_protected_region_winning() {
        let report = fig5(&cfg());
        assert_eq!(report.table.len(), 11);
        let (_, avg) = &report.summary[0];
        assert!(*avg > 0.0, "secure-world placement must be slower: {avg}");
    }

    #[test]
    fn fig11_normalizes_to_host() {
        // Large enough that TEE lifecycle costs amortize (they are
        // ~200us fixed, noise at the bench scale the repro uses).
        let cfg = WorkloadConfig {
            functional_bytes: iceclave_types::ByteSize::from_mib(4),
            ..WorkloadConfig::test()
        };
        let report = fig11(&cfg);
        assert_eq!(report.table.len(), 44);
        let speedup = report.summary[0].1;
        assert!(speedup > 1.0, "IceClave beats Host on average: {speedup}");
        let overhead = report.summary[2].1;
        assert!(
            (0.0..0.35).contains(&overhead),
            "overhead vs ISC: {overhead}"
        );
    }

    #[test]
    fn display_renders_summary() {
        let report = table1(&cfg());
        let s = report.to_string();
        assert!(s.contains("Table 1"));
        assert!(s.contains("write-heavy"));
    }
}
