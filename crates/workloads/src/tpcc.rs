//! TPC-C: order-processing transactions in a warehouse (Table 4).
//!
//! The stock table is the dataset. Each transaction (a NewOrder-like
//! mix) touches ten random stock pages plus one customer page, updates
//! stock quantities and inserts order lines. The documented write model
//! (≈66 DRAM-visible lines per transaction: 10 stock updates x 2 lines,
//! ~15 order-line inserts at 1.5 lines, order/district/customer rows and
//! log records) lands on Table 1's 9.05e-2 ratio against ~734 line
//! reads.

use std::collections::HashMap;

use iceclave_types::{ByteSize, Lpn};

use crate::data::{self, row_hash, row_size};
use crate::{Batch, LpnRun, OpClass, OpCounts, Workload, WorkloadConfig, WorkloadOutput};

/// Transactions per emitted batch.
const TXNS_PER_BATCH: u64 = 16;

/// Stock pages read per transaction (ten order lines).
const ITEMS_PER_TXN: u64 = 10;

/// DRAM-visible line writes per transaction.
const WRITES_PER_TXN: u64 = 66;

/// TPC-C warehouse transactions.
#[derive(Clone, Debug)]
pub struct TpcC {
    config: WorkloadConfig,
}

impl TpcC {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        TpcC { config: *config }
    }

    fn stock_rows(&self) -> u64 {
        data::rows_for(self.config.functional_bytes.as_bytes(), row_size::STOCK)
    }

    fn txn_count(&self) -> u64 {
        (self.dataset_pages() / 8).max(32)
    }
}

impl Workload for TpcC {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn dataset_pages(&self) -> u64 {
        data::pages_for(self.stock_rows(), row_size::STOCK)
    }

    fn working_set(&self) -> ByteSize {
        // District/customer caches and the order-line append buffer.
        ByteSize::from_kib(64)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let stock_rows = self.stock_rows();
        let rows_per_page = 4096 / row_size::STOCK;
        let txns = self.txn_count();
        let mut stock_qty: HashMap<u64, i64> = HashMap::new();
        let mut checksum = 0.0f64;
        let mut committed = 0u64;

        let mut t = 0u64;
        while t < txns {
            let batch_txns = TXNS_PER_BATCH.min(txns - t);
            let mut flash_reads = Vec::new();
            let mut ops = OpCounts::new();
            for k in t..t + batch_txns {
                // Ten stock line items plus one customer page.
                for line in 0..ITEMS_PER_TXN {
                    let h = row_hash(seed, 301, k * ITEMS_PER_TXN + line);
                    let item = h % stock_rows;
                    let qty = 1 + (h >> 32) % 10;
                    let entry = stock_qty
                        .entry(item)
                        .or_insert_with(|| 50 + (row_hash(seed, 302, item) % 50) as i64);
                    *entry -= qty as i64;
                    if *entry < 10 {
                        *entry += 91; // restock rule
                    }
                    checksum += *entry as f64;
                    flash_reads.push(LpnRun::new(Lpn::new(item / rows_per_page), 1));
                }
                let customer_page = row_hash(seed, 303, k) % self.dataset_pages().max(1);
                flash_reads.push(LpnRun::new(Lpn::new(customer_page), 1));
                committed += 1;
                ops.add(OpClass::TxnLogic, 5);
                ops.add(OpClass::HashProbe, ITEMS_PER_TXN);
                ops.add(OpClass::Arithmetic, 12);
                ops.add(OpClass::ScanTuple, ITEMS_PER_TXN + 1);
            }
            emit(Batch {
                flash_reads,
                random_access: true,
                input_lines: batch_txns * (ITEMS_PER_TXN + 1) * 64,
                staged_reads: 0,
                working_reads: batch_txns * 30,
                working_writes: batch_txns * WRITES_PER_TXN,
                ops,
            });
            t += batch_txns;
        }
        WorkloadOutput {
            rows: committed,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured_write_ratio;

    fn workload() -> TpcC {
        TpcC::new(&WorkloadConfig::test())
    }

    #[test]
    fn all_txns_commit_deterministically() {
        let w = workload();
        let a = w.run(&mut |_| {});
        assert_eq!(a.rows, w.txn_count());
        assert_eq!(a, w.run(&mut |_| {}));
    }

    #[test]
    fn eleven_pages_per_txn() {
        let w = workload();
        let mut pages = 0u64;
        let out = w.run(&mut |b| pages += b.flash_pages());
        assert_eq!(pages, out.rows * (ITEMS_PER_TXN + 1));
    }

    #[test]
    fn write_ratio_matches_table1() {
        let measured = measured_write_ratio(&workload());
        let paper = 9.05e-2;
        assert!(
            (paper / 1.5..paper * 1.5).contains(&measured),
            "measured {measured:.3} vs paper {paper:.3}"
        );
    }

    #[test]
    fn restock_rule_keeps_quantities_positive() {
        // Implied by construction; validate via checksum stability on a
        // second, longer-config run.
        let big = TpcC::new(&WorkloadConfig {
            functional_bytes: ByteSize::from_mib(1),
            ..WorkloadConfig::test()
        });
        let out = big.run(&mut |_| {});
        assert!(out.checksum > 0.0);
    }
}
