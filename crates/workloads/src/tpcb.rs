//! TPC-B: debit/credit transactions against a large bank (Table 4).
//!
//! The account table is the dataset; each transaction reads one random
//! account page from flash, applies a balance delta, and appends to the
//! history/log. Branch and teller tables are small and cache-resident.
//! The documented write model (≈3.5 DRAM-visible lines per transaction:
//! account update, history append, log) lands on Table 1's 5.19e-2
//! write ratio against the ~68 line reads per transaction.

use std::collections::HashMap;

use iceclave_types::{ByteSize, Lpn};

use crate::data::{self, row_hash, row_size};
use crate::{Batch, LpnRun, OpClass, OpCounts, Workload, WorkloadConfig, WorkloadOutput};

/// Transactions per emitted batch.
const TXNS_PER_BATCH: u64 = 128;

/// DRAM-visible line writes per transaction (account + history + log).
const WRITES_PER_TXN: f64 = 3.5;

/// TPC-B bank transactions.
#[derive(Clone, Debug)]
pub struct TpcB {
    config: WorkloadConfig,
}

impl TpcB {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        TpcB { config: *config }
    }

    fn accounts(&self) -> u64 {
        data::rows_for(self.config.functional_bytes.as_bytes(), row_size::ACCOUNT)
    }

    /// One transaction reads one random account page; the run touches
    /// about half the dataset.
    fn txn_count(&self) -> u64 {
        (self.dataset_pages() / 2).max(64)
    }
}

impl Workload for TpcB {
    fn name(&self) -> &'static str {
        "TPC-B"
    }

    fn dataset_pages(&self) -> u64 {
        data::pages_for(self.accounts(), row_size::ACCOUNT)
    }

    fn working_set(&self) -> ByteSize {
        // Branch + teller tables.
        ByteSize::from_kib(16)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let accounts = self.accounts();
        let pages = self.dataset_pages();
        let rows_per_page = 4096 / row_size::ACCOUNT;
        let txns = self.txn_count();
        let mut balances: HashMap<u64, i64> = HashMap::new();
        let mut checksum = 0.0f64;

        let mut t = 0u64;
        while t < txns {
            let batch_txns = TXNS_PER_BATCH.min(txns - t);
            let mut flash_reads = Vec::with_capacity(batch_txns as usize);
            let mut ops = OpCounts::new();
            for k in t..t + batch_txns {
                let h = row_hash(seed, 201, k);
                let account = h % accounts;
                let delta = (row_hash(seed, 202, k) % 2001) as i64 - 1000;
                let balance = balances
                    .entry(account)
                    .or_insert_with(|| data::account_balance(seed, account));
                *balance += delta;
                checksum += *balance as f64;
                flash_reads.push(LpnRun::new(Lpn::new(account / rows_per_page), 1));
                ops.add(OpClass::TxnLogic, 1);
                ops.add(OpClass::ScanTuple, 1);
                ops.add(OpClass::Arithmetic, 3);
            }
            emit(Batch {
                flash_reads,
                random_access: true,
                input_lines: batch_txns * 64,
                staged_reads: 0,
                working_reads: batch_txns * 4, // teller/branch lines
                working_writes: (batch_txns as f64 * WRITES_PER_TXN) as u64,
                ops,
            });
            t += batch_txns;
        }
        let _ = pages;
        WorkloadOutput {
            rows: txns,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured_write_ratio;

    fn workload() -> TpcB {
        TpcB::new(&WorkloadConfig::test())
    }

    #[test]
    fn txns_are_committed_and_deterministic() {
        let w = workload();
        let a = w.run(&mut |_| {});
        let b = w.run(&mut |_| {});
        assert_eq!(a, b);
        assert_eq!(a.rows, w.txn_count());
    }

    #[test]
    fn accesses_are_random_single_pages() {
        let w = workload();
        w.run(&mut |batch| {
            assert!(batch.random_access);
            assert!(batch.flash_reads.iter().all(|r| r.count == 1));
            assert!(batch
                .flash_reads
                .iter()
                .all(|r| r.start.raw() < w.dataset_pages()));
        });
    }

    #[test]
    fn write_ratio_matches_table1() {
        let measured = measured_write_ratio(&workload());
        let paper = 5.19e-2;
        assert!(
            (paper / 1.5..paper * 1.5).contains(&measured),
            "measured {measured:.3} vs paper {paper:.3}"
        );
    }

    #[test]
    fn balance_deltas_apply() {
        // The checksum differs from the no-op sum of initial balances.
        let w = workload();
        let out = w.run(&mut |_| {});
        let mut untouched = 0.0f64;
        for k in 0..w.txn_count() {
            let account = row_hash(w.config.seed, 201, k) % w.accounts();
            untouched += data::account_balance(w.config.seed, account) as f64;
        }
        assert_ne!(out.checksum, untouched);
    }
}
