//! Wordcount over a long text (Table 4, from the Biscuit paper's
//! workload set).
//!
//! Tokenizes a Zipf-distributed corpus and counts word frequencies in a
//! hash map. The map's modeled size (vocabulary grows with the corpus)
//! far exceeds the SSD core's LLC, so probe reads and count updates are
//! largely DRAM-visible — this is the paper's most write-intensive
//! workload (Table 1: 0.461). Hot Zipf head words stay cache-resident:
//! the documented visibility calibration is 35% of probes and 20.5% of
//! updates reaching DRAM, which reproduces the 0.46 ratio.

use std::collections::HashMap;

use iceclave_types::{ByteSize, Lpn};

use crate::data::{self, row_size};
use crate::{
    Batch, LpnRun, OpClass, OpCounts, Workload, WorkloadConfig, WorkloadOutput, PAGES_PER_BATCH,
};

/// Average token footprint in the corpus (bytes).
const TOKEN_BYTES: u64 = row_size::TOKEN;

/// Fraction of hash probes missing the processor caches (the Zipf head
/// is cache-resident and most probes hit it).
const PROBE_VISIBILITY: f64 = 0.05;

/// Fraction of count updates whose dirty lines reach DRAM (write
/// coalescing on hot lines absorbs most; the cold Zipf tail leaks).
const UPDATE_VISIBILITY: f64 = 0.055;

/// Wordcount.
#[derive(Clone, Debug)]
pub struct Wordcount {
    config: WorkloadConfig,
}

impl Wordcount {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Wordcount { config: *config }
    }

    fn tokens(&self) -> u64 {
        self.config.functional_bytes.as_bytes() / TOKEN_BYTES
    }

    fn vocabulary(&self) -> u64 {
        // Heaps'-law-flavored vocabulary growth.
        (self.tokens() as f64).powf(0.7).max(128.0) as u64
    }
}

impl Workload for Wordcount {
    fn name(&self) -> &'static str {
        "Wordcount"
    }

    fn dataset_pages(&self) -> u64 {
        (self.config.functional_bytes.as_bytes() / 4096).max(1)
    }

    fn working_set(&self) -> ByteSize {
        // At the paper's 32 GiB corpus the count map is ~100 MiB, but
        // DRAM-visible traffic concentrates on the Zipf head; the
        // effective random-access footprint is ~16 MiB — enough to
        // thrash the 128 KiB counter cache (Table 6's 67%/44% extra
        // traffic) without every access missing.
        ByteSize::from_mib(16)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let pages = self.dataset_pages();
        let tokens = self.tokens();
        let vocab = self.vocabulary();
        let tokens_per_page = 4096 / TOKEN_BYTES;
        let mut counts: HashMap<u64, u64> = HashMap::new();

        let mut page = 0u64;
        while page < pages {
            let batch_pages = PAGES_PER_BATCH.min(pages - page);
            let first = page * tokens_per_page;
            let last = ((page + batch_pages) * tokens_per_page).min(tokens);
            let batch_tokens = last.saturating_sub(first);
            for i in first..last {
                let word = data::token(seed, i, vocab);
                *counts.entry(word).or_insert(0) += 1;
            }
            // Tokenizing costs a couple of cycles per short word on an
            // OoO core; batched probing amortizes the hash work (the
            // Biscuit wordcount the paper borrows is similarly lean).
            let mut ops = OpCounts::new();
            ops.add(OpClass::StringOp, batch_tokens);
            ops.add(OpClass::HashProbe, batch_tokens / 4);
            emit(Batch {
                flash_reads: vec![LpnRun::new(Lpn::new(page), batch_pages as u32)],
                random_access: false,
                input_lines: batch_pages * 64,
                staged_reads: 0,
                working_reads: (batch_tokens as f64 * PROBE_VISIBILITY) as u64,
                working_writes: (batch_tokens as f64 * UPDATE_VISIBILITY) as u64,
                ops,
            });
            page += batch_pages;
        }
        let checksum: f64 = counts.values().map(|&c| (c as f64) * (c as f64)).sum();
        WorkloadOutput {
            rows: counts.len() as u64,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured_write_ratio;

    fn workload() -> Wordcount {
        Wordcount::new(&WorkloadConfig::test())
    }

    #[test]
    fn counts_every_token() {
        let w = workload();
        let out = w.run(&mut |_| {});
        // Total counts equal total tokens: verify via fresh recount.
        let mut total = 0u64;
        let mut map: HashMap<u64, u64> = HashMap::new();
        for i in 0..w.tokens() {
            *map.entry(data::token(w.config.seed, i, w.vocabulary()))
                .or_insert(0) += 1;
            total += 1;
        }
        assert_eq!(out.rows, map.len() as u64);
        assert_eq!(total, w.tokens());
    }

    #[test]
    fn zipf_head_dominates() {
        let w = workload();
        let mut map: HashMap<u64, u64> = HashMap::new();
        for i in 0..w.tokens() {
            *map.entry(data::token(w.config.seed, i, w.vocabulary()))
                .or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = map.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = freqs.iter().take(freqs.len() / 10 + 1).sum();
        let total: u64 = freqs.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.3,
            "head {head} of {total} is not skewed"
        );
    }

    #[test]
    fn write_ratio_matches_table1() {
        let measured = measured_write_ratio(&workload());
        let paper = 0.461;
        assert!(
            (paper / 1.4..paper * 1.4).contains(&measured),
            "measured {measured:.3} vs paper {paper:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let w = workload();
        assert_eq!(w.run(&mut |_| {}), w.run(&mut |_| {}));
    }
}
