//! The three synthetic database operators of Table 4: arithmetic,
//! aggregation and filtering over 64-byte records.
//!
//! Each scans the whole dataset once. Their DRAM write traffic is tiny
//! (Table 1: ~2e-4): accumulators and small group states live in the
//! processor caches and only spill periodically; the documented model
//! is one result-line write-back per `SPILL_PERIOD` rows plus, for the
//! filter, the streamed match output.

use iceclave_types::{ByteSize, Lpn};

use crate::data::{self, row_hash};
use crate::{
    Batch, LpnRun, OpClass, OpCounts, Workload, WorkloadConfig, WorkloadOutput, PAGES_PER_BATCH,
};

/// 64-byte records, 64 per page.
const ROW_SIZE: u64 = 64;
const ROWS_PER_PAGE: u64 = 4096 / ROW_SIZE;

/// Rows between accumulator spills to DRAM (calibrated to Table 1's
/// ~2e-4 write ratio: one 64 B line per 4096 64 B-row reads).
const SPILL_PERIOD: u64 = 4096;

/// Filter selectivity: 0.18% of rows match, each emitting an 8-byte row
/// id into the streamed result (Table 1: 1.71e-4).
const FILTER_PERMILLE_X10: u64 = 18;

fn record_value(seed: u64, i: u64) -> (f64, f64, f64) {
    let h = row_hash(seed, 101, i);
    let a = (h % 1000) as f64 / 10.0;
    let b = ((h >> 16) % 1000) as f64 / 10.0;
    let c = ((h >> 32) % 1000) as f64 / 10.0;
    (a, b, c)
}

/// Shared scan driver: iterates rows page-batch by page-batch, calls
/// `per_row`, and emits a batch with the accumulated op counts.
fn scan<F>(
    config: &WorkloadConfig,
    ops_per_row: &[(OpClass, u64)],
    mut per_row: F,
    emit: &mut dyn FnMut(Batch),
    extra_writes_per_row: f64,
) -> u64
where
    F: FnMut(u64),
{
    let rows = data::rows_for(config.functional_bytes.as_bytes(), ROW_SIZE);
    let pages = data::pages_for(rows, ROW_SIZE);
    let mut spill_credit = 0.0f64;
    let mut page = 0u64;
    while page < pages {
        let batch_pages = PAGES_PER_BATCH.min(pages - page);
        let first_row = page * ROWS_PER_PAGE;
        let last_row = ((page + batch_pages) * ROWS_PER_PAGE).min(rows);
        let batch_rows = last_row - first_row;
        for i in first_row..last_row {
            per_row(i);
        }
        let mut ops = OpCounts::new();
        for &(class, n) in ops_per_row {
            ops.add(class, n * batch_rows);
        }
        spill_credit +=
            batch_rows as f64 / SPILL_PERIOD as f64 + extra_writes_per_row * batch_rows as f64;
        let writes = spill_credit.floor() as u64;
        spill_credit -= writes as f64;
        emit(Batch {
            flash_reads: vec![LpnRun::new(Lpn::new(page), batch_pages as u32)],
            random_access: false,
            input_lines: batch_pages * 64,
            staged_reads: 0,
            working_reads: 0,
            working_writes: writes,
            ops,
        });
        page += batch_pages;
    }
    rows
}

/// Mathematical operations against data records (Table 4).
#[derive(Clone, Debug)]
pub struct Arithmetic {
    config: WorkloadConfig,
}

impl Arithmetic {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Arithmetic { config: *config }
    }
}

impl Workload for Arithmetic {
    fn name(&self) -> &'static str {
        "Arithmetic"
    }

    fn dataset_pages(&self) -> u64 {
        let rows = data::rows_for(self.config.functional_bytes.as_bytes(), ROW_SIZE);
        data::pages_for(rows, ROW_SIZE)
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes(256) // a handful of accumulators
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let mut acc = 0.0f64;
        let rows = scan(
            &self.config,
            &[(OpClass::ScanTuple, 1), (OpClass::Arithmetic, 1)],
            |i| {
                let (a, b, c) = record_value(seed, i);
                acc += a * b - c;
            },
            emit,
            0.0,
        );
        WorkloadOutput {
            rows,
            checksum: acc,
        }
    }
}

/// Average-aggregation over a set of values (Table 4).
#[derive(Clone, Debug)]
pub struct Aggregate {
    config: WorkloadConfig,
}

/// Number of aggregation groups (fits in one or two cache lines).
const GROUPS: usize = 16;

impl Aggregate {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Aggregate { config: *config }
    }
}

impl Workload for Aggregate {
    fn name(&self) -> &'static str {
        "Aggregate"
    }

    fn dataset_pages(&self) -> u64 {
        let rows = data::rows_for(self.config.functional_bytes.as_bytes(), ROW_SIZE);
        data::pages_for(rows, ROW_SIZE)
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes((GROUPS * 16) as u64)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let mut sums = [0.0f64; GROUPS];
        let mut counts = [0u64; GROUPS];
        let rows = scan(
            &self.config,
            &[(OpClass::ScanTuple, 1), (OpClass::Aggregate, 1)],
            |i| {
                let (a, _, _) = record_value(seed, i);
                let g = (row_hash(seed, 102, i) % GROUPS as u64) as usize;
                sums[g] += a;
                counts[g] += 1;
            },
            emit,
            0.0,
        );
        let checksum: f64 = sums
            .iter()
            .zip(counts.iter())
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .sum();
        WorkloadOutput { rows, checksum }
    }
}

/// Feature-match filtering (Table 4).
#[derive(Clone, Debug)]
pub struct Filter {
    config: WorkloadConfig,
}

impl Filter {
    /// Creates the workload at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Filter { config: *config }
    }
}

impl Workload for Filter {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn dataset_pages(&self) -> u64 {
        let rows = data::rows_for(self.config.functional_bytes.as_bytes(), ROW_SIZE);
        data::pages_for(rows, ROW_SIZE)
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_kib(4) // match output buffer
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let mut matches = 0u64;
        let mut checksum = 0.0f64;
        // Each match appends an 8-byte row id to the streamed output:
        // 8/64 of a line per match.
        let write_per_row = (FILTER_PERMILLE_X10 as f64 / 10_000.0) * (8.0 / 64.0);
        let rows = scan(
            &self.config,
            &[(OpClass::ScanTuple, 1), (OpClass::Filter, 1)],
            |i| {
                if row_hash(seed, 103, i) % 10_000 < FILTER_PERMILLE_X10 {
                    matches += 1;
                    checksum += i as f64;
                }
            },
            emit,
            write_per_row,
        );
        let _ = rows;
        WorkloadOutput {
            rows: matches,
            checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured_write_ratio;

    fn config() -> WorkloadConfig {
        WorkloadConfig::test()
    }

    #[test]
    fn arithmetic_scans_whole_dataset() {
        let w = Arithmetic::new(&config());
        let mut pages = 0;
        let out = w.run(&mut |b| pages += b.flash_pages());
        assert_eq!(pages, w.dataset_pages());
        assert!(out.rows > 0);
        assert!(out.checksum.is_finite());
    }

    #[test]
    fn aggregate_checksum_matches_naive_recomputation() {
        let cfg = config();
        let w = Aggregate::new(&cfg);
        let out = w.run(&mut |_| {});
        // Naive recomputation.
        let rows = data::rows_for(cfg.functional_bytes.as_bytes(), ROW_SIZE);
        let mut sums = [0.0f64; GROUPS];
        let mut counts = [0u64; GROUPS];
        for i in 0..rows {
            let (a, _, _) = record_value(cfg.seed, i);
            let g = (row_hash(cfg.seed, 102, i) % GROUPS as u64) as usize;
            sums[g] += a;
            counts[g] += 1;
        }
        let expect: f64 = sums
            .iter()
            .zip(counts.iter())
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .sum();
        assert!((out.checksum - expect).abs() < 1e-9);
    }

    #[test]
    fn filter_selectivity_is_low() {
        let cfg = config();
        let w = Filter::new(&cfg);
        let out = w.run(&mut |_| {});
        let rows = data::rows_for(cfg.functional_bytes.as_bytes(), ROW_SIZE);
        let sel = out.rows as f64 / rows as f64;
        assert!(sel < 0.01, "selectivity {sel}");
    }

    #[test]
    fn write_ratios_are_near_table1() {
        // Within ~3x of the paper's profile is close enough for the
        // batch model; the repro table prints both side by side.
        for (w, paper) in [
            (
                Box::new(Arithmetic::new(&config())) as Box<dyn Workload>,
                2.02e-4,
            ),
            (Box::new(Aggregate::new(&config())), 2.08e-4),
            (Box::new(Filter::new(&config())), 1.71e-4),
        ] {
            let measured = measured_write_ratio(&*w);
            assert!(
                measured < paper * 3.0 && measured > paper / 3.0,
                "{}: measured {measured:.2e} vs paper {paper:.2e}",
                w.name()
            );
        }
    }

    #[test]
    fn ops_scale_with_rows() {
        let w = Arithmetic::new(&config());
        let mut total_ops = 0u64;
        let out = w.run(&mut |b| total_ops += b.ops.total_ops());
        // ScanTuple + Arithmetic per row.
        let rows = data::rows_for(config().functional_bytes.as_bytes(), ROW_SIZE);
        assert_eq!(total_ops, 2 * rows);
        assert!(out.rows == rows);
    }
}
