//! In-storage workloads (§6.1, Table 4).
//!
//! The eleven workloads of the paper's evaluation: three synthetic
//! database operators (arithmetic, aggregate, filter), five TPC-H
//! queries (Q1, Q3, Q12, Q14, Q19), the TPC-B and TPC-C transaction
//! mixes, and wordcount.
//!
//! Every workload **really computes** over deterministic, seeded,
//! statelessly-generated data (row *i* of a table is a pure function of
//! the seed — no gigabyte materialization), and is *instrumented*: as it
//! runs, it emits [`Batch`]es describing its demand on the platform —
//! flash pages scanned, program-visible DRAM line reads/writes, and
//! per-operator compute counts. The execution-mode pipelines in
//! `iceclave-experiments` replay those batches against the simulated
//! host or SSD.
//!
//! Two scales coexist (see DESIGN.md): the *functional* scale actually
//! computed (MBs, keeps simulation fast) and the *modeled* scale
//! (the paper's 32 GiB) used for cache-visibility decisions, so DRAM
//! write ratios (Table 1) match the paper's profile instead of the
//! miniature dataset's.
//!
//! # Examples
//!
//! ```
//! use iceclave_workloads::{WorkloadConfig, WorkloadKind};
//!
//! let config = WorkloadConfig::test();
//! let workload = WorkloadKind::TpchQ1.build(&config);
//! let mut batches = 0;
//! let output = workload.run(&mut |_batch| batches += 1);
//! assert!(batches > 0);
//! assert!(output.rows > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod synth;
pub mod tpcb;
pub mod tpcc;
pub mod tpch;
pub mod wordcount;

use std::fmt;

pub use iceclave_cpu::{OpClass, OpCounts};
use iceclave_types::{ByteSize, Lpn};

/// A run of consecutive logical pages read from flash.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct LpnRun {
    /// First logical page.
    pub start: Lpn,
    /// Number of consecutive pages.
    pub count: u32,
}

impl LpnRun {
    /// A run of `count` pages starting at `start`.
    pub fn new(start: Lpn, count: u32) -> Self {
        LpnRun { start, count }
    }

    /// Iterates the pages of the run.
    pub fn iter(&self) -> impl Iterator<Item = Lpn> + '_ {
        (0..u64::from(self.count)).map(move |i| self.start.offset(i))
    }
}

/// One unit of instrumented work: what the workload asked of the
/// platform between two emission points.
#[derive(Clone, Debug, Default)]
pub struct Batch {
    /// Flash pages to load (sequential runs for scans, single-page runs
    /// for transactional random access).
    pub flash_reads: Vec<LpnRun>,
    /// Whether the flash accesses are random point reads (eligible for
    /// the DRAM page cache) rather than a streaming scan.
    pub random_access: bool,
    /// Program-visible DRAM line reads of freshly loaded input.
    pub input_lines: u64,
    /// Random point lookups into a *staged* table (a region scanned into
    /// DRAM earlier, e.g. the part table Q14 probes). When the modeled
    /// staged region does not fit in SSD DRAM, a fraction of these turn
    /// into flash re-reads — the Figure 16 capacity effect.
    pub staged_reads: u64,
    /// Program-visible random reads in the (small) working set: hash
    /// probes, group lookups that miss the processor caches.
    pub working_reads: u64,
    /// Program-visible writes that reach DRAM (after cache absorption).
    pub working_writes: u64,
    /// Compute demand of the batch.
    pub ops: OpCounts,
}

impl Batch {
    /// Total flash pages requested by the batch.
    pub fn flash_pages(&self) -> u64 {
        self.flash_reads.iter().map(|r| u64::from(r.count)).sum()
    }

    /// Program-visible DRAM reads (input + staged + working).
    pub fn dram_reads(&self) -> u64 {
        self.input_lines + self.staged_reads + self.working_reads
    }
}

/// Final output of a workload run: enough to check determinism and
/// correctness across execution modes.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct WorkloadOutput {
    /// Result rows (or transactions committed, or distinct words).
    pub rows: u64,
    /// Order-independent checksum over the result values.
    pub checksum: f64,
}

/// Configuration shared by all workloads.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadConfig {
    /// Bytes of data actually generated and computed over.
    pub functional_bytes: ByteSize,
    /// The dataset size being *modeled* (the paper populates 32 GiB);
    /// structure sizes are scaled by `modeled/functional` before cache
    /// visibility decisions.
    pub modeled_bytes: ByteSize,
    /// Last-level cache of the executing processor (Table 3: 1 MiB L2
    /// for the SSD's A72), used to decide which working-set accesses
    /// are DRAM-visible.
    pub llc: ByteSize,
    /// Root seed for data generation.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Tiny datasets for unit tests (512 KiB functional).
    pub fn test() -> Self {
        WorkloadConfig {
            functional_bytes: ByteSize::from_kib(512),
            modeled_bytes: ByteSize::from_gib(32),
            llc: ByteSize::from_mib(1),
            seed: 42,
        }
    }

    /// Benchmark scale (32 MiB functional, modeling the paper's 32 GiB).
    pub fn bench() -> Self {
        WorkloadConfig {
            functional_bytes: ByteSize::from_mib(32),
            modeled_bytes: ByteSize::from_gib(32),
            llc: ByteSize::from_mib(1),
            seed: 42,
        }
    }

    /// How many times larger the modeled dataset is than the functional
    /// one.
    pub fn scale_factor(&self) -> f64 {
        self.modeled_bytes.as_bytes() as f64 / self.functional_bytes.as_bytes() as f64
    }

    /// Fraction of accesses to a working-set structure of (functional)
    /// size `structure` that reach DRAM: structures whose *modeled*
    /// size exceeds the LLC miss almost always; small ones are absorbed
    /// by the cache hierarchy.
    pub fn dram_visibility(&self, structure: ByteSize) -> f64 {
        let modeled = structure.as_bytes() as f64 * self.scale_factor();
        (modeled / self.llc.as_bytes() as f64).min(1.0)
    }
}

/// A paper workload: deterministic computation plus instrumentation.
pub trait Workload: fmt::Debug {
    /// Display name matching the paper's figures.
    fn name(&self) -> &'static str;

    /// Total dataset pages this workload expects populated in flash
    /// (LPNs `0..dataset_pages`, shifted by the executor for
    /// multi-tenancy).
    fn dataset_pages(&self) -> u64;

    /// The DRAM-visible random-access footprint of the workload's
    /// working structures *at the modeled (paper) scale*: fixed-size
    /// buffers (transaction records, group states, partition windows)
    /// stay small regardless of dataset size, while data-proportional
    /// structures (the wordcount map) report their paper-scale hot
    /// footprint. The executor sweeps random working accesses over
    /// exactly this span.
    fn working_set(&self) -> ByteSize;

    /// Size of the staged table region that `staged_reads` point into
    /// (functional scale; zero when the workload stages nothing).
    fn staged_bytes(&self) -> ByteSize {
        ByteSize::ZERO
    }

    /// Executes the workload, emitting instrumented batches in order,
    /// and returns the computed result.
    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput;
}

/// The eleven paper workloads (Table 4).
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum WorkloadKind {
    /// Mathematical operations against data records.
    Arithmetic,
    /// Average aggregation over a set of values.
    Aggregate,
    /// Feature-match filtering.
    Filter,
    /// TPC-H Q1: pricing summary (scan).
    TpchQ1,
    /// TPC-H Q3: shipping priority (join).
    TpchQ3,
    /// TPC-H Q12: shipping modes and order priority (join).
    TpchQ12,
    /// TPC-H Q14: market response to promotion (join).
    TpchQ14,
    /// TPC-H Q19: discounted revenue (join + aggregate).
    TpchQ19,
    /// TPC-B: bank transactions.
    TpcB,
    /// TPC-C: warehouse order transactions.
    TpcC,
    /// Wordcount over a long text (Biscuit's workload set).
    Wordcount,
}

impl WorkloadKind {
    /// All workloads in the paper's figure order.
    pub const ALL: [WorkloadKind; 11] = [
        WorkloadKind::Aggregate,
        WorkloadKind::Arithmetic,
        WorkloadKind::Filter,
        WorkloadKind::TpchQ1,
        WorkloadKind::TpchQ3,
        WorkloadKind::TpchQ12,
        WorkloadKind::TpchQ14,
        WorkloadKind::TpchQ19,
        WorkloadKind::TpcB,
        WorkloadKind::TpcC,
        WorkloadKind::Wordcount,
    ];

    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Arithmetic => "Arithmetic",
            WorkloadKind::Aggregate => "Aggregate",
            WorkloadKind::Filter => "Filter",
            WorkloadKind::TpchQ1 => "TPC-H Q1",
            WorkloadKind::TpchQ3 => "TPC-H Q3",
            WorkloadKind::TpchQ12 => "TPC-H Q12",
            WorkloadKind::TpchQ14 => "TPC-H Q14",
            WorkloadKind::TpchQ19 => "TPC-H Q19",
            WorkloadKind::TpcB => "TPC-B",
            WorkloadKind::TpcC => "TPC-C",
            WorkloadKind::Wordcount => "Wordcount",
        }
    }

    /// Table 1's measured DRAM write ratio, for comparison in reports.
    pub fn paper_write_ratio(&self) -> f64 {
        match self {
            WorkloadKind::Arithmetic => 2.02e-4,
            WorkloadKind::Aggregate => 2.08e-4,
            WorkloadKind::Filter => 1.71e-4,
            WorkloadKind::TpchQ1 => 6.40e-6,
            WorkloadKind::TpchQ3 => 3.96e-3,
            WorkloadKind::TpchQ12 => 2.99e-5,
            WorkloadKind::TpchQ14 => 3.94e-6,
            WorkloadKind::TpchQ19 => 9.92e-7,
            WorkloadKind::TpcB => 5.19e-2,
            WorkloadKind::TpcC => 9.05e-2,
            WorkloadKind::Wordcount => 4.61e-1,
        }
    }

    /// Instantiates the workload at the given configuration.
    pub fn build(&self, config: &WorkloadConfig) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Arithmetic => Box::new(synth::Arithmetic::new(config)),
            WorkloadKind::Aggregate => Box::new(synth::Aggregate::new(config)),
            WorkloadKind::Filter => Box::new(synth::Filter::new(config)),
            WorkloadKind::TpchQ1 => Box::new(tpch::Q1::new(config)),
            WorkloadKind::TpchQ3 => Box::new(tpch::Q3::new(config)),
            WorkloadKind::TpchQ12 => Box::new(tpch::Q12::new(config)),
            WorkloadKind::TpchQ14 => Box::new(tpch::Q14::new(config)),
            WorkloadKind::TpchQ19 => Box::new(tpch::Q19::new(config)),
            WorkloadKind::TpcB => Box::new(tpcb::TpcB::new(config)),
            WorkloadKind::TpcC => Box::new(tpcc::TpcC::new(config)),
            WorkloadKind::Wordcount => Box::new(wordcount::Wordcount::new(config)),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Pages in a scan batch: 64 pages (256 KiB) per emitted batch keeps
/// per-batch simulation overhead small without hiding pipeline effects.
pub const PAGES_PER_BATCH: u64 = 64;

/// Measures the DRAM write ratio (Table 1) of a workload by running it
/// and summing batch traffic.
pub fn measured_write_ratio(workload: &dyn Workload) -> f64 {
    let mut reads = 0u64;
    let mut writes = 0u64;
    workload.run(&mut |b: Batch| {
        reads += b.dram_reads();
        writes += b.working_writes;
    });
    if reads == 0 {
        0.0
    } else {
        writes as f64 / reads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpn_run_iterates() {
        let run = LpnRun::new(Lpn::new(10), 3);
        let pages: Vec<u64> = run.iter().map(|l| l.raw()).collect();
        assert_eq!(pages, vec![10, 11, 12]);
    }

    #[test]
    fn batch_accounting() {
        let mut b = Batch::default();
        b.flash_reads.push(LpnRun::new(Lpn::new(0), 4));
        b.flash_reads.push(LpnRun::new(Lpn::new(100), 1));
        b.input_lines = 320;
        b.working_reads = 10;
        assert_eq!(b.flash_pages(), 5);
        assert_eq!(b.dram_reads(), 330);
    }

    #[test]
    fn visibility_scales_with_modeled_size() {
        let config = WorkloadConfig::test();
        // 1 KiB functional structure modeled at 64 Ki x = 64 MiB >> LLC.
        assert_eq!(config.dram_visibility(ByteSize::from_kib(1)), 1.0);
        // A 1-byte structure stays cache-resident even scaled.
        assert!(config.dram_visibility(ByteSize::from_bytes(1)) < 0.1);
    }

    #[test]
    fn all_workloads_build_and_run_deterministically() {
        let config = WorkloadConfig::test();
        for kind in WorkloadKind::ALL {
            let w = kind.build(&config);
            let out1 = w.run(&mut |_| {});
            let out2 = w.run(&mut |_| {});
            assert_eq!(out1, out2, "{kind} must be deterministic");
            assert!(w.dataset_pages() > 0, "{kind}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 11);
    }

    #[test]
    fn write_ratios_order_read_vs_write_heavy() {
        let config = WorkloadConfig::test();
        let q1 = measured_write_ratio(&*WorkloadKind::TpchQ1.build(&config));
        let wc = measured_write_ratio(&*WorkloadKind::Wordcount.build(&config));
        let tpcc = measured_write_ratio(&*WorkloadKind::TpcC.build(&config));
        assert!(q1 < 1e-2, "Q1 is read-dominated, got {q1}");
        assert!(wc > 0.2, "wordcount is write-heavy, got {wc}");
        assert!(tpcc > q1, "TPC-C writes more than Q1");
    }
}
