//! The five TPC-H queries of the evaluation: Q1, Q3, Q12, Q14, Q19
//! (Table 4), implemented as real query plans over the seeded
//! generators of [`crate::data`].
//!
//! Plans follow what an in-storage engine would run:
//!
//! * **Q1** — single scan of `lineitem` with a date filter and a
//!   six-group aggregation.
//! * **Q3** — filtered scan of `orders` building a hash table, probed
//!   by a `lineitem` scan, aggregating revenue per order, top-10.
//! * **Q12** — `orders` staged into DRAM, `lineitem` scan with
//!   ship-mode/date filters and direct order lookups, two priority
//!   counters.
//! * **Q14** — `part` staged into DRAM, `lineitem` scan over one ship
//!   month probing parts for the promo-revenue ratio.
//! * **Q19** — `part` staged into DRAM, `lineitem` pre-filtered on ship
//!   mode/instruction, probing parts against the three brand/container/
//!   quantity predicate arms.

use iceclave_types::{ByteSize, Lpn};
use std::collections::HashMap;

use crate::data::{self, row_size, DATE_DOMAIN_DAYS};
use crate::{
    Batch, LpnRun, OpClass, OpCounts, Workload, WorkloadConfig, WorkloadOutput, PAGES_PER_BATCH,
};

/// Accumulates instrumentation for the current scan batch.
#[derive(Debug, Default)]
struct BatchAcc {
    staged_reads: u64,
    working_reads: u64,
    write_credit: f64,
    ops: OpCounts,
}

impl BatchAcc {
    fn op(&mut self, class: OpClass, n: u64) {
        self.ops.add(class, n);
    }
}

/// Scans `rows` rows of a table laid out at `base_page`, calling
/// `per_row` and emitting one instrumented batch per 64 pages.
fn scan_table(
    base_page: u64,
    rows: u64,
    rps: u64, // row size in bytes
    emit: &mut dyn FnMut(Batch),
    mut per_row: impl FnMut(u64, &mut BatchAcc),
) {
    let rpp = 4096 / rps;
    let pages = data::pages_for(rows, rps);
    let mut carry = 0.0f64;
    let mut page = 0u64;
    while page < pages {
        let batch_pages = PAGES_PER_BATCH.min(pages - page);
        let first = page * rpp;
        let last = ((page + batch_pages) * rpp).min(rows);
        let mut acc = BatchAcc::default();
        for i in first..last {
            per_row(i, &mut acc);
        }
        carry += acc.write_credit;
        let writes = carry.floor() as u64;
        carry -= writes as f64;
        emit(Batch {
            flash_reads: vec![LpnRun::new(Lpn::new(base_page + page), batch_pages as u32)],
            random_access: false,
            input_lines: batch_pages * 64,
            staged_reads: acc.staged_reads,
            working_reads: acc.working_reads,
            working_writes: writes,
            ops: acc.ops,
        });
        page += batch_pages;
    }
}

/// Table cardinalities and page layout shared by the join queries:
/// `lineitem` takes 80% of the dataset bytes, the joined table 20%.
#[derive(Copy, Clone, Debug)]
struct Layout {
    lineitem_rows: u64,
    side_rows: u64,
    lineitem_pages: u64,
    side_pages: u64,
}

impl Layout {
    fn new(config: &WorkloadConfig, side_row_size: u64) -> Self {
        let bytes = config.functional_bytes.as_bytes();
        let lineitem_rows = data::rows_for(bytes * 4 / 5, row_size::LINEITEM);
        let side_rows = data::rows_for(bytes / 5, side_row_size);
        Layout {
            lineitem_rows,
            side_rows,
            lineitem_pages: data::pages_for(lineitem_rows, row_size::LINEITEM),
            side_pages: data::pages_for(side_rows, side_row_size),
        }
    }
}

// ---------------------------------------------------------------- Q1 --

/// TPC-H Q1: pricing summary report (scan + 6-group aggregation).
#[derive(Clone, Debug)]
pub struct Q1 {
    config: WorkloadConfig,
}

impl Q1 {
    /// Creates the query at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Q1 { config: *config }
    }

    fn rows(&self) -> u64 {
        data::rows_for(self.config.functional_bytes.as_bytes(), row_size::LINEITEM)
    }
}

impl Workload for Q1 {
    fn name(&self) -> &'static str {
        "TPC-H Q1"
    }

    fn dataset_pages(&self) -> u64 {
        data::pages_for(self.rows(), row_size::LINEITEM)
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes(6 * 64) // six aggregation groups
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let rows = self.rows();
        let cutoff = DATE_DOMAIN_DAYS - 90;
        // sum_qty, sum_base, sum_disc_price, sum_charge, count per
        // (returnflag, linestatus).
        let mut groups = [[0.0f64; 4]; 6];
        let mut counts = [0u64; 6];
        scan_table(0, rows, row_size::LINEITEM, emit, |i, acc| {
            let l = data::lineitem(seed, i, rows / 4, rows / 8);
            acc.op(OpClass::ScanTuple, 1);
            acc.op(OpClass::Filter, 1);
            if l.shipdate <= cutoff {
                acc.op(OpClass::Arithmetic, 3);
                acc.op(OpClass::Aggregate, 1);
                // Six hot cache lines: spills are rare (Table 1 ratio
                // 6.4e-6 ~= one line per 131072 rows).
                acc.write_credit += 1.0 / 131_072.0;
                let g = (l.returnflag * 2 + l.linestatus) as usize;
                let disc_price = l.extendedprice * (1.0 - l.discount);
                groups[g][0] += l.quantity;
                groups[g][1] += l.extendedprice;
                groups[g][2] += disc_price;
                groups[g][3] += disc_price * (1.0 + l.tax);
                counts[g] += 1;
            }
        });
        let checksum: f64 = groups.iter().flatten().sum();
        WorkloadOutput {
            rows: counts.iter().filter(|&&c| c > 0).count() as u64,
            checksum,
        }
    }
}

// ---------------------------------------------------------------- Q3 --

/// TPC-H Q3: shipping priority (hash join + per-order aggregation).
#[derive(Clone, Debug)]
pub struct Q3 {
    config: WorkloadConfig,
}

impl Q3 {
    /// Creates the query at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Q3 { config: *config }
    }

    fn layout(&self) -> Layout {
        Layout::new(&self.config, row_size::ORDERS)
    }
}

impl Workload for Q3 {
    fn name(&self) -> &'static str {
        "TPC-H Q3"
    }

    fn dataset_pages(&self) -> u64 {
        let l = self.layout();
        l.lineitem_pages + l.side_pages
    }

    fn working_set(&self) -> ByteSize {
        // Partitioned build/aggregate window (radix join): one
        // cache-sized partition at a time.
        ByteSize::from_mib(1)
    }

    fn staged_bytes(&self) -> ByteSize {
        // Hash of ~5% of orders at 32 B each (functional scale; the
        // capacity model scales it to the paper's dataset).
        ByteSize::from_bytes(self.layout().side_rows / 20 * 32)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let l = self.layout();
        let date_cut = DATE_DOMAIN_DAYS / 4;
        // Build: BUILDING-segment orders placed before the cutoff.
        let mut build: HashMap<u64, u32> = HashMap::new();
        scan_table(
            l.lineitem_pages,
            l.side_rows,
            row_size::ORDERS,
            emit,
            |i, acc| {
                let o = data::order(seed, i);
                acc.op(OpClass::ScanTuple, 1);
                acc.op(OpClass::Filter, 2);
                if o.mktsegment == 0 && o.orderdate < date_cut {
                    acc.op(OpClass::HashBuild, 1);
                    // Inserts into a DRAM-sized hash: half a line each.
                    acc.write_credit += 0.5;
                    build.insert(i, o.orderdate);
                }
            },
        );
        // Probe: lineitems shipped after the cutoff.
        let mut revenue: HashMap<u64, f64> = HashMap::new();
        scan_table(0, l.lineitem_rows, row_size::LINEITEM, emit, |i, acc| {
            let item = data::lineitem(seed, i, l.side_rows, l.lineitem_rows / 8);
            acc.op(OpClass::ScanTuple, 1);
            acc.op(OpClass::Filter, 1);
            if item.shipdate > date_cut {
                acc.op(OpClass::HashProbe, 1);
                acc.staged_reads += 1;
                if build.contains_key(&item.orderkey) {
                    acc.op(OpClass::Arithmetic, 1);
                    acc.op(OpClass::Aggregate, 1);
                    // Per-order revenue map: updates coalesce on hot
                    // lines; an eighth of a line reaches DRAM.
                    acc.write_credit += 0.125;
                    *revenue.entry(item.orderkey).or_insert(0.0) +=
                        item.extendedprice * (1.0 - item.discount);
                }
            }
        });
        // Top 10 by revenue (deterministic tie-break on orderkey).
        let mut rows: Vec<(u64, f64)> = revenue.into_iter().collect();
        rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("revenue is finite")
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(10);
        WorkloadOutput {
            rows: rows.len() as u64,
            checksum: rows.iter().map(|r| r.1).sum(),
        }
    }
}

// --------------------------------------------------------------- Q12 --

/// TPC-H Q12: shipping modes and order priority (staged-orders lookup
/// join).
#[derive(Clone, Debug)]
pub struct Q12 {
    config: WorkloadConfig,
}

impl Q12 {
    /// Creates the query at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Q12 { config: *config }
    }

    fn layout(&self) -> Layout {
        Layout::new(&self.config, row_size::ORDERS)
    }
}

impl Workload for Q12 {
    fn name(&self) -> &'static str {
        "TPC-H Q12"
    }

    fn dataset_pages(&self) -> u64 {
        let l = self.layout();
        l.lineitem_pages + l.side_pages
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes(128) // two priority counters
    }

    fn staged_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.layout().side_rows * u64::from(row_size::ORDERS as u32))
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let l = self.layout();
        // Stage the orders table into DRAM (pure scan).
        scan_table(
            l.lineitem_pages,
            l.side_rows,
            row_size::ORDERS,
            emit,
            |_i, acc| {
                acc.op(OpClass::ScanTuple, 1);
            },
        );
        let year_start = DATE_DOMAIN_DAYS / 2;
        let year_end = year_start + 365;
        let mut high = 0u64;
        let mut low = 0u64;
        scan_table(0, l.lineitem_rows, row_size::LINEITEM, emit, |i, acc| {
            let item = data::lineitem(seed, i, l.side_rows, l.lineitem_rows / 8);
            acc.op(OpClass::ScanTuple, 1);
            acc.op(OpClass::Filter, 3);
            let mode_ok = item.shipmode <= 1; // MAIL, SHIP
            let dates_ok = item.commitdate < item.receiptdate
                && item.shipdate < item.commitdate
                && (year_start..year_end).contains(&item.receiptdate);
            if mode_ok && dates_ok {
                acc.op(OpClass::HashProbe, 1);
                acc.op(OpClass::Aggregate, 1);
                acc.staged_reads += 1;
                acc.write_credit += 1.0 / 131_072.0;
                let o = data::order(seed, item.orderkey);
                if o.orderpriority < 2 {
                    high += 1;
                } else {
                    low += 1;
                }
            }
        });
        WorkloadOutput {
            rows: 2,
            checksum: high as f64 * 1e6 + low as f64,
        }
    }
}

// --------------------------------------------------------------- Q14 --

/// TPC-H Q14: promotion effect (staged-part lookup join over one ship
/// month).
#[derive(Clone, Debug)]
pub struct Q14 {
    config: WorkloadConfig,
}

impl Q14 {
    /// Creates the query at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Q14 { config: *config }
    }

    fn layout(&self) -> Layout {
        Layout::new(&self.config, row_size::PART)
    }
}

impl Workload for Q14 {
    fn name(&self) -> &'static str {
        "TPC-H Q14"
    }

    fn dataset_pages(&self) -> u64 {
        let l = self.layout();
        l.lineitem_pages + l.side_pages
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes(64)
    }

    fn staged_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.layout().side_rows * row_size::PART)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let l = self.layout();
        // Stage the part table.
        scan_table(
            l.lineitem_pages,
            l.side_rows,
            row_size::PART,
            emit,
            |_i, acc| {
                acc.op(OpClass::ScanTuple, 1);
            },
        );
        let month_start = DATE_DOMAIN_DAYS / 3;
        let month_end = month_start + 30;
        let mut promo = 0.0f64;
        let mut total = 0.0f64;
        scan_table(0, l.lineitem_rows, row_size::LINEITEM, emit, |i, acc| {
            let item = data::lineitem(seed, i, l.lineitem_rows / 4, l.side_rows);
            acc.op(OpClass::ScanTuple, 1);
            acc.op(OpClass::Filter, 1);
            if (month_start..month_end).contains(&item.shipdate) {
                acc.op(OpClass::HashProbe, 1);
                acc.op(OpClass::Arithmetic, 2);
                acc.op(OpClass::Aggregate, 1);
                acc.staged_reads += 1;
                acc.write_credit += 1.0 / 131_072.0;
                let p = data::part(seed, item.partkey);
                let rev = item.extendedprice * (1.0 - item.discount);
                total += rev;
                if p.p_type < 25 {
                    promo += rev;
                }
            }
        });
        let pct = if total == 0.0 {
            0.0
        } else {
            100.0 * promo / total
        };
        WorkloadOutput {
            rows: 1,
            checksum: pct,
        }
    }
}

// --------------------------------------------------------------- Q19 --

/// TPC-H Q19: discounted revenue (three-arm predicate join).
#[derive(Clone, Debug)]
pub struct Q19 {
    config: WorkloadConfig,
}

impl Q19 {
    /// Creates the query at `config` scale.
    pub fn new(config: &WorkloadConfig) -> Self {
        Q19 { config: *config }
    }

    fn layout(&self) -> Layout {
        Layout::new(&self.config, row_size::PART)
    }
}

impl Workload for Q19 {
    fn name(&self) -> &'static str {
        "TPC-H Q19"
    }

    fn dataset_pages(&self) -> u64 {
        let l = self.layout();
        l.lineitem_pages + l.side_pages
    }

    fn working_set(&self) -> ByteSize {
        ByteSize::from_bytes(64)
    }

    fn staged_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.layout().side_rows * row_size::PART)
    }

    fn run(&self, emit: &mut dyn FnMut(Batch)) -> WorkloadOutput {
        let seed = self.config.seed;
        let l = self.layout();
        scan_table(
            l.lineitem_pages,
            l.side_rows,
            row_size::PART,
            emit,
            |_i, acc| {
                acc.op(OpClass::ScanTuple, 1);
            },
        );
        let mut revenue = 0.0f64;
        let mut matched = 0u64;
        scan_table(0, l.lineitem_rows, row_size::LINEITEM, emit, |i, acc| {
            let item = data::lineitem(seed, i, l.lineitem_rows / 4, l.side_rows);
            acc.op(OpClass::ScanTuple, 1);
            acc.op(OpClass::Filter, 2);
            // Pre-filter: AIR / AIR REG, DELIVER IN PERSON.
            if item.shipmode >= 4 && item.shipmode <= 5 && item.shipinstruct == 0 {
                acc.op(OpClass::HashProbe, 1);
                acc.op(OpClass::Filter, 6);
                acc.staged_reads += 1;
                acc.write_credit += 1.0 / 1_048_576.0;
                let p = data::part(seed, item.partkey);
                let q = item.quantity;
                let arm1 =
                    p.brand == 12 && p.container < 10 && (1.0..=11.0).contains(&q) && p.size <= 5;
                let arm2 = p.brand == 23
                    && (10..20).contains(&p.container)
                    && (10.0..=20.0).contains(&q)
                    && p.size <= 10;
                let arm3 = p.brand == 34
                    && (20..30).contains(&p.container)
                    && (20.0..=30.0).contains(&q)
                    && p.size <= 15;
                if arm1 || arm2 || arm3 {
                    acc.op(OpClass::Arithmetic, 1);
                    acc.op(OpClass::Aggregate, 1);
                    revenue += item.extendedprice * (1.0 - item.discount);
                    matched += 1;
                }
            }
        });
        WorkloadOutput {
            rows: matched.max(1),
            checksum: revenue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measured_write_ratio;

    fn config() -> WorkloadConfig {
        WorkloadConfig::test()
    }

    #[test]
    fn q1_groups_are_complete() {
        let out = Q1::new(&config()).run(&mut |_| {});
        assert_eq!(out.rows, 6, "all six (flag,status) groups appear");
        assert!(out.checksum > 0.0);
    }

    #[test]
    fn q3_returns_top10() {
        let out = Q3::new(&config()).run(&mut |_| {});
        assert_eq!(out.rows, 10);
        assert!(out.checksum > 0.0);
    }

    #[test]
    fn q3_build_side_is_selective() {
        // The build hash receives ~5% of orders: check via batch writes.
        let q3 = Q3::new(&config());
        let mut writes = 0u64;
        q3.run(&mut |b| writes += b.working_writes);
        let orders = q3.layout().side_rows;
        assert!(writes > 0);
        assert!(writes < orders / 2, "writes {writes} vs orders {orders}");
    }

    #[test]
    fn q12_counts_priorities() {
        let out = Q12::new(&config()).run(&mut |_| {});
        let high = (out.checksum / 1e6) as u64;
        let low = (out.checksum % 1e6) as u64;
        assert!(high > 0 && low > 0);
        // Priorities 0..2 of 5 are "high": roughly 40/60 split.
        let frac = high as f64 / (high + low) as f64;
        assert!((0.25..0.55).contains(&frac), "high fraction {frac}");
    }

    #[test]
    fn q12_matches_naive_recomputation() {
        let cfg = config();
        let q12 = Q12::new(&cfg);
        let out = q12.run(&mut |_| {});
        // Recompute the two priority buckets directly from the
        // generators, bypassing the batch machinery entirely.
        let l = q12.layout();
        let year_start = DATE_DOMAIN_DAYS / 2;
        let year_end = year_start + 365;
        let (mut high, mut low) = (0u64, 0u64);
        for i in 0..l.lineitem_rows {
            let item = data::lineitem(cfg.seed, i, l.side_rows, l.lineitem_rows / 8);
            let mode_ok = item.shipmode <= 1;
            let dates_ok = item.commitdate < item.receiptdate
                && item.shipdate < item.commitdate
                && (year_start..year_end).contains(&item.receiptdate);
            if mode_ok && dates_ok {
                if data::order(cfg.seed, item.orderkey).orderpriority < 2 {
                    high += 1;
                } else {
                    low += 1;
                }
            }
        }
        assert_eq!(out.checksum, high as f64 * 1e6 + low as f64);
    }

    #[test]
    fn q19_matches_naive_revenue() {
        let cfg = config();
        let q19 = Q19::new(&cfg);
        let out = q19.run(&mut |_| {});
        let l = q19.layout();
        let mut revenue = 0.0f64;
        for i in 0..l.lineitem_rows {
            let item = data::lineitem(cfg.seed, i, l.lineitem_rows / 4, l.side_rows);
            if item.shipmode >= 4 && item.shipmode <= 5 && item.shipinstruct == 0 {
                let p = data::part(cfg.seed, item.partkey);
                let q = item.quantity;
                let arm1 =
                    p.brand == 12 && p.container < 10 && (1.0..=11.0).contains(&q) && p.size <= 5;
                let arm2 = p.brand == 23
                    && (10..20).contains(&p.container)
                    && (10.0..=20.0).contains(&q)
                    && p.size <= 10;
                let arm3 = p.brand == 34
                    && (20..30).contains(&p.container)
                    && (20.0..=30.0).contains(&q)
                    && p.size <= 15;
                if arm1 || arm2 || arm3 {
                    revenue += item.extendedprice * (1.0 - item.discount);
                }
            }
        }
        assert!((out.checksum - revenue).abs() < 1e-9);
    }

    #[test]
    fn q14_percentage_is_sane() {
        let out = Q14::new(&config()).run(&mut |_| {});
        // PROMO types are 25 of 150: expect ~16.7%.
        assert!(
            (5.0..30.0).contains(&out.checksum),
            "promo% {}",
            out.checksum
        );
    }

    #[test]
    fn q19_is_highly_selective() {
        let q19 = Q19::new(&config());
        let out = q19.run(&mut |_| {});
        let rows = q19.layout().lineitem_rows;
        assert!(out.rows < rows / 100, "{} of {rows}", out.rows);
    }

    #[test]
    fn staged_reads_only_from_join_queries() {
        let mut staged = 0u64;
        Q1::new(&config()).run(&mut |b| staged += b.staged_reads);
        assert_eq!(staged, 0);
        let mut staged = 0u64;
        Q14::new(&config()).run(&mut |b| staged += b.staged_reads);
        assert!(staged > 0);
    }

    #[test]
    fn scan_covers_all_dataset_pages() {
        for w in [
            Box::new(Q1::new(&config())) as Box<dyn Workload>,
            Box::new(Q3::new(&config())),
            Box::new(Q12::new(&config())),
            Box::new(Q14::new(&config())),
            Box::new(Q19::new(&config())),
        ] {
            let mut pages = 0u64;
            w.run(&mut |b| pages += b.flash_pages());
            assert_eq!(pages, w.dataset_pages(), "{}", w.name());
        }
    }

    #[test]
    fn read_heavy_write_ratios() {
        // Q1/Q12/Q14/Q19 are nearly write-free; Q3 writes the most of
        // the TPC-H five (its hash build), matching Table 1's ordering.
        let q1 = measured_write_ratio(&Q1::new(&config()));
        let q3 = measured_write_ratio(&Q3::new(&config()));
        let q14 = measured_write_ratio(&Q14::new(&config()));
        assert!(q1 < 1e-4, "q1 {q1}");
        assert!(q3 > q1 && q3 > q14, "q3 {q3} q1 {q1} q14 {q14}");
        assert!(q3 < 0.05, "q3 {q3}");
    }
}
