//! Stateless, seeded dataset generators.
//!
//! Row *i* of every table is a pure function of `(seed, table, i)`
//! through a SplitMix64-style hash, so workloads can scan, join and
//! re-read tables without materializing them — the generator *is* the
//! storage content. Distributions follow the TPC specifications loosely
//! (uniform keys, date windows, categorical fields with the right
//! cardinalities); EXPERIMENTS.md documents this substitution for the
//! proprietary 32 GiB datasets.

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic hash of `(seed, table_tag, row)`.
#[inline]
pub fn row_hash(seed: u64, table: u64, row: u64) -> u64 {
    mix64(mix64(seed ^ table.wrapping_mul(0xa076_1d64_78bd_642f)) ^ row)
}

/// Uniform f64 in `[0, 1)` from a hash value.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Nominal bytes per row used to lay tables out on 4 KiB pages.
pub mod row_size {
    /// TPC-H lineitem (the fields the five queries touch).
    pub const LINEITEM: u64 = 64;
    /// TPC-H orders.
    pub const ORDERS: u64 = 32;
    /// TPC-H part.
    pub const PART: u64 = 32;
    /// TPC-B account record.
    pub const ACCOUNT: u64 = 64;
    /// TPC-C stock record.
    pub const STOCK: u64 = 64;
    /// Wordcount text (average token footprint).
    pub const TOKEN: u64 = 6;
}

/// Table tags for [`row_hash`].
mod tag {
    pub const LINEITEM: u64 = 1;
    pub const ORDERS: u64 = 2;
    pub const PART: u64 = 3;
    pub const ACCOUNT: u64 = 4;
    pub const TOKEN: u64 = 6;
}

/// Days in the generated date domain (1992-01-01 .. 1998-12-31, as in
/// TPC-H).
pub const DATE_DOMAIN_DAYS: u32 = 2556;

/// One TPC-H lineitem row (only the columns Q1/Q3/Q12/Q14/Q19 touch).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Lineitem {
    /// Parent order key in `0..orders`.
    pub orderkey: u64,
    /// Part key in `0..parts`.
    pub partkey: u64,
    /// Quantity in `1..=50`.
    pub quantity: f64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount in `[0, 0.10]`.
    pub discount: f64,
    /// Tax in `[0, 0.08]`.
    pub tax: f64,
    /// Return flag: 0=A, 1=N, 2=R.
    pub returnflag: u8,
    /// Line status: 0=O, 1=F.
    pub linestatus: u8,
    /// Ship date, days since epoch start.
    pub shipdate: u32,
    /// Commit date.
    pub commitdate: u32,
    /// Receipt date.
    pub receiptdate: u32,
    /// Ship mode: 0..7 (MAIL=0, SHIP=1, ...).
    pub shipmode: u8,
    /// Ship instruction: 0..4 (DELIVER IN PERSON = 0).
    pub shipinstruct: u8,
}

/// Generates lineitem row `i`; `orders` and `parts` are the parent
/// table cardinalities.
pub fn lineitem(seed: u64, i: u64, orders: u64, parts: u64) -> Lineitem {
    let h = row_hash(seed, tag::LINEITEM, i);
    let h2 = mix64(h);
    let h3 = mix64(h2);
    let shipdate = (h2 % u64::from(DATE_DOMAIN_DAYS)) as u32;
    Lineitem {
        orderkey: h % orders.max(1),
        partkey: h2 % parts.max(1),
        quantity: 1.0 + (h % 50) as f64,
        extendedprice: 900.0 + unit(h3) * 104_000.0,
        discount: f64::from((h3 % 11) as u32) / 100.0,
        tax: f64::from((h2 % 9) as u32) / 100.0,
        returnflag: (h % 3) as u8,
        linestatus: ((h >> 8) % 2) as u8,
        shipdate,
        commitdate: shipdate.saturating_add((h3 % 30) as u32),
        receiptdate: shipdate.saturating_add((h3 % 60) as u32),
        shipmode: ((h >> 16) % 7) as u8,
        shipinstruct: ((h >> 24) % 4) as u8,
    }
}

/// One TPC-H orders row.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Order {
    /// Customer market segment: 0..5 (BUILDING = 0).
    pub mktsegment: u8,
    /// Order date, days since epoch start.
    pub orderdate: u32,
    /// Shipping priority.
    pub shippriority: u8,
    /// Order priority: 0..5 (1-URGENT=0, 2-HIGH=1, others lower).
    pub orderpriority: u8,
}

/// Generates orders row `orderkey`.
pub fn order(seed: u64, orderkey: u64) -> Order {
    let h = row_hash(seed, tag::ORDERS, orderkey);
    Order {
        mktsegment: (h % 5) as u8,
        orderdate: ((h >> 8) % u64::from(DATE_DOMAIN_DAYS)) as u32,
        shippriority: 0,
        orderpriority: ((h >> 24) % 5) as u8,
    }
}

/// One TPC-H part row.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Part {
    /// Brand: 0..25 (Brand#12 = 12, etc.).
    pub brand: u8,
    /// Container class: 0..40 (SM CASE = 0, MED BAG = 1, LG BOX = 2...).
    pub container: u8,
    /// Type class: 0..150; types < 25 count as `PROMO`.
    pub p_type: u8,
    /// Size in `1..=50`.
    pub size: u8,
}

/// Generates part row `partkey`.
pub fn part(seed: u64, partkey: u64) -> Part {
    let h = row_hash(seed, tag::PART, partkey);
    Part {
        brand: (h % 25) as u8,
        container: ((h >> 8) % 40) as u8,
        p_type: ((h >> 16) % 150) as u8,
        size: (1 + (h >> 24) % 50) as u8,
    }
}

/// Initial balance of TPC-B account `i`.
pub fn account_balance(seed: u64, i: u64) -> i64 {
    (row_hash(seed, tag::ACCOUNT, i) % 100_000) as i64
}

/// The token at position `i` of the wordcount corpus, as a word id in
/// `0..vocabulary`. The distribution is Zipf-like: the minimum of two
/// uniforms squared concentrates mass on small ids.
pub fn token(seed: u64, i: u64, vocabulary: u64) -> u64 {
    let h = row_hash(seed, tag::TOKEN, i);
    let a = unit(h);
    let b = unit(mix64(h));
    let skewed = (a * b).min(0.999_999);
    (skewed * vocabulary as f64) as u64
}

/// Rows of a table that fit the given dataset share.
pub fn rows_for(bytes: u64, row_size: u64) -> u64 {
    (bytes / row_size).max(1)
}

/// Pages occupied by `rows` rows of `row_size` bytes (rows never span
/// pages).
pub fn pages_for(rows: u64, row_size: u64) -> u64 {
    let rows_per_page = 4096 / row_size;
    rows.div_ceil(rows_per_page).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(lineitem(1, 5, 100, 100), lineitem(1, 5, 100, 100));
        assert_ne!(lineitem(1, 5, 100, 100), lineitem(2, 5, 100, 100));
        assert_ne!(lineitem(1, 5, 100, 100), lineitem(1, 6, 100, 100));
    }

    #[test]
    fn fields_are_in_domain() {
        for i in 0..2_000 {
            let l = lineitem(7, i, 500, 250);
            assert!(l.orderkey < 500);
            assert!(l.partkey < 250);
            assert!((1.0..=50.0).contains(&l.quantity));
            assert!((0.0..=0.10).contains(&l.discount));
            assert!((0.0..=0.08).contains(&l.tax));
            assert!(l.returnflag < 3);
            assert!(l.linestatus < 2);
            assert!(l.shipdate < DATE_DOMAIN_DAYS);
            assert!(l.shipmode < 7);
            let p = part(7, i);
            assert!(p.brand < 25 && p.container < 40 && p.p_type < 150);
            let o = order(7, i);
            assert!(o.mktsegment < 5 && o.orderpriority < 5);
        }
    }

    #[test]
    fn categorical_fields_cover_their_domains() {
        let mut seen_flags = [false; 3];
        let mut seen_modes = [false; 7];
        for i in 0..1_000 {
            let l = lineitem(3, i, 100, 100);
            seen_flags[l.returnflag as usize] = true;
            seen_modes[l.shipmode as usize] = true;
        }
        assert!(seen_flags.iter().all(|&b| b));
        assert!(seen_modes.iter().all(|&b| b));
    }

    #[test]
    fn tokens_are_zipf_skewed() {
        let vocab = 10_000;
        let n = 50_000;
        let low_ids = (0..n).filter(|&i| token(1, i, vocab) < vocab / 10).count();
        // Far more than 10% of tokens come from the lowest 10% of ids.
        assert!(
            low_ids as f64 / n as f64 > 0.3,
            "skew too weak: {low_ids}/{n}"
        );
    }

    #[test]
    fn layout_helpers() {
        assert_eq!(rows_for(4096, 64), 64);
        assert_eq!(pages_for(64, 64), 1);
        assert_eq!(pages_for(65, 64), 2);
        assert_eq!(pages_for(0, 64), 1);
    }
}
