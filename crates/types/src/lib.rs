//! Shared primitive types for the IceClave reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: simulated time ([`SimTime`], [`SimDuration`]), storage
//! addresses ([`Lpn`], [`Ppn`], [`PhysAddr`], [`CacheLine`]), byte sizes
//! ([`ByteSize`]), clock frequencies ([`Hertz`]) and TEE identifiers
//! ([`TeeId`]).
//!
//! All types are plain newtypes with value semantics. Keeping them in a
//! leaf crate lets substrates (flash, DRAM, FTL, MEE, ...) interoperate
//! without depending on each other.
//!
//! # Examples
//!
//! ```
//! use iceclave_types::{SimTime, SimDuration, Lpn, ByteSize};
//!
//! let start = SimTime::ZERO;
//! let after_read = start + SimDuration::from_micros(50);
//! assert_eq!((after_read - start).as_micros_f64(), 50.0);
//!
//! let lpn = Lpn::new(42);
//! assert_eq!(lpn.raw(), 42);
//!
//! assert_eq!(ByteSize::from_mib(4).as_bytes(), 4 * 1024 * 1024);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod attrib;
pub mod fault;
pub mod freq;
pub mod hash;
pub mod request;
pub mod size;
pub mod tee;
pub mod ticket;
pub mod time;

pub use addr::{CacheLine, Lpn, PhysAddr, Ppn};
pub use attrib::TicketAttribution;
pub use fault::{FaultStats, PageError, PageErrorCause, RecoveryStats};
pub use freq::Hertz;
pub use hash::{FastMap, FastSet, FxHasher};
pub use request::{
    BatchCompletion, BatchRequest, PageCompletion, PageRequest, PageWrite, WriteBatchCompletion,
    WriteBatchRequest, WritePageCompletion, WritePageRequest,
};
pub use size::ByteSize;
pub use tee::{TeeId, TeeIdError};
pub use ticket::{CompletionEvent, LatencyBreakdown, PageStatus, Ticket, TicketKind};
pub use time::{SimDuration, SimTime};

/// Size of one flash page and one DRAM page in bytes (4 KiB), as configured
/// in Table 3 of the paper.
pub const PAGE_SIZE: u64 = 4096;

/// Size of one processor cache line in bytes.
pub const CACHE_LINE_SIZE: u64 = 64;

/// Number of cache lines per 4 KiB page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_constants_are_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(PAGE_SIZE % CACHE_LINE_SIZE, 0);
    }
}
