//! The request/batch/completion vocabulary of the protected data path.
//!
//! IceClave's evaluation (Figures 12–13) rests on flash *channel
//! parallelism*: an in-storage program asks for many pages at once and
//! the device overlaps their cell reads, bus transfers, decryption and
//! MEE fills. These types carry one such multi-page request through
//! every layer — the runtime builds a [`BatchRequest`], the FTL/flash
//! schedule it channel-by-channel, and the runtime hands back a
//! [`BatchCompletion`] with per-page ready times (and plaintext, when
//! functional content exists).

use crate::addr::Lpn;
use crate::time::{SimDuration, SimTime};

/// One page of a batch: a logical page the TEE wants streamed into its
/// input buffer.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PageRequest {
    /// The logical page to read.
    pub lpn: Lpn,
}

impl PageRequest {
    /// A request for `lpn`.
    pub fn new(lpn: Lpn) -> Self {
        PageRequest { lpn }
    }
}

/// A multi-page read request, issued as one unit so the device can
/// exploit channel parallelism.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct BatchRequest {
    /// The pages, in the order the caller's input ring consumes them.
    pub requests: Vec<PageRequest>,
}

impl BatchRequest {
    /// A batch over `lpns`, preserving order.
    pub fn from_lpns(lpns: &[Lpn]) -> Self {
        BatchRequest {
            requests: lpns.iter().copied().map(PageRequest::new).collect(),
        }
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch has no pages.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// The completion record of one page of a batch.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct PageCompletion {
    /// The logical page that was read.
    pub lpn: Lpn,
    /// When the page's verified plaintext sits in the TEE's input
    /// buffer (flash read + decryption + MEE fill all done).
    pub ready_at: SimTime,
    /// The deciphered page content, when functional data was stored at
    /// the physical page (timing-only simulations carry `None`).
    pub data: Option<Vec<u8>>,
}

/// The completion of a whole batch.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct BatchCompletion {
    /// When the batch was submitted.
    pub issued: SimTime,
    /// When the last page of the batch completed.
    pub finished: SimTime,
    /// Per-page completions, in request order.
    pub completions: Vec<PageCompletion>,
}

impl BatchCompletion {
    /// An empty completion for an empty batch.
    pub fn empty(now: SimTime) -> Self {
        BatchCompletion {
            issued: now,
            finished: now,
            completions: Vec::new(),
        }
    }

    /// Number of completed pages.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True when no pages were requested.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_request_preserves_order() {
        let lpns: Vec<Lpn> = (0..4).map(Lpn::new).collect();
        let batch = BatchRequest::from_lpns(&lpns);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        for (i, req) in batch.requests.iter().enumerate() {
            assert_eq!(req.lpn, Lpn::new(i as u64));
        }
    }

    #[test]
    fn empty_completion_has_zero_latency() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        let done = BatchCompletion::empty(t);
        assert!(done.is_empty());
        assert_eq!(done.len(), 0);
        assert_eq!(done.latency(), SimDuration::ZERO);
    }

    #[test]
    fn latency_spans_issue_to_finish() {
        let issued = SimTime::ZERO;
        let finished = issued + SimDuration::from_micros(80);
        let done = BatchCompletion {
            issued,
            finished,
            completions: vec![PageCompletion {
                lpn: Lpn::new(1),
                ready_at: finished,
                data: None,
            }],
        };
        assert_eq!(done.latency(), SimDuration::from_micros(80));
    }
}
