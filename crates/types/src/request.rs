//! The request/batch/completion vocabulary of the protected data path.
//!
//! IceClave's evaluation (Figures 12–13) rests on flash *channel
//! parallelism*: an in-storage program asks for many pages at once and
//! the device overlaps their cell reads, bus transfers, decryption and
//! MEE fills. These types carry one such multi-page request through
//! every layer — the runtime builds a [`BatchRequest`], the FTL/flash
//! schedule it channel-by-channel, and the runtime hands back a
//! [`BatchCompletion`] with per-page ready times (and plaintext, when
//! functional content exists).

use crate::addr::Lpn;
use crate::ticket::PageStatus;
use crate::time::{SimDuration, SimTime};

/// One page of a batch: a logical page the TEE wants streamed into its
/// input buffer.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PageRequest {
    /// The logical page to read.
    pub lpn: Lpn,
}

impl PageRequest {
    /// A request for `lpn`.
    pub fn new(lpn: Lpn) -> Self {
        PageRequest { lpn }
    }
}

/// A multi-page read request, issued as one unit so the device can
/// exploit channel parallelism.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct BatchRequest {
    /// The pages, in the order the caller's input ring consumes them.
    pub requests: Vec<PageRequest>,
}

impl BatchRequest {
    /// A batch over `lpns`, preserving order.
    pub fn from_lpns(lpns: &[Lpn]) -> Self {
        BatchRequest {
            requests: lpns.iter().copied().map(PageRequest::new).collect(),
        }
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch has no pages.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// The completion record of one page of a batch.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct PageCompletion {
    /// The logical page that was read.
    pub lpn: Lpn,
    /// When the page's verified plaintext sits in the TEE's input
    /// buffer (flash read + decryption + MEE fill all done).
    pub ready_at: SimTime,
    /// The deciphered page content, when functional data was stored at
    /// the physical page (timing-only simulations carry `None`; failed
    /// pages always carry `None`).
    pub data: Option<Vec<u8>>,
    /// Whether the page completed or degraded to a per-page failure.
    pub status: PageStatus,
}

/// The completion of a whole batch.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct BatchCompletion {
    /// When the batch was submitted.
    pub issued: SimTime,
    /// When the last page of the batch completed.
    pub finished: SimTime,
    /// Per-page completions, in request order.
    pub completions: Vec<PageCompletion>,
}

impl BatchCompletion {
    /// An empty completion for an empty batch.
    pub fn empty(now: SimTime) -> Self {
        BatchCompletion {
            issued: now,
            finished: now,
            completions: Vec::new(),
        }
    }

    /// Number of completed pages.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True when no pages were requested.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.issued)
    }
}

/// One page of a write batch: a logical page the requestor wants
/// programmed out-of-place, plus when its (encrypted) data is
/// available to the flash controller.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct WritePageRequest {
    /// The logical page to (re)write.
    pub lpn: Lpn,
    /// When the page's outbound data is ready at the controller
    /// ([`SimTime::ZERO`] means "at submission": the program waits only
    /// for the batch's secure-world entry and its channel).
    pub ready: SimTime,
}

impl WritePageRequest {
    /// A request for `lpn` whose data is ready at submission.
    pub fn new(lpn: Lpn) -> Self {
        WritePageRequest {
            lpn,
            ready: SimTime::ZERO,
        }
    }
}

/// A multi-page program request, issued as one unit so the device can
/// allocate GC-aware and overlap the channel programs — the write-side
/// mirror of [`BatchRequest`].
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct WriteBatchRequest {
    /// The pages, in the order the caller produced them.
    pub requests: Vec<WritePageRequest>,
}

impl WriteBatchRequest {
    /// A batch over `lpns`, preserving order, all ready at submission.
    pub fn from_lpns(lpns: &[Lpn]) -> Self {
        WriteBatchRequest {
            requests: lpns.iter().copied().map(WritePageRequest::new).collect(),
        }
    }

    /// Number of pages in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch has no pages.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// One page of a runtime-level write batch: the logical page plus
/// optional functional content (plaintext) to persist at it.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct PageWrite {
    /// The logical page to (re)write.
    pub lpn: Lpn,
    /// Plaintext to store at the page's new physical location
    /// (timing-only simulations carry `None`).
    pub data: Option<Vec<u8>>,
}

impl PageWrite {
    /// A timing-only write of `lpn`.
    pub fn new(lpn: Lpn) -> Self {
        PageWrite { lpn, data: None }
    }

    /// A write of `lpn` carrying functional content.
    pub fn with_data(lpn: Lpn, data: Vec<u8>) -> Self {
        PageWrite {
            lpn,
            data: Some(data),
        }
    }
}

/// The completion record of one page of a write batch.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct WritePageCompletion {
    /// The logical page that was written.
    pub lpn: Lpn,
    /// When the page is durable: flash program finished and the MEE's
    /// counter-increment + MAC generation (overlapped with the channel
    /// programs) has drained.
    pub durable_at: SimTime,
    /// Whether the page is durable or degraded to a per-page failure.
    pub status: PageStatus,
}

/// The completion of a whole write batch.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct WriteBatchCompletion {
    /// When the batch was submitted.
    pub issued: SimTime,
    /// When every page was durable and the secure world was exited.
    pub finished: SimTime,
    /// Per-page completions, in request order.
    pub completions: Vec<WritePageCompletion>,
}

impl WriteBatchCompletion {
    /// An empty completion for an empty batch.
    pub fn empty(now: SimTime) -> Self {
        WriteBatchCompletion {
            issued: now,
            finished: now,
            completions: Vec::new(),
        }
    }

    /// Number of completed pages.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// True when no pages were requested.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_request_preserves_order() {
        let lpns: Vec<Lpn> = (0..4).map(Lpn::new).collect();
        let batch = BatchRequest::from_lpns(&lpns);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        for (i, req) in batch.requests.iter().enumerate() {
            assert_eq!(req.lpn, Lpn::new(i as u64));
        }
    }

    #[test]
    fn empty_completion_has_zero_latency() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        let done = BatchCompletion::empty(t);
        assert!(done.is_empty());
        assert_eq!(done.len(), 0);
        assert_eq!(done.latency(), SimDuration::ZERO);
    }

    #[test]
    fn latency_spans_issue_to_finish() {
        let issued = SimTime::ZERO;
        let finished = issued + SimDuration::from_micros(80);
        let done = BatchCompletion {
            issued,
            finished,
            completions: vec![PageCompletion {
                lpn: Lpn::new(1),
                ready_at: finished,
                data: None,
                status: PageStatus::Done,
            }],
        };
        assert_eq!(done.latency(), SimDuration::from_micros(80));
    }

    #[test]
    fn write_batch_request_preserves_order() {
        let lpns: Vec<Lpn> = (0..5).map(Lpn::new).collect();
        let batch = WriteBatchRequest::from_lpns(&lpns);
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
        for (i, req) in batch.requests.iter().enumerate() {
            assert_eq!(req.lpn, Lpn::new(i as u64));
            assert_eq!(req.ready, SimTime::ZERO);
        }
    }

    #[test]
    fn page_write_carries_optional_content() {
        assert_eq!(PageWrite::new(Lpn::new(1)).data, None);
        let w = PageWrite::with_data(Lpn::new(2), vec![7; 8]);
        assert_eq!(w.data.as_deref(), Some(&[7u8; 8][..]));
    }

    #[test]
    fn empty_write_completion_has_zero_latency() {
        let t = SimTime::ZERO + SimDuration::from_micros(3);
        let done = WriteBatchCompletion::empty(t);
        assert!(done.is_empty());
        assert_eq!(done.len(), 0);
        assert_eq!(done.latency(), SimDuration::ZERO);
    }

    #[test]
    fn write_latency_spans_issue_to_finish() {
        let issued = SimTime::ZERO;
        let finished = issued + SimDuration::from_micros(40);
        let done = WriteBatchCompletion {
            issued,
            finished,
            completions: vec![WritePageCompletion {
                lpn: Lpn::new(9),
                durable_at: finished,
                status: PageStatus::Done,
            }],
        };
        assert_eq!(done.latency(), SimDuration::from_micros(40));
    }
}
