//! The ticket/completion-event vocabulary of the asynchronous
//! submission path.
//!
//! The event-driven batch executor (`iceclave_exec`, wired into the
//! runtime by `iceclave_core`) accepts read and write batches from
//! multiple TEEs and retires them out of a completion queue instead of
//! blocking the caller. These types carry that contract: a
//! [`Ticket`] names one in-flight batch, and every page of the batch
//! eventually produces one [`CompletionEvent`] with a [`PageStatus`]
//! and a per-stage [`LatencyBreakdown`].
//!
//! Ordering contract: the single source of truth for the completion
//! drain order is the `iceclave_exec::completion` module
//! documentation (quoted verbatim by its `DRAIN_ORDER_CONTRACT`
//! constant and the regression tests); this crate only carries the
//! vocabulary the contract is phrased in.

use crate::addr::Lpn;
use crate::fault::PageError;
use crate::tee::TeeId;
use crate::time::{SimDuration, SimTime};

/// Names one in-flight batch submitted through the asynchronous API.
///
/// Tickets are allocated monotonically per runtime, so they double as
/// the completion queue's same-tick tie-breaker (see the
/// `iceclave_exec::completion` module documentation for the exact
/// drain-order contract).
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct Ticket(u64);

impl Ticket {
    /// Wraps a raw ticket number (executor internal).
    pub fn new(raw: u64) -> Self {
        Ticket(raw)
    }

    /// The raw ticket number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for Ticket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ticket#{}", self.0)
    }
}

/// Which direction a ticket's batch moves data.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum TicketKind {
    /// A flash-to-TEE read batch (`submit_batch_async`).
    Read,
    /// A TEE-to-flash write batch (`submit_write_batch_async`).
    Write,
}

/// Per-page outcome of an asynchronous batch.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum PageStatus {
    /// The page completed: read pages sit verified in the TEE's input
    /// ring, write pages are durable on flash.
    Done,
    /// The page failed mid-flight. `reason` carries the structured
    /// per-page record ([`PageError`]): what failed, where, and how
    /// many recovery attempts were spent — so one bad page degrades
    /// gracefully instead of aborting the batch.
    Failed {
        /// The structured failure record.
        reason: PageError,
    },
}

impl PageStatus {
    /// True when the page retired successfully.
    pub fn is_done(&self) -> bool {
        matches!(self, PageStatus::Done)
    }

    /// The failure record, when the page failed.
    pub fn error(&self) -> Option<PageError> {
        match self {
            PageStatus::Done => None,
            PageStatus::Failed { reason } => Some(*reason),
        }
    }
}

/// Per-stage timestamps of one page's trip through the executor.
///
/// The stage names are direction-neutral; reads and writes traverse
/// the cipher and flash stages in opposite orders:
///
/// | field        | read ticket                   | write ticket                  |
/// |--------------|-------------------------------|-------------------------------|
/// | `submitted`  | batch submission              | batch submission              |
/// | `prepared`   | translation ready (ID-bit     | MEE seal read-out of the      |
/// |              | check passed)                 | source DRAM page              |
/// | `flash_done` | channel-bus transfer into the | program pulse finished on the |
/// |              | controller                    | die                           |
/// | `cipher_done`| decrypt lane drained          | encrypt lane drained          |
/// | `ready`      | verified plaintext in the TEE | durable (program + seal       |
/// |              | input ring (MEE fill done)    | metadata both drained)        |
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct LatencyBreakdown {
    /// When the batch was submitted.
    pub submitted: SimTime,
    /// End of the preparation stage (translate / seal read-out).
    pub prepared: SimTime,
    /// End of the flash stage (bus transfer / program pulse).
    pub flash_done: SimTime,
    /// End of the stream-cipher stage.
    pub cipher_done: SimTime,
    /// When the page's completion fires.
    pub ready: SimTime,
}

impl LatencyBreakdown {
    /// A breakdown with every stage pinned at `submitted` (stages fill
    /// in as the page advances).
    pub fn at_submission(submitted: SimTime) -> Self {
        LatencyBreakdown {
            submitted,
            prepared: submitted,
            flash_done: submitted,
            cipher_done: submitted,
            ready: submitted,
        }
    }

    /// End-to-end latency of the page (submission to completion).
    pub fn total(&self) -> SimDuration {
        self.ready.saturating_since(self.submitted)
    }
}

/// One drained entry of the completion queue: a page of an
/// asynchronous batch that has fully retired.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct CompletionEvent {
    /// The batch this page belongs to.
    pub ticket: Ticket,
    /// Read or write side.
    pub kind: TicketKind,
    /// The submitting TEE.
    pub tee: TeeId,
    /// The page's index within its batch (the documented same-tick
    /// tie-breaker after the ticket id).
    pub index: u32,
    /// The logical page.
    pub lpn: Lpn,
    /// Whether the page completed or failed.
    pub status: PageStatus,
    /// Per-stage timestamps; `breakdown.ready` is when this event
    /// became drainable.
    pub breakdown: LatencyBreakdown,
    /// Deciphered page content for read pages with functional data
    /// (timing-only simulations and write pages carry `None`).
    pub data: Option<Vec<u8>>,
}

impl CompletionEvent {
    /// When this completion became drainable.
    pub fn ready_at(&self) -> SimTime {
        self.breakdown.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn tickets_order_by_raw_value() {
        assert!(Ticket::new(1) < Ticket::new(2));
        assert_eq!(Ticket::new(7).raw(), 7);
        assert_eq!(Ticket::new(7).to_string(), "ticket#7");
    }

    #[test]
    fn breakdown_total_spans_submission_to_ready() {
        let t0 = SimTime::ZERO + SimDuration::from_micros(3);
        let mut b = LatencyBreakdown::at_submission(t0);
        assert_eq!(b.total(), SimDuration::ZERO);
        b.ready = t0 + SimDuration::from_micros(40);
        assert_eq!(b.total(), SimDuration::from_micros(40));
    }
}
