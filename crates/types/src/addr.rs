//! Storage and memory address newtypes.
//!
//! Logical page numbers ([`Lpn`]) are what in-storage programs and the host
//! use; physical page numbers ([`Ppn`]) index into the flash array and are
//! only produced by the FTL. Keeping them as distinct types makes it a
//! compile error to hand an untranslated address to the flash layer.

use std::fmt;

use crate::{CACHE_LINE_SIZE, PAGE_SIZE};

/// A logical page number: the address space exposed to applications.
///
/// # Examples
///
/// ```
/// use iceclave_types::Lpn;
///
/// let lpn = Lpn::new(7);
/// assert_eq!(lpn.next().raw(), 8);
/// assert_eq!(lpn.byte_offset(), 7 * 4096);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Lpn(u64);

/// A physical page number: a location in the flash array, produced only by
/// the FTL's address translation.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Ppn(u64);

/// A byte address in the SSD's internal DRAM physical address space.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct PhysAddr(u64);

/// A cache-line index in the SSD DRAM (64-byte granularity), the unit at
/// which the memory-encryption engine operates.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct CacheLine(u64);

impl Lpn {
    /// Creates a logical page number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Lpn(raw)
    }

    /// The raw page index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The logical byte offset of the start of this page.
    #[inline]
    pub const fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE
    }

    /// The following logical page.
    #[inline]
    pub const fn next(self) -> Lpn {
        Lpn(self.0 + 1)
    }

    /// This page offset by `delta` pages.
    #[inline]
    pub const fn offset(self, delta: u64) -> Lpn {
        Lpn(self.0 + delta)
    }
}

impl Ppn {
    /// Creates a physical page number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Ppn(raw)
    }

    /// The raw physical page index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl PhysAddr {
    /// Creates a physical DRAM byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn cache_line(self) -> CacheLine {
        CacheLine(self.0 / CACHE_LINE_SIZE)
    }

    /// The 4 KiB DRAM page index containing this address.
    #[inline]
    pub const fn page_index(self) -> u64 {
        self.0 / PAGE_SIZE
    }

    /// Byte offset within the containing 4 KiB page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// This address offset by `delta` bytes.
    #[inline]
    pub const fn offset(self, delta: u64) -> PhysAddr {
        PhysAddr(self.0 + delta)
    }
}

impl CacheLine {
    /// Creates a cache-line index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        CacheLine(raw)
    }

    /// The raw line index.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this line.
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * CACHE_LINE_SIZE)
    }

    /// The 4 KiB page index containing this line.
    #[inline]
    pub const fn page_index(self) -> u64 {
        self.0 / (PAGE_SIZE / CACHE_LINE_SIZE)
    }

    /// The index of this line within its page (0..64).
    #[inline]
    pub const fn line_in_page(self) -> u64 {
        self.0 % (PAGE_SIZE / CACHE_LINE_SIZE)
    }
}

impl From<u64> for Lpn {
    #[inline]
    fn from(raw: u64) -> Self {
        Lpn(raw)
    }
}

impl From<u64> for Ppn {
    #[inline]
    fn from(raw: u64) -> Self {
        Ppn(raw)
    }
}

impl From<u64> for PhysAddr {
    #[inline]
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LPN#{}", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPN#{}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CL#{}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpn_arithmetic() {
        let l = Lpn::new(10);
        assert_eq!(l.next(), Lpn::new(11));
        assert_eq!(l.offset(5), Lpn::new(15));
        assert_eq!(l.byte_offset(), 40_960);
    }

    #[test]
    fn phys_addr_decomposition() {
        let a = PhysAddr::new(4096 + 130);
        assert_eq!(a.page_index(), 1);
        assert_eq!(a.page_offset(), 130);
        assert_eq!(a.cache_line().raw(), (4096 + 130) / 64);
    }

    #[test]
    fn cache_line_decomposition() {
        let line = CacheLine::new(65);
        assert_eq!(line.page_index(), 1);
        assert_eq!(line.line_in_page(), 1);
        assert_eq!(line.base_addr().raw(), 65 * 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Lpn::new(3).to_string(), "LPN#3");
        assert_eq!(Ppn::new(4).to_string(), "PPN#4");
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }
}
