//! The per-page error and fault-accounting vocabulary.
//!
//! Faults injected at the flash boundary (see `iceclave_flash::faults`)
//! surface to callers in exactly one shape: a [`PageError`] names the
//! physical page, how many attempts the recovery ladder spent on it,
//! and the terminal [`PageErrorCause`]. Completions
//! ([`PageStatus::Failed`](crate::PageStatus)) and run-level statistics
//! ([`FaultStats`]) both speak this vocabulary, so a failed page in a
//! drained completion can be correlated with the aggregate counters
//! without any stringly-typed glue.

use crate::addr::Ppn;
use crate::time::SimDuration;

/// Why a page terminally failed after recovery was exhausted.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum PageErrorCause {
    /// Raw-bit-error bursts exceeded the ECC correction strength on
    /// every rung of the read-retry ladder.
    Uncorrectable,
    /// The program operation reported status FAIL and the remap path
    /// could not land the page elsewhere.
    ProgramFailed,
    /// The owning TEE was thrown out (or terminated) while the page
    /// was in flight; the page was never completed.
    Cancelled,
}

impl core::fmt::Display for PageErrorCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageErrorCause::Uncorrectable => write!(f, "uncorrectable read"),
            PageErrorCause::ProgramFailed => write!(f, "program failed"),
            PageErrorCause::Cancelled => write!(f, "cancelled in flight"),
        }
    }
}

/// The structured record of one page's terminal failure.
///
/// Carried by [`PageStatus::Failed`](crate::PageStatus) so a ticket
/// completes *partially* — healthy pages retire `Done`, each failed
/// page reports its own `PageError` — instead of aborting the whole
/// batch.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct PageError {
    /// The physical page the failure happened at (`Ppn::new(0)` when
    /// the page never reached translation, e.g. cancelled at submit).
    pub ppn: Ppn,
    /// How many attempts were spent before giving up (1 = failed on
    /// the first try with no retry budget left, 0 = never attempted).
    pub attempts: u32,
    /// The terminal cause.
    pub cause: PageErrorCause,
}

impl core::fmt::Display for PageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} at {} after {} attempt{}",
            self.cause,
            self.ppn,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" }
        )
    }
}

/// Aggregate fault-and-recovery accounting for one run.
///
/// Assembled from the flash, FTL, executor and MEE statistics blocks;
/// lands in `RunResult` so fault sweeps (`benches/faults.rs`) can
/// report recovery behaviour alongside throughput.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct FaultStats {
    /// Read attempts re-issued by the executor's retry ladder.
    pub read_retries: u64,
    /// Pages that exhausted the ladder and completed `Failed`.
    pub uncorrectable_pages: u64,
    /// Raw-bit-error bursts the ECC corrected transparently.
    pub corrected_bursts: u64,
    /// Pages re-steered to another block after a program failure.
    pub program_remaps: u64,
    /// Blocks retired into the grown-bad-block table.
    pub blocks_retired: u64,
    /// L2 MAC mismatches absorbed by falling back to the home-location
    /// Merkle walk (corruption suspected, not tampering).
    pub mac_fallbacks: u64,
}

impl FaultStats {
    /// True when no fault activity was recorded at all.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// What one reboot-and-replay pass recovered (and gave up on).
///
/// Produced by `IceClave::recover` after a power cut (or a clean
/// shutdown) and carried into `RunResult` so crash sweeps
/// (`benches/crash_recovery.rs`) can report replay cost alongside the
/// durability outcome.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct RecoveryStats {
    /// True when the journal's last record was a clean-shutdown seal:
    /// the boot took the fast path and replayed no dirty state.
    pub clean_boot: bool,
    /// Journal records re-applied to rebuild the mapping, grown-bad
    /// and counter-epoch state.
    pub records_replayed: u64,
    /// Records discarded as the torn tail — appended but not fully
    /// durable when the power failed.
    pub torn_records: u64,
    /// Journal pages read back during replay.
    pub pages_read: u64,
    /// In-flight (never-acknowledged) pages the crash destroyed; the
    /// durability contract never covered them.
    pub pages_lost: u64,
    /// Simulated time the reboot spent reading and replaying the
    /// journal.
    pub recovery_time: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_error_displays_cause_and_location() {
        let e = PageError {
            ppn: Ppn::new(42),
            attempts: 3,
            cause: PageErrorCause::Uncorrectable,
        };
        let s = e.to_string();
        assert!(s.contains("uncorrectable"), "{s}");
        assert!(s.contains("3 attempts"), "{s}");
        let one = PageError {
            ppn: Ppn::new(1),
            attempts: 1,
            cause: PageErrorCause::ProgramFailed,
        };
        assert!(one.to_string().ends_with("1 attempt"));
    }

    #[test]
    fn fault_stats_default_is_quiet() {
        assert!(FaultStats::default().is_quiet());
        let s = FaultStats {
            read_retries: 1,
            ..FaultStats::default()
        };
        assert!(!s.is_quiet());
    }
}
