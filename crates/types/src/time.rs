//! Simulated time.
//!
//! The simulator keeps time in integer **picoseconds** so that DDR3 command
//! timing (1.25 ns clock) and multi-second workload runs can both be
//! represented exactly in a `u64` (which covers ~213 days of simulated
//! time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, measured in picoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use iceclave_types::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_nanos(3);
/// assert_eq!(t.as_ps(), 3_000);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in picoseconds.
///
/// # Examples
///
/// ```
/// use iceclave_types::SimDuration;
///
/// let d = SimDuration::from_micros(50);
/// assert_eq!(d.as_nanos(), 50_000);
/// assert_eq!(d * 2, SimDuration::from_micros(100));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ps` picoseconds after the start of simulation.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later
    /// than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ps` picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        SimDuration((ns * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000_000_000.0).round().max(0.0) as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Truncated nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a floating-point factor, rounding to the nearest
    /// picosecond. Negative factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 = self.0.wrapping_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_nanos_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_nanos(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_micros_f64(), 1_000.0);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let t0 = SimTime::from_ps(500);
        let t1 = t0 + SimDuration::from_ps(250);
        assert_eq!(t1.as_ps(), 750);
        assert_eq!((t1 - t0).as_ps(), 250);
        assert_eq!(t1.saturating_since(SimTime::from_ps(1_000)).as_ps(), 0);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.mul_f64(0.5).as_ps(), 50_000);
        assert_eq!((d * 3).as_nanos(), 300);
        assert_eq!((d / 4).as_nanos(), 25);
        assert!((d / d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_constructors_clamp() {
        assert_eq!(SimDuration::from_nanos_f64(-5.0).as_ps(), 0);
        assert_eq!(SimDuration::from_nanos_f64(0.5).as_ps(), 500);
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_ps(), 1);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(12)), "12ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(50)), "50.000ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ps(10);
        let b = SimTime::from_ps(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_ps(10);
        let y = SimDuration::from_ps(20);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
