//! Per-ticket integrity-metadata traffic attribution.
//!
//! The MEE keeps global hit/miss counters for its three metadata kinds
//! (split counters, MACs, Merkle tree nodes) plus the DRAM-resident L2
//! metadata cache. Those tell you what the *device* spent, but not which
//! tenant caused it — and metadata bandwidth is the dominant MEE cost, so
//! charging it to the ticket that incurred it is the prerequisite for any
//! metadata-aware scheduling (hierarchical WFQ) and for trace records
//! that explain *why* a ticket was slow.
//!
//! [`TicketAttribution`] is that charge slip: a snapshot-delta of the
//! MEE's counters taken around exactly the engine calls one ticket makes.
//! The executor driver accumulates one per in-flight ticket and hands the
//! final sum to the retirement observer when the ticket closes; the same
//! deltas are summed into the run-level totals surfaced by `RunResult`.

/// Integrity-metadata traffic charged to a single ticket.
///
/// All fields are event counts (cache probes), not bytes: one miss on
/// the counter/MAC/tree caches corresponds to one metadata cache-line
/// transfer from DRAM (or, on an L2 miss, a Merkle walk). The struct is
/// a plain additive accumulator — [`add`](TicketAttribution::add) folds
/// another delta in, so the same type serves per-ticket, per-tenant and
/// run-global roles.
#[derive(Copy, Clone, Eq, PartialEq, Debug, Default)]
pub struct TicketAttribution {
    /// Split-counter cache hits.
    pub counter_hits: u64,
    /// Split-counter cache misses (each one is a DRAM metadata fetch).
    pub counter_misses: u64,
    /// MAC cache hits.
    pub mac_hits: u64,
    /// MAC cache misses.
    pub mac_misses: u64,
    /// Merkle-tree node cache hits.
    pub tree_hits: u64,
    /// Merkle-tree node cache misses (each may trigger a tree walk).
    pub tree_misses: u64,
    /// Hits in the DRAM-backed second-level metadata store.
    pub l2_hits: u64,
    /// Misses in the DRAM-backed second-level metadata store.
    pub l2_misses: u64,
    /// Cache lines staged into protected DRAM by the bulk fill engine
    /// (flash-to-DRAM DMA on the read path).
    pub fill_lines: u64,
    /// Cache lines drained out of protected DRAM by the bulk seal
    /// engine (DRAM-to-flash DMA on the write path).
    pub seal_lines: u64,
    /// Counter-block DRAM writes issued by the bulk engines (fresh
    /// counter epochs on fill and seal — metadata traffic that bypasses
    /// the on-chip caches by design).
    pub meta_writes: u64,
    /// Cipher pad generations performed on this ticket's behalf.
    pub enc_pads: u64,
}

impl TicketAttribution {
    /// Fold another attribution delta into this accumulator.
    pub fn add(&mut self, other: &TicketAttribution) {
        self.counter_hits += other.counter_hits;
        self.counter_misses += other.counter_misses;
        self.mac_hits += other.mac_hits;
        self.mac_misses += other.mac_misses;
        self.tree_hits += other.tree_hits;
        self.tree_misses += other.tree_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.fill_lines += other.fill_lines;
        self.seal_lines += other.seal_lines;
        self.meta_writes += other.meta_writes;
        self.enc_pads += other.enc_pads;
    }

    /// Total first-level metadata probes (counter + MAC + tree).
    pub fn total_accesses(&self) -> u64 {
        self.counter_hits
            + self.counter_misses
            + self.mac_hits
            + self.mac_misses
            + self.tree_hits
            + self.tree_misses
    }

    /// Total first-level misses — the metadata DRAM traffic this ticket
    /// is responsible for, in cache-line-transfer units.
    pub fn total_misses(&self) -> u64 {
        self.counter_misses + self.mac_misses + self.tree_misses
    }

    /// The delta's metadata DRAM traffic in 64-byte cache-line
    /// transfers — the attribution → scheduling-cost mapping consumed
    /// by the hierarchical channel arbiter's MEE surcharge
    /// (`WfqArbiter::surcharge_lines` in `iceclave_ftl`).
    ///
    /// Counts exactly the events that move a metadata line over the
    /// DRAM bus: bulk fill/seal lines, counter-epoch writes, on-chip
    /// cache misses (each a line fetch) and L2 misses (each a second
    /// fetch behind the first level). Hits and cipher pad generations
    /// are on-chip work — they cost engine time, not bandwidth — so
    /// they are deliberately excluded.
    pub fn cost_lines(&self) -> u64 {
        self.fill_lines + self.seal_lines + self.meta_writes + self.total_misses() + self.l2_misses
    }

    /// True when no metadata traffic was charged at all.
    pub fn is_zero(&self) -> bool {
        *self == TicketAttribution::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let mut a = TicketAttribution::default();
        let b = TicketAttribution {
            counter_hits: 1,
            counter_misses: 2,
            mac_hits: 3,
            mac_misses: 4,
            tree_hits: 5,
            tree_misses: 6,
            l2_hits: 7,
            l2_misses: 8,
            fill_lines: 9,
            seal_lines: 10,
            meta_writes: 11,
            enc_pads: 12,
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.counter_hits, 2);
        assert_eq!(a.counter_misses, 4);
        assert_eq!(a.mac_hits, 6);
        assert_eq!(a.mac_misses, 8);
        assert_eq!(a.tree_hits, 10);
        assert_eq!(a.tree_misses, 12);
        assert_eq!(a.l2_hits, 14);
        assert_eq!(a.l2_misses, 16);
        assert_eq!(a.fill_lines, 18);
        assert_eq!(a.seal_lines, 20);
        assert_eq!(a.meta_writes, 22);
        assert_eq!(a.enc_pads, 24);
        assert_eq!(a.total_accesses(), 42);
        assert_eq!(a.total_misses(), 24);
    }

    /// `cost_lines` counts DRAM line transfers only: bulk lines,
    /// counter-epoch writes, and misses at both metadata levels — never
    /// hits or pad generations.
    #[test]
    fn cost_lines_counts_dram_traffic_only() {
        let hits_only = TicketAttribution {
            counter_hits: 5,
            mac_hits: 7,
            tree_hits: 9,
            l2_hits: 11,
            enc_pads: 13,
            ..TicketAttribution::default()
        };
        assert_eq!(hits_only.cost_lines(), 0, "on-chip work is free");
        let traffic = TicketAttribution {
            fill_lines: 64,
            seal_lines: 32,
            meta_writes: 4,
            counter_misses: 1,
            mac_misses: 2,
            tree_misses: 3,
            l2_misses: 5,
            ..TicketAttribution::default()
        };
        assert_eq!(traffic.cost_lines(), 64 + 32 + 4 + 6 + 5);
    }

    #[test]
    fn default_is_zero() {
        assert!(TicketAttribution::default().is_zero());
        let one = TicketAttribution {
            l2_misses: 1,
            ..TicketAttribution::default()
        };
        assert!(!one.is_zero());
    }
}
