//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The simulator's sparse per-page maps (flash page content, FTL page
//! metadata) are keyed by physical page numbers that the FTL hands out
//! adversarially spread across the device — dense `Vec` indexing would
//! cost gigabytes for a 1 TiB geometry. A `HashMap` keeps them sparse,
//! but the standard library's default SipHash is a measurable fraction
//! of the per-page simulation budget. [`FxHasher`] is the classic
//! multiply-rotate word hasher (as used by rustc): one rotate, one
//! xor, and one multiply per word, with no DoS resistance — which is
//! fine here because every key is simulator-generated, never attacker
//! chosen.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]; drop-in for simulator-internal maps
/// whose keys are simulator-generated integers.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher; see the module docs for when it is
/// appropriate.
#[derive(Clone, Default, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        m.insert(1 << 40, "high");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&(1 << 40)), Some(&"high"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn nearby_keys_spread() {
        let mut seen = FastSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 2_097_152); // die-strided PPNs
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }
}
