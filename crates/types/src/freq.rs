//! Clock frequencies and cycle/time conversion.

use std::fmt;

use crate::SimDuration;

/// A clock frequency in hertz.
///
/// # Examples
///
/// ```
/// use iceclave_types::Hertz;
///
/// let clk = Hertz::from_mhz(1600);
/// assert_eq!(clk.as_ghz_f64(), 1.6);
/// // One DDR3-1600 data-bus cycle is 0.625 ns; the command clock at
/// // 800 MHz is 1.25 ns.
/// assert_eq!(Hertz::from_mhz(800).cycle_time().as_ps(), 1250);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Hertz(u64);

impl Hertz {
    /// Creates a frequency of `hz` hertz.
    #[inline]
    pub const fn from_hz(hz: u64) -> Self {
        Hertz(hz)
    }

    /// Creates a frequency of `mhz` megahertz.
    #[inline]
    pub const fn from_mhz(mhz: u64) -> Self {
        Hertz(mhz * 1_000_000)
    }

    /// Creates a frequency from fractional gigahertz.
    #[inline]
    pub fn from_ghz_f64(ghz: f64) -> Self {
        Hertz((ghz * 1e9).round() as u64)
    }

    /// Raw hertz value.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Frequency in fractional gigahertz.
    #[inline]
    pub fn as_ghz_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration of a single clock cycle, rounded to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn cycle_time(self) -> SimDuration {
        assert!(self.0 > 0, "cycle_time of zero frequency");
        SimDuration::from_ps(1_000_000_000_000u64.div_ceil(self.0))
    }

    /// Time taken by `cycles` clock cycles at this frequency (exact to the
    /// picosecond for sub-THz clocks).
    #[inline]
    pub fn cycles(self, cycles: u64) -> SimDuration {
        debug_assert!(self.0 > 0, "cycles of zero frequency");
        // Scale via u128 to avoid overflow for large cycle counts.
        let ps = (cycles as u128 * 1_000_000_000_000u128) / self.0 as u128;
        SimDuration::from_ps(ps as u64)
    }

    /// Number of whole cycles that fit in `d` at this frequency.
    #[inline]
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        ((d.as_ps() as u128 * self.0 as u128) / 1_000_000_000_000u128) as u64
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GHz", self.as_ghz_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.0}MHz", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_of_common_clocks() {
        assert_eq!(Hertz::from_mhz(1000).cycle_time().as_ps(), 1000);
        assert_eq!(Hertz::from_mhz(800).cycle_time().as_ps(), 1250);
        assert_eq!(Hertz::from_ghz_f64(4.2).as_hz(), 4_200_000_000);
    }

    #[test]
    fn cycles_round_trip() {
        let clk = Hertz::from_mhz(1600);
        let d = clk.cycles(1_600_000); // 1 ms worth of cycles
        assert_eq!(d.as_millis_f64(), 1.0);
        assert_eq!(clk.cycles_in(d), 1_600_000);
    }

    #[test]
    fn large_cycle_counts_do_not_overflow() {
        let clk = Hertz::from_ghz_f64(2.8);
        let d = clk.cycles(u64::from(u32::MAX) * 16);
        assert!(d.as_secs_f64() > 20.0);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn zero_frequency_panics() {
        let _ = Hertz::from_hz(0).cycle_time();
    }

    #[test]
    fn display() {
        assert_eq!(Hertz::from_mhz(1600).to_string(), "1.60GHz");
        assert_eq!(Hertz::from_mhz(800).to_string(), "800MHz");
        assert_eq!(Hertz::from_hz(50).to_string(), "50Hz");
    }
}
