//! Byte sizes with binary-unit constructors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes.
///
/// # Examples
///
/// ```
/// use iceclave_types::ByteSize;
///
/// let dram = ByteSize::from_gib(4);
/// assert_eq!(dram.as_bytes(), 4 * 1024 * 1024 * 1024);
/// assert_eq!(dram / ByteSize::from_mib(1), 4096.0);
/// assert_eq!(format!("{dram}"), "4.00GiB");
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `n` bytes.
    #[inline]
    pub const fn from_bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Creates a size of `n` kibibytes.
    #[inline]
    pub const fn from_kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// Creates a size of `n` mebibytes.
    #[inline]
    pub const fn from_mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// Creates a size of `n` gibibytes.
    #[inline]
    pub const fn from_gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in fractional kibibytes.
    #[inline]
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Size in fractional mebibytes.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in fractional gibibytes.
    #[inline]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of whole 4 KiB pages covered by this size (rounding up).
    #[inline]
    pub const fn pages(self) -> u64 {
        self.0.div_ceil(crate::PAGE_SIZE)
    }

    /// Number of whole 64 B cache lines covered by this size (rounding up).
    #[inline]
    pub const fn cache_lines(self) -> u64 {
        self.0.div_ceil(crate::CACHE_LINE_SIZE)
    }

    /// True if this size is zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        debug_assert!(self.0 >= rhs.0, "ByteSize subtraction underflow");
        ByteSize(self.0.wrapping_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = f64;
    #[inline]
    fn div(self, rhs: ByteSize) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|s| s.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GiB", self.as_gib_f64())
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if b >= 1024 {
            write!(f, "{:.2}KiB", self.as_kib_f64())
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::from_kib(2).as_bytes(), 2048);
        assert_eq!(ByteSize::from_mib(1).as_kib_f64(), 1024.0);
        assert_eq!(ByteSize::from_gib(1).as_mib_f64(), 1024.0);
    }

    #[test]
    fn page_and_line_counts_round_up() {
        assert_eq!(ByteSize::from_bytes(1).pages(), 1);
        assert_eq!(ByteSize::from_bytes(4096).pages(), 1);
        assert_eq!(ByteSize::from_bytes(4097).pages(), 2);
        assert_eq!(ByteSize::from_bytes(65).cache_lines(), 2);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_kib(4);
        let b = ByteSize::from_kib(1);
        assert_eq!(a + b, ByteSize::from_kib(5));
        assert_eq!(a - b, ByteSize::from_kib(3));
        assert_eq!(a * 2, ByteSize::from_kib(8));
        assert_eq!(a / 2, ByteSize::from_kib(2));
        assert_eq!(a / b, 4.0);
        assert_eq!(a.saturating_sub(ByteSize::from_mib(1)), ByteSize::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(ByteSize::from_bytes(12).to_string(), "12B");
        assert_eq!(ByteSize::from_kib(3).to_string(), "3.00KiB");
        assert_eq!(ByteSize::from_mib(5).to_string(), "5.00MiB");
        assert_eq!(ByteSize::from_gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn sum() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(6));
    }
}
