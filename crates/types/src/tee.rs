//! TEE identifiers.
//!
//! IceClave tags every FTL mapping-table entry with a small TEE identifier
//! (4 bits by default, §4.3 of the paper) so that the access-control check
//! can verify which in-storage TEE owns a logical page. [`TeeId`] models
//! that identifier, including the configurable bit width.

use std::error::Error;
use std::fmt;

/// Number of ID bits reserved per mapping-table entry (paper default: 4,
/// a 6.25% overhead on 8-byte entries).
pub const DEFAULT_ID_BITS: u32 = 4;

/// Identifier of an in-storage TEE, stored in the ID bits of mapping-table
/// entries.
///
/// Value 0 is reserved for "unowned / FTL-internal" pages; user TEEs get
/// identifiers in `1..2^bits`.
///
/// # Examples
///
/// ```
/// use iceclave_types::TeeId;
///
/// let id = TeeId::new(3)?;
/// assert_eq!(id.raw(), 3);
/// assert!(TeeId::new(16).is_err()); // only 4 ID bits by default
/// # Ok::<(), iceclave_types::TeeIdError>(())
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct TeeId(u8);

/// Error returned when a TEE identifier does not fit in the configured ID
/// bits.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct TeeIdError {
    raw: u16,
    bits: u32,
}

impl TeeId {
    /// The reserved identifier for pages not owned by any TEE (FTL
    /// metadata, translation pages, unclaimed user data).
    pub const UNOWNED: TeeId = TeeId(0);

    /// Creates a TEE id using the default 4-bit width.
    ///
    /// # Errors
    ///
    /// Returns [`TeeIdError`] if `raw >= 2^4`.
    pub fn new(raw: u16) -> Result<Self, TeeIdError> {
        Self::with_bits(raw, DEFAULT_ID_BITS)
    }

    /// Creates a TEE id that must fit in `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`TeeIdError`] if `raw >= 2^bits` or `bits > 8`.
    pub fn with_bits(raw: u16, bits: u32) -> Result<Self, TeeIdError> {
        if bits == 0 || bits > 8 || u32::from(raw) >= (1u32 << bits) {
            return Err(TeeIdError { raw, bits });
        }
        Ok(TeeId(raw as u8))
    }

    /// The raw identifier value.
    #[inline]
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// True if this is the reserved unowned identifier.
    #[inline]
    pub const fn is_unowned(self) -> bool {
        self.0 == 0
    }

    /// Number of distinct user TEE ids available with `bits` ID bits
    /// (excludes the reserved unowned id).
    #[inline]
    pub const fn capacity(bits: u32) -> usize {
        (1usize << bits) - 1
    }
}

impl fmt::Display for TeeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unowned() {
            write!(f, "TEE#unowned")
        } else {
            write!(f, "TEE#{}", self.0)
        }
    }
}

impl fmt::Display for TeeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tee id {} does not fit in {} id bits",
            self.raw, self.bits
        )
    }
}

impl Error for TeeIdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_width_accepts_0_to_15() {
        for raw in 0..16 {
            assert!(TeeId::new(raw).is_ok(), "raw={raw}");
        }
        assert!(TeeId::new(16).is_err());
    }

    #[test]
    fn custom_widths() {
        assert!(TeeId::with_bits(7, 3).is_ok());
        assert!(TeeId::with_bits(8, 3).is_err());
        assert!(TeeId::with_bits(0, 0).is_err());
        assert!(TeeId::with_bits(1, 9).is_err());
    }

    #[test]
    fn unowned_is_zero() {
        assert!(TeeId::UNOWNED.is_unowned());
        assert_eq!(TeeId::UNOWNED.raw(), 0);
        assert!(!TeeId::new(1).unwrap().is_unowned());
    }

    #[test]
    fn capacity_excludes_reserved() {
        assert_eq!(TeeId::capacity(4), 15);
        assert_eq!(TeeId::capacity(1), 1);
    }

    #[test]
    fn error_message_mentions_bits() {
        let err = TeeId::new(40).unwrap_err();
        assert_eq!(err.to_string(), "tee id 40 does not fit in 4 id bits");
    }

    #[test]
    fn display() {
        assert_eq!(TeeId::UNOWNED.to_string(), "TEE#unowned");
        assert_eq!(TeeId::new(5).unwrap().to_string(), "TEE#5");
    }
}
