//! The unified bench-report schema and the regression gate.
//!
//! # Schema (`iceclave.bench_report.v1`)
//!
//! ```json
//! {
//!   "schema": "iceclave.bench_report.v1",
//!   "bench": "simspeed",
//!   "fingerprint": "9f2c41aa00b37e12",
//!   "config": { "tees": "2", "channels": "16" },
//!   "metrics": [
//!     { "name": "simulated_pages_per_iter", "unit": "pages",
//!       "value": 2304.0, "direction": "higher", "tol": 0.0, "gate": true }
//!   ]
//! }
//! ```
//!
//! * `fingerprint` is the FxHash (hex) of the bench id and every
//!   `config` key/value pair, in emission order. The gate fails on a
//!   fingerprint mismatch: changing a bench's configuration requires
//!   regenerating its committed baseline, never silently comparing
//!   incomparable runs.
//! * `direction` says which way the metric is allowed to drift:
//!   `higher` means larger is better (a drop is a regression), `lower`
//!   the opposite, `either` means any drift beyond tolerance fails.
//! * `tol` is the *relative* tolerance band (0.05 = ±5%). Deterministic
//!   simulated metrics use tight or zero bands; wall-clock metrics are
//!   emitted with `gate: false` and are purely informational.
//!
//! The gate itself ([`check`]) compares a candidate report against its
//! committed baseline metric-by-metric and reports every violation;
//! `check_regression` (this crate's binary) maps that over a directory
//! pair and sets the process exit code for CI.

use std::hash::Hasher;

use iceclave_types::{FxHasher, SimDuration};

use crate::json::{self, Value};

/// Schema identifier emitted in (and required of) every report.
pub const SCHEMA: &str = "iceclave.bench_report.v1";

/// Which direction of drift counts as a regression for a metric.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Direction {
    /// Larger is better: a drop below `baseline * (1 - tol)` fails.
    Higher,
    /// Smaller is better: a rise above `baseline * (1 + tol)` fails.
    Lower,
    /// Any drift beyond the band fails.
    Either,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Either => "either",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "either" => Some(Direction::Either),
            _ => None,
        }
    }
}

/// One named measurement in a [`BenchReport`].
#[derive(Clone, PartialEq, Debug)]
pub struct Metric {
    /// Stable metric name (the gate matches baselines by name).
    pub name: String,
    /// Unit label, e.g. `pages/s`, `ns`, `ratio`.
    pub unit: String,
    /// The measured value.
    pub value: f64,
    /// Which drift direction regresses.
    pub direction: Direction,
    /// Relative tolerance band (0.05 = ±5%).
    pub tol: f64,
    /// Whether the regression gate enforces this metric. Wall-clock
    /// measurements set `false` (machine-dependent, informational).
    pub gate: bool,
}

/// A latency percentile set, for emission as a metric family.
///
/// Computed from per-page latencies (e.g. `LatencyBreakdown::total`)
/// so every bench reports tails the same way.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Percentiles (nearest-rank) of `latencies`, in nanoseconds.
    /// Returns `None` for an empty set.
    pub fn from_durations(latencies: &[SimDuration]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut ns: Vec<f64> = latencies.iter().map(|d| d.as_nanos_f64()).collect();
        ns.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let idx = ((p * ns.len() as f64).ceil() as usize).clamp(1, ns.len()) - 1;
            ns[idx]
        };
        Some(Percentiles {
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: ns[ns.len() - 1],
        })
    }
}

/// One bench run's worth of metrics, in the unified schema.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchReport {
    /// Bench identifier (e.g. `simspeed`).
    pub bench: String,
    /// Configuration key/value pairs, in emission order; folded into
    /// the fingerprint.
    pub config: Vec<(String, String)>,
    /// The measurements.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Appends one configuration pair (builder style).
    pub fn config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends one metric.
    pub fn push_metric(
        &mut self,
        name: impl Into<String>,
        unit: &str,
        value: f64,
        direction: Direction,
        tol: f64,
        gate: bool,
    ) {
        self.metrics.push(Metric {
            name: name.into(),
            unit: unit.to_string(),
            value,
            direction,
            tol,
            gate,
        });
    }

    /// Appends the four percentile metrics of `p` under
    /// `{prefix}_p50_ns` … `{prefix}_max_ns`.
    pub fn push_percentiles(
        &mut self,
        prefix: &str,
        p: Percentiles,
        direction: Direction,
        tol: f64,
        gate: bool,
    ) {
        for (suffix, value) in [
            ("p50_ns", p.p50),
            ("p90_ns", p.p90),
            ("p99_ns", p.p99),
            ("max_ns", p.max),
        ] {
            self.push_metric(
                format!("{prefix}_{suffix}"),
                "ns",
                value,
                direction,
                tol,
                gate,
            );
        }
    }

    /// The config fingerprint: FxHash (hex) over the bench id and every
    /// config pair in order.
    pub fn fingerprint(&self) -> String {
        let mut h = FxHasher::default();
        h.write(self.bench.as_bytes());
        for (k, v) in &self.config {
            h.write(k.as_bytes());
            h.write(v.as_bytes());
        }
        format!("{:016x}", h.finish())
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes the report (pretty-printed, deterministic member
    /// order, shortest-round-trip numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.metrics.len() * 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json::escape(SCHEMA)));
        out.push_str(&format!("  \"bench\": {},\n", json::escape(&self.bench)));
        out.push_str(&format!(
            "  \"fingerprint\": {},\n",
            json::escape(&self.fingerprint())
        ));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::escape(k), json::escape(v)));
        }
        if !self.config.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"name\": {}, \"unit\": {}, \"value\": {}, \
                 \"direction\": {}, \"tol\": {}, \"gate\": {} }}",
                json::escape(&m.name),
                json::escape(&m.unit),
                json::number(m.value),
                json::escape(m.direction.as_str()),
                json::number(m.tol),
                m.gate
            ));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses and schema-validates a report.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: malformed JSON, a
    /// missing/mistyped member, an unknown schema id, or a fingerprint
    /// that does not match the embedded config.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema {schema:?} (want {SCHEMA:?})"));
        }
        let bench = v
            .get("bench")
            .and_then(Value::as_str)
            .ok_or("missing \"bench\"")?
            .to_string();
        let config = v
            .get("config")
            .and_then(Value::as_object)
            .ok_or("missing \"config\" object")?
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("config {k:?} is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut metrics = Vec::new();
        for (i, m) in v
            .get("metrics")
            .and_then(Value::as_array)
            .ok_or("missing \"metrics\" array")?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                m.get(key)
                    .ok_or_else(|| format!("metric #{i} missing {key:?}"))
            };
            let name = field("name")?
                .as_str()
                .ok_or_else(|| format!("metric #{i} name is not a string"))?
                .to_string();
            let unit = field("unit")?
                .as_str()
                .ok_or_else(|| format!("metric {name:?} unit is not a string"))?
                .to_string();
            let value = field("value")?
                .as_f64()
                .ok_or_else(|| format!("metric {name:?} value is not a number"))?;
            let direction = field("direction")?
                .as_str()
                .and_then(Direction::from_str)
                .ok_or_else(|| format!("metric {name:?} has an invalid direction"))?;
            let tol = field("tol")?
                .as_f64()
                .ok_or_else(|| format!("metric {name:?} tol is not a number"))?;
            let gate = field("gate")?
                .as_bool()
                .ok_or_else(|| format!("metric {name:?} gate is not a boolean"))?;
            metrics.push(Metric {
                name,
                unit,
                value,
                direction,
                tol,
                gate,
            });
        }
        let report = BenchReport {
            bench,
            config,
            metrics,
        };
        let claimed = v
            .get("fingerprint")
            .and_then(Value::as_str)
            .ok_or("missing \"fingerprint\"")?;
        if claimed != report.fingerprint() {
            return Err(format!(
                "fingerprint {claimed:?} does not match the embedded config \
                 (recomputed {:?})",
                report.fingerprint()
            ));
        }
        Ok(report)
    }

    /// Writes the report to the path named by the environment variable
    /// `env_var` (falling back to `default_path`), echoing the target.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_default(&self, env_var: &str, default_path: &str) -> std::io::Result<String> {
        let path = std::env::var(env_var).unwrap_or_else(|_| default_path.to_string());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One gate failure found by [`check`].
#[derive(Clone, PartialEq, Debug)]
pub struct GateViolation {
    /// The metric that failed (or a pseudo-name for report-level
    /// problems like a fingerprint mismatch).
    pub metric: String,
    /// What happened.
    pub detail: String,
}

impl std::fmt::Display for GateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.metric, self.detail)
    }
}

/// Compares `candidate` against `baseline`, returning every violation
/// (empty = gate passes).
///
/// Rules, in order: bench ids must match; fingerprints must match
/// (changed configs require a regenerated baseline); every *gated*
/// baseline metric must exist in the candidate; each must sit inside
/// the baseline's tolerance band in the harmless direction. Candidate
/// metrics absent from the baseline pass (new metrics need a baseline
/// refresh to become enforced, but never break CI).
pub fn check(baseline: &BenchReport, candidate: &BenchReport) -> Vec<GateViolation> {
    let mut violations = Vec::new();
    if baseline.bench != candidate.bench {
        violations.push(GateViolation {
            metric: "<report>".to_string(),
            detail: format!(
                "bench id mismatch: baseline {:?} vs candidate {:?}",
                baseline.bench, candidate.bench
            ),
        });
        return violations;
    }
    if baseline.fingerprint() != candidate.fingerprint() {
        violations.push(GateViolation {
            metric: "<report>".to_string(),
            detail: format!(
                "config fingerprint changed ({} -> {}): regenerate the committed baseline",
                baseline.fingerprint(),
                candidate.fingerprint()
            ),
        });
        return violations;
    }
    for base in baseline.metrics.iter().filter(|m| m.gate) {
        let Some(cand) = candidate.metric(&base.name) else {
            violations.push(GateViolation {
                metric: base.name.clone(),
                detail: "gated metric missing from candidate report".to_string(),
            });
            continue;
        };
        let delta = if base.value == 0.0 {
            // Zero baselines (e.g. failed-page counts) tolerate only
            // zero candidates under a relative band.
            if cand.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cand.value - base.value) / base.value
        };
        let harmful = match base.direction {
            Direction::Higher => -delta,
            Direction::Lower => delta,
            Direction::Either => delta.abs(),
        };
        if harmful > base.tol {
            violations.push(GateViolation {
                metric: base.name.clone(),
                detail: format!(
                    "{} {} -> {} ({delta:+.2}% vs ±{:.2}% band, direction {})",
                    base.unit,
                    base.value,
                    cand.value,
                    base.tol * 100.0,
                    base.direction.as_str(),
                    delta = delta * 100.0,
                ),
            });
        }
    }
    violations
}

/// Returns `candidate` with every gated metric degraded by `frac`
/// (e.g. 0.10) in its harmful direction — the gate self-test: [`check`]
/// against the original must fail for every gated metric whose
/// tolerance is below `frac`.
pub fn degrade(report: &BenchReport, frac: f64) -> BenchReport {
    let mut out = report.clone();
    for m in out.metrics.iter_mut().filter(|m| m.gate) {
        let magnitude = if m.value == 0.0 { 1.0 } else { m.value.abs() };
        match m.direction {
            Direction::Higher => m.value -= magnitude * frac,
            Direction::Lower | Direction::Either => m.value += magnitude * frac,
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("unit_test")
            .config("tees", 2)
            .config("channels", 16);
        r.push_metric(
            "pages_per_s",
            "pages/s",
            150_000.0,
            Direction::Higher,
            0.05,
            true,
        );
        r.push_metric("p99_ns", "ns", 42_000.0, Direction::Lower, 0.05, true);
        r.push_metric("failed_pages", "pages", 0.0, Direction::Either, 0.0, true);
        r.push_metric("wall_rate", "pages/s", 1.0e6, Direction::Higher, 0.0, false);
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        let r = sample();
        let good = r.to_json();
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json(&good.replace(SCHEMA, "other.v9")).is_err());
        // Tampering with the config without refreshing the fingerprint
        // is caught by validation itself.
        assert!(BenchReport::from_json(&good.replace("\"16\"", "\"32\"")).is_err());
        // A metric with a bogus direction is rejected.
        assert!(BenchReport::from_json(&good.replace("\"lower\"", "\"sideways\"")).is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = sample();
        assert!(check(&r, &r).is_empty());
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let base = sample();
        let mut cand = sample();
        cand.metrics[0].value *= 0.97; // -3% on a ±5% band
        cand.metrics[1].value *= 1.04; // +4% on a ±5% band
        assert!(check(&base, &cand).is_empty());
    }

    #[test]
    fn ten_percent_regression_fails_each_gated_metric() {
        let base = sample();
        let degraded = degrade(&base, 0.10);
        let violations = check(&base, &degraded);
        let failed: Vec<&str> = violations.iter().map(|v| v.metric.as_str()).collect();
        assert_eq!(failed, vec!["pages_per_s", "p99_ns", "failed_pages"]);
        // The ungated wall-clock metric never trips the gate.
        assert!(!failed.contains(&"wall_rate"));
    }

    #[test]
    fn improvements_pass_directional_gates() {
        let base = sample();
        let mut cand = sample();
        cand.metrics[0].value *= 2.0; // higher-is-better doubled
        cand.metrics[1].value *= 0.5; // lower-is-better halved
        assert!(check(&base, &cand).is_empty());
    }

    #[test]
    fn missing_gated_metric_and_fingerprint_mismatch_fail() {
        let base = sample();
        let mut missing = sample();
        missing.metrics.retain(|m| m.name != "p99_ns");
        assert_eq!(check(&base, &missing)[0].metric, "p99_ns");
        let reconfigured = sample().config("extra", "yes");
        let violations = check(&base, &reconfigured);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("fingerprint"));
    }

    #[test]
    fn zero_baselines_only_accept_zero() {
        let base = sample();
        let mut cand = sample();
        cand.metrics[2].value = 1.0;
        let violations = check(&base, &cand);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "failed_pages");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let latencies: Vec<SimDuration> = (1..=100).map(SimDuration::from_nanos).collect();
        let p = Percentiles::from_durations(&latencies).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert!(Percentiles::from_durations(&[]).is_none());
    }

    #[test]
    fn fingerprint_tracks_config_and_bench_id() {
        let a = BenchReport::new("a").config("k", 1);
        let b = BenchReport::new("a").config("k", 2);
        let c = BenchReport::new("c").config("k", 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            BenchReport::new("a").config("k", 1).fingerprint()
        );
    }
}
