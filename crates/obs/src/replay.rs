//! Replay a captured op-log against a live device.
//!
//! A [`TraceLog`] names, for every ticket, its tenant, direction, LPN
//! set and submission time — everything needed to re-drive the same
//! workload through `submit_batch_async`/`submit_write_batch_async` on
//! any device configuration. The driver is generic over a
//! [`ReplayTarget`] so this crate stays below `iceclave_core` (which
//! implements the trait for `IceClave`).
//!
//! # Modes
//!
//! * [`ReplayMode::Sequential`] — one ticket at a time: submit, drain
//!   the device to idle, then submit the next. The closed-loop lower
//!   bound: no inter-ticket overlap at all.
//! * [`ReplayMode::Paced`] — preserve the capture's inter-arrival gaps:
//!   ticket *i* is submitted at `start + (submittedᵢ − submitted₀)`,
//!   polling due completions before each submission. Reproduces the
//!   original offered load against a possibly different device.
//! * [`ReplayMode::Afap`] — as fast as possible: submit every ticket at
//!   `start` in capture submission order, then drain. Against the
//!   *same* device configuration this reproduces the captured
//!   completion sequence exactly (the determinism contract), which is
//!   what the replay-equivalence test asserts.

use iceclave_types::{CompletionEvent, Lpn, SimTime, TeeId, Ticket, TicketKind};

use crate::trace::TraceLog;

/// How to space the captured submissions in simulated time.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum ReplayMode {
    /// Submit one ticket, drain to idle, repeat.
    Sequential,
    /// Preserve the capture's original inter-arrival gaps.
    Paced,
    /// Submit everything at the start time, in capture order.
    Afap,
}

/// A device that can accept replayed submissions.
///
/// Implemented by `iceclave_core::IceClave` over its asynchronous batch
/// API; tests use lightweight mocks.
pub trait ReplayTarget {
    /// The device's submission error type.
    type Error: std::fmt::Debug;

    /// Submits a read batch for `tee` covering `lpns` at time `at`.
    ///
    /// # Errors
    ///
    /// Propagates the device's submission failure.
    fn replay_read(&mut self, tee: TeeId, lpns: &[Lpn], at: SimTime)
        -> Result<Ticket, Self::Error>;

    /// Submits a write batch for `tee` covering `lpns` at time `at`.
    ///
    /// # Errors
    ///
    /// Propagates the device's submission failure.
    fn replay_write(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        at: SimTime,
    ) -> Result<Ticket, Self::Error>;

    /// Drains completions ready at or before `now`.
    fn replay_poll(&mut self, now: SimTime) -> Vec<CompletionEvent>;

    /// Runs the device to idle and drains every completion.
    fn replay_drain(&mut self) -> Vec<CompletionEvent>;
}

/// Why a replay stopped.
#[derive(Debug)]
pub enum ReplayError<E> {
    /// A captured TEE id no longer round-trips through [`TeeId::new`].
    BadTee(u8),
    /// The target rejected a submission.
    Target(E),
}

impl<E: std::fmt::Debug> std::fmt::Display for ReplayError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::BadTee(raw) => write!(f, "captured tee id {raw} is invalid"),
            ReplayError::Target(e) => write!(f, "replay target rejected a submission: {e:?}"),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for ReplayError<E> {}

/// The result of a replay run.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// `(captured ticket id, replayed ticket)` in submission order.
    pub submitted: Vec<(u64, Ticket)>,
    /// Every completion drained, in drain order.
    pub completions: Vec<CompletionEvent>,
}

/// Feeds `log` back through `target` under `mode`, starting at `start`.
///
/// Tickets are submitted in ascending *(captured submission time,
/// captured ticket id)* order — the order the original run issued them.
///
/// # Errors
///
/// Returns [`ReplayError::BadTee`] if a captured TEE id fails
/// validation, or [`ReplayError::Target`] when the device rejects a
/// submission (e.g. the TEE is not running on the replay device).
pub fn replay<T: ReplayTarget>(
    target: &mut T,
    log: &TraceLog,
    mode: ReplayMode,
    start: SimTime,
) -> Result<ReplayOutcome, ReplayError<T::Error>> {
    let mut order: Vec<usize> = (0..log.records().len()).collect();
    order.sort_by_key(|&i| {
        let r = &log.records()[i];
        (r.submitted, r.ticket)
    });

    let mut outcome = ReplayOutcome {
        submitted: Vec::with_capacity(order.len()),
        completions: Vec::new(),
    };
    let origin = order
        .first()
        .map(|&i| log.records()[i].submitted)
        .unwrap_or(SimTime::ZERO);

    let submit =
        |target: &mut T, idx: usize, at: SimTime| -> Result<Ticket, ReplayError<T::Error>> {
            let rec = &log.records()[idx];
            let tee = TeeId::new(u16::from(rec.tee)).map_err(|_| ReplayError::BadTee(rec.tee))?;
            let lpns: Vec<Lpn> = rec.pages.iter().map(|p| p.lpn).collect();
            let ticket = match rec.kind {
                TicketKind::Read => target.replay_read(tee, &lpns, at),
                TicketKind::Write => target.replay_write(tee, &lpns, at),
            }
            .map_err(ReplayError::Target)?;
            Ok(ticket)
        };

    match mode {
        ReplayMode::Afap => {
            for &i in &order {
                let ticket = submit(target, i, start)?;
                outcome.submitted.push((log.records()[i].ticket, ticket));
            }
            outcome.completions.extend(target.replay_drain());
        }
        ReplayMode::Paced => {
            for &i in &order {
                let gap = log.records()[i].submitted.saturating_since(origin);
                let at = start + gap;
                outcome.completions.extend(target.replay_poll(at));
                let ticket = submit(target, i, at)?;
                outcome.submitted.push((log.records()[i].ticket, ticket));
            }
            outcome.completions.extend(target.replay_drain());
        }
        ReplayMode::Sequential => {
            for &i in &order {
                let ticket = submit(target, i, start)?;
                outcome.submitted.push((log.records()[i].ticket, ticket));
                outcome.completions.extend(target.replay_drain());
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::trace::{PageTrace, TraceRecord};
    use iceclave_types::{
        FaultStats, LatencyBreakdown, PageStatus, SimDuration, TicketAttribution,
    };

    /// Records submissions; completes one dummy event per drain call.
    #[derive(Default, Debug)]
    struct Mock {
        calls: Vec<(String, u8, Vec<u64>, u64)>,
        next: u64,
        polls: usize,
        drains: usize,
    }

    impl ReplayTarget for Mock {
        type Error = ();

        fn replay_read(
            &mut self,
            tee: TeeId,
            lpns: &[Lpn],
            at: SimTime,
        ) -> Result<Ticket, Self::Error> {
            self.next += 1;
            self.calls.push((
                "r".into(),
                tee.raw(),
                lpns.iter().map(|l| l.raw()).collect(),
                at.as_ps(),
            ));
            Ok(Ticket::new(self.next))
        }

        fn replay_write(
            &mut self,
            tee: TeeId,
            lpns: &[Lpn],
            at: SimTime,
        ) -> Result<Ticket, Self::Error> {
            self.next += 1;
            self.calls.push((
                "w".into(),
                tee.raw(),
                lpns.iter().map(|l| l.raw()).collect(),
                at.as_ps(),
            ));
            Ok(Ticket::new(self.next))
        }

        fn replay_poll(&mut self, _now: SimTime) -> Vec<CompletionEvent> {
            self.polls += 1;
            Vec::new()
        }

        fn replay_drain(&mut self) -> Vec<CompletionEvent> {
            self.drains += 1;
            Vec::new()
        }
    }

    fn record(
        ticket: u64,
        tee: u8,
        kind: TicketKind,
        submitted_ns: u64,
        lpns: &[u64],
    ) -> TraceRecord {
        let submitted = SimTime::ZERO + SimDuration::from_nanos(submitted_ns);
        TraceRecord {
            ticket,
            tee,
            kind,
            submitted,
            first_ready: submitted,
            finished: submitted,
            meta: TicketAttribution::default(),
            faults: FaultStats::default(),
            pages: lpns
                .iter()
                .enumerate()
                .map(|(i, &lpn)| PageTrace {
                    index: i as u32,
                    lpn: Lpn::new(lpn),
                    status: PageStatus::Done,
                    breakdown: LatencyBreakdown::at_submission(submitted),
                    data_hash: 0,
                })
                .collect(),
        }
    }

    fn two_ticket_log() -> TraceLog {
        let mut log = TraceLog::new();
        // Pushed in close order (2 closed first) but 1 submitted first:
        // replay must sort by submission time.
        log.push(record(2, 2, TicketKind::Write, 500, &[7, 8]));
        log.push(record(1, 1, TicketKind::Read, 100, &[3]));
        log
    }

    #[test]
    fn afap_submits_in_capture_submission_order_at_start() {
        let mut mock = Mock::default();
        let start = SimTime::ZERO + SimDuration::from_micros(9);
        let out = replay(&mut mock, &two_ticket_log(), ReplayMode::Afap, start).unwrap();
        assert_eq!(out.submitted.len(), 2);
        assert_eq!(out.submitted[0].0, 1, "earlier submission first");
        assert_eq!(mock.calls[0], ("r".into(), 1, vec![3], start.as_ps()));
        assert_eq!(mock.calls[1], ("w".into(), 2, vec![7, 8], start.as_ps()));
        assert_eq!(mock.drains, 1);
    }

    #[test]
    fn paced_preserves_inter_arrival_gaps() {
        let mut mock = Mock::default();
        let start = SimTime::ZERO + SimDuration::from_micros(1);
        replay(&mut mock, &two_ticket_log(), ReplayMode::Paced, start).unwrap();
        let gap_ps = mock.calls[1].3 - mock.calls[0].3;
        assert_eq!(gap_ps, 400_000, "400 ns original gap, in picoseconds");
        assert_eq!(mock.polls, 2, "polled before each submission");
        assert_eq!(mock.drains, 1);
    }

    #[test]
    fn sequential_drains_between_tickets() {
        let mut mock = Mock::default();
        replay(
            &mut mock,
            &two_ticket_log(),
            ReplayMode::Sequential,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(mock.drains, 2, "one drain per ticket");
    }

    #[test]
    fn empty_log_is_a_noop() {
        let mut mock = Mock::default();
        let out = replay(&mut mock, &TraceLog::new(), ReplayMode::Afap, SimTime::ZERO).unwrap();
        assert!(out.submitted.is_empty());
        assert!(out.completions.is_empty());
    }
}
