//! Observability layer for the IceClave reproduction.
//!
//! Three pillars, one crate:
//!
//! 1. **Ticket op-log capture** ([`trace`]): a [`TraceCapture`] observer
//!    installed on the executor's completion queue — the single point
//!    every retirement already passes — records each retired ticket
//!    (tenant, kind, page set, per-stage latency breakdown, per-page
//!    status, and the metadata-traffic / fault deltas charged to it)
//!    into a compact, versioned, append-only binary [`TraceLog`]. With
//!    capture off the executor pays one `Option` branch per retirement.
//! 2. **Replay driver** ([`replay()`]): feeds a captured log back through
//!    any [`ReplayTarget`] (implemented by `iceclave_core::IceClave`
//!    over `submit_batch_async`/`submit_write_batch_async`) in
//!    sequential, paced (original inter-arrival gaps), or
//!    as-fast-as-possible modes — turning any run into a reusable
//!    workload artifact.
//! 3. **Unified bench reports + gates** ([`report`]): every bench emits
//!    one [`BenchReport`] JSON schema (bench id, config fingerprint,
//!    metrics with units, directions and tolerance bands); the
//!    `check_regression` binary diffs candidate reports against the
//!    known-good baselines committed under `baselines/` and fails CI on
//!    deltas outside tolerance.
//!
//! The crate depends only on `iceclave_types` and `iceclave_exec`, so
//! capture sits below `iceclave_core` (which installs it) and the
//! replay driver stays generic over the device it drives.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

pub mod json;
pub mod replay;
pub mod report;
pub mod trace;

pub use replay::{replay, ReplayError, ReplayMode, ReplayOutcome, ReplayTarget};
pub use report::{BenchReport, Direction, GateViolation, Metric, Percentiles};
pub use trace::{PageTrace, TraceCapture, TraceError, TraceLog, TraceRecord, TRACE_VERSION};
