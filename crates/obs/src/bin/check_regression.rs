//! CI regression gate over [`BenchReport`] artifacts.
//!
//! ```text
//! check_regression <baselines_dir> <candidates_dir>
//! check_regression --self-test <baselines_dir>
//! ```
//!
//! The first form schema-validates every `*.json` report in
//! `baselines_dir`, loads the same-named candidate from
//! `candidates_dir`, and runs the tolerance gate
//! ([`iceclave_obs::report::check`]) on each pair. Any violation — a
//! malformed report, a missing candidate, a config-fingerprint
//! mismatch, or a gated metric outside its band — prints and sets exit
//! code 1.
//!
//! The second form proves the gate has teeth: every gated metric in
//! every baseline is degraded 10% in its harmful direction and the gate
//! must fail on each; it must also pass each baseline against itself.
//! Exit code 1 if either expectation breaks.

#![deny(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use iceclave_obs::report::{check, degrade, BenchReport};

/// Fraction injected by `--self-test` (a 10% harmful drift).
const SELF_TEST_DEGRADATION: f64 = 0.10;

fn report_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json reports in {}", dir.display()));
    }
    Ok(files)
}

fn load(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn gate(baselines: &Path, candidates: &Path) -> Result<(), String> {
    let mut failures = 0usize;
    let mut compared = 0usize;
    for base_path in report_files(baselines)? {
        let name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let baseline = match load(&base_path) {
            Ok(r) => r,
            Err(e) => {
                println!("FAIL {name}: baseline invalid: {e}");
                failures += 1;
                continue;
            }
        };
        let cand_path = candidates.join(&name);
        let candidate = match load(&cand_path) {
            Ok(r) => r,
            Err(e) => {
                println!("FAIL {name}: candidate invalid: {e}");
                failures += 1;
                continue;
            }
        };
        compared += 1;
        let violations = check(&baseline, &candidate);
        if violations.is_empty() {
            let gated = baseline.metrics.iter().filter(|m| m.gate).count();
            println!("ok   {name}: {gated} gated metric(s) within tolerance");
        } else {
            for v in &violations {
                println!("FAIL {name}: {v}");
            }
            failures += violations.len();
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} gate violation(s) across {compared} report(s)"
        ));
    }
    println!("regression gate passed: {compared} report(s) within tolerance");
    Ok(())
}

fn self_test(baselines: &Path) -> Result<(), String> {
    for base_path in report_files(baselines)? {
        let name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let baseline = load(&base_path)?;
        if !check(&baseline, &baseline).is_empty() {
            return Err(format!("{name}: baseline fails the gate against itself"));
        }
        let gated = baseline.metrics.iter().filter(|m| m.gate).count();
        if gated == 0 {
            return Err(format!("{name}: no gated metrics — the gate is toothless"));
        }
        let degraded = degrade(&baseline, SELF_TEST_DEGRADATION);
        let violations = check(&baseline, &degraded);
        let caught: Vec<&str> = violations.iter().map(|v| v.metric.as_str()).collect();
        for m in baseline.metrics.iter().filter(|m| m.gate) {
            // A band of >= 10% would legitimately absorb the injected
            // drift; the committed baselines keep gated bands below it.
            if m.tol < SELF_TEST_DEGRADATION && !caught.contains(&m.name.as_str()) {
                return Err(format!(
                    "{name}: injected 10% regression on {:?} was NOT caught",
                    m.name
                ));
            }
        }
        println!(
            "ok   {name}: self-gate passes, 10% injected drift caught on {} metric(s)",
            caught.len()
        );
    }
    println!("gate self-test passed");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, dir] if flag == "--self-test" => self_test(Path::new(dir)),
        [baselines, candidates] => gate(Path::new(baselines), Path::new(candidates)),
        _ => Err(
            "usage: check_regression <baselines_dir> <candidates_dir> | \
                  check_regression --self-test <baselines_dir>"
                .to_string(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("check_regression: {e}");
            ExitCode::FAILURE
        }
    }
}
