//! The ticket op-log: capture, record format, and the binary codec.
//!
//! # Record format (version 1)
//!
//! A [`TraceLog`] is a byte stream: an 8-byte magic (`ICLV-OPL`), a
//! little-endian `u32` format version, then one length-prefixed record
//! per *closed* ticket, appended in close order (which the executor's
//! determinism contract makes reproducible — two identical runs produce
//! byte-identical logs). Each record encodes, little-endian:
//!
//! | field        | encoding                                          |
//! |--------------|---------------------------------------------------|
//! | ticket       | `u64` raw id                                      |
//! | tee          | `u8` raw TEE id                                   |
//! | kind         | `u8` (0 = read, 1 = write)                        |
//! | submitted    | `u64` picoseconds                                 |
//! | first_ready  | `u64` picoseconds (earliest page ready)           |
//! | finished     | `u64` picoseconds (ticket close time)             |
//! | meta         | 12 × `u64` ([`TicketAttribution`] field order)    |
//! | faults       | 6 × `u64` ([`FaultStats`] field order)            |
//! | page count   | `u32`, then that many [`PageTrace`]s in index order |
//!
//! Each page: `u32` index, `u64` lpn, 5 × `u64` breakdown timestamps
//! (submitted/prepared/flash_done/cipher_done/ready), `u64` FxHash of
//! the returned payload (0 when the completion carried no data), and a
//! status tag `u8` (0 = done; 1 = failed, followed by `u8` cause,
//! `u32` attempts, `u64` ppn).

use std::any::Any;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::path::Path;

use iceclave_exec::RetireObserver;
use iceclave_types::{
    CompletionEvent, FastMap, FaultStats, FxHasher, LatencyBreakdown, Lpn, PageError,
    PageErrorCause, PageStatus, Ppn, SimTime, Ticket, TicketAttribution, TicketKind,
};

/// Magic bytes opening every trace log.
pub const TRACE_MAGIC: [u8; 8] = *b"ICLV-OPL";

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// Per-page entry of a [`TraceRecord`].
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct PageTrace {
    /// Page index within the batch.
    pub index: u32,
    /// The logical page the entry covers.
    pub lpn: Lpn,
    /// Final status of the page.
    pub status: PageStatus,
    /// Per-stage timestamps of the page's trip through the executor.
    pub breakdown: LatencyBreakdown,
    /// FxHash of the returned payload; 0 when the completion carried no
    /// data (write pages, failed reads). Lets the replay-equivalence
    /// test compare per-ticket bytes without storing 4 KiB per page.
    pub data_hash: u64,
}

/// One closed ticket in the op-log.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct TraceRecord {
    /// Raw ticket id (monotonic, never reused within a run).
    pub ticket: u64,
    /// Raw id of the owning TEE.
    pub tee: u8,
    /// Read or write batch.
    pub kind: TicketKind,
    /// When the batch was submitted.
    pub submitted: SimTime,
    /// When the first page became ready.
    pub first_ready: SimTime,
    /// When the ticket closed (last page retired / batch-level finish).
    pub finished: SimTime,
    /// Integrity-metadata traffic charged to this ticket.
    pub meta: TicketAttribution,
    /// Fault and recovery activity charged to this ticket.
    pub faults: FaultStats,
    /// Per-page entries, sorted by page index.
    pub pages: Vec<PageTrace>,
}

/// Errors decoding a trace log.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum TraceError {
    /// The stream does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The stream's format version is not [`TRACE_VERSION`].
    BadVersion(u32),
    /// The stream ended mid-record.
    Truncated,
    /// An enum tag byte was out of range.
    BadTag(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace log (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(f, "unsupported trace version {v} (want {TRACE_VERSION})")
            }
            TraceError::Truncated => write!(f, "trace log truncated mid-record"),
            TraceError::BadTag(t) => write!(f, "invalid enum tag {t} in trace log"),
        }
    }
}

impl std::error::Error for TraceError {}

/// FxHash of a page payload, as stored in [`PageTrace::data_hash`].
///
/// 0 is reserved for "no data": the hash is seeded with the payload
/// length and the (astronomically unlikely) digest 0 is mapped to 1,
/// so an all-zero payload never collides with the sentinel.
pub fn hash_payload(data: Option<&[u8]>) -> u64 {
    match data {
        None => 0,
        Some(bytes) => {
            let mut h = FxHasher::default();
            h.write(&(bytes.len() as u64).to_le_bytes());
            h.write(bytes);
            h.finish().max(1)
        }
    }
}

/// The versioned, append-only ticket op-log.
///
/// Records are encoded into the byte buffer the moment they are pushed
/// (append-only by construction); the decoded records ride alongside so
/// replay and tests never re-parse their own capture.
#[derive(Clone, Eq, PartialEq, Debug, Default)]
pub struct TraceLog {
    buf: Vec<u8>,
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// An empty log with the version-1 header.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        TraceLog {
            buf,
            records: Vec::new(),
        }
    }

    /// Appends one record (encoding it immediately).
    pub fn push(&mut self, record: TraceRecord) {
        let mut body = Vec::with_capacity(128 + record.pages.len() * 64);
        encode_record(&record, &mut body);
        self.buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&body);
        self.records.push(record);
    }

    /// The captured records, in ticket close order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of captured tickets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The encoded byte stream (header + records).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Decodes a log from its byte stream.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a bad header, a truncated stream, or
    /// an out-of-range enum tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = cur.u32()?;
        if version != TRACE_VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let mut records = Vec::new();
        while !cur.at_end() {
            let len = cur.u32()? as usize;
            let body = cur.slice(len)?;
            let mut rcur = Cursor {
                bytes: body,
                pos: 0,
            };
            records.push(decode_record(&mut rcur)?);
        }
        Ok(TraceLog {
            buf: bytes.to_vec(),
            records,
        })
    }

    /// Writes the encoded stream to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.buf)
    }

    /// Reads and decodes a log from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; decode failures surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn read_from(path: &Path) -> std::io::Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn encode_record(r: &TraceRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&r.ticket.to_le_bytes());
    out.push(r.tee);
    out.push(match r.kind {
        TicketKind::Read => 0,
        TicketKind::Write => 1,
    });
    for t in [r.submitted, r.first_ready, r.finished] {
        out.extend_from_slice(&t.as_ps().to_le_bytes());
    }
    for v in [
        r.meta.counter_hits,
        r.meta.counter_misses,
        r.meta.mac_hits,
        r.meta.mac_misses,
        r.meta.tree_hits,
        r.meta.tree_misses,
        r.meta.l2_hits,
        r.meta.l2_misses,
        r.meta.fill_lines,
        r.meta.seal_lines,
        r.meta.meta_writes,
        r.meta.enc_pads,
        r.faults.read_retries,
        r.faults.uncorrectable_pages,
        r.faults.corrected_bursts,
        r.faults.program_remaps,
        r.faults.blocks_retired,
        r.faults.mac_fallbacks,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(r.pages.len() as u32).to_le_bytes());
    for p in &r.pages {
        out.extend_from_slice(&p.index.to_le_bytes());
        out.extend_from_slice(&p.lpn.raw().to_le_bytes());
        for t in [
            p.breakdown.submitted,
            p.breakdown.prepared,
            p.breakdown.flash_done,
            p.breakdown.cipher_done,
            p.breakdown.ready,
        ] {
            out.extend_from_slice(&t.as_ps().to_le_bytes());
        }
        out.extend_from_slice(&p.data_hash.to_le_bytes());
        match p.status {
            PageStatus::Done => out.push(0),
            PageStatus::Failed { reason } => {
                out.push(1);
                out.push(match reason.cause {
                    PageErrorCause::Uncorrectable => 0,
                    PageErrorCause::ProgramFailed => 1,
                    PageErrorCause::Cancelled => 2,
                });
                out.extend_from_slice(&reason.attempts.to_le_bytes());
                out.extend_from_slice(&reason.ppn.raw().to_le_bytes());
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }
    fn slice(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.bytes.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        self.slice(n)
    }
    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.slice(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, TraceError> {
        let s = self.slice(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, TraceError> {
        let s = self.slice(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }
    fn time(&mut self) -> Result<SimTime, TraceError> {
        Ok(SimTime::from_ps(self.u64()?))
    }
}

fn decode_record(cur: &mut Cursor<'_>) -> Result<TraceRecord, TraceError> {
    let ticket = cur.u64()?;
    let tee = cur.u8()?;
    let kind = match cur.u8()? {
        0 => TicketKind::Read,
        1 => TicketKind::Write,
        t => return Err(TraceError::BadTag(t)),
    };
    let submitted = cur.time()?;
    let first_ready = cur.time()?;
    let finished = cur.time()?;
    let meta = TicketAttribution {
        counter_hits: cur.u64()?,
        counter_misses: cur.u64()?,
        mac_hits: cur.u64()?,
        mac_misses: cur.u64()?,
        tree_hits: cur.u64()?,
        tree_misses: cur.u64()?,
        l2_hits: cur.u64()?,
        l2_misses: cur.u64()?,
        fill_lines: cur.u64()?,
        seal_lines: cur.u64()?,
        meta_writes: cur.u64()?,
        enc_pads: cur.u64()?,
    };
    let faults = FaultStats {
        read_retries: cur.u64()?,
        uncorrectable_pages: cur.u64()?,
        corrected_bursts: cur.u64()?,
        program_remaps: cur.u64()?,
        blocks_retired: cur.u64()?,
        mac_fallbacks: cur.u64()?,
    };
    let count = cur.u32()? as usize;
    let mut pages = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let index = cur.u32()?;
        let lpn = Lpn::new(cur.u64()?);
        let breakdown = LatencyBreakdown {
            submitted: cur.time()?,
            prepared: cur.time()?,
            flash_done: cur.time()?,
            cipher_done: cur.time()?,
            ready: cur.time()?,
        };
        let data_hash = cur.u64()?;
        let status = match cur.u8()? {
            0 => PageStatus::Done,
            1 => {
                let cause = match cur.u8()? {
                    0 => PageErrorCause::Uncorrectable,
                    1 => PageErrorCause::ProgramFailed,
                    2 => PageErrorCause::Cancelled,
                    t => return Err(TraceError::BadTag(t)),
                };
                let attempts = cur.u32()?;
                let ppn = Ppn::new(cur.u64()?);
                PageStatus::Failed {
                    reason: PageError {
                        ppn,
                        attempts,
                        cause,
                    },
                }
            }
            t => return Err(TraceError::BadTag(t)),
        };
        pages.push(PageTrace {
            index,
            lpn,
            status,
            breakdown,
            data_hash,
        });
    }
    Ok(TraceRecord {
        ticket,
        tee,
        kind,
        submitted,
        first_ready,
        finished,
        meta,
        faults,
        pages,
    })
}

/// In-flight state of one ticket being captured.
#[derive(Debug)]
struct OpenTicket {
    tee: u8,
    kind: TicketKind,
    submitted: SimTime,
    first_ready: SimTime,
    pages: Vec<PageTrace>,
}

/// The capture observer: builds one [`TraceRecord`] per closed ticket.
///
/// Installed on the executor's completion queue via
/// `IceClave::enable_tracing` (which wraps
/// [`iceclave_exec::Executor::install_observer`]); recovered with
/// `take_trace`. Pages accumulate per ticket as they retire; the record
/// is finalized — pages sorted by index — when the driver reports the
/// close, so log order is ticket close order (deterministic under the
/// executor's determinism contract).
#[derive(Debug, Default)]
pub struct TraceCapture {
    open: FastMap<u64, OpenTicket>,
    log: TraceLog,
}

impl TraceCapture {
    /// An empty capture.
    pub fn new() -> Self {
        TraceCapture {
            open: FastMap::default(),
            log: TraceLog::new(),
        }
    }

    /// Finishes the capture, returning the log. Tickets still open
    /// (never closed by the driver) are dropped — a record only exists
    /// for tickets whose full page set was observed.
    pub fn into_log(self) -> TraceLog {
        self.log
    }

    /// Number of tickets captured so far.
    pub fn captured(&self) -> usize {
        self.log.len()
    }
}

impl RetireObserver for TraceCapture {
    fn on_retire(&mut self, event: &CompletionEvent) {
        let open = self
            .open
            .entry(event.ticket.raw())
            .or_insert_with(|| OpenTicket {
                tee: event.tee.raw(),
                kind: event.kind,
                submitted: event.breakdown.submitted,
                first_ready: event.ready_at(),
                pages: Vec::new(),
            });
        open.first_ready = open.first_ready.min(event.ready_at());
        open.pages.push(PageTrace {
            index: event.index,
            lpn: event.lpn,
            status: event.status,
            breakdown: event.breakdown,
            data_hash: hash_payload(event.data.as_deref()),
        });
    }

    fn on_close(
        &mut self,
        ticket: Ticket,
        finished: SimTime,
        attrib: &TicketAttribution,
        faults: &FaultStats,
    ) {
        // A close with no retirements observed means capture was
        // enabled mid-flight; skip rather than record a partial ticket.
        let Some(mut open) = self.open.remove(&ticket.raw()) else {
            return;
        };
        open.pages.sort_by_key(|p| p.index);
        self.log.push(TraceRecord {
            ticket: ticket.raw(),
            tee: open.tee,
            kind: open.kind,
            submitted: open.submitted,
            first_ready: open.first_ready,
            finished,
            meta: *attrib,
            faults: *faults,
            pages: open.pages,
        });
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iceclave_types::{SimDuration, TeeId};

    fn sample_record(ticket: u64, pages: u32) -> TraceRecord {
        let base = SimTime::ZERO + SimDuration::from_nanos(100 * ticket);
        TraceRecord {
            ticket,
            tee: (ticket % 4) as u8,
            kind: if ticket.is_multiple_of(2) {
                TicketKind::Read
            } else {
                TicketKind::Write
            },
            submitted: base,
            first_ready: base + SimDuration::from_nanos(50),
            finished: base + SimDuration::from_nanos(90),
            meta: TicketAttribution {
                counter_hits: ticket,
                counter_misses: 2 * ticket,
                mac_hits: 3,
                mac_misses: 4,
                tree_hits: 5,
                tree_misses: 6,
                l2_hits: 7,
                l2_misses: 8,
                fill_lines: 9,
                seal_lines: 10,
                meta_writes: 11,
                enc_pads: 12,
            },
            faults: FaultStats {
                read_retries: ticket,
                mac_fallbacks: 1,
                ..FaultStats::default()
            },
            pages: (0..pages)
                .map(|index| PageTrace {
                    index,
                    lpn: Lpn::new(u64::from(index) + 10),
                    status: if index == 1 {
                        PageStatus::Failed {
                            reason: PageError {
                                ppn: Ppn::new(99),
                                attempts: 4,
                                cause: PageErrorCause::Uncorrectable,
                            },
                        }
                    } else {
                        PageStatus::Done
                    },
                    breakdown: LatencyBreakdown {
                        submitted: base,
                        prepared: base + SimDuration::from_nanos(10),
                        flash_done: base + SimDuration::from_nanos(20),
                        cipher_done: base + SimDuration::from_nanos(30),
                        ready: base + SimDuration::from_nanos(40 + u64::from(index)),
                    },
                    data_hash: 0xDEAD_0000 + u64::from(index),
                })
                .collect(),
        }
    }

    #[test]
    fn codec_round_trips_records() {
        let mut log = TraceLog::new();
        log.push(sample_record(1, 3));
        log.push(sample_record(2, 0));
        log.push(sample_record(7, 2));
        let decoded = TraceLog::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(decoded, log);
        assert_eq!(decoded.records(), log.records());
    }

    #[test]
    fn decode_rejects_corruption() {
        assert_eq!(
            TraceLog::from_bytes(b"NOTATRACE"),
            Err(TraceError::BadMagic)
        );
        let mut log = TraceLog::new();
        log.push(sample_record(1, 1));
        let mut bytes = log.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(TraceLog::from_bytes(&bytes), Err(TraceError::Truncated));
        let mut versioned = log.as_bytes().to_vec();
        versioned[8] = 99;
        assert_eq!(
            TraceLog::from_bytes(&versioned),
            Err(TraceError::BadVersion(99))
        );
    }

    #[test]
    fn capture_builds_records_in_close_order_with_sorted_pages() {
        let mut cap = TraceCapture::new();
        let ev = |ticket: u64, index: u32, ready_ns: u64| {
            let mut breakdown = LatencyBreakdown::at_submission(SimTime::ZERO);
            breakdown.ready = SimTime::ZERO + SimDuration::from_nanos(ready_ns);
            CompletionEvent {
                ticket: Ticket::new(ticket),
                kind: TicketKind::Read,
                tee: TeeId::new(2).unwrap(),
                index,
                lpn: Lpn::new(u64::from(index)),
                status: PageStatus::Done,
                breakdown,
                data: Some(vec![index as u8; 8]),
            }
        };
        // Pages retire out of index order, tickets interleaved.
        cap.on_retire(&ev(2, 1, 300));
        cap.on_retire(&ev(1, 0, 100));
        cap.on_retire(&ev(2, 0, 200));
        let attrib = TicketAttribution::default();
        let faults = FaultStats::default();
        cap.on_close(
            Ticket::new(2),
            SimTime::ZERO + SimDuration::from_nanos(300),
            &attrib,
            &faults,
        );
        cap.on_close(
            Ticket::new(1),
            SimTime::ZERO + SimDuration::from_nanos(100),
            &attrib,
            &faults,
        );
        // Close for a ticket never retired under capture: skipped.
        cap.on_close(Ticket::new(9), SimTime::ZERO, &attrib, &faults);
        let log = cap.into_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].ticket, 2, "close order, not ticket order");
        assert_eq!(log.records()[0].pages[0].index, 0, "pages sorted by index");
        assert_eq!(log.records()[0].pages[1].index, 1);
        assert_eq!(
            log.records()[0].first_ready,
            SimTime::ZERO + SimDuration::from_nanos(200)
        );
        assert_eq!(log.records()[1].ticket, 1);
        assert_ne!(log.records()[1].pages[0].data_hash, 0);
    }

    #[test]
    fn hash_distinguishes_payloads() {
        assert_eq!(hash_payload(None), 0);
        let a = hash_payload(Some(&[1, 2, 3]));
        let b = hash_payload(Some(&[1, 2, 4]));
        assert_ne!(a, b);
        assert_eq!(a, hash_payload(Some(&[1, 2, 3])));
    }
}
