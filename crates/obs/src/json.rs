//! A minimal JSON reader/writer for the bench-report schema.
//!
//! The workspace deliberately carries no serialization dependency — the
//! benches hand-roll their JSON — so the regression gate needs its own
//! parser. This is a small recursive-descent implementation covering
//! exactly what [`crate::report`] emits: objects, arrays, strings (with
//! the standard escapes), numbers, booleans and null. Object member
//! order is preserved so re-encoding is deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, member order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos..self.pos + 4];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // writer; reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if len > 1 {
                        self.pos += len - 1;
                        if self.pos > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` so it round-trips through [`parse`]
/// (Rust's shortest-representation `Display`). Non-finite values encode
/// as `null` — the schema treats them as absent.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let v = parse(
            r#"{"schema":"x.v1","n":-1.5e3,"ok":true,"none":null,
                "arr":[1,2,3],"obj":{"a":"b \"quoted\"\n"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("x.v1"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-1500.0));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("arr").and_then(Value::as_array).unwrap().len(), 3);
        assert_eq!(
            v.get("obj").unwrap().get("a").and_then(Value::as_str),
            Some("b \"quoted\"\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "\"open", "{}extra"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_and_number_round_trip() {
        let s = "tab\tquote\"back\\slash\nline";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        for v in [0.0, -1.5, 1e300, 0.1 + 0.2, 150000.0] {
            let parsed = parse(&number(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v), "{v} failed to round-trip");
        }
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn preserves_member_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
