//! Property tests for the trace codec: encode→decode identity over
//! arbitrary ticket records (the round-trip half of the trace-layer
//! test satellite; determinism and replay equivalence live in the
//! umbrella crate's integration tests, where a full device exists).

use proptest::prelude::*;

use iceclave_obs::trace::{PageTrace, TraceLog, TraceRecord};
use iceclave_types::{
    FaultStats, LatencyBreakdown, Lpn, PageError, PageErrorCause, PageStatus, Ppn, SimTime,
    TicketAttribution, TicketKind,
};

fn time(ps: u64) -> SimTime {
    SimTime::from_ps(ps)
}

fn page(seed: u64, index: u32) -> PageTrace {
    let cause = match seed % 4 {
        0 => None,
        1 => Some(PageErrorCause::Uncorrectable),
        2 => Some(PageErrorCause::ProgramFailed),
        _ => Some(PageErrorCause::Cancelled),
    };
    PageTrace {
        index,
        lpn: Lpn::new(seed.rotate_left(17)),
        status: match cause {
            None => PageStatus::Done,
            Some(cause) => PageStatus::Failed {
                reason: PageError {
                    ppn: Ppn::new(seed.rotate_left(5) & 0xFFFF_FFFF),
                    attempts: (seed % 7) as u32,
                    cause,
                },
            },
        },
        breakdown: LatencyBreakdown {
            submitted: time(seed),
            prepared: time(seed.wrapping_add(10)),
            flash_done: time(seed.wrapping_add(20)),
            cipher_done: time(seed.wrapping_add(30)),
            ready: time(seed.wrapping_add(40)),
        },
        data_hash: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

fn record(ticket: u64, tee: u8, seed: u64, pages: u32) -> TraceRecord {
    TraceRecord {
        ticket,
        tee: tee % 16,
        kind: if seed.is_multiple_of(2) {
            TicketKind::Read
        } else {
            TicketKind::Write
        },
        submitted: time(seed),
        first_ready: time(seed.wrapping_add(100)),
        finished: time(seed.wrapping_add(200)),
        meta: TicketAttribution {
            counter_hits: seed,
            counter_misses: seed.rotate_left(1),
            mac_hits: seed.rotate_left(2),
            mac_misses: seed.rotate_left(3),
            tree_hits: seed.rotate_left(4),
            tree_misses: seed.rotate_left(5),
            l2_hits: seed.rotate_left(6),
            l2_misses: seed.rotate_left(7),
            fill_lines: seed.rotate_left(8),
            seal_lines: seed.rotate_left(9),
            meta_writes: seed.rotate_left(10),
            enc_pads: seed.rotate_left(11),
        },
        faults: FaultStats {
            read_retries: seed % 11,
            uncorrectable_pages: seed % 3,
            corrected_bursts: seed % 13,
            program_remaps: seed % 5,
            blocks_retired: seed % 2,
            mac_fallbacks: seed % 7,
        },
        pages: (0..pages)
            .map(|i| page(seed.wrapping_mul(u64::from(i) + 1), i))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode(decode(encode(log))) is the identity for arbitrary
    /// record sets: every field (timestamps, attribution, faults,
    /// per-page status including failure records) survives, and the
    /// re-encoded bytes are identical.
    #[test]
    fn trace_codec_round_trips(
        seeds in prop::collection::vec(0u64..u64::MAX, 0..12),
        page_counts in prop::collection::vec(0u32..20, 0..12),
    ) {
        let mut log = TraceLog::new();
        for (i, seed) in seeds.iter().enumerate() {
            let pages = page_counts.get(i).copied().unwrap_or(3);
            log.push(record(i as u64 + 1, (*seed % 16) as u8, *seed, pages));
        }
        let decoded = TraceLog::from_bytes(log.as_bytes());
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let decoded = match decoded {
            Ok(d) => d,
            Err(_) => unreachable!(),
        };
        prop_assert_eq!(decoded.records(), log.records());
        prop_assert_eq!(decoded.as_bytes(), log.as_bytes());
    }

    /// Truncating an encoded log anywhere inside the stream never
    /// panics and never silently decodes to the full record set.
    #[test]
    fn truncation_is_detected(seed in (0u64..u64::MAX), cut in 0usize..200) {
        let mut log = TraceLog::new();
        log.push(record(1, 2, seed, 4));
        let bytes = log.as_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let decoded = TraceLog::from_bytes(&bytes[..cut]);
        prop_assert!(
            decoded.as_ref().map(|l| l.len() < log.len()).unwrap_or(true),
            "truncated stream decoded to the full log"
        );
    }
}
