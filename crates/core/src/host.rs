//! The host-side IceClave library (Figure 3, Table 2).
//!
//! End users never talk to the SSD runtime directly: the library
//! exposes exactly two calls — `OffloadCode` and `GetResult` — over the
//! host-to-device communication layer, keeping the trusted computing
//! base small (§4.5). This module models that layer: requests are
//! serialized into NVMe-vendor-command-shaped messages, the user's data
//! decryption key travels with the offloaded binary (§4.6), and results
//! come back with the TEE's measurement so the user can check what ran.

use iceclave_types::{Lpn, SimTime, TeeId};

use crate::runtime::{IceClave, IceClaveError};

/// A user-visible offload ticket: the task id of Table 2's API plus the
/// measurement of the offloaded binary.
#[derive(Clone, Debug)]
pub struct OffloadTicket {
    /// User-chosen task identifier (`tid` in Table 2).
    pub tid: u32,
    /// The TEE servicing this task.
    pub tee: TeeId,
    /// Measurement (hash) of the binary as loaded into the TEE; the
    /// user compares this with their locally computed value.
    pub measurement: [u8; 8],
    /// When the TEE became ready.
    pub ready_at: SimTime,
}

/// A retrieved result (`GetResult` of Table 2).
#[derive(Clone, Debug)]
pub struct OffloadResult {
    /// The task the result belongs to.
    pub tid: u32,
    /// Result payload bytes (opaque to the library).
    pub data: Vec<u8>,
    /// When the DMA to host memory completed.
    pub available_at: SimTime,
}

/// Errors surfaced to the host user.
#[derive(Debug)]
pub enum HostError {
    /// The device-side runtime rejected the request.
    Runtime(IceClaveError),
    /// `GetResult` was called for an unknown task id.
    UnknownTask(u32),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Runtime(e) => write!(f, "device: {e}"),
            HostError::UnknownTask(tid) => write!(f, "unknown task id {tid}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<IceClaveError> for HostError {
    fn from(e: IceClaveError) -> Self {
        HostError::Runtime(e)
    }
}

/// The host-side library: a thin, two-call facade over the runtime.
///
/// # Examples
///
/// ```
/// use iceclave_core::{HostLibrary, IceClave, IceClaveConfig};
/// use iceclave_types::{Lpn, SimTime};
///
/// let mut ice = IceClave::new(IceClaveConfig::tiny());
/// let t = ice.populate(Lpn::new(0), 4, SimTime::ZERO)?;
/// let mut lib = HostLibrary::new();
///
/// let binary = vec![0x90u8; 4096]; // the offloaded machine code
/// let lpas: Vec<Lpn> = (0..4).map(Lpn::new).collect();
/// let ticket = lib.offload_code(&mut ice, &binary, &lpas, Some([7; 16]), 1, t)?;
/// assert_eq!(ticket.measurement, HostLibrary::measure(&binary));
///
/// let result = lib.get_result(&mut ice, 1, 512, ticket.ready_at)?;
/// assert_eq!(result.data.len(), 512);
/// # Ok::<(), iceclave_core::host::HostError>(())
/// ```
#[derive(Debug, Default)]
pub struct HostLibrary {
    tasks: std::collections::HashMap<u32, TeeId>,
}

impl HostLibrary {
    /// Creates an empty library context.
    pub fn new() -> Self {
        HostLibrary {
            tasks: std::collections::HashMap::new(),
        }
    }

    /// Measurement of an offloaded binary: a 64-bit FNV-1a digest (the
    /// model's stand-in for the runtime's code hash).
    pub fn measure(binary: &[u8]) -> [u8; 8] {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in binary {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.to_be_bytes()
    }

    /// `OffloadCode(bin, lpa, args, tid)` of Table 2: ships the binary
    /// and the list of logical page addresses to the device, optionally
    /// provisioning the user's data-decryption key into the TEE (§4.6:
    /// "they will send their decryption key to the TEE along with the
    /// offloaded program").
    ///
    /// # Errors
    ///
    /// Propagates device-side rejections (bad pages, no free TEEs,
    /// oversized binary).
    pub fn offload_code(
        &mut self,
        device: &mut IceClave,
        binary: &[u8],
        lpas: &[Lpn],
        user_key: Option<[u8; 16]>,
        tid: u32,
        now: SimTime,
    ) -> Result<OffloadTicket, HostError> {
        let (tee, ready_at) = device.offload_code(binary.len() as u64, lpas, now)?;
        if let Some(key) = user_key {
            device.provision_user_key(tee, key)?;
        }
        self.tasks.insert(tid, tee);
        Ok(OffloadTicket {
            tid,
            tee,
            measurement: Self::measure(binary),
            ready_at,
        })
    }

    /// `GetResult(tid, res)` of Table 2: DMAs `len` bytes of results
    /// from the TEE's metadata region into host memory.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTask`] or device-side failures.
    pub fn get_result(
        &mut self,
        device: &mut IceClave,
        tid: u32,
        len: usize,
        now: SimTime,
    ) -> Result<OffloadResult, HostError> {
        let tee = *self.tasks.get(&tid).ok_or(HostError::UnknownTask(tid))?;
        let available_at = device.get_result(tee, len as u64, now)?;
        Ok(OffloadResult {
            tid,
            // The payload content is produced by the in-storage program;
            // the library only moves bytes. A zeroed buffer stands in.
            data: vec![0u8; len],
            available_at,
        })
    }

    /// Finishes a task: terminates its TEE and forgets the mapping.
    ///
    /// # Errors
    ///
    /// [`HostError::UnknownTask`] or device-side failures.
    pub fn finish(
        &mut self,
        device: &mut IceClave,
        tid: u32,
        now: SimTime,
    ) -> Result<SimTime, HostError> {
        let tee = self.tasks.remove(&tid).ok_or(HostError::UnknownTask(tid))?;
        Ok(device.terminate_tee(tee, now)?)
    }

    /// The TEE currently serving `tid`, if any.
    pub fn tee_for(&self, tid: u32) -> Option<TeeId> {
        self.tasks.get(&tid).copied()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::config::IceClaveConfig;

    fn setup() -> (IceClave, SimTime) {
        let mut ice = IceClave::new(IceClaveConfig::tiny());
        let t = ice.populate(Lpn::new(0), 8, SimTime::ZERO).unwrap();
        (ice, t)
    }

    #[test]
    fn offload_and_get_result_round_trip() {
        let (mut ice, t) = setup();
        let mut lib = HostLibrary::new();
        let lpas: Vec<Lpn> = (0..8).map(Lpn::new).collect();
        let ticket = lib
            .offload_code(&mut ice, &[1, 2, 3], &lpas, None, 42, t)
            .unwrap();
        assert_eq!(ticket.tid, 42);
        assert_eq!(lib.tee_for(42), Some(ticket.tee));
        let res = lib.get_result(&mut ice, 42, 128, ticket.ready_at).unwrap();
        assert_eq!(res.data.len(), 128);
        assert!(res.available_at > ticket.ready_at);
        lib.finish(&mut ice, 42, res.available_at).unwrap();
        assert_eq!(lib.tee_for(42), None);
    }

    #[test]
    fn measurement_is_stable_and_content_sensitive() {
        let a = HostLibrary::measure(b"program-v1");
        assert_eq!(a, HostLibrary::measure(b"program-v1"));
        assert_ne!(a, HostLibrary::measure(b"program-v2"));
    }

    #[test]
    fn unknown_task_is_reported() {
        let (mut ice, t) = setup();
        let mut lib = HostLibrary::new();
        assert!(matches!(
            lib.get_result(&mut ice, 7, 16, t),
            Err(HostError::UnknownTask(7))
        ));
        assert!(matches!(
            lib.finish(&mut ice, 7, t),
            Err(HostError::UnknownTask(7))
        ));
    }

    #[test]
    fn user_key_is_provisioned_into_the_tee() {
        let (mut ice, t) = setup();
        let mut lib = HostLibrary::new();
        let lpas: Vec<Lpn> = (0..2).map(Lpn::new).collect();
        let key = [0xAB; 16];
        let ticket = lib
            .offload_code(&mut ice, b"bin", &lpas, Some(key), 1, t)
            .unwrap();
        assert_eq!(ice.user_key(ticket.tee), Some(key));
    }

    #[test]
    fn device_errors_propagate() {
        let (mut ice, t) = setup();
        let mut lib = HostLibrary::new();
        // Unmapped pages are rejected by the device.
        let err = lib
            .offload_code(&mut ice, b"bin", &[Lpn::new(99)], None, 1, t)
            .unwrap_err();
        assert!(matches!(err, HostError::Runtime(_)));
    }
}
