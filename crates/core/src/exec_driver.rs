//! The stage semantics behind the asynchronous batch API: IceClave's
//! [`StageMachine`] implementation and the `IceClave` submission /
//! completion methods.
//!
//! The executor (`iceclave_exec`) owns the event heap, the ticket
//! table and the completion queue; this module owns what each stage
//! *does* on the simulator:
//!
//! ```text
//!  read ticket                      write ticket
//!  ───────────                      ────────────
//!  submit: translate + ID-bit       submit: ownership check (atomic,
//!    check (atomic, §4.5), assign     §4.5), assign seal slots,
//!    fill slots, schedule one         MEE seal drain, schedule one
//!    FlashRead per page at its        Encrypt per page at its seal
//!    translation-ready time           read-out time
//!  FlashRead: die + channel bus,    Encrypt: cipher-lane timeline
//!    then the per-channel decrypt   Program: ONE event per batch —
//!    lane (inline: the lane only      the single secure-world entry
//!    sees its own channel's bus       of `Ftl::write_batch`, fired
//!    order)                           when the last ciphertext exists
//!  Fill:      MEE fill + DRAM         → one completion per page at
//!    → completion (plaintext)         its durable time
//! ```
//!
//! Because every stage acquires its resource at the simulated time the
//! event fires, pages of different tickets interleave on the shared
//! timelines in *time* order rather than call order. Access control
//! and address translation snapshot at submission (tickets in flight
//! have no ordering guarantees between each other — drain a ticket
//! before submitting work that depends on it).

use iceclave_cipher::CipherEngine;
use iceclave_exec::{Executor, StageEvent, StageMachine};
use iceclave_ftl::FlashError;
use iceclave_ftl::{FtlError, JournalRecord, Requestor, SchedPolicy, WfqArbiter};
use iceclave_isc::SsdPlatform;
use iceclave_mee::{MeeEngine, MetaTraffic, PageClass, PageSeal, SealSpan};
use iceclave_sim::Pipeline;
use iceclave_types::{
    BatchCompletion, CompletionEvent, FaultStats, LatencyBreakdown, Lpn, PageCompletion, PageError,
    PageErrorCause, PageStatus, PageWrite, Ppn, SimDuration, SimTime, TeeId, Ticket,
    TicketAttribution, TicketKind, WriteBatchCompletion, WriteBatchRequest, WritePageCompletion,
    WritePageRequest, PAGE_SIZE,
};

use crate::config::IceClaveConfig;
use crate::runtime::{AbortReason, IceClave, IceClaveError, RuntimeStats};
use crate::slab::{ErrorSlab, IvTable, JobTable};

/// Read-retry ladder depth: how many times the FlashRead stage
/// re-senses a page whose raw-bit-error burst exceeded the ECC before
/// reporting it uncorrectable. Four rungs mirror a typical NAND
/// read-retry table (shifted-Vref re-reads).
pub const READ_RETRY_LIMIT: u32 = 4;

/// Extra sensing latency per retry rung: rung `k` fires `k *
/// READ_RETRY_STEP_US` microseconds after the failed attempt, modeling
/// the progressively slower shifted-Vref / soft-decision re-reads of a
/// real controller.
pub const READ_RETRY_STEP_US: u64 = 60;

/// One pipeline stage of an in-flight page (the executor's event
/// payload).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Stage {
    /// Read path: die cell read + channel bus transfer, then the
    /// per-channel stream-decipher lane (advanced inline — the lane is
    /// fed only by its channel bus, so flash-completion order is its
    /// arrival order and no separate event is needed).
    FlashRead,
    /// Read path: MEE fill into the TEE's input ring (retires the
    /// page).
    Fill,
    /// Write path: per-lane stream-encrypt of the outbound page.
    Encrypt,
    /// Write path: the whole batch's single secure-world program phase
    /// (`Ftl::write_batch`), fired once the last ciphertext exists.
    /// Kept as one event so the one-entry-per-batch amortization of
    /// the blocking path is preserved.
    Program,
}

/// Per-page in-flight state.
#[derive(Clone, Debug)]
struct PageState {
    lpn: Lpn,
    /// Reads: the translated physical page. Writes: placeholder until
    /// the program phase allocates.
    ppn: Ppn,
    /// Cipher-lane index (reads: the page's channel; writes:
    /// round-robin over the lanes, as the target channel is unknown
    /// until allocation).
    lane: usize,
    /// Read fill slot in the TEE's input ring.
    slot: u64,
    /// Read fill protection class.
    class: PageClass,
    breakdown: LatencyBreakdown,
    /// Write payload (persisted at program time).
    payload: Option<Vec<u8>>,
    /// Whether this page has already pushed its completion (used by
    /// ticket cancellation at TEE teardown to fail only the remainder).
    retired: bool,
    /// Read attempts already spent on this page (0 = the first
    /// FlashRead event; >0 = a retry-ladder rung, which must not
    /// re-advance the ticket's FIFO chain).
    attempts: u32,
    /// Read path: the ticket's next page on the same channel. Within a
    /// ticket each channel serves its pages FIFO in request order (the
    /// per-channel queue discipline of `Ftl::read_batch`); the chain
    /// schedules each page's flash stage only after its predecessor
    /// issued, so the blocking wrapper reproduces `read_batch` exactly
    /// while other tickets still interleave in time order.
    next_same_channel: Option<u32>,
}

/// Per-ticket in-flight state.
#[derive(Debug)]
pub struct Job {
    tee: TeeId,
    kind: TicketKind,
    submitted: SimTime,
    pages: Vec<PageState>,
    /// Write path: per-page seal spans (read-out gates encryption,
    /// metadata completion gates durability).
    sealed: Vec<SealSpan>,
    /// Write path: per-page encryption completion times.
    encrypted: Vec<SimTime>,
    /// Write path: encrypt stages still outstanding before the program
    /// phase may fire.
    pending_encrypts: usize,
    /// Integrity-metadata traffic charged to this ticket: MEE counter
    /// deltas snapshotted around each of its engine calls.
    attrib: TicketAttribution,
    /// Fault/recovery activity charged to this ticket (retries,
    /// remaps, MAC fallbacks it triggered).
    faults: FaultStats,
}

impl Job {
    /// Pages that have not pushed a completion yet — what a power cut
    /// destroys (the durability contract never covered them).
    pub(crate) fn unretired_pages(&self) -> u64 {
        self.pages.iter().filter(|p| !p.retired).count() as u64
    }

    /// A minimal zero-page job for the slab unit tests.
    #[cfg(test)]
    pub(crate) fn stub(tee: TeeId, kind: TicketKind, submitted: SimTime) -> Self {
        Job {
            tee,
            kind,
            submitted,
            pages: Vec::new(),
            sealed: Vec::new(),
            encrypted: Vec::new(),
            pending_encrypts: 0,
            attrib: TicketAttribution::default(),
            faults: FaultStats::default(),
        }
    }
}

/// Disjoint borrows of every runtime component a stage can touch —
/// the [`StageMachine`] the executor drives.
pub(crate) struct StageCtx<'a> {
    pub platform: &'a mut SsdPlatform,
    pub mee: &'a mut MeeEngine,
    pub cipher: &'a mut CipherEngine,
    pub cipher_lanes: &'a mut [Pipeline],
    pub page_ivs: &'a mut IvTable,
    pub config: &'a IceClaveConfig,
    pub stats: &'a mut RuntimeStats,
    pub jobs: &'a mut JobTable,
    pub failed: &'a mut ErrorSlab,
    pub arbiter: &'a mut WfqArbiter,
}

/// Point-in-time snapshot of the MEE counters that feed per-ticket
/// attribution: the metadata-cache traffic plus the L2 counter store
/// and MAC-fallback totals (which live outside [`MetaTraffic`]).
#[derive(Copy, Clone)]
struct MeeSnap {
    meta: MetaTraffic,
    l2_hits: u64,
    l2_misses: u64,
    mac_fallbacks: u64,
    fill_writes: u64,
    seal_reads: u64,
    extra_enc_writes: u64,
    encryptions: u64,
}

impl MeeSnap {
    fn of(mee: &MeeEngine) -> Self {
        let stats = mee.stats();
        MeeSnap {
            meta: stats.meta_traffic,
            l2_hits: stats.l2_hits,
            l2_misses: stats.l2_misses,
            mac_fallbacks: stats.mac_fallbacks,
            fill_writes: stats.fill_writes,
            seal_reads: stats.seal_reads,
            extra_enc_writes: stats.extra_enc_writes,
            encryptions: stats.encryptions,
        }
    }

    /// The attribution accumulated on the MEE since `self`, plus the
    /// MAC-fallback delta (a fault, not cache traffic). The bulk
    /// fill/seal datapath bypasses the on-chip metadata caches by
    /// design, so the cache fields stay zero for ticket work — the
    /// bulk-engine line counts are what a ticket actually moves.
    fn charge(self, mee: &MeeEngine) -> (TicketAttribution, u64) {
        let now = MeeSnap::of(mee);
        let meta = now.meta.since(&self.meta);
        (
            TicketAttribution {
                counter_hits: meta.counter_hits,
                counter_misses: meta.counter_misses,
                mac_hits: meta.mac_hits,
                mac_misses: meta.mac_misses,
                tree_hits: meta.tree_hits,
                tree_misses: meta.tree_misses,
                l2_hits: now.l2_hits - self.l2_hits,
                l2_misses: now.l2_misses - self.l2_misses,
                fill_lines: now.fill_writes - self.fill_writes,
                seal_lines: now.seal_reads - self.seal_reads,
                meta_writes: now.extra_enc_writes - self.extra_enc_writes,
                enc_pads: now.encryptions - self.encryptions,
            },
            now.mac_fallbacks - self.mac_fallbacks,
        )
    }
}

/// Grants `channel`'s next queued page (if the channel is free and any
/// tenant lane is backlogged) and schedules its flash-read stage no
/// earlier than `floor` — the page-boundary preemption point: under
/// WFQ the next grant is decided only when the previous page's flash
/// service ends, so a deep in-flight ticket yields the channel between
/// pages.
fn kick_channel(
    arbiter: &mut WfqArbiter,
    exec: &mut Executor<Stage>,
    channel: usize,
    floor: SimTime,
) {
    if let Some(grant) = arbiter.try_issue(channel) {
        exec.schedule_hierarchical(
            grant.ready.max(floor),
            grant.vstart,
            grant.tstart,
            grant.ticket,
            grant.page,
            Stage::FlashRead,
        );
    }
}

/// Deciphers the functional content of a page, if any was stored.
/// Pages staged through `IceClave::host_store_data` or written with
/// payloads come back as the original plaintext; content written
/// directly to flash (no recorded IV) is returned as stored.
fn decipher_content(
    platform: &SsdPlatform,
    cipher: &mut CipherEngine,
    page_ivs: &IvTable,
    cipher_enabled: bool,
    lpn: Lpn,
    ppn: Ppn,
) -> Option<Vec<u8>> {
    // One allocation per page: the snapshot buffer is deciphered in
    // place and then owned by the job until the Fill stage hands it to
    // the completion event.
    let mut stored = platform.ftl.flash().read_data(ppn)?.to_vec();
    if cipher_enabled {
        if let Some(iv) = page_ivs.get(lpn.raw()) {
            let iv = *iv;
            cipher.decrypt_page_in_place(&iv, &mut stored);
        }
    }
    Some(stored)
}

impl StageCtx<'_> {
    /// Retires `page` of `ticket` as failed at `at`, recording the
    /// first ticket-level error.
    fn fail_page(
        &mut self,
        exec: &mut Executor<Stage>,
        ticket: Ticket,
        page: u32,
        at: SimTime,
        error: IceClaveError,
        cause: PageErrorCause,
    ) {
        self.failed.record(ticket.raw(), error);
        self.fail_page_with(exec, ticket, page, at, cause);
    }

    /// Retires `page` of `ticket` as a *soft* per-page failure at `at`:
    /// the completion carries [`PageStatus::Failed`] with the structured
    /// `reason`, but no ticket-level error is recorded — the blocking
    /// waiters still return `Ok` and the batch degrades gracefully to a
    /// partial completion.
    fn fail_page_soft(
        &mut self,
        exec: &mut Executor<Stage>,
        ticket: Ticket,
        page: u32,
        at: SimTime,
        cause: PageErrorCause,
    ) {
        self.stats.pages_failed += 1;
        self.fail_page_with(exec, ticket, page, at, cause);
    }

    fn fail_page_with(
        &mut self,
        exec: &mut Executor<Stage>,
        ticket: Ticket,
        page: u32,
        at: SimTime,
        cause: PageErrorCause,
    ) {
        let Some(job) = self.jobs.get_mut(ticket.raw()) else {
            return;
        };
        let state = &mut job.pages[page as usize];
        state.breakdown.ready = at;
        state.retired = true;
        let reason = PageError {
            ppn: state.ppn,
            attempts: state.attempts.max(1),
            cause,
        };
        let event = CompletionEvent {
            ticket,
            kind: job.kind,
            tee: job.tee,
            index: page,
            lpn: state.lpn,
            status: PageStatus::Failed { reason },
            breakdown: state.breakdown,
            data: None,
        };
        if exec.push_completion(event) {
            if let Some(job) = self.jobs.remove(ticket.raw()) {
                exec.notify_close(ticket, &job.attrib, &job.faults);
            }
        }
    }

    /// The write ticket's single program phase: one secure-world entry
    /// for the whole batch, ciphertext-ready gating per page, GC-aware
    /// channel steering and coalesced CMT write-back — all inside
    /// [`iceclave_ftl::Ftl::write_batch`].
    fn program_batch(&mut self, ev: StageEvent<Stage>, exec: &mut Executor<Stage>) {
        let Some(job) = self.jobs.get_mut(ev.ticket.raw()) else {
            return;
        };
        let batch = WriteBatchRequest {
            requests: job
                .pages
                .iter()
                .zip(&job.encrypted)
                .map(|(page, &ready)| WritePageRequest {
                    lpn: page.lpn,
                    ready,
                })
                .collect(),
        };
        // The secure world is entered against the submission time: the
        // admit horizon of every channel already reflects whatever the
        // executor interleaved since then.
        let (remaps_before, retired_before) = {
            let ftl_stats = self.platform.ftl.stats();
            (ftl_stats.program_remaps, ftl_stats.blocks_retired)
        };
        let result = self.platform.ftl.write_batch(
            Requestor::Tee(job.tee),
            &batch,
            &mut self.platform.monitor,
            job.submitted,
        );
        {
            let ftl_stats = self.platform.ftl.stats();
            job.faults.program_remaps += ftl_stats.program_remaps - remaps_before;
            job.faults.blocks_retired += ftl_stats.blocks_retired - retired_before;
        }
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                // Mid-flight failure (device full, or ownership revoked
                // while in flight — e.g. the TEE was torn down between
                // submission and drain). The submission-time access
                // check already ran, so this is not a second §4.5
                // abort; the ticket fails with the error.
                let pages = job.pages.len() as u32;
                for page in 0..pages {
                    self.fail_page(
                        exec,
                        ev.ticket,
                        page,
                        ev.at,
                        e.clone().into(),
                        PageErrorCause::ProgramFailed,
                    );
                }
                return;
            }
        };

        // Functional payloads: ciphertext lands at the new physical
        // page; the IV rides in the per-LPN out-of-band store so GC
        // relocation cannot orphan it.
        for (page, out) in job.pages.iter_mut().zip(&outcome.pages) {
            if let Some(mut plaintext) = page.payload.take() {
                // The payload buffer was moved in at submission and is
                // ciphered in place — the write path's last copy is
                // the flash store itself.
                if self.config.cipher_enabled {
                    let iv = self
                        .cipher
                        .encrypt_page_in_place(page.lpn.raw() as u32, &mut plaintext);
                    self.page_ivs.insert(page.lpn.raw(), iv);
                    // The stored ciphertext is unreadable without its
                    // IV: seal it alongside the mapping records
                    // `Ftl::write_batch` already journaled.
                    self.platform.ftl.journal_append(JournalRecord::IvSeal {
                        lpn: page.lpn.raw(),
                        iv_base: iv.base(),
                        iv_ppa: iv.ppa(),
                    });
                }
                self.platform
                    .ftl
                    .flash_mut()
                    .write_data(out.ppn, &plaintext);
            }
        }
        // Acked ⇒ durable: before any page of this batch may push a
        // completion, its mapping updates, IV seals and a fresh
        // counter-epoch seal must be journal-synced to flash. The sync
        // end time floors every page's durable time, so a drained
        // (acknowledged) write is always replayable after a crash.
        let mut durable_floor = SimTime::ZERO;
        if self.platform.ftl.journal_enabled() {
            let epoch = self.mee.advance_counter_epoch();
            self.platform
                .ftl
                .journal_append(JournalRecord::EpochSeal { epoch });
            match self.platform.ftl.journal_sync(outcome.finished) {
                Ok(end) => durable_floor = end,
                Err(e) => {
                    // The journal region is full (or unwritable): the
                    // batch's durability cannot be guaranteed, so the
                    // ticket fails rather than ack an unreplayable
                    // write.
                    let pages = job.pages.len() as u32;
                    for page in 0..pages {
                        self.fail_page(
                            exec,
                            ev.ticket,
                            page,
                            ev.at,
                            e.clone().into(),
                            PageErrorCause::ProgramFailed,
                        );
                    }
                    return;
                }
            }
        }
        self.stats.pages_stored += job.pages.len() as u64;
        exec.note_finished(ev.ticket, outcome.finished.max(durable_floor));

        // Fairness accounting: `Ftl::write_batch` booked the channel
        // programs itself, so debit each written page against the
        // tenant's lane — a write-heavy tenant's subsequent reads pay
        // for the channel time its programs consumed.
        if self.config.fairness.policy == SchedPolicy::Wfq {
            let geometry = self.platform.ftl.flash().config().geometry;
            for out in &outcome.pages {
                let channel = geometry.unpack(out.ppn).channel as usize;
                self.arbiter.charge(channel, job.tee, 1);
            }
            // Seal-side attribution feedback: the ticket's accumulated
            // metadata lines (seal drain + counter epochs) are spread
            // across the channels its programs landed on. Writes never
            // queue in the arbiter, so this debits the tenant's clocks
            // only; a no-op at the default zero line cost.
            if self.config.fairness.mee_line_cost > 0 {
                let total = job.attrib.cost_lines();
                let pages = outcome.pages.len() as u64;
                for (index, out) in outcome.pages.iter().enumerate() {
                    let channel = geometry.unpack(out.ppn).channel as usize;
                    let mut lines = total / pages;
                    if index == 0 {
                        lines += total % pages;
                    }
                    self.arbiter
                        .surcharge_lines(channel, job.tee, ev.ticket, lines);
                }
            }
        }

        // Durable = program done AND seal metadata (counter + MAC)
        // drained; the metadata work overlapped the channel programs.
        let mut closed = false;
        for (index, (page, out)) in job.pages.iter_mut().zip(&outcome.pages).enumerate() {
            let durable = out
                .flash
                .end
                .max(job.sealed[index].sealed)
                .max(durable_floor);
            page.ppn = out.ppn;
            page.breakdown.flash_done = out.flash.end;
            page.breakdown.ready = durable;
            page.retired = true;
            closed = exec.push_completion(CompletionEvent {
                ticket: ev.ticket,
                kind: TicketKind::Write,
                tee: job.tee,
                index: index as u32,
                lpn: page.lpn,
                status: PageStatus::Done,
                breakdown: page.breakdown,
                data: None,
            });
        }
        if closed {
            if let Some(job) = self.jobs.remove(ev.ticket.raw()) {
                exec.notify_close(ev.ticket, &job.attrib, &job.faults);
            }
        }
    }
}

impl StageMachine for StageCtx<'_> {
    type Stage = Stage;

    fn advance(&mut self, ev: StageEvent<Stage>, exec: &mut Executor<Stage>) {
        if ev.stage == Stage::Program {
            self.program_batch(ev, exec);
            return;
        }
        let Some(job) = self.jobs.get_mut(ev.ticket.raw()) else {
            // A cancelled ticket's stage events are no-ops — but a
            // granted flash read still holds its channel in the WFQ
            // arbiter; free it so the next tenant's grant can issue.
            if ev.stage == Stage::FlashRead {
                if let Some(channel) = self.arbiter.release(ev.ticket, ev.page) {
                    kick_channel(self.arbiter, exec, channel, ev.at);
                }
            }
            return;
        };
        let idx = ev.page as usize;
        match ev.stage {
            Stage::FlashRead => {
                let (lpn, snapshot, arrival) = {
                    let page = &job.pages[idx];
                    // The flash sees the page at its translation-ready
                    // time; the event time only fixed the issue order.
                    (page.lpn, page.ppn, page.breakdown.prepared)
                };
                // Advance the ticket's per-channel FIFO chain first, so
                // the successor issues even if this page fails. Retry
                // rungs (`attempts > 0`) already advanced it on their
                // first pass and must not double-schedule the successor.
                if job.pages[idx].attempts == 0 {
                    if let Some(next) = job.pages[idx].next_same_channel {
                        let next_ready = job.pages[next as usize].breakdown.prepared;
                        exec.schedule(next_ready.max(ev.at), ev.ticket, next, Stage::FlashRead);
                    }
                }
                // Refresh the physical location: garbage collection
                // triggered by a concurrent ticket may have relocated
                // the page since submission (the delivered bytes were
                // snapshotted then; this read is the timing of wherever
                // the page lives now). A page trimmed mid-flight falls
                // back to the snapshot location: it usually still
                // completes with its snapshotted bytes, and only
                // retires Failed in the rare case GC already erased
                // that block — racing a trim against an in-flight read
                // is client misuse either way.
                let ppn = self.platform.ftl.current_ppn(lpn).unwrap_or(snapshot);
                if ppn != snapshot {
                    let geometry = self.platform.ftl.flash().config().geometry;
                    let page = &mut job.pages[idx];
                    page.ppn = ppn;
                    // The decrypt lane follows the channel that
                    // actually streams the page.
                    page.lane = geometry.unpack(ppn).channel as usize;
                }
                // Burst-level ECC corrections happen inside the read
                // itself; the stats delta attributes them to this
                // ticket's page.
                let bursts_before = self.platform.ftl.flash().stats().corrected_bursts;
                let read = self.platform.ftl.flash_mut().read_page(ppn, arrival);
                job.faults.corrected_bursts +=
                    self.platform.ftl.flash().stats().corrected_bursts - bursts_before;
                match read {
                    Ok(span) => {
                        // The decrypt lane is advanced inline rather
                        // than via its own event: a lane serves only
                        // its channel, the channel bus serializes the
                        // flash spans feeding it, and successive
                        // `acquire` calls on one resource end at
                        // strictly increasing times — so processing
                        // here, in flash-completion order, is
                        // timing-identical to popping a Decrypt event
                        // at `span.end`, one event round-trip cheaper.
                        let cipher_done = if self.config.cipher_enabled {
                            let service = self.cipher.page_latency(PAGE_SIZE);
                            let lane = job.pages[idx].lane;
                            self.cipher_lanes[lane].process(span.end, service).end
                        } else {
                            span.end
                        };
                        let page = &mut job.pages[idx];
                        page.breakdown.flash_done = span.end;
                        page.breakdown.cipher_done = cipher_done;
                        exec.schedule(cipher_done, ev.ticket, ev.page, Stage::Fill);
                        // WFQ preemption point: this page's flash
                        // service ends at span.end — only now does the
                        // arbiter decide which tenant's page gets the
                        // channel next. If GC relocated the page since
                        // the grant, the granted channel never carried
                        // this transfer: free it immediately instead
                        // of idling it until the foreign span ends.
                        if let Some(channel) = self.arbiter.release(ev.ticket, ev.page) {
                            let floor = if job.pages[idx].lane == channel {
                                span.end
                            } else {
                                ev.at
                            };
                            kick_channel(self.arbiter, exec, channel, floor);
                        }
                    }
                    // An uncorrectable burst climbs the read-retry
                    // ladder: re-sense the page with a stepped extra
                    // latency per rung (shifted-Vref model), keeping
                    // the WFQ grant — the channel really is busy
                    // retrying. Each rung redraws the fault stream, so
                    // transient bursts recover and only persistent ones
                    // exhaust the budget.
                    Err(FlashError::ReadUncorrectable { .. })
                        if job.pages[idx].attempts + 1 < READ_RETRY_LIMIT =>
                    {
                        let page = &mut job.pages[idx];
                        page.attempts += 1;
                        self.stats.read_retries += 1;
                        job.faults.read_retries += 1;
                        let backoff =
                            SimDuration::from_micros(READ_RETRY_STEP_US * page.attempts as u64);
                        exec.schedule(ev.at + backoff, ev.ticket, ev.page, Stage::FlashRead);
                    }
                    // Ladder exhausted: the page degrades to a soft
                    // per-page failure — the rest of the ticket still
                    // completes and the blocking waiters return `Ok`
                    // with this page marked `Failed`.
                    Err(FlashError::ReadUncorrectable { .. }) => {
                        job.pages[idx].attempts += 1;
                        self.stats.uncorrectable_pages += 1;
                        job.faults.uncorrectable_pages += 1;
                        if let Some(channel) = self.arbiter.release(ev.ticket, ev.page) {
                            kick_channel(self.arbiter, exec, channel, ev.at);
                        }
                        self.fail_page_soft(
                            exec,
                            ev.ticket,
                            ev.page,
                            ev.at,
                            PageErrorCause::Uncorrectable,
                        );
                    }
                    // A stale mapping is an internal invariant
                    // violation; surface it as a failed page rather
                    // than a panic.
                    Err(e) => {
                        if let Some(channel) = self.arbiter.release(ev.ticket, ev.page) {
                            kick_channel(self.arbiter, exec, channel, ev.at);
                        }
                        self.fail_page(
                            exec,
                            ev.ticket,
                            ev.page,
                            ev.at,
                            FtlError::from(e).into(),
                            PageErrorCause::Uncorrectable,
                        )
                    }
                }
            }
            Stage::Fill => {
                let (slot, class) = {
                    let page = &job.pages[idx];
                    (page.slot, page.class)
                };
                // Attribution: every counter/MAC/tree access the fill
                // performs is charged to this ticket via a stats delta.
                let before = MeeSnap::of(self.mee);
                let done = self
                    .mee
                    .fill_page(&mut self.platform.dram, slot, class, ev.at);
                let (delta, mac_fallbacks) = before.charge(self.mee);
                job.attrib.add(&delta);
                job.faults.mac_fallbacks += mac_fallbacks;
                self.stats.ticket_meta.add(&delta);
                // Attribution feedback: the fill's measured metadata
                // traffic surcharges the ticket's (and tenant's)
                // virtual clocks on the page's channel, so
                // metadata-heavy tickets yield channel slots to lean
                // siblings. A no-op at the default zero line cost.
                if self.config.fairness.policy == SchedPolicy::Wfq
                    && self.config.fairness.mee_line_cost > 0
                {
                    let channel = job.pages[idx].lane;
                    self.arbiter
                        .surcharge_lines(channel, job.tee, ev.ticket, delta.cost_lines());
                }
                let page = &mut job.pages[idx];
                page.breakdown.ready = done;
                page.retired = true;
                // Functional content was snapshotted at submission
                // (with the translation), so a concurrent ticket's GC
                // pass relocating the physical page mid-flight cannot
                // corrupt the delivered bytes.
                let data = page.payload.take();
                let (lpn, breakdown) = (page.lpn, page.breakdown);
                let tee = job.tee;
                // A page counts as loaded only once it actually sits in
                // the TEE's input ring.
                self.stats.pages_loaded += 1;
                if exec.push_completion(CompletionEvent {
                    ticket: ev.ticket,
                    kind: TicketKind::Read,
                    tee,
                    index: ev.page,
                    lpn,
                    status: PageStatus::Done,
                    breakdown,
                    data,
                }) {
                    if let Some(job) = self.jobs.remove(ev.ticket.raw()) {
                        exec.notify_close(ev.ticket, &job.attrib, &job.faults);
                    }
                }
            }
            Stage::Encrypt => {
                let service = self.cipher.page_latency(PAGE_SIZE);
                let page = &mut job.pages[idx];
                let span = self.cipher_lanes[page.lane].process(ev.at, service);
                page.breakdown.cipher_done = span.end;
                job.encrypted[idx] = span.end;
                job.pending_encrypts -= 1;
                if job.pending_encrypts == 0 {
                    // Last ciphertext exists: fire the batch's single
                    // program phase. Under WFQ the event carries the
                    // tenant's virtual tag, so same-tick program
                    // phases of different tenants dequeue in
                    // virtual-time order rather than submission order.
                    let at = job.encrypted.iter().copied().fold(ev.at, SimTime::max);
                    let vtime = match self.config.fairness.policy {
                        SchedPolicy::Fifo => 0,
                        SchedPolicy::Wfq => self.arbiter.program_tag(job.tee),
                    };
                    exec.schedule_weighted(at, vtime, ev.ticket, 0, Stage::Program);
                }
            }
            Stage::Program => unreachable!("handled before the per-page dispatch"),
        }
    }
}

impl IceClave {
    /// Runs `f` with the executor split off from the stage context
    /// (disjoint field borrows of the runtime).
    fn drive<R>(&mut self, f: impl FnOnce(&mut Executor<Stage>, &mut StageCtx<'_>) -> R) -> R {
        let mut ctx = StageCtx {
            platform: &mut self.platform,
            mee: &mut self.mee,
            cipher: &mut self.cipher,
            cipher_lanes: &mut self.cipher_lanes,
            page_ivs: &mut self.page_ivs,
            config: &self.config,
            stats: &mut self.stats,
            jobs: &mut self.jobs,
            failed: &mut self.failed,
            arbiter: &mut self.arbiter,
        };
        f(&mut self.exec, &mut ctx)
    }

    /// Submits a multi-page read batch to the event-driven executor
    /// without waiting for it, filling the pages read-only. See
    /// [`IceClave::submit_batch_async_as`].
    ///
    /// # Errors
    ///
    /// As [`IceClave::submit_batch_async_as`].
    ///
    /// # Examples
    ///
    /// Submit a read batch without blocking, then drain its pages from
    /// the completion queue:
    ///
    /// ```
    /// use iceclave_core::{IceClave, IceClaveConfig};
    /// use iceclave_types::{Lpn, PageStatus, SimTime};
    ///
    /// let mut ice = IceClave::new(IceClaveConfig::tiny());
    /// let t = ice.populate(Lpn::new(0), 8, SimTime::ZERO)?;
    /// let lpns: Vec<Lpn> = (0..8).map(Lpn::new).collect();
    /// let (tee, t) = ice.offload_code(64 * 1024, &lpns, t)?;
    ///
    /// let ticket = ice.submit_batch_async(tee, &lpns, t)?;
    /// assert_eq!(ice.in_flight_tickets(), 1);
    /// let events = ice.drain_completions();
    /// assert_eq!(events.len(), 8);
    /// assert!(events.iter().all(|e| e.ticket == ticket));
    /// assert!(events.iter().all(|e| e.status == PageStatus::Done));
    /// # Ok::<(), iceclave_core::IceClaveError>(())
    /// ```
    pub fn submit_batch_async(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        self.submit_batch_async_as(tee, lpns, PageClass::ReadOnly, now)
    }

    /// The non-blocking protected read path: translates and ID-bit
    /// checks the whole batch **at submission** (atomic — a denied page
    /// aborts the batch before any flash traffic and throws the TEE
    /// out, §4.5), assigns the input-ring slots, and schedules one
    /// flash-read stage event per page. The batch then advances at
    /// stage granularity — flash read, per-channel decrypt lane, MEE
    /// fill — interleaved with every other in-flight ticket, and each
    /// page retires into the completion queue
    /// ([`IceClave::poll_completions`]).
    ///
    /// Tickets in flight together have no ordering guarantees between
    /// each other: a submitter that needs to read pages a still-open
    /// write ticket is updating must drain that ticket first.
    ///
    /// # Errors
    ///
    /// The TEE must be running. On [`FtlError::AccessDenied`] the TEE
    /// is thrown out ([`AbortReason::AccessViolation`]) and the error
    /// is returned; other FTL errors pass through with the TEE intact.
    pub fn submit_batch_async_as(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        class: PageClass,
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        self.submit_batch_async_inner(tee, lpns, class, 1, now)
    }

    /// Submits a read batch whose ticket is scheduled at `weight`
    /// inside its tenant's lane when
    /// [`TicketPolicy::Wfq`](iceclave_ftl::TicketPolicy) is configured:
    /// while the tenant's tickets contend for a channel, a weight-2
    /// ticket is granted twice the pages of a weight-1 sibling. Under
    /// the default `TicketPolicy::Fifo` the weight is ignored. See
    /// [`IceClave::submit_batch_async_as`] for the submission
    /// semantics.
    ///
    /// # Errors
    ///
    /// As [`IceClave::submit_batch_async_as`].
    ///
    /// # Panics
    ///
    /// Panics if `weight` is outside
    /// `1..=`[`iceclave_ftl::MAX_TICKET_WEIGHT`].
    pub fn submit_batch_async_weighted(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        weight: u32,
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        self.submit_batch_async_inner(tee, lpns, PageClass::ReadOnly, weight, now)
    }

    fn submit_batch_async_inner(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        class: PageClass,
        ticket_weight: u32,
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        self.ensure_powered()?;
        self.ensure_running(tee)?;
        if lpns.is_empty() {
            return Ok(self.exec.open_ticket(TicketKind::Read, 0, now));
        }
        let translations = match self.platform.ftl.translate_batch(
            Requestor::Tee(tee),
            lpns,
            &mut self.platform.monitor,
            now,
        ) {
            Ok(translations) => translations,
            Err(e @ FtlError::AccessDenied { .. }) => {
                // ThrowOutTEE: touching a page outside the granted
                // region is an access violation, not a recoverable
                // error (§4.5).
                self.throw_out(tee, AbortReason::AccessViolation, now)?;
                return Err(e.into());
            }
            Err(e) => return Err(e.into()),
        };
        let geometry = self.platform.ftl.flash().config().geometry;

        // Admission control: a configured per-tenant channel budget
        // bounds how many pages one TEE may keep queued per channel.
        // Checked before any ring slot, ticket or queue state changes;
        // the translation timing above has already been charged.
        if self.config.fairness.policy == SchedPolicy::Wfq {
            if let Some(budget) = self.config.fairness.channel_budget {
                let mut counts = vec![0u32; geometry.channels as usize];
                for translation in &translations {
                    counts[geometry.unpack(translation.ppn).channel as usize] += 1;
                }
                for (channel, &count) in counts.iter().enumerate() {
                    if count > 0 && self.arbiter.queued(channel, tee) as u32 + count > budget {
                        return Err(IceClaveError::ChannelBudgetExceeded {
                            tee,
                            channel: channel as u32,
                        });
                    }
                }
            }
        }

        // Input-ring slots are assigned in request order at submission,
        // so the ring semantics match N sequential reads exactly. The
        // functional content is snapshotted here too — consistent with
        // the translation snapshot, and immune to a concurrent
        // ticket's GC relocating the physical page mid-flight.
        let snapshots: Vec<Option<Vec<u8>>> = translations
            .iter()
            .zip(lpns)
            .map(|(translation, &lpn)| {
                decipher_content(
                    &self.platform,
                    &mut self.cipher,
                    &self.page_ivs,
                    self.config.cipher_enabled,
                    lpn,
                    translation.ppn,
                )
            })
            .collect();
        let state = self.tees.get_mut(&tee.raw()).expect("running tee exists");
        let mut pages: Vec<PageState> = translations
            .iter()
            .zip(lpns)
            .zip(snapshots)
            .map(|((translation, &lpn), snapshot)| {
                let slot = state.region_page + (state.next_fill % state.input_pages());
                state.next_fill += 1;
                let mut breakdown = LatencyBreakdown::at_submission(now);
                breakdown.prepared = translation.ready_at;
                PageState {
                    lpn,
                    ppn: translation.ppn,
                    lane: geometry.unpack(translation.ppn).channel as usize,
                    slot,
                    class,
                    breakdown,
                    payload: snapshot,
                    retired: false,
                    attempts: 0,
                    next_same_channel: None,
                }
            })
            .collect();

        // Logical-read accounting happens at submission; the flash
        // stages run later, page by page.
        self.platform.ftl.record_logical_reads(lpns.len() as u64);
        let ticket = self
            .exec
            .open_ticket(TicketKind::Read, lpns.len() as u32, now);
        let channels = geometry.channels as usize;
        match self.config.fairness.policy {
            SchedPolicy::Fifo => {
                // Per-channel FIFO chains in request order (the queue
                // discipline of `Ftl::read_batch`): only each channel's
                // head is scheduled now; successors issue as their
                // predecessors do.
                let mut head: Vec<Option<u32>> = vec![None; channels];
                let mut prev_in_channel: Vec<Option<u32>> = vec![None; channels];
                for index in 0..pages.len() {
                    let channel = pages[index].lane;
                    match prev_in_channel[channel] {
                        Some(prev) => pages[prev as usize].next_same_channel = Some(index as u32),
                        None => head[channel] = Some(index as u32),
                    }
                    prev_in_channel[channel] = Some(index as u32);
                }
                for &index in head.iter().flatten() {
                    let ready = pages[index as usize].breakdown.prepared;
                    self.exec.schedule(ready, ticket, index, Stage::FlashRead);
                }
            }
            SchedPolicy::Wfq => {
                // Every page enters its channel's per-tenant WFQ lane
                // under its *chain-effective* ready time — a page may
                // not overtake its own ticket's earlier pages on the
                // same channel, the `Ftl::read_batch` queue discipline
                // the FIFO chains encode. The arbiter then grants one
                // page per channel at a time in virtual-time order, so
                // a lone tenant replays the FIFO schedule exactly
                // while contending tenants split each channel by
                // weight.
                let mut chain_ready: Vec<Option<SimTime>> = vec![None; channels];
                let mut touched: Vec<bool> = vec![false; channels];
                for (index, page) in pages.iter().enumerate() {
                    let channel = page.lane;
                    let ready = match chain_ready[channel] {
                        Some(prev) => page.breakdown.prepared.max(prev),
                        None => page.breakdown.prepared,
                    };
                    chain_ready[channel] = Some(ready);
                    touched[channel] = true;
                    self.arbiter.enqueue_weighted(
                        channel,
                        tee,
                        ticket,
                        index as u32,
                        ready,
                        ticket_weight,
                    );
                }
                for (channel, &touched) in touched.iter().enumerate() {
                    if touched {
                        kick_channel(&mut self.arbiter, &mut self.exec, channel, now);
                    }
                }
            }
        }
        self.jobs.insert(
            ticket.raw(),
            Job {
                tee,
                kind: TicketKind::Read,
                submitted: now,
                pages,
                sealed: Vec::new(),
                encrypted: Vec::new(),
                pending_encrypts: 0,
                attrib: TicketAttribution::default(),
                faults: FaultStats::default(),
            },
        );
        Ok(ticket)
    }

    /// Submits a multi-page timing-only write batch to the executor
    /// without waiting for it. See
    /// [`IceClave::submit_write_batch_async_as`].
    ///
    /// # Errors
    ///
    /// As [`IceClave::submit_write_batch_async_as`].
    pub fn submit_write_batch_async(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        let writes: Vec<PageWrite> = lpns.iter().copied().map(PageWrite::new).collect();
        self.submit_write_batch_async_as(tee, writes, now)
    }

    /// The non-blocking protected write path: ownership-checks the
    /// whole batch **at submission** (atomic — a foreign page aborts
    /// before any DRAM or flash traffic and throws the TEE out, §4.5)
    /// and starts the MEE seal drain of the source pages; each page's
    /// encrypt stage is scheduled at its seal read-out, and the batch's
    /// single secure-world program phase fires once the last ciphertext
    /// exists — by which point the channel admit horizons reflect
    /// everything the executor interleaved meanwhile. Each page retires
    /// into the completion queue at its durable time.
    ///
    /// The batch is taken by value so each page's functional payload
    /// ([`PageWrite::data`]) moves into the in-flight job unchanged —
    /// no copy is made between submission and the flash store.
    ///
    /// # Errors
    ///
    /// As [`IceClave::submit_batch_async_as`].
    pub fn submit_write_batch_async_as(
        &mut self,
        tee: TeeId,
        writes: Vec<PageWrite>,
        now: SimTime,
    ) -> Result<Ticket, IceClaveError> {
        self.ensure_powered()?;
        self.ensure_running(tee)?;
        if writes.is_empty() {
            return Ok(self.exec.open_ticket(TicketKind::Write, 0, now));
        }
        if let Err(e) = self
            .platform
            .ftl
            .check_write_access(Requestor::Tee(tee), writes.iter().map(|w| w.lpn))
        {
            if matches!(e, FtlError::AccessDenied { .. }) {
                // ThrowOutTEE: writing a page outside the granted
                // region is an access violation (§4.5).
                self.throw_out(tee, AbortReason::AccessViolation, now)?;
            }
            return Err(e.into());
        }

        // Stage 1 at submission: MEE drain of the source pages (working
        // half of the TEE region). Only the DRAM read-out gates the
        // downstream stages; the seal's counter-increment + MAC
        // generation run concurrently and gate durability alone.
        let seals: Vec<PageSeal> = {
            let state = self.tees.get_mut(&tee.raw()).expect("running tee exists");
            let working_pages = (state.region_pages - state.input_pages()).max(1);
            let working_base = state.region_page + state.input_pages();
            writes
                .iter()
                .map(|_| {
                    let slot = working_base + (state.next_seal % working_pages);
                    state.next_seal += 1;
                    PageSeal {
                        page: slot,
                        ready: now,
                    }
                })
                .collect()
        };
        // Attribution: the seal drain's counter/MAC traffic belongs to
        // this write ticket.
        let snap = MeeSnap::of(&self.mee);
        let sealed = self.mee.seal_pages(&mut self.platform.dram, &seals);
        let (seal_attrib, seal_fallbacks) = snap.charge(&self.mee);
        self.stats.ticket_meta.add(&seal_attrib);

        // The target channel is unknown until the FTL allocates, so
        // outbound pages go to the cipher lanes round-robin. Payloads
        // move out of the request into the job.
        let lanes = self.cipher_lanes.len().max(1);
        let pages: Vec<PageState> = writes
            .into_iter()
            .enumerate()
            .map(|(i, write)| {
                let mut breakdown = LatencyBreakdown::at_submission(now);
                breakdown.prepared = sealed[i].data_out;
                PageState {
                    lpn: write.lpn,
                    ppn: Ppn::new(0),
                    lane: i % lanes,
                    slot: 0,
                    class: PageClass::Writable,
                    breakdown,
                    payload: write.data,
                    retired: false,
                    attempts: 0,
                    next_same_channel: None,
                }
            })
            .collect();

        let count = pages.len();
        let ticket = self.exec.open_ticket(TicketKind::Write, count as u32, now);
        let (encrypted, pending_encrypts) = if self.config.cipher_enabled {
            for (index, span) in sealed.iter().enumerate() {
                self.exec
                    .schedule(span.data_out, ticket, index as u32, Stage::Encrypt);
            }
            (vec![now; count], count)
        } else {
            // No cipher stage: the program phase fires when the last
            // seal read-out completes (virtual-time tagged under WFQ,
            // as in the Encrypt-gated path).
            let encrypted: Vec<SimTime> = sealed.iter().map(|s| s.data_out).collect();
            let at = encrypted.iter().copied().fold(now, SimTime::max);
            let vtime = match self.config.fairness.policy {
                SchedPolicy::Fifo => 0,
                SchedPolicy::Wfq => self.arbiter.program_tag(tee),
            };
            self.exec
                .schedule_weighted(at, vtime, ticket, 0, Stage::Program);
            (encrypted, 0)
        };
        self.jobs.insert(
            ticket.raw(),
            Job {
                tee,
                kind: TicketKind::Write,
                submitted: now,
                pages,
                encrypted,
                pending_encrypts,
                sealed,
                attrib: seal_attrib,
                faults: FaultStats {
                    mac_fallbacks: seal_fallbacks,
                    ..FaultStats::default()
                },
            },
        );
        Ok(ticket)
    }

    /// Advances the executor to `now` and drains every completion that
    /// became ready at or before `now`, in the documented stable drain
    /// order of [`iceclave_exec::completion`] (quoted by
    /// [`iceclave_exec::DRAIN_ORDER_CONTRACT`]). Two identical runs
    /// drain identical sequences.
    ///
    /// # Examples
    ///
    /// Poll the completion queue as simulated time advances:
    ///
    /// ```
    /// use iceclave_core::{IceClave, IceClaveConfig};
    /// use iceclave_types::{Lpn, SimDuration, SimTime};
    ///
    /// let mut ice = IceClave::new(IceClaveConfig::tiny());
    /// let t = ice.populate(Lpn::new(0), 4, SimTime::ZERO)?;
    /// let lpns: Vec<Lpn> = (0..4).map(Lpn::new).collect();
    /// let (tee, t) = ice.offload_code(64 * 1024, &lpns, t)?;
    /// let ticket = ice.submit_batch_async(tee, &lpns, t)?;
    ///
    /// // Nothing can have completed at submission time...
    /// assert!(ice.poll_completions(t).is_empty());
    /// // ...while ten simulated milliseconds retire every page, in
    /// // the documented drain order.
    /// let events = ice.poll_completions(t + SimDuration::from_millis(10));
    /// assert_eq!(events.len(), 4);
    /// assert!(events.iter().all(|e| e.ticket == ticket));
    /// assert_eq!(ice.in_flight_tickets(), 0);
    /// # Ok::<(), iceclave_core::IceClaveError>(())
    /// ```
    pub fn poll_completions(&mut self, now: SimTime) -> Vec<CompletionEvent> {
        self.sweep_stale_errors();
        self.drive(|exec, ctx| exec.run_until(ctx, now));
        if self.exec.power_lost() {
            // The completion queue lives in controller DRAM: whatever
            // was queued but undrained at the cut is gone with it.
            return Vec::new();
        }
        self.exec.poll(now)
    }

    /// Runs every in-flight ticket to completion and drains the whole
    /// completion queue (same order contract as
    /// [`IceClave::poll_completions`]).
    pub fn drain_completions(&mut self) -> Vec<CompletionEvent> {
        self.sweep_stale_errors();
        self.drive(|exec, ctx| exec.run_to_idle(ctx));
        if self.exec.power_lost() {
            // The completion queue lives in controller DRAM: whatever
            // was queued but undrained at the cut is gone with it.
            return Vec::new();
        }
        self.exec.drain_all()
    }

    /// Forgets ticket errors whose tickets were already retired by an
    /// *earlier* drain — a polling consumer gets one full drain cycle
    /// after seeing a `Failed` event to call
    /// [`IceClave::take_ticket_error`], and the error map stays bounded
    /// across long runs.
    fn sweep_stale_errors(&mut self) {
        let exec = &self.exec;
        self.failed
            .retain(|raw| exec.issued_at(Ticket::new(raw)).is_some());
    }

    /// Number of tickets with pages still in flight.
    pub fn in_flight_tickets(&self) -> usize {
        self.exec.open_tickets()
    }

    /// The executor's event clock: the high-water mark of processed
    /// simulated time.
    pub fn exec_clock(&self) -> SimTime {
        self.exec.clock()
    }

    /// The error that failed `ticket` mid-flight, if any (consumed).
    pub fn take_ticket_error(&mut self, ticket: Ticket) -> Option<IceClaveError> {
        self.failed.remove(ticket.raw())
    }

    /// Fails every in-flight ticket of `tee` at `now` (TEE teardown):
    /// un-retired pages push `Failed` completions, the jobs are
    /// dropped, and each ticket records [`IceClaveError::NotRunning`].
    /// Stage events still on the heap become no-ops, so nothing can
    /// touch the TEE's recycled region or identifier afterward.
    pub(crate) fn cancel_tickets_of(&mut self, tee: TeeId, now: SimTime) {
        // The job slab iterates in ascending ticket-id order, so the
        // cancellation order is deterministic by construction.
        let tickets: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, job)| job.tee == tee)
            .map(|(raw, _)| raw)
            .collect();
        for raw in tickets {
            let ticket = Ticket::new(raw);
            // Purge the dead ticket's queued pages from the channel
            // arbiter; channels whose in-flight grant it held go to
            // the next tenant immediately.
            for channel in self.arbiter.cancel_ticket(ticket) {
                kick_channel(&mut self.arbiter, &mut self.exec, channel, now);
            }
            self.failed.record(raw, IceClaveError::NotRunning(tee));
            let mut job = self.jobs.remove(raw).expect("ticket was just listed");
            for (index, page) in job.pages.iter_mut().enumerate() {
                if page.retired {
                    continue;
                }
                page.retired = true;
                page.breakdown.ready = now;
                self.exec.push_completion(CompletionEvent {
                    ticket,
                    kind: job.kind,
                    tee,
                    index: index as u32,
                    lpn: page.lpn,
                    status: PageStatus::Failed {
                        reason: PageError {
                            ppn: page.ppn,
                            attempts: page.attempts,
                            cause: PageErrorCause::Cancelled,
                        },
                    },
                    breakdown: page.breakdown,
                    data: None,
                });
            }
            // Every page is now retired, which closed the ticket —
            // report whatever attribution it accumulated before death.
            self.exec.notify_close(ticket, &job.attrib, &job.faults);
        }
    }

    /// The shared drain half of the blocking wrappers: runs the heap
    /// until `ticket` closes (events of other in-flight tickets that
    /// are due earlier run on the way; their completions stay queued
    /// for [`IceClave::poll_completions`]), then hands back the
    /// ticket's `(issued, finished, events-by-page-index)`.
    ///
    /// # Errors
    ///
    /// [`IceClaveError::UnknownTicket`] if the ticket was never issued
    /// here or its completions were already drained elsewhere; the
    /// ticket's own mid-flight error if any page failed.
    fn drain_ticket(
        &mut self,
        ticket: Ticket,
    ) -> Result<(SimTime, SimTime, Vec<CompletionEvent>), IceClaveError> {
        self.ensure_powered()?;
        let Some(issued) = self.exec.issued_at(ticket) else {
            return Err(self
                .failed
                .remove(ticket.raw())
                .unwrap_or(IceClaveError::UnknownTicket(ticket)));
        };
        if self.exec.drained_of(ticket).unwrap_or(0) > 0 {
            // Part of the batch already left through poll_completions;
            // a waited completion would silently miss those pages.
            // Mixing the two drain styles on one ticket is not
            // supported — fail loudly instead.
            return Err(IceClaveError::UnknownTicket(ticket));
        }
        self.drive(|exec, ctx| exec.run_ticket(ctx, ticket));
        if self.exec.power_lost() {
            // The cut landed mid-drain: the ticket never closed and
            // its partial completions died with the controller DRAM.
            return Err(IceClaveError::PowerLost);
        }
        let finished = self.exec.finished_at(ticket).unwrap_or(issued);
        let mut events = self.exec.take_ticket_completions(ticket);
        if let Some(error) = self.failed.remove(ticket.raw()) {
            return Err(error);
        }
        events.sort_by_key(|e| e.index);
        Ok((issued, finished, events))
    }

    /// Drains one read ticket to completion and assembles the blocking
    /// [`BatchCompletion`] — the wrapper half of
    /// [`IceClave::submit_batch`].
    ///
    /// # Errors
    ///
    /// [`IceClaveError::UnknownTicket`] for a ticket that was never
    /// issued here or already (even partially) drained through the
    /// polling API, or the ticket's own mid-flight error.
    pub fn wait_batch(&mut self, ticket: Ticket) -> Result<BatchCompletion, IceClaveError> {
        debug_assert_ne!(self.exec.kind_of(ticket), Some(TicketKind::Write));
        let (issued, finished, events) = self.drain_ticket(ticket)?;
        let completions: Vec<PageCompletion> = events
            .into_iter()
            .map(|e| PageCompletion {
                lpn: e.lpn,
                ready_at: e.breakdown.ready,
                data: e.data,
                status: e.status,
            })
            .collect();
        Ok(BatchCompletion {
            issued,
            finished,
            completions,
        })
    }

    /// Drains one write ticket to completion and assembles the blocking
    /// [`WriteBatchCompletion`] — the wrapper half of
    /// [`IceClave::submit_write_batch`].
    ///
    /// # Errors
    ///
    /// [`IceClaveError::UnknownTicket`] for a ticket that was never
    /// issued here or already (even partially) drained through the
    /// polling API, or the ticket's own mid-flight error.
    pub fn wait_write_batch(
        &mut self,
        ticket: Ticket,
    ) -> Result<WriteBatchCompletion, IceClaveError> {
        debug_assert_ne!(self.exec.kind_of(ticket), Some(TicketKind::Read));
        let (issued, finished, events) = self.drain_ticket(ticket)?;
        let completions: Vec<WritePageCompletion> = events
            .into_iter()
            .map(|e| WritePageCompletion {
                lpn: e.lpn,
                durable_at: e.breakdown.ready,
                status: e.status,
            })
            .collect();
        Ok(WriteBatchCompletion {
            issued,
            finished,
            completions,
        })
    }
}
