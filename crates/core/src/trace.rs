//! Op-log capture and replay for the runtime: the `iceclave_obs`
//! bridge.
//!
//! Capture hangs an [`iceclave_obs::TraceCapture`] observer off the
//! executor's completion queue ([`IceClave::enable_tracing`]); every
//! retired ticket lands in the in-memory [`TraceLog`] with its stage
//! timestamps, per-page outcomes and the MEE/fault attribution the
//! stage machine charged to it. With no observer installed the hook is
//! a single `Option` check on the retire path — capture-off costs
//! nothing measurable (the `simspeed` bench keeps a datapoint on both
//! sides).
//!
//! Replay implements [`ReplayTarget`] for [`IceClave`], so a captured
//! log can be fed back through the asynchronous batch API by
//! [`iceclave_obs::replay()`] in sequential, paced or as-fast-as-possible
//! mode. Because the executor is deterministic, an AFAP replay of a
//! capture against an identically configured device reproduces the
//! captured completion sequence exactly.

use iceclave_obs::trace::{TraceCapture, TraceLog};
use iceclave_obs::ReplayTarget;
use iceclave_types::{CompletionEvent, Lpn, SimTime, TeeId, Ticket};

use crate::runtime::{IceClave, IceClaveError};

impl IceClave {
    /// Starts capturing an op-log of every retiring ticket.
    ///
    /// Replaces (and discards) any capture already in progress; the
    /// new log records only tickets that *close* from now on, so
    /// enable tracing before submitting the workload of interest.
    pub fn enable_tracing(&mut self) {
        self.exec.install_observer(Box::new(TraceCapture::new()));
    }

    /// Whether an op-log capture is currently installed.
    pub fn tracing_enabled(&self) -> bool {
        self.exec.has_observer()
    }

    /// Stops capturing and returns the log recorded since
    /// [`IceClave::enable_tracing`], or `None` if tracing was off.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        let observer = self.exec.take_observer()?;
        let capture = observer.into_any().downcast::<TraceCapture>().ok()?;
        Some(capture.into_log())
    }
}

impl ReplayTarget for IceClave {
    type Error = IceClaveError;

    fn replay_read(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        at: SimTime,
    ) -> Result<Ticket, Self::Error> {
        self.submit_batch_async(tee, lpns, at)
    }

    fn replay_write(
        &mut self,
        tee: TeeId,
        lpns: &[Lpn],
        at: SimTime,
    ) -> Result<Ticket, Self::Error> {
        self.submit_write_batch_async(tee, lpns, at)
    }

    fn replay_poll(&mut self, now: SimTime) -> Vec<CompletionEvent> {
        self.poll_completions(now)
    }

    fn replay_drain(&mut self) -> Vec<CompletionEvent> {
        self.drain_completions()
    }
}
