//! # IceClave: a Trusted Execution Environment for In-Storage Computing
//!
//! This crate is the paper's primary contribution (§4): a lightweight
//! TEE runtime for programs offloaded into a computational SSD. It
//! assembles the substrate crates into the architecture of Figure 3:
//!
//! * **TrustZone worlds and the protected region** (§4.2) — the FTL and
//!   the IceClave runtime execute in the secure world; the cached
//!   address-mapping table lives in a *protected* region the normal
//!   world may read (so address translation costs no world switch) but
//!   not write.
//! * **ID-bit access control** (§4.3) — every mapping entry carries the
//!   owning TEE's 4-bit identifier; a dedicated permission check stops
//!   TEEs probing each other's pages, and identifiers are recycled as
//!   TEEs come and go.
//! * **Protected in-SSD DRAM** (§4.4) — reads and writes of TEE memory
//!   go through the hybrid-counter memory-encryption engine with Bonsai
//!   Merkle Tree integrity verification.
//! * **Protected flash channel** (§5) — pages stream through the
//!   Trivium cipher engine between the flash controllers and DRAM.
//! * **TEE lifecycle** (§4.5, Table 2) — `OffloadCode`/`CreateTEE`,
//!   `SetIDBits`, `ReadMappingEntry`, `GetResult`, `TerminateTEE` and
//!   `ThrowOutTEE`, with the Table 5 costs (95 us create, 58 us delete,
//!   3.8 us world switch).
//!
//! # Examples
//!
//! ```
//! use iceclave_core::{IceClave, IceClaveConfig};
//! use iceclave_types::{Lpn, SimTime};
//!
//! let mut ice = IceClave::new(IceClaveConfig::tiny());
//! // The host stages a small dataset into the SSD.
//! let t = ice.populate(Lpn::new(0), 8, SimTime::ZERO)?;
//!
//! // Offload a program over pages 0..8 (Table 2: OffloadCode).
//! let lpns: Vec<Lpn> = (0..8).map(Lpn::new).collect();
//! let (tee, t) = ice.offload_code(64 * 1024, &lpns, t)?;
//!
//! // The TEE streams its input through the cipher engine...
//! let t = ice.read_flash_page(tee, Lpn::new(0), t)?;
//! // ...computes in protected DRAM...
//! let t = ice.mem_write(tee, 8 * 64, t)?;
//! let t = ice.mem_read(tee, 8 * 64, t)?;
//! // ...and returns its result to the host (GetResult).
//! let t = ice.get_result(tee, 4096, t)?;
//! ice.terminate_tee(tee, t)?;
//! # Ok::<(), iceclave_core::IceClaveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(clippy::unwrap_used)]

pub mod config;
pub mod exec_driver;
pub mod host;
pub mod runtime;
mod slab;
pub mod trace;

pub use config::{FairnessConfig, IceClaveConfig};
pub use exec_driver::{Stage, READ_RETRY_LIMIT, READ_RETRY_STEP_US};
pub use host::{HostLibrary, OffloadResult, OffloadTicket};
pub use iceclave_exec::{PowerLossInjector, PowerLossPlan};
pub use iceclave_ftl::{JournalRecord, SchedPolicy, TicketPolicy, MAX_TICKET_WEIGHT};
pub use iceclave_types::RecoveryStats;
pub use runtime::{AbortReason, IceClave, IceClaveError, RuntimeStats, TeeStatus};
