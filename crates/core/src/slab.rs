//! Flat in-flight state storage for the exec driver: the ticket-id
//! windowed job slab, the LPN-indexed IV arena, and the (rare) ticket
//! error list. These replace the driver's former `HashMap`s so the
//! stage hot path indexes state directly instead of hashing.

use iceclave_cipher::PageIv;

use crate::exec_driver::Job;
use crate::runtime::IceClaveError;

/// Per-ticket jobs stored in a sliding window over the ticket-id
/// space.
///
/// Ticket ids are allocated monotonically and never reused (they are
/// the documented same-tick tie-breaker), so the live jobs always sit
/// in a dense id window: `slots[i]` holds the job of ticket
/// `base + i`. The window bounds double as the generation check — an
/// id below `base` belongs to a retired job and misses, without any
/// per-slot generation counter. Ids above the window (tickets opened
/// without a job, e.g. empty batches) leave `None` gaps.
#[derive(Debug, Default)]
pub(crate) struct JobTable {
    base: u64,
    slots: std::collections::VecDeque<Option<Job>>,
}

impl JobTable {
    pub(crate) fn new() -> Self {
        JobTable {
            // Ticket ids start at 1.
            base: 1,
            slots: std::collections::VecDeque::new(),
        }
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut Job> {
        let idx = id.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    /// Inserts the job of freshly opened ticket `id`. Ids between the
    /// window end and `id` (tickets that never got a job) become
    /// permanent `None` gaps until the window slides past them.
    pub(crate) fn insert(&mut self, id: u64, job: Job) {
        debug_assert!(
            id >= self.base + self.slots.len() as u64,
            "ticket ids are monotonic and never reused"
        );
        while self.base + (self.slots.len() as u64) < id {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(job));
    }

    /// Removes and returns the job of `id`, then slides the window
    /// past any leading retired slots. Only the front advances:
    /// `insert` relies on the window end staying aligned with the
    /// ticket allocator.
    pub(crate) fn remove(&mut self, id: u64) -> Option<Job> {
        let idx = id.checked_sub(self.base)? as usize;
        let job = self.slots.get_mut(idx)?.take();
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        job
    }

    /// Live `(ticket id, job)` pairs in ascending ticket-id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &Job)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|job| (self.base + i as u64, job)))
    }
}

/// Per-LPN IVs of functionally encrypted page content, indexed
/// directly by the LPN (the model's stand-in for the controller's
/// out-of-band IV metadata; keyed by LPN so GC relocation cannot
/// orphan an IV). LPNs are bounded by the device's logical capacity,
/// so a dense arena grown on first touch replaces the former map.
#[derive(Debug, Default)]
pub(crate) struct IvTable {
    slots: Vec<Option<PageIv>>,
}

impl IvTable {
    pub(crate) fn new() -> Self {
        IvTable { slots: Vec::new() }
    }

    #[inline]
    pub(crate) fn get(&self, lpn: u64) -> Option<&PageIv> {
        self.slots.get(lpn as usize)?.as_ref()
    }

    pub(crate) fn insert(&mut self, lpn: u64, iv: PageIv) {
        let idx = lpn as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(iv);
    }
}

/// Ticket-level errors of batches that failed mid-flight. Failures
/// are rare and the set is swept every drain cycle, so a plain sorted
/// list beats a hash map: zero footprint on the (failure-free) hot
/// path and deterministic iteration order for free.
#[derive(Debug, Default)]
pub(crate) struct ErrorSlab {
    entries: Vec<(u64, IceClaveError)>,
}

impl ErrorSlab {
    pub(crate) fn new() -> Self {
        ErrorSlab {
            entries: Vec::new(),
        }
    }

    /// Records the ticket's *first* error; later errors of the same
    /// ticket are dropped (the `entry().or_insert()` semantics the
    /// driver relies on).
    pub(crate) fn record(&mut self, ticket: u64, error: IceClaveError) {
        match self.entries.binary_search_by_key(&ticket, |(id, _)| *id) {
            Ok(_) => {}
            Err(pos) => self.entries.insert(pos, (ticket, error)),
        }
    }

    pub(crate) fn remove(&mut self, ticket: u64) -> Option<IceClaveError> {
        match self.entries.binary_search_by_key(&ticket, |(id, _)| *id) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }

    /// Drops every entry `keep` rejects.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) {
        self.entries.retain(|(id, _)| keep(*id));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iceclave_types::{SimTime, TeeId, TicketKind};

    fn job() -> Job {
        Job::stub(TeeId::new(1).unwrap(), TicketKind::Read, SimTime::ZERO)
    }

    #[test]
    fn job_window_slides_only_at_the_front() {
        let mut t = JobTable::new();
        t.insert(1, job());
        t.insert(2, job());
        // Removing the back job must not shrink the window end.
        assert!(t.remove(2).is_some());
        t.insert(3, job());
        assert!(t.get_mut(3).is_some());
        assert!(t.get_mut(2).is_none());
        // Removing the front slides past the retired hole in one go.
        assert!(t.remove(1).is_some());
        assert!(t.get_mut(1).is_none());
        assert!(t.get_mut(3).is_some());
        assert_eq!(t.iter().map(|(id, _)| id).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn job_ids_skipped_by_empty_batches_stay_vacant() {
        let mut t = JobTable::new();
        t.insert(1, job());
        // Tickets 2 and 3 were opened without jobs (empty batches).
        t.insert(4, job());
        assert!(t.get_mut(2).is_none());
        assert!(t.get_mut(3).is_none());
        assert_eq!(
            t.iter().map(|(id, _)| id).collect::<Vec<_>>(),
            vec![1, 4],
            "iteration skips the vacant ids"
        );
    }

    #[test]
    fn error_slab_keeps_first_error_per_ticket() {
        let mut errs = ErrorSlab::new();
        let tee = TeeId::new(1).unwrap();
        errs.record(7, IceClaveError::NotRunning(tee));
        errs.record(
            7,
            IceClaveError::UnknownTicket(iceclave_types::Ticket::new(7)),
        );
        assert_eq!(errs.remove(7), Some(IceClaveError::NotRunning(tee)));
        assert_eq!(errs.remove(7), None);
    }

    #[test]
    fn iv_table_grows_on_demand() {
        let mut ivs = IvTable::new();
        assert!(ivs.get(100).is_none());
        let iv = PageIv::compose(42, 7);
        ivs.insert(100, iv);
        assert_eq!(ivs.get(100), Some(&iv));
        assert!(ivs.get(99).is_none());
    }
}
